// Copyright 2026 The GRAPE+ Reproduction Authors.
// Online statistics: mean/variance accumulator, EMA rate estimator and a
// fixed-bucket histogram.  The AAP delay-stretch controller (Eq. 1 of the
// paper) uses the EMA estimators for predicted round time t_i and message
// arrival rate s_i.
#ifndef GRAPEPLUS_UTIL_STATS_H_
#define GRAPEPLUS_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace grape {

/// Welford single-pass mean/variance.
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponential moving average with configurable smoothing factor.
/// Used to predict per-round running time and message arrival rates.
class Ema {
 public:
  explicit Ema(double alpha = 0.3) : alpha_(alpha) {}
  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    ++n_;
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  size_t count() const { return n_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  size_t n_ = 0;
};

/// Estimates an event rate (events per unit time) from timestamped arrivals,
/// as an EMA over inter-arrival gaps. The paper's s_i (message arrival rate).
class RateEstimator {
 public:
  explicit RateEstimator(double alpha = 0.3) : gap_ema_(alpha) {}
  /// Record an event (batch of `count` arrivals) at time `t`.
  void OnEvent(double t, uint64_t count = 1);
  /// Events per time unit; 0 if fewer than two events seen.
  double RatePerUnit() const;
  uint64_t total_events() const { return total_; }

 private:
  Ema gap_ema_;
  double last_t_ = 0.0;
  bool has_last_ = false;
  uint64_t total_ = 0;
};

/// Linear fixed-width histogram over [lo, hi); under/overflow buckets kept.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);
  void Add(double x);
  size_t count() const { return count_; }
  /// Approximate quantile in [0,1] by linear interpolation within buckets.
  double Quantile(double q) const;
  std::string ToAscii(size_t width = 40) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0, overflow_ = 0;
  size_t count_ = 0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_STATS_H_
