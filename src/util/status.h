// Copyright 2026 The GRAPE+ Reproduction Authors.
// Minimal Status / StatusOr error propagation, Arrow/Abseil flavoured.
#ifndef GRAPEPLUS_UTIL_STATUS_H_
#define GRAPEPLUS_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace grape {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Lightweight error-carrying result for fallible library calls.  The
/// reproduction avoids exceptions on hot paths (Google style), so loaders,
/// partitioners and engines return Status / StatusOr.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

 private:
  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// A Status or a value of type T.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : rep_(std::move(s)) {}          // NOLINT
  StatusOr(T value) : rep_(std::move(value)) {}       // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }
  T& value() { return std::get<T>(rep_); }
  const T& value() const { return std::get<T>(rep_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(rep_)); }

 private:
  std::variant<Status, T> rep_;
};

#define GRAPE_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::grape::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_STATUS_H_
