// Copyright 2026 The GRAPE+ Reproduction Authors.
// Common type aliases and small helpers shared across the library.
#ifndef GRAPEPLUS_UTIL_COMMON_H_
#define GRAPEPLUS_UTIL_COMMON_H_

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <limits>

#include "util/thread_annotations.h"

namespace grape {

/// Global vertex identifier. Graphs in this reproduction are container-scale,
/// so 32 bits suffice; the type is centralised so it can be widened.
using VertexId = uint32_t;

/// Identifier of a fragment / virtual worker (the paper's P_i).
using FragmentId = uint32_t;

/// Local id within a fragment: [0, num_inner) inner, then outer copies.
using LocalVertex = uint32_t;

/// Round counter (the r in the paper's messages (x, val, r)).
using Round = int32_t;

/// Virtual time used by the discrete-event runtime, in abstract "time units"
/// (the unit of Fig. 1: one unit = one message hop).
using SimTime = double;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();
inline constexpr LocalVertex kInvalidLocalVertex =
    std::numeric_limits<LocalVertex>::max();
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A tiny movable spinlock. Guards the (short) critical sections of the
/// message hot path, where a std::mutex is both too heavy and — being
/// immovable — forces heap indirection on buffers stored in vectors.
/// Moves do not transfer lock state: both sides end up unlocked, so a
/// moved-from object remains fully usable. A capability to the Clang
/// thread-safety analysis: lock with SpinLockGuard so GUARDED_BY contracts
/// on the protected state are checked.
class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  // Moving is only legal while neither side is (or can become) locked —
  // the same single-ownership window in which the containing object may be
  // moved at all — so lock state is intentionally not transferred and the
  // analysis is waived for the pair.
  SpinLock(SpinLock&&) noexcept NO_THREAD_SAFETY_ANALYSIS {}
  SpinLock& operator=(SpinLock&&) noexcept NO_THREAD_SAFETY_ANALYSIS {
    return *this;
  }

  void lock() noexcept ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // order: acquire on the winning test_and_set pairs with the release
      // in unlock() — the critical section's writes happen-before ours.
#if defined(__cpp_lib_atomic_flag_test)
      // order: relaxed — read-only contention backoff; the eventual
      // test_and_set above is what synchronises.
      while (flag_.test(std::memory_order_relaxed)) {
      }
#endif
    }
  }
  // order: release publishes the critical section to the next acquirer.
  void unlock() noexcept RELEASE() { flag_.clear(std::memory_order_release); }
  bool try_lock() noexcept TRY_ACQUIRE(true) {
    // order: acquire iff the flag was clear — same pairing as lock().
    return !flag_.test_and_set(std::memory_order_acquire);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII scoped acquisition of a SpinLock (the analysis-visible counterpart
/// of std::lock_guard<SpinLock>, which libstdc++ does not annotate).
class SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~SpinLockGuard() RELEASE() { mu_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& mu_;
};

/// Disallow copy & assign; inherit privately or place in class body via macro.
#define GRAPE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

/// Read-intent software prefetch hint (no-op off GCC/Clang). Prefetching an
/// address past the end of an array is architecturally safe (the hint never
/// faults), so hot loops may prefetch a fixed distance ahead unguarded.
#if defined(__GNUC__) || defined(__clang__)
#define GRAPE_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define GRAPE_PREFETCH(addr) ((void)0)
#endif

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_COMMON_H_
