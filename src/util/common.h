// Copyright 2026 The GRAPE+ Reproduction Authors.
// Common type aliases and small helpers shared across the library.
#ifndef GRAPEPLUS_UTIL_COMMON_H_
#define GRAPEPLUS_UTIL_COMMON_H_

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <limits>

namespace grape {

/// Global vertex identifier. Graphs in this reproduction are container-scale,
/// so 32 bits suffice; the type is centralised so it can be widened.
using VertexId = uint32_t;

/// Identifier of a fragment / virtual worker (the paper's P_i).
using FragmentId = uint32_t;

/// Local id within a fragment: [0, num_inner) inner, then outer copies.
using LocalVertex = uint32_t;

/// Round counter (the r in the paper's messages (x, val, r)).
using Round = int32_t;

/// Virtual time used by the discrete-event runtime, in abstract "time units"
/// (the unit of Fig. 1: one unit = one message hop).
using SimTime = double;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();
inline constexpr LocalVertex kInvalidLocalVertex =
    std::numeric_limits<LocalVertex>::max();
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A tiny movable spinlock. Guards the (short) critical sections of the
/// message hot path, where a std::mutex is both too heavy and — being
/// immovable — forces heap indirection on buffers stored in vectors.
/// Moves do not transfer lock state: both sides end up unlocked, so a
/// moved-from object remains fully usable.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(SpinLock&&) noexcept {}
  SpinLock& operator=(SpinLock&&) noexcept { return *this; }

  void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
      while (flag_.test(std::memory_order_relaxed)) {
      }
#endif
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Disallow copy & assign; inherit privately or place in class body via macro.
#define GRAPE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

/// Read-intent software prefetch hint (no-op off GCC/Clang). Prefetching an
/// address past the end of an array is architecturally safe (the hint never
/// faults), so hot loops may prefetch a fixed distance ahead unguarded.
#if defined(__GNUC__) || defined(__clang__)
#define GRAPE_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define GRAPE_PREFETCH(addr) ((void)0)
#endif

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_COMMON_H_
