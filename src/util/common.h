// Copyright 2026 The GRAPE+ Reproduction Authors.
// Common type aliases and small helpers shared across the library.
#ifndef GRAPEPLUS_UTIL_COMMON_H_
#define GRAPEPLUS_UTIL_COMMON_H_

#include <cstdint>
#include <cstddef>
#include <limits>

namespace grape {

/// Global vertex identifier. Graphs in this reproduction are container-scale,
/// so 32 bits suffice; the type is centralised so it can be widened.
using VertexId = uint32_t;

/// Identifier of a fragment / virtual worker (the paper's P_i).
using FragmentId = uint32_t;

/// Round counter (the r in the paper's messages (x, val, r)).
using Round = int32_t;

/// Virtual time used by the discrete-event runtime, in abstract "time units"
/// (the unit of Fig. 1: one unit = one message hop).
using SimTime = double;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Disallow copy & assign; inherit privately or place in class body via macro.
#define GRAPE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_COMMON_H_
