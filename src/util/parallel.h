// Copyright 2026 The GRAPE+ Reproduction Authors.
// WorkerPool-driven data-parallel primitives shared by the ingestion paths
// (parallel CSR build, chunked edge-list parsing, partition construction).
//
// Everything here is *deterministic regardless of chunking*: the stable
// scatter reproduces the single-threaded result bit-for-bit for any chunk
// count, so parallel and serial ingestion produce identical graphs and
// partitions (a property the store tests assert).
#ifndef GRAPEPLUS_UTIL_PARALLEL_H_
#define GRAPEPLUS_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/worker_pool.h"
#include "util/logging.h"

namespace grape {

/// Number of chunks to split `n` items into for `pool`. Capped so the
/// per-chunk bookkeeping of the scatter (one counter array per chunk) stays
/// bounded; 1 when the pool is absent or the range is too small to matter.
inline uint32_t ParallelChunks(const WorkerPool* pool, uint64_t n,
                               uint64_t min_grain = 1 << 14) {
  if (pool == nullptr || n < 2 * min_grain) return 1;
  const uint64_t by_grain = n / min_grain;
  return static_cast<uint32_t>(
      std::min<uint64_t>({by_grain, pool->num_threads(), 16}));
}

/// Runs fn(begin, end) over `chunks` contiguous slices of [0, n). Serial
/// loop when pool is null or a single chunk suffices.
template <typename Fn>
void ParallelForChunks(WorkerPool* pool, uint64_t n, uint32_t chunks,
                       Fn&& fn) {
  GRAPE_DCHECK(chunks >= 1);
  if (chunks <= 1 || pool == nullptr) {
    if (n > 0) fn(uint64_t{0}, n);
    return;
  }
  const uint64_t per = (n + chunks - 1) / chunks;
  pool->Run(chunks, [&](uint32_t c) {
    const uint64_t begin = per * c;
    const uint64_t end = std::min<uint64_t>(begin + per, n);
    if (begin < end) fn(begin, end);
  });
}

/// Convenience: element-wise parallel for over [0, n).
template <typename Fn>
void ParallelFor(WorkerPool* pool, uint64_t n, Fn&& fn,
                 uint64_t min_grain = 1 << 14) {
  ParallelForChunks(pool, n, ParallelChunks(pool, n, min_grain),
                    [&](uint64_t b, uint64_t e) {
                      for (uint64_t i = b; i < e; ++i) fn(i);
                    });
}

/// Stable counting scatter: permutes items[0..n) into out[0..n) grouped by
/// key (0 <= key < num_keys), preserving input order within each key — the
/// parallel equivalent of a serial bucket append. `key_offsets`, when given,
/// receives the exclusive prefix (size num_keys + 1): out[key_offsets[k] ..
/// key_offsets[k+1]) holds key k's items in input order.
///
/// Chunked two-level histogram: each chunk counts its slice, cursors are
/// seeded as prefix[key] + counts of earlier chunks, then each chunk
/// scatters its slice independently. The result is identical for any chunk
/// count (including 1), which is what makes parallel ingestion
/// deterministic. Memory: chunks * num_keys * 8 bytes of counters.
template <typename T, typename KeyFn>
void StableScatterByKey(WorkerPool* pool, const T* items, uint64_t n,
                        uint64_t num_keys, KeyFn&& key_of, T* out,
                        std::vector<uint64_t>* key_offsets) {
  const uint32_t chunks = ParallelChunks(pool, n);
  const uint64_t per = chunks > 1 ? (n + chunks - 1) / chunks : n;
  std::vector<uint64_t> counts(static_cast<uint64_t>(chunks) * num_keys, 0);

  ParallelForChunks(pool, n, chunks, [&](uint64_t b, uint64_t e) {
    const uint32_t c = chunks > 1 ? static_cast<uint32_t>(b / per) : 0;
    uint64_t* my = counts.data() + static_cast<uint64_t>(c) * num_keys;
    for (uint64_t i = b; i < e; ++i) ++my[key_of(items[i])];
  });

  // Exclusive prefix over per-key totals, then per-chunk cursor bases:
  // chunk c's first slot for key k = prefix[k] + sum_{c' < c} counts[c'][k].
  std::vector<uint64_t> prefix(num_keys + 1, 0);
  for (uint64_t k = 0; k < num_keys; ++k) {
    uint64_t total = 0;
    for (uint32_t c = 0; c < chunks; ++c) {
      total += counts[static_cast<uint64_t>(c) * num_keys + k];
    }
    prefix[k + 1] = prefix[k] + total;
  }
  // Rewrite counts[c][k] into the cursor base for chunk c (running sum).
  ParallelFor(
      pool, num_keys,
      [&](uint64_t k) {
        uint64_t base = prefix[k];
        for (uint32_t c = 0; c < chunks; ++c) {
          uint64_t* slot = &counts[static_cast<uint64_t>(c) * num_keys + k];
          const uint64_t cnt = *slot;
          *slot = base;
          base += cnt;
        }
      },
      1 << 16);

  ParallelForChunks(pool, n, chunks, [&](uint64_t b, uint64_t e) {
    const uint32_t c = chunks > 1 ? static_cast<uint32_t>(b / per) : 0;
    uint64_t* cursor = counts.data() + static_cast<uint64_t>(c) * num_keys;
    for (uint64_t i = b; i < e; ++i) {
      out[cursor[key_of(items[i])]++] = items[i];
    }
  });

  if (key_offsets != nullptr) *key_offsets = std::move(prefix);
}

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_PARALLEL_H_
