// Copyright 2026 The GRAPE+ Reproduction Authors.
// Clang thread-safety-analysis annotation macros (no-ops on other
// compilers). They turn the repo's locking contracts into machine-checked
// documentation: a field tagged GUARDED_BY(mu_) cannot be read or written
// without holding mu_, a helper tagged REQUIRES(mu_) cannot be called
// without it, and the Clang CI legs compile with
//   -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
// so violations fail the build (see docs/STATIC_ANALYSIS.md for the
// conventions and the capability map; tests/thread_safety_neg.cc proves the
// macros stay live on Clang).
//
// Naming follows the canonical capability vocabulary of the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a *capability*
// is something a thread can hold (a mutex), ACQUIRE/RELEASE transfer it,
// REQUIRES demands it, EXCLUDES forbids it (for non-reentrant locks),
// GUARDED_BY binds data to it.
#ifndef GRAPEPLUS_UTIL_THREAD_ANNOTATIONS_H_
#define GRAPEPLUS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lock) type. The string is the kind shown
/// in diagnostics ("mutex").
#define CAPABILITY(x) GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (our MutexLock / SpinLockGuard).
#define SCOPED_CAPABILITY GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data members: may only be accessed while holding the given capability.
#define GUARDED_BY(x) GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer members: the *pointee* is protected by the capability (the
/// pointer itself is not).
#define PT_GUARDED_BY(x) GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Functions: callers must hold the capability (it is not acquired or
/// released by the call). This is how `FooLocked()` helpers are marked.
#define REQUIRES(...) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Functions: acquire the capability on entry, hold it on return.
#define ACQUIRE(...) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Functions: release the capability held on entry.
#define RELEASE(...) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Functions: acquire the capability iff the returned value equals the
/// first macro argument (true for try_lock-style APIs).
#define TRY_ACQUIRE(...) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock guard for
/// non-reentrant locks; e.g. metric registration must not run inside a
/// snapshot callback).
#define EXCLUDES(...) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Functions: assert (at runtime) that the capability is already held —
/// informs the analysis without acquiring.
#define ASSERT_CAPABILITY(x) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Functions returning a reference to a capability (lock accessors).
#define RETURN_CAPABILITY(x) \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function's locking is intentionally outside the
/// analysis's vocabulary. Every use carries a comment saying why (e.g.
/// UpdateBuffer moves, which bypass both sides' locks by contract).
#define NO_THREAD_SAFETY_ANALYSIS \
  GRAPE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // GRAPEPLUS_UTIL_THREAD_ANNOTATIONS_H_
