// Copyright 2026 The GRAPE+ Reproduction Authors.
// Wall-clock stopwatch for the threaded engine and benches.
#ifndef GRAPEPLUS_UTIL_TIMER_H_
#define GRAPEPLUS_UTIL_TIMER_H_

#include <chrono>

namespace grape {

/// Monotonic stopwatch. Seconds as double.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_TIMER_H_
