// Copyright 2026 The GRAPE+ Reproduction Authors.
// Deterministic unrolled gather-sum kernel for the Jacobi pull
// accumulations (PageRank's dense gather is `sum += vals[arc.dst]` over an
// in-adjacency run — the hot loop of every pull round).
//
// The kernel fixes FOUR accumulation lanes: element k of the run is folded
// into lane k % 4, the lanes combine as (s0 + s1) + (s2 + s3), and the
// sub-4 tail is added last, left to right. That lane assignment is part of
// the contract, not an implementation detail: the differential harness
// asserts bit-identical results across {push,pull,auto} × {materialised,
// streaming} × {Sim,Threaded}, so every backend must produce the same
// floating-point rounding. GatherSumScalar reimplements the identical lane
// arithmetic in the most naive form; simd_test asserts the two are
// bit-equal so the unrolled kernel can never drift from the reference.
//
// Four independent accumulator chains give the compiler/OoO core real ILP
// (the scalar loop serialises every add through one register); the gather
// loads are prefetched a fixed distance ahead because the index stream
// defeats the hardware stride prefetcher.
#ifndef GRAPEPLUS_UTIL_SIMD_H_
#define GRAPEPLUS_UTIL_SIMD_H_

#include <cstddef>

#include "util/common.h"

namespace grape {

/// Unrolled 4-lane gather-sum: returns the lane-combined sum of
/// `vals[IndexOf(items[k])]` for k in [0, n). `IndexOf` is any callable
/// projecting an item to its index (e.g. a LocalArc to its dst lid).
template <typename Item, typename IndexOf>
inline double GatherSum(const Item* items, size_t n, const double* vals,
                        IndexOf&& index_of) {
  constexpr size_t kAhead = 16;  // prefetch distance, in items
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    if (k + kAhead < n) {
      GRAPE_PREFETCH(&vals[index_of(items[k + kAhead])]);
    }
    s0 += vals[index_of(items[k])];
    s1 += vals[index_of(items[k + 1])];
    s2 += vals[index_of(items[k + 2])];
    s3 += vals[index_of(items[k + 3])];
  }
  double tail = 0.0;
  for (; k < n; ++k) tail += vals[index_of(items[k])];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

/// Naive scalar reference with the identical lane assignment and combine
/// order — bit-equal to GatherSum by construction (simd_test enforces it).
template <typename Item, typename IndexOf>
inline double GatherSumScalar(const Item* items, size_t n, const double* vals,
                              IndexOf&& index_of) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  const size_t main = n - n % 4;
  for (size_t k = 0; k < main; ++k) {
    lane[k % 4] += vals[index_of(items[k])];
  }
  double tail = 0.0;
  for (size_t k = main; k < n; ++k) tail += vals[index_of(items[k])];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) + tail;
}

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_SIMD_H_
