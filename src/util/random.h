// Copyright 2026 The GRAPE+ Reproduction Authors.
// Deterministic, fast random number generation (splitmix64 + xoshiro256**).
// All workload generation and schedule randomisation in the reproduction is
// seeded through this class so experiments are replayable bit-for-bit.
#ifndef GRAPEPLUS_UTIL_RANDOM_H_
#define GRAPEPLUS_UTIL_RANDOM_H_

#include <cstdint>

#include "util/logging.h"

namespace grape {

/// xoshiro256** seeded via splitmix64. Not cryptographic; excellent for
/// simulation workloads. Copyable so sub-streams can be forked cheaply.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    GRAPE_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation (simplified).
    return Next() % n;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; simple & adequate).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    constexpr double kTwoPi = 6.283185307179586;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(kTwoPi * u2);
  }

  /// Forks an independent sub-stream (for per-worker jitter etc.).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_RANDOM_H_
