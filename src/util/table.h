// Copyright 2026 The GRAPE+ Reproduction Authors.
// ASCII rendering used by the benchmark harnesses: aligned tables (for the
// paper's Table 1 / Fig 6 series) and Gantt charts (for the paper's Fig 1 and
// Fig 7 timing diagrams), plus CSV emission.
#ifndef GRAPEPLUS_UTIL_TABLE_H_
#define GRAPEPLUS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace grape {

/// Column-aligned ASCII table builder.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Adds a row; must match header arity.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  std::string ToString() const;
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One bar on a Gantt chart: a half-open busy interval of one lane (worker).
struct GanttSpan {
  int lane = 0;
  double start = 0.0;
  double end = 0.0;
  char glyph = '#';
};

/// Renders worker busy intervals as an ASCII Gantt chart, one text row per
/// lane, time rescaled to `width` columns. Idle time renders as '.'.
std::string RenderGantt(const std::vector<GanttSpan>& spans, int lanes,
                        double t_end, int width = 96);

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_TABLE_H_
