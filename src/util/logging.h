// Copyright 2026 The GRAPE+ Reproduction Authors.
// Tiny leveled logger + CHECK macros. Thread safe, writes to stderr.
#ifndef GRAPEPLUS_UTIL_LOGGING_H_
#define GRAPEPLUS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace grape {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Flushes; aborts on kFatal.
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log stream when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

/// Turns an ostream expression into void so both ?: branches agree.
/// operator& binds looser than operator<<, so the stream chain runs first.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define GRAPE_LOG(level)                                                   \
  (::grape::LogLevel::k##level < ::grape::GetLogLevel())                   \
      ? (void)0                                                            \
      : ::grape::internal::Voidify() &                                    \
            ::grape::internal::LogMessage(::grape::LogLevel::k##level,     \
                                          __FILE__, __LINE__)              \
                .stream()

#define GRAPE_LOG_STREAM(level) \
  ::grape::internal::LogMessage(::grape::LogLevel::k##level, __FILE__, __LINE__).stream()

#define GRAPE_CHECK(cond)                                                      \
  if (!(cond))                                                                 \
  ::grape::internal::LogMessage(::grape::LogLevel::kFatal, __FILE__, __LINE__) \
      .stream()                                                                \
      << "Check failed: " #cond " "

#define GRAPE_CHECK_OK(expr)                            \
  do {                                                  \
    ::grape::Status _s = (expr);                        \
    GRAPE_CHECK(_s.ok()) << _s.ToString();              \
  } while (0)

// Debug-only check: full GRAPE_CHECK in debug builds, compiled out (condition
// unevaluated, zero runtime cost) under NDEBUG. Hot paths may therefore not
// rely on a GRAPE_DCHECK for Release-mode correctness — anything a caller can
// trigger with bad input needs explicit handling (e.g. Fragment::LocalTarget
// returns kInvalidLocal instead of trusting its lookup to be guarded).
#ifdef NDEBUG
#define GRAPE_DCHECK(cond) GRAPE_CHECK(true || (cond))
#else
#define GRAPE_DCHECK(cond) GRAPE_CHECK(cond)
#endif

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_LOGGING_H_
