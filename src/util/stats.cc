#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace grape {

void OnlineStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void RateEstimator::OnEvent(double t, uint64_t count) {
  total_ += count;
  if (has_last_ && t > last_t_) {
    // Average gap per single event within the batch.
    gap_ema_.Add((t - last_t_) / static_cast<double>(count));
  }
  last_t_ = t;
  has_last_ = true;
}

double RateEstimator::RatePerUnit() const {
  if (!gap_ema_.initialized() || gap_ema_.value() <= 0.0) return 0.0;
  return 1.0 / gap_ema_.value();
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0) {
  GRAPE_CHECK(hi > lo) << "Histogram range must be non-empty";
  GRAPE_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    size_t idx = static_cast<size_t>((x - lo_) / bucket_width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    ++buckets_[idx];
  }
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(buckets_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bucket_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t width) const {
  std::ostringstream os;
  uint64_t peak = 1;
  for (uint64_t b : buckets_) peak = std::max(peak, b);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double b_lo = lo_ + static_cast<double>(i) * bucket_width_;
    const size_t bar =
        static_cast<size_t>(static_cast<double>(buckets_[i]) /
                            static_cast<double>(peak) * static_cast<double>(width));
    os << "[" << b_lo << ", " << b_lo + bucket_width_ << ") "
       << std::string(bar, '#') << " " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace grape
