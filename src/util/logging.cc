#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sync.h"

namespace grape {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_log_mutex;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace grape
