// Copyright 2026 The GRAPE+ Reproduction Authors.
// Annotated synchronisation primitives: thin wrappers over std::mutex /
// std::condition_variable that carry Clang thread-safety capability
// annotations (util/thread_annotations.h). libstdc++'s std::mutex and
// std::lock_guard are invisible to the analysis; routing every blocking
// lock in the runtime through these wrappers is what makes GUARDED_BY
// contracts machine-checked on the Clang CI legs.
//
// Conventions (docs/STATIC_ANALYSIS.md):
//   * Lock with MutexLock (RAII) wherever possible; Lock()/Unlock() exist
//     for the rare split acquire.
//   * Condition waits are explicit while-loops over the guarded predicate:
//       MutexLock lock(mu_);
//       while (!pred_over_guarded_state) cv_.Wait(mu_);
//     (not a predicate lambda — a lambda body is a separate function to the
//     analysis and would need its own REQUIRES annotation).
//   * CondVar::Wait atomically releases and reacquires the Mutex, like
//     std::condition_variable::wait; the capability is held again when it
//     returns, which is exactly what REQUIRES(mu) expresses.
#ifndef GRAPEPLUS_UTIL_SYNC_H_
#define GRAPEPLUS_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace grape {

/// An annotated std::mutex. Non-reentrant; see CondVar for waiting.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Waits adopt the externally held lock for
/// the duration of the underlying std::condition_variable wait and hand it
/// back on return, so the capability annotations stay truthful: the caller
/// holds `mu` before and after every Wait*.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is released while
  /// blocked and reacquired before returning (spurious wakeups possible —
  /// always wait in a predicate loop).
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller keeps holding mu
  }

  /// Timed wait; returns std::cv_status::timeout when `dur` elapsed first.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status s = cv_.wait_for(lk, dur);
    lk.release();
    return s;
  }

  /// Deadline wait; returns std::cv_status::timeout once `tp` has passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status s = cv_.wait_until(lk, tp);
    lk.release();
    return s;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grape

#endif  // GRAPEPLUS_UTIL_SYNC_H_
