#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace grape {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  GRAPE_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::ostream& os) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  std::ostringstream os;
  emit_row(header_, os);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

std::string AsciiTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string RenderGantt(const std::vector<GanttSpan>& spans, int lanes,
                        double t_end, int width) {
  if (lanes <= 0) return "";
  width = std::max(width, 1);
  // A non-positive t_end (caller passed 0, or every span has zero duration)
  // is recovered from the spans themselves; an empty trace renders as
  // all-idle rows rather than the empty string, so callers can always embed
  // the chart in a report.
  for (const auto& s : spans) t_end = std::max(t_end, s.end);
  std::vector<std::string> rows(static_cast<size_t>(lanes),
                                std::string(static_cast<size_t>(width), '.'));
  const double scale = t_end > 0.0 ? static_cast<double>(width) / t_end : 0.0;
  for (const auto& s : spans) {
    if (s.lane < 0 || s.lane >= lanes) continue;
    // Round (not truncate) both edges so back-to-back spans tile the row
    // without overlap; a zero-duration span still gets one glyph cell.
    int a = static_cast<int>(std::lround(s.start * scale));
    int b = static_cast<int>(std::lround(s.end * scale));
    a = std::clamp(a, 0, width - 1);
    b = std::clamp(b, a + 1, width);
    for (int i = a; i < b; ++i) {
      rows[static_cast<size_t>(s.lane)][static_cast<size_t>(i)] = s.glyph;
    }
  }
  std::ostringstream os;
  for (int l = 0; l < lanes; ++l) {
    char label[16];
    std::snprintf(label, sizeof(label), "P%-3d ", l);
    os << label << rows[static_cast<size_t>(l)] << "\n";
  }
  return os.str();
}

}  // namespace grape
