#include "runtime/worklist.h"

#include "obs/metrics.h"

namespace grape {

ChunkedWorklist::ChunkedWorklist(uint32_t num_lanes, uint32_t num_items) {
  lanes_.reserve(std::max<uint32_t>(num_lanes, 1));
  for (uint32_t i = 0; i < std::max<uint32_t>(num_lanes, 1); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  queued_ = std::make_unique<std::atomic<bool>[]>(num_items);
  for (uint32_t i = 0; i < num_items; ++i) {
    // order: relaxed — single-threaded construction; the engine's pool
    // launch publishes the worklist to its threads.
    queued_[i].store(false, std::memory_order_relaxed);
  }
  push_counter_ =
      obs::MetricsRegistry::Global().GetCounter("async.worklist.pushes");
  steal_counter_ =
      obs::MetricsRegistry::Global().GetCounter("async.worklist.steals");
  metrics_callback_ = obs::MetricsRegistry::Global().AddCallback(
      [this](obs::MetricsSnapshot* snap) {
        snap->gauges["async.worklist.depth"] = static_cast<double>(size());
      });
}

ChunkedWorklist::~ChunkedWorklist() {
  obs::MetricsRegistry::Global().RemoveCallback(metrics_callback_);
}

bool ChunkedWorklist::PushUnique(uint32_t lane, uint32_t item) {
  // order: acq_rel — winning the flag pairs with Pop's release clear, so
  // the pusher that re-queues an item observes the pop that freed it.
  if (queued_[item].exchange(true, std::memory_order_acq_rel)) return false;
  Lane& l = *lanes_[lane % lanes_.size()];
  {
    SpinLockGuard lock(l.mu);
    if (l.chunks.empty() || l.chunks.back().end == kChunkItems) {
      l.chunks.emplace_back();
    }
    Chunk& c = l.chunks.back();
    c.items[c.end++] = item;
  }
  // order: release — the increment publishes the push to Empty()'s acquire
  // readers (the termination scan).
  size_.fetch_add(1, std::memory_order_release);
  // order: relaxed — telemetry only.
  pushes_.fetch_add(1, std::memory_order_relaxed);
  push_counter_->Add(1);
  return true;
}

bool ChunkedWorklist::PopLocal(uint32_t lane, uint32_t* item) {
  Lane& l = *lanes_[lane];
  SpinLockGuard lock(l.mu);
  if (l.chunks.empty()) return false;
  Chunk& c = l.chunks.front();
  GRAPE_DCHECK(c.begin < c.end);
  *item = c.items[c.begin++];
  if (c.begin == c.end) l.chunks.pop_front();
  return true;
}

bool ChunkedWorklist::Pop(uint32_t lane, uint32_t* item) {
  if (!PopLocal(lane % lanes_.size(), item)) return false;
  // order: release — matches the PushUnique increment.
  size_.fetch_sub(1, std::memory_order_release);
  // order: release — the clear pairs with PushUnique's acq_rel exchange:
  // a re-queue that wins the flag sees this pop completed.
  queued_[*item].store(false, std::memory_order_release);
  return true;
}

bool ChunkedWorklist::Steal(uint32_t lane, uint32_t* item) {
  const uint32_t n = num_lanes();
  const uint32_t self = lane % n;
  for (uint32_t d = 1; d < n; ++d) {
    const uint32_t victim = (self + d) % n;
    Chunk stolen;
    bool got = false;
    {
      Lane& v = *lanes_[victim];
      SpinLockGuard lock(v.mu);
      if (!v.chunks.empty()) {
        // Steal the newest chunk: the victim keeps draining its FIFO head
        // undisturbed while the thief takes the cold tail.
        stolen = v.chunks.back();
        v.chunks.pop_back();
        got = true;
      }
    }
    if (!got) continue;
    {
      Lane& l = *lanes_[self];
      SpinLockGuard lock(l.mu);
      l.chunks.push_back(stolen);
    }
    // order: relaxed — telemetry only (items merely moved lanes).
    steals_.fetch_add(1, std::memory_order_relaxed);
    steal_counter_->Add(1);
    if (Pop(self, item)) return true;
    // The moved chunk was popped by a racing peer; try the next victim.
  }
  return false;
}

}  // namespace grape
