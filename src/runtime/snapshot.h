// Copyright 2026 The GRAPE+ Reproduction Authors.
// Checkpointing for asynchronous runs (Section 6). GRAPE+ adapts
// Chandy–Lamport snapshots: the master broadcasts a checkpoint request with a
// token; a worker that has not yet seen the token snapshots its state before
// sending further messages and attaches the token to subsequent messages;
// late messages arriving without the token are folded into the last snapshot.
//
// This component does the token bookkeeping; engines own the (typed) state
// blobs and register them here via ids.
#ifndef GRAPEPLUS_RUNTIME_SNAPSHOT_H_
#define GRAPEPLUS_RUNTIME_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/sync.h"

namespace grape {

class CheckpointCoordinator {
 public:
  explicit CheckpointCoordinator(uint32_t num_workers);

  /// Master: begins a checkpoint; returns the fresh token (> 0).
  uint64_t StartCheckpoint();

  /// The token of the checkpoint in progress, or 0 if none.
  uint64_t current_token() const;

  /// Worker-side: called when worker `w` observes `token` (via the broadcast
  /// or on an incoming message). Returns true exactly once per (w, token):
  /// the caller must snapshot its local state *now*, before sending anything.
  bool ShouldSnapshot(FragmentId w, uint64_t token);

  /// True iff worker `w` has already snapshotted for `token`.
  bool HasSnapshotted(FragmentId w, uint64_t token) const;

  /// Worker-side: a message without the current token arrived after `w`
  /// snapshotted — the engine folds it into the snapshot and reports it here
  /// for accounting.
  void NoteLateMessage(FragmentId w, uint64_t token);

  /// True when every worker has snapshotted for `token`.
  bool Complete(uint64_t token) const;

  uint64_t late_messages(uint64_t token) const;

 private:
  mutable Mutex mu_;
  uint32_t num_workers_;
  uint64_t next_token_ GUARDED_BY(mu_) = 1;
  uint64_t current_ GUARDED_BY(mu_) = 0;
  /// Per worker: last token taken.
  std::vector<uint64_t> snapshotted_token_ GUARDED_BY(mu_);
  uint64_t late_count_ GUARDED_BY(mu_) = 0;
  uint64_t late_token_ GUARDED_BY(mu_) = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_SNAPSHOT_H_
