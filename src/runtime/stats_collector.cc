#include "runtime/stats_collector.h"

#include <algorithm>
#include <sstream>

namespace grape {

uint64_t RunStats::total_rounds() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.rounds;
  return s;
}

uint64_t RunStats::total_msgs() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.msgs_sent;
  return s;
}

uint64_t RunStats::total_bytes() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.bytes_sent;
  return s;
}

double RunStats::total_busy() const {
  double s = 0;
  for (const auto& w : workers) s += w.busy_time;
  return s;
}

double RunStats::total_idle() const {
  double s = 0;
  for (const auto& w : workers) s += w.idle_time;
  return s;
}

double RunStats::total_suspended() const {
  double s = 0;
  for (const auto& w : workers) s += w.suspended_time;
  return s;
}

uint64_t RunStats::max_rounds() const {
  uint64_t s = 0;
  for (const auto& w : workers) s = std::max(s, w.rounds);
  return s;
}

uint64_t RunStats::straggler_rounds() const {
  double max_busy = -1.0;
  uint64_t rounds = 0;
  for (const auto& w : workers) {
    if (w.busy_time > max_busy) {
      max_busy = w.busy_time;
      rounds = w.rounds;
    }
  }
  return rounds;
}

uint64_t RunStats::total_push_rounds() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.push_rounds;
  return s;
}

uint64_t RunStats::total_pull_rounds() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.pull_rounds;
  return s;
}

uint64_t RunStats::total_direction_switches() const {
  uint64_t s = 0;
  for (const auto& w : workers) s += w.direction_switches;
  return s;
}

double RunStats::total_thread_busy() const {
  double s = 0;
  for (const auto& t : threads) s += t.busy_time;
  return s;
}

double RunStats::total_thread_idle() const {
  double s = 0;
  for (const auto& t : threads) s += t.idle_time;
  return s;
}

std::string RunStats::ToString() const {
  std::ostringstream os;
  os << "makespan=" << makespan << " rounds=" << total_rounds()
     << " max_rounds=" << max_rounds() << " msgs=" << total_msgs()
     << " bytes=" << total_bytes() << " busy=" << total_busy()
     << " idle=" << total_idle() << " suspended=" << total_suspended();
  if (!threads.empty()) {
    os << " thread_busy=" << total_thread_busy()
       << " thread_idle=" << total_thread_idle()
       << " spurious_wakeups=" << spurious_wakeups;
  }
  if (!superstep_wall_ns.empty()) {
    uint64_t total = 0;
    for (uint64_t ns : superstep_wall_ns) total += ns;
    os << " supersteps=" << superstep_wall_ns.size()
       << " superstep_wall_ms=" << static_cast<double>(total) / 1e6;
  }
  return os.str();
}

}  // namespace grape
