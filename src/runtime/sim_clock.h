// Copyright 2026 The GRAPE+ Reproduction Authors.
// Discrete-event simulation clock. The AAP sim engine schedules round
// completions, message deliveries and delay-stretch wake-ups as events;
// processing order is (time, sequence) so runs are fully deterministic.
#ifndef GRAPEPLUS_RUNTIME_SIM_CLOCK_H_
#define GRAPEPLUS_RUNTIME_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/common.h"

namespace grape {

/// Deterministic event queue over virtual time.
class SimClock {
 public:
  using EventId = uint64_t;
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (must be >= Now()). Returns an id
  /// that can be cancelled.
  EventId Schedule(SimTime t, Callback fn);

  /// Cancels a scheduled event; no-op if it already ran or was cancelled.
  void Cancel(EventId id);

  /// Runs events in (time, insertion) order until the queue is empty or
  /// `max_events` have been processed. Returns number of events processed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Processes the single next event; false if queue empty.
  bool Step();

  /// Discards all pending events (failure-recovery support). Time keeps its
  /// current value.
  void DropPending();

  SimTime Now() const { return now_; }
  bool Empty() const { return live_events_ == 0; }
  uint64_t num_pending() const { return live_events_; }

 private:
  struct Event {
    SimTime t;
    EventId id;
    Callback fn;
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return id > o.id;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;  // sorted lazily; small
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t live_events_ = 0;

  bool IsCancelled(EventId id);
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_SIM_CLOCK_H_
