#include "runtime/sim_clock.h"

#include <algorithm>

#include "util/logging.h"

namespace grape {

SimClock::EventId SimClock::Schedule(SimTime t, Callback fn) {
  GRAPE_DCHECK(t >= now_) << "cannot schedule in the past: " << t << " < " << now_;
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id, std::move(fn)});
  ++live_events_;
  return id;
}

void SimClock::Cancel(EventId id) {
  cancelled_.push_back(id);
  if (live_events_ > 0) --live_events_;
}

bool SimClock::IsCancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

bool SimClock::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (IsCancelled(ev.id)) continue;
    --live_events_;
    now_ = ev.t;
    ev.fn();
    return true;
  }
  return false;
}

void SimClock::DropPending() {
  while (!queue_.empty()) queue_.pop();
  cancelled_.clear();
  live_events_ = 0;
}

uint64_t SimClock::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

}  // namespace grape
