// Copyright 2026 The GRAPE+ Reproduction Authors.
// The master/worker termination protocol of Section 3:
//   - after a round, a worker whose buffer is empty flags `inactive`;
//   - when all workers are inactive the master broadcasts `terminate`;
//   - workers answer `ack` (still inactive) or `wait` (reactivated);
//   - on any `wait` the incremental phase resumes; on all `ack` the master
//     pulls partial results and applies Assemble.
#ifndef GRAPEPLUS_RUNTIME_TERMINATION_H_
#define GRAPEPLUS_RUNTIME_TERMINATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/channel.h"
#include "util/common.h"

namespace grape {

class TerminationDetector {
 public:
  explicit TerminationDetector(uint32_t num_workers);

  /// Worker-side: mark worker active (a message arrived / a round started).
  void SetActive(FragmentId w);
  /// Worker-side: mark worker inactive (buffer empty after a round).
  void SetInactive(FragmentId w);
  bool IsInactive(FragmentId w) const;

  /// Master-side: the two-phase probe. Phase 1 (the `inactive` census):
  /// all workers inactive and no in-flight messages. Phase 2 (the
  /// `terminate` broadcast + `ack`/`wait` poll): re-verify; any worker that
  /// re-activated in between answers `wait` and the probe fails.
  bool TryTerminate(const InFlightCounter& inflight);

  /// True once a probe succeeded; workers exit their loops.
  bool ShouldStop() const {
    // order: acquire pairs with the release store in TryTerminate/ForceStop
    // so a worker that sees stop also sees the final probe's state.
    return stop_.load(std::memory_order_acquire);
  }

  /// Unconditional stop (failure injection / tests).
  void ForceStop() {
    // order: release — publish everything before the stop to exiting workers.
    stop_.store(true, std::memory_order_release);
  }

  uint32_t num_workers() const { return static_cast<uint32_t>(inactive_.size()); }
  uint64_t probes_attempted() const { return probes_; }

 private:
  bool AllInactive() const;
  std::vector<std::unique_ptr<std::atomic<bool>>> inactive_;
  std::atomic<bool> stop_{false};
  uint64_t probes_ = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_TERMINATION_H_
