// InFlightCounter / NotifyHub are header-only; this TU anchors the component
// so the build surface matches the module layout.
#include "runtime/channel.h"

namespace grape {
// Intentionally empty.
}  // namespace grape
