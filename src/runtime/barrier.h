// Copyright 2026 The GRAPE+ Reproduction Authors.
// Thread rendezvous barriers for the threaded engine's BSP superstep loop,
// replacing the single condition-variable hub every thread funnelled
// through. Two shapes, both sense-reversing via a monotone generation
// counter (no reinitialisation between rounds, safe for back-to-back
// Arrive calls):
//
//  - McsBarrier: an MCS-style arrival tree of arity 4. Each thread spins on
//    its *own* cache line while its children check in, then signals its
//    parent; the root publishes a new generation that releases everyone.
//    Arrival traffic is O(n) line transfers spread across n lines instead
//    of n CAS/lock hits on one hub mutex.
//  - TopoBarrier: a topology tree. Threads first rendezvous inside their
//    physical package (one shared arrival counter + release word per
//    package, so the spinning stays inside the package's shared cache),
//    package leaders then cross an McsBarrier, and each leader releases its
//    package through the package-local word — cross-package traffic is one
//    line per package per round.
//
// Waiters spin briefly, yield briefly, then block on the futex-backed
// C++20 atomic wait. The spin/yield budget is chosen per barrier at
// construction: when the usable cpus cover the barrier's threads, waiters
// spin (the peer is genuinely running on another core and the wait is
// sub-microsecond); when the box is oversubscribed (more barrier threads
// than cpus, the CI case) the budget collapses to a couple of yields and
// the futex — pause-spinning there only burns the timeslice the straggler
// needs to make progress.
#ifndef GRAPEPLUS_RUNTIME_BARRIER_H_
#define GRAPEPLUS_RUNTIME_BARRIER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace grape {

struct CpuTopology;

/// Reusable n-thread rendezvous: no thread leaves Arrive(round k) before
/// every thread has entered it, and a thread may immediately re-enter for
/// round k+1. Arrive is a full synchronisation point: writes made by any
/// thread before arriving are visible to every thread after it returns.
class ThreadBarrier {
 public:
  virtual ~ThreadBarrier() = default;
  /// `tid` must be a stable per-thread index in [0, num_threads()).
  virtual void Arrive(uint32_t tid) = 0;
  virtual uint32_t num_threads() const = 0;
  virtual const char* name() const = 0;
};

namespace barrier_detail {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause" ::: "memory");
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // order: seq_cst signal fence — a compiler-only barrier standing in for
  // the pause/yield hint on ISAs without one; no hardware ordering implied.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Per-barrier wait budget before blocking on the futex. Defaults match
/// the dedicated-core case; Oversubscribed() collapses them.
struct SpinBudget {
  int pauses = 128;
  int yields = 64;

  static constexpr SpinBudget Oversubscribed() { return {0, 2}; }
};

/// True when the process's usable cpus cannot host `n` concurrently
/// spinning threads (defined in barrier.cc against CpuTopology::Cached()).
bool IsOversubscribed(uint32_t n);

inline SpinBudget BudgetFor(uint32_t n) {
  return IsOversubscribed(n) ? SpinBudget::Oversubscribed() : SpinBudget{};
}

/// Spin → yield → futex-block until `word` differs from `seen`.
template <typename T>
inline void SpinWaitChange(const std::atomic<T>& word, T seen,
                           SpinBudget budget) {
  for (int i = 0; i < budget.pauses; ++i) {
    // order: acquire pairs with the releaser's store — the round's writes
    // are visible once the change is observed.
    if (word.load(std::memory_order_acquire) != seen) return;
    CpuRelax();
  }
  for (int i = 0; i < budget.yields; ++i) {
    // order: acquire — same pairing as the spin phase.
    if (word.load(std::memory_order_acquire) != seen) return;
    std::this_thread::yield();
  }
  T cur;
  // order: acquire on the load carries the synchronisation; the futex wait
  // is relaxed because the loop re-checks with acquire after every wake.
  while ((cur = word.load(std::memory_order_acquire)) == seen) {
    word.wait(seen, std::memory_order_relaxed);
  }
}

/// Spin → yield → futex-block until `word` reaches `target` (counter side:
/// the waiter re-arms on every intermediate value).
template <typename T>
inline void SpinWaitReach(const std::atomic<T>& word, T target,
                          SpinBudget budget) {
  for (int i = 0; i < budget.pauses; ++i) {
    // order: acquire pairs with each arriver's acq_rel increment — the
    // waiter observes every child's pre-arrival writes at the target.
    if (word.load(std::memory_order_acquire) == target) return;
    CpuRelax();
  }
  for (int i = 0; i < budget.yields; ++i) {
    // order: acquire — same pairing as the spin phase.
    if (word.load(std::memory_order_acquire) == target) return;
    std::this_thread::yield();
  }
  T cur;
  // order: acquire on the load carries the synchronisation; the futex wait
  // is relaxed because the loop re-checks with acquire after every wake.
  while ((cur = word.load(std::memory_order_acquire)) != target) {
    word.wait(cur, std::memory_order_relaxed);
  }
}

}  // namespace barrier_detail

/// MCS-style arrival tree (arity 4) + broadcast release.
class McsBarrier final : public ThreadBarrier {
 public:
  static constexpr uint32_t kArity = 4;

  explicit McsBarrier(uint32_t n)
      : n_(n ? n : 1),
        nodes_(n_),
        budget_(barrier_detail::BudgetFor(n_)) {
    for (uint32_t t = 0; t < n_; ++t) {
      const uint64_t first_child = static_cast<uint64_t>(t) * kArity + 1;
      nodes_[t].num_children = static_cast<uint32_t>(
          first_child >= n_
              ? 0
              : std::min<uint64_t>(kArity, n_ - first_child));
    }
  }

  void Arrive(uint32_t tid) override {
    Node& me = nodes_[tid];
    if (me.num_children != 0) {
      barrier_detail::SpinWaitReach(me.arrived, me.num_children, budget_);
      // Reset happens strictly before this round's release is published,
      // and next-round children only check in after observing the release,
      // so the counter is never concurrently reset and incremented.
      // order: relaxed — the release store below publishes the reset.
      me.arrived.store(0, std::memory_order_relaxed);
    }
    if (tid == 0) {
      // order: release — publishes every arriver's writes (gathered through
      // the acq_rel arrival chain) to the waiters' acquire loads.
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
    } else {
      // Loaded before the parent signal: the root cannot release this
      // round until our arrival has propagated up, so this is always the
      // pre-release generation. order: relaxed — no data is read through it.
      const uint64_t seen = generation_.load(std::memory_order_relaxed);
      // order: acq_rel — the increment publishes this thread's round writes
      // up the tree and observes its children's (chained to the root).
      nodes_[(tid - 1) / kArity].arrived.fetch_add(
          1, std::memory_order_acq_rel);
      nodes_[(tid - 1) / kArity].arrived.notify_one();
      barrier_detail::SpinWaitChange(generation_, seen, budget_);
    }
  }

  uint32_t num_threads() const override { return n_; }
  const char* name() const override { return "mcs"; }

 private:
  struct alignas(64) Node {
    std::atomic<uint32_t> arrived{0};  // children checked in this round
    uint32_t num_children = 0;
  };

  uint32_t n_;
  std::vector<Node> nodes_;
  barrier_detail::SpinBudget budget_;
  alignas(64) std::atomic<uint64_t> generation_{0};
};

/// Per-package arrival groups + a leader-level McsBarrier. Group membership
/// comes from the thread's round-robin placement over the topology's sorted
/// cpu list — the same mapping WorkerPool pinning uses, so a pinned thread
/// really does share silicon with its barrier group.
class TopoBarrier final : public ThreadBarrier {
 public:
  TopoBarrier(const CpuTopology& topo, uint32_t n);

  void Arrive(uint32_t tid) override {
    Group& g = *groups_[group_of_[tid]];
    if (tid == g.leader) {
      if (g.members != 0) {
        barrier_detail::SpinWaitReach(g.arrived, g.members, budget_);
        // order: relaxed — the release store below publishes the reset
        // (members re-arm only after observing the release word).
        g.arrived.store(0, std::memory_order_relaxed);
      }
      top_->Arrive(g.leader_index);
      ++g.generation;
      // order: release — publishes the whole barrier round (members' writes
      // via g.arrived, peers' via the leader barrier) to members' acquires.
      g.release.store(g.generation, std::memory_order_release);
      g.release.notify_all();
    } else {
      // order: relaxed — pre-release word; no data is read through it.
      const uint64_t seen = g.release.load(std::memory_order_relaxed);
      // order: acq_rel — publishes this member's round writes to the leader
      // and chains prior members' arrivals.
      g.arrived.fetch_add(1, std::memory_order_acq_rel);
      g.arrived.notify_one();
      barrier_detail::SpinWaitChange(g.release, seen, budget_);
    }
  }

  uint32_t num_threads() const override { return n_; }
  const char* name() const override { return "topo"; }
  uint32_t num_groups() const {
    return static_cast<uint32_t>(groups_.size());
  }

 private:
  struct alignas(64) Group {
    std::atomic<uint32_t> arrived{0};   // non-leader members this round
    std::atomic<uint64_t> release{0};   // package-local generation word
    uint32_t members = 0;               // non-leader member count
    uint32_t leader = 0;                // tid of the group leader
    uint32_t leader_index = 0;          // tid in the leaders' barrier
    uint64_t generation = 0;            // leader-private release counter
  };

  uint32_t n_;
  barrier_detail::SpinBudget budget_;
  std::vector<uint32_t> group_of_;  // tid -> group index
  std::vector<std::unique_ptr<Group>> groups_;
  std::unique_ptr<McsBarrier> top_;  // rendezvous of the group leaders
};

/// Barrier selection: a topology tree when the usable cpus span more than
/// one package (and there are at least as many threads as packages),
/// otherwise the flat-tree MCS barrier.
std::unique_ptr<ThreadBarrier> MakeTopoAwareBarrier(const CpuTopology& topo,
                                                    uint32_t n);

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_BARRIER_H_
