#include "runtime/worker_pool.h"

#include "util/logging.h"

namespace grape {

WorkerPool::WorkerPool(uint32_t num_threads) {
  GRAPE_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { ThreadLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::Launch(uint32_t n, std::function<void(uint32_t)> fn) {
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->size = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRAPE_CHECK(!job_ ||
                job_->done.load(std::memory_order_acquire) == job_->size)
        << "WorkerPool::Launch with a job still in flight";
    job_ = std::move(job);
    ++job_epoch_;
  }
  job_cv_.notify_all();
}

void WorkerPool::Drain(const std::shared_ptr<Job>& job) {
  while (true) {
    const uint32_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->size) break;
    job->fn(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->size) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::ThreadLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] {
        return stopping_ || job_epoch_ != seen_epoch;
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    Drain(job);
  }
}

void WorkerPool::Wait() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = job_;
  }
  if (!job) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->size;
  });
}

void WorkerPool::Run(uint32_t n, std::function<void(uint32_t)> fn) {
  if (n == 0) return;
  Launch(n, std::move(fn));
  Wait();
}

}  // namespace grape
