#include "runtime/worker_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "runtime/topology.h"
#include "util/logging.h"

namespace grape {

WorkerPool::WorkerPool(uint32_t num_threads, WorkerPoolOptions opts)
    : opts_(opts) {
  GRAPE_CHECK(num_threads >= 1);
  if (opts_.topology == nullptr) opts_.topology = &CpuTopology::Cached();
  threads_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t] { ThreadLoop(t); });
    // Pinned from outside via the native handle so the count is final when
    // the constructor returns — NUMA placement decisions read it
    // immediately after construction.
    if (opts_.pin_threads &&
        PinThreadToCpu(threads_.back(), opts_.topology->CpuForThread(t))) {
      // order: relaxed — only the constructing thread writes; readers need
      // atomicity, not ordering (see pinned_threads()).
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Re-register the pool's ad-hoc telemetry with the metrics registry: a
  // snapshot taken while this pool is alive folds its wakeup waste and pin
  // placement in. Counters sum across pools (engines create one per run);
  // gauges describe the most recent pool snapshotted.
  metrics_callback_ = obs::MetricsRegistry::Global().AddCallback(
      [this](obs::MetricsSnapshot* snap) {
        snap->counters["runtime.pool.spurious_wakeups"] +=
            spurious_wakeups();
        snap->gauges["runtime.pool.threads"] =
            static_cast<double>(this->num_threads());
        snap->gauges["runtime.pool.pinned_threads"] =
            static_cast<double>(pinned_threads());
      });
}

WorkerPool::~WorkerPool() {
  obs::MetricsRegistry::Global().RemoveCallback(metrics_callback_);
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  job_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

int WorkerPool::thread_node(uint32_t t) const {
  return opts_.pin_threads ? opts_.topology->NodeForThread(t) : 0;
}

void WorkerPool::Launch(uint32_t n, std::function<void(uint32_t)> fn) {
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->size = n;
  {
    MutexLock lock(mu_);
    // order: acquire pairs with Drain's acq_rel increments — a full `done`
    // count means every index's effects are visible here.
    GRAPE_CHECK(!job_ ||
                job_->done.load(std::memory_order_acquire) == job_->size)
        << "WorkerPool::Launch with a job still in flight";
    job_ = std::move(job);
    ++job_epoch_;
  }
  // Wake only as many threads as the job has indices: notify_all() here
  // stampeded every idle thread through the mutex for a 1-index job, and
  // all but one found the index space already spent (the thundering herd
  // the spurious_wakeups() counter now keeps regressions honest about).
  // A thread that is between jobs but not yet waiting re-checks the epoch
  // under the mutex before sleeping, so a "lost" notify is impossible.
  const uint32_t to_wake =
      std::min(n, static_cast<uint32_t>(threads_.size()));
  if (to_wake == threads_.size()) {
    job_cv_.NotifyAll();
  } else {
    for (uint32_t i = 0; i < to_wake; ++i) job_cv_.NotifyOne();
  }
}

uint32_t WorkerPool::Drain(const std::shared_ptr<Job>& job) {
  uint32_t executed = 0;
  while (true) {
    // order: relaxed — the cursor only partitions the index space; fn(i)
    // reads no state published by other claims.
    const uint32_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->size) break;
    job->fn(i);
    ++executed;
    // order: acq_rel — the final increment publishes every index's work to
    // the waiter (Wait/Launch read `done` with acquire).
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->size) {
      MutexLock lock(mu_);
      done_cv_.NotifyAll();
    }
  }
  return executed;
}

void WorkerPool::ThreadLoop(uint32_t t) {
  (void)t;  // pinning happens in the constructor, via the native handle
  uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && job_epoch_ == seen_epoch) job_cv_.Wait(mu_);
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    if (Drain(job) == 0) {
      // order: relaxed — telemetry counter (see spurious_wakeups()).
      spurious_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void WorkerPool::Wait() {
  std::shared_ptr<Job> job;
  {
    MutexLock lock(mu_);
    job = job_;
  }
  if (!job) return;
  MutexLock lock(mu_);
  // order: acquire pairs with Drain's final acq_rel increment — when the
  // count matches, the job's side effects are visible to the caller.
  while (job->done.load(std::memory_order_acquire) != job->size) {
    done_cv_.Wait(mu_);
  }
}

void WorkerPool::Run(uint32_t n, std::function<void(uint32_t)> fn) {
  if (n == 0) return;
  Launch(n, std::move(fn));
  Wait();
}

}  // namespace grape
