#include "runtime/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace grape {

namespace {

#if defined(__linux__)

/// Reads a small integer file like
/// /sys/devices/system/cpu/cpu7/topology/physical_package_id.
/// Returns `fallback` when the file is absent or malformed.
int ReadIntFile(const std::string& path, int fallback) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return fallback;
  int v = fallback;
  if (std::fscanf(f, "%d", &v) != 1) v = fallback;
  std::fclose(f);
  return v;
}

/// Parses a kernel cpulist string ("0-3,8,10-11") into cpu numbers.
std::vector<int> ParseCpuList(const std::string& list) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    char* end = nullptr;
    const long lo = std::strtol(list.c_str() + pos, &end, 10);
    if (end == list.c_str() + pos) break;  // no digits: done (trailing \n)
    long hi = lo;
    pos = static_cast<size_t>(end - list.c_str());
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = std::strtol(list.c_str() + pos, &end, 10);
      if (end == list.c_str() + pos) break;
      pos = static_cast<size_t>(end - list.c_str());
    }
    for (long c = lo; c <= hi && c - lo < 4096; ++c) {
      cpus.push_back(static_cast<int>(c));
    }
    if (pos < list.size() && list[pos] == ',') ++pos;
  }
  return cpus;
}

std::string ReadLineFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[4096];
  std::string out;
  if (std::fgets(buf, sizeof(buf), f) != nullptr) out = buf;
  std::fclose(f);
  return out;
}

/// Builds cpu -> NUMA node from /sys/devices/system/node/node*/cpulist.
/// Empty when the node directory is unreadable (no NUMA info).
std::vector<int> CpuToNodeMap() {
  std::vector<int> node_of;  // indexed by cpu id; -1 = unknown
  for (int node = 0; node < 1024; ++node) {
    const std::string list = ReadLineFile(
        "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist");
    if (list.empty()) {
      // Node numbering can be sparse on exotic boxes, but a miss on node 0
      // almost always means no sysfs at all; probe a few then stop.
      if (node > 8) break;
      continue;
    }
    for (int cpu : ParseCpuList(list)) {
      if (cpu >= static_cast<int>(node_of.size())) {
        node_of.resize(static_cast<size_t>(cpu) + 1, -1);
      }
      node_of[static_cast<size_t>(cpu)] = node;
    }
  }
  return node_of;
}

#endif  // __linux__

CpuTopology FallbackTopology() {
  CpuTopology topo;
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  topo.cpus.reserve(n);
  for (unsigned c = 0; c < n; ++c) {
    topo.cpus.push_back({static_cast<int>(c), 0, 0});
  }
  return topo;  // num_packages/num_nodes default to 1, from_sysfs false
}

void CountDistinct(CpuTopology* topo) {
  std::vector<int> packages, nodes;
  for (const auto& c : topo->cpus) {
    packages.push_back(c.package);
    nodes.push_back(c.node);
  }
  const auto distinct = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return std::max<int>(1, static_cast<int>(v.size()));
  };
  topo->num_packages = distinct(packages);
  topo->num_nodes = distinct(nodes);
}

}  // namespace

CpuTopology CpuTopology::Detect() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0 ||
      CPU_COUNT(&mask) == 0) {
    return FallbackTopology();
  }
  const std::vector<int> node_of = CpuToNodeMap();
  CpuTopology topo;
  bool any_sysfs = !node_of.empty();
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &mask)) continue;
    Cpu c;
    c.id = cpu;
    const int pkg = ReadIntFile("/sys/devices/system/cpu/cpu" +
                                    std::to_string(cpu) +
                                    "/topology/physical_package_id",
                                -1);
    if (pkg >= 0) any_sysfs = true;
    c.package = pkg >= 0 ? pkg : 0;
    c.node = (cpu < static_cast<int>(node_of.size()) && node_of[cpu] >= 0)
                 ? node_of[cpu]
                 : 0;
    topo.cpus.push_back(c);
  }
  if (topo.cpus.empty()) return FallbackTopology();
  topo.from_sysfs = any_sysfs;
  std::sort(topo.cpus.begin(), topo.cpus.end(),
            [](const Cpu& a, const Cpu& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.package != b.package) return a.package < b.package;
              return a.id < b.id;
            });
  CountDistinct(&topo);
  return topo;
#else
  return FallbackTopology();
#endif
}

const CpuTopology& CpuTopology::Cached() {
  static const CpuTopology topo = Detect();
  return topo;
}

bool PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool PinThreadToCpu(std::thread& thread, int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)thread;
  (void)cpu;
  return false;
#endif
}

namespace numa {

int NumMemoryNodes() { return CpuTopology::Cached().num_nodes; }

bool BindSpanToNode(void* p, size_t bytes, int node) {
  if (node < 0) return true;           // "no preference": nothing to do
  if (NumMemoryNodes() <= 1) return true;  // single node: placement is moot
#if defined(__linux__) && defined(SYS_mbind)
  // Raw mbind, so the build carries no libnuma dependency. Constants from
  // <linux/mempolicy.h>, restated here because that header is not present
  // on every toolchain sysroot.
  constexpr int kMpolPreferred = 1;
  constexpr unsigned kMpolMfMove = 1u << 1;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  // Align inward: mbind wants page-aligned spans, and the caller's vector
  // may share its first/last page with unrelated allocations.
  auto addr = reinterpret_cast<uintptr_t>(p);
  const uintptr_t begin = (addr + static_cast<uintptr_t>(page) - 1) &
                          ~(static_cast<uintptr_t>(page) - 1);
  const uintptr_t end =
      (addr + bytes) & ~(static_cast<uintptr_t>(page) - 1);
  if (end <= begin) return true;  // sub-page span: nothing bindable
  unsigned long nodemask[16] = {0};
  if (node >= static_cast<int>(sizeof(nodemask) * 8)) return false;
  nodemask[static_cast<size_t>(node) / (sizeof(unsigned long) * 8)] |=
      1ul << (static_cast<size_t>(node) % (sizeof(unsigned long) * 8));
  const long rc = syscall(SYS_mbind, begin, end - begin, kMpolPreferred,
                          nodemask, sizeof(nodemask) * 8, kMpolMfMove);
  return rc == 0;
#else
  (void)p;
  (void)bytes;
  return false;
#endif
}

}  // namespace numa

}  // namespace grape
