// Copyright 2026 The GRAPE+ Reproduction Authors.
// A persistent thread pool for the threaded engine: threads are spawned once
// per engine run and reused across BSP supersteps (and for the async worker
// loops), replacing the spawn-join-per-superstep pattern whose thread
// creation cost dominated short supersteps.
#ifndef GRAPEPLUS_RUNTIME_WORKER_POOL_H_
#define GRAPEPLUS_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace grape {

struct CpuTopology;

/// Placement policy for a pool's threads.
struct WorkerPoolOptions {
  /// Pin thread t to the topology's t-th usable cpu (round-robin when the
  /// pool is larger than the cpu set). Advisory: a refused pin leaves the
  /// thread floating.
  bool pin_threads = false;
  /// Topology to place against; null = CpuTopology::Cached().
  const CpuTopology* topology = nullptr;
};

/// Fixed-size pool executing index-space jobs. One job at a time: Launch()
/// hands `n` indices to the pool (claimed via an atomic cursor), Wait()
/// blocks the caller until all are done, Run() is the blocking composition.
class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_threads, WorkerPoolOptions opts = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Starts job `fn` over indices [0, n). Exactly one job may be in flight.
  void Launch(uint32_t n, std::function<void(uint32_t)> fn);

  /// Blocks until the launched job has fully drained.
  void Wait();

  /// Launch + Wait.
  void Run(uint32_t n, std::function<void(uint32_t)> fn);

  /// Times a pool thread woke for a job and found its index space already
  /// spent — the waste metric of the old notify_all() enqueue (which woke
  /// every idle thread for a 1-index job). Cumulative over the pool's life.
  uint64_t spurious_wakeups() const {
    // order: relaxed — monotonic telemetry counter, no data is published
    // through it.
    return spurious_wakeups_.load(std::memory_order_relaxed);
  }

  /// NUMA node thread `t` was placed on (its pin target's node), or 0 when
  /// the pool is unpinned / the topology is single-node. State allocated
  /// for work that thread t drains should be bound here.
  int thread_node(uint32_t t) const;

  /// Number of threads whose pin request actually took effect.
  uint32_t pinned_threads() const {
    // order: relaxed — final before the constructor returns (pins happen on
    // the constructing thread); later reads only need atomicity.
    return pinned_count_.load(std::memory_order_relaxed);
  }

 private:
  /// All mutable state of one Launch lives here; threads hold the job via
  /// shared_ptr, so a straggler still draining job N never touches the
  /// scalars of job N+1 (the races a flat next_/size_ layout would have).
  struct Job {
    std::function<void(uint32_t)> fn;
    uint32_t size = 0;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> done{0};
  };

  void ThreadLoop(uint32_t t);
  /// Claims and executes indices of `job` until its index space is spent.
  /// Returns the number of indices this thread executed.
  uint32_t Drain(const std::shared_ptr<Job>& job);

  WorkerPoolOptions opts_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar job_cv_;   // pool threads wait here for a job
  CondVar done_cv_;  // Wait() blocks here
  /// Current job; null before the first Launch. The shared_ptr is guarded;
  /// the pointed-to Job is synchronised by its own atomics.
  std::shared_ptr<Job> job_ GUARDED_BY(mu_);
  uint64_t job_epoch_ GUARDED_BY(mu_) = 0;  // bumps on every Launch
  bool stopping_ GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> spurious_wakeups_{0};
  std::atomic<uint32_t> pinned_count_{0};
  uint64_t metrics_callback_ = 0;  // snapshot-callback handle (obs registry)
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_WORKER_POOL_H_
