// Copyright 2026 The GRAPE+ Reproduction Authors.
// A persistent thread pool for the threaded engine: threads are spawned once
// per engine run and reused across BSP supersteps (and for the async worker
// loops), replacing the spawn-join-per-superstep pattern whose thread
// creation cost dominated short supersteps.
#ifndef GRAPEPLUS_RUNTIME_WORKER_POOL_H_
#define GRAPEPLUS_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace grape {

/// Fixed-size pool executing index-space jobs. One job at a time: Launch()
/// hands `n` indices to the pool (claimed via an atomic cursor), Wait()
/// blocks the caller until all are done, Run() is the blocking composition.
class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Starts job `fn` over indices [0, n). Exactly one job may be in flight.
  void Launch(uint32_t n, std::function<void(uint32_t)> fn);

  /// Blocks until the launched job has fully drained.
  void Wait();

  /// Launch + Wait.
  void Run(uint32_t n, std::function<void(uint32_t)> fn);

 private:
  /// All mutable state of one Launch lives here; threads hold the job via
  /// shared_ptr, so a straggler still draining job N never touches the
  /// scalars of job N+1 (the races a flat next_/size_ layout would have).
  struct Job {
    std::function<void(uint32_t)> fn;
    uint32_t size = 0;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> done{0};
  };

  void ThreadLoop();
  /// Claims and executes indices of `job` until its index space is spent.
  void Drain(const std::shared_ptr<Job>& job);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_cv_;    // pool threads wait here for a job
  std::condition_variable done_cv_;   // Wait() blocks here
  std::shared_ptr<Job> job_;          // current job; null before first Launch
  uint64_t job_epoch_ = 0;            // bumps on every Launch
  bool stopping_ = false;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_WORKER_POOL_H_
