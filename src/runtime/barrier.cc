#include "runtime/barrier.h"

#include <unordered_map>

#include "runtime/topology.h"
#include "util/logging.h"

namespace grape {

namespace barrier_detail {

bool IsOversubscribed(uint32_t n) {
  return CpuTopology::Cached().num_cpus() < n;
}

}  // namespace barrier_detail

TopoBarrier::TopoBarrier(const CpuTopology& topo, uint32_t n)
    : n_(n ? n : 1),
      budget_(barrier_detail::BudgetFor(n_)),
      group_of_(n_, 0) {
  // Group threads by the package their round-robin placement lands on.
  // With pinning enabled this is the thread's actual package; without it
  // the grouping is still a valid (if arbitrary) partition of threads.
  std::unordered_map<int, uint32_t> group_of_package;
  std::vector<uint32_t> leader_of_group;
  for (uint32_t t = 0; t < n_; ++t) {
    const int pkg = topo.PackageForThread(t);
    auto [it, inserted] = group_of_package.try_emplace(
        pkg, static_cast<uint32_t>(leader_of_group.size()));
    if (inserted) leader_of_group.push_back(t);
    group_of_[t] = it->second;
  }
  groups_.reserve(leader_of_group.size());
  for (size_t gi = 0; gi < leader_of_group.size(); ++gi) {
    auto g = std::make_unique<Group>();
    g->leader = leader_of_group[gi];
    g->leader_index = static_cast<uint32_t>(gi);
    groups_.push_back(std::move(g));
  }
  for (uint32_t t = 0; t < n_; ++t) {
    Group& g = *groups_[group_of_[t]];
    if (t != g.leader) ++g.members;
  }
  top_ = std::make_unique<McsBarrier>(static_cast<uint32_t>(groups_.size()));
}

std::unique_ptr<ThreadBarrier> MakeTopoAwareBarrier(const CpuTopology& topo,
                                                    uint32_t n) {
  if (topo.num_packages > 1 &&
      n >= static_cast<uint32_t>(topo.num_packages)) {
    return std::make_unique<TopoBarrier>(topo, n);
  }
  return std::make_unique<McsBarrier>(n);
}

}  // namespace grape
