// Copyright 2026 The GRAPE+ Reproduction Authors.
// Machine-topology layer: enumerates the usable cpus/packages/NUMA nodes
// from sysfs (intersected with the process affinity mask so containers and
// cpuset-restricted CI degrade gracefully), pins worker threads to cores,
// and provides a best-effort NUMA-local memory binder (raw mbind, no
// libnuma dependency) used to place fragment state near the thread that
// works on it. Everything here is best-effort: on non-Linux hosts, in
// sandboxes that hide sysfs, or on single-node boxes, every call degrades
// to a well-defined no-op and the engines run exactly as before.
#ifndef GRAPEPLUS_RUNTIME_TOPOLOGY_H_
#define GRAPEPLUS_RUNTIME_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace grape {

/// A snapshot of the cpus this process may run on, annotated with their
/// physical package and NUMA node. Cpus are sorted by (node, package, id) so
/// that consecutive worker-thread indices land on co-located cores — the
/// compact placement that keeps a package's barrier subtree and its
/// NUMA-local state on the same silicon.
struct CpuTopology {
  struct Cpu {
    int id = 0;       // kernel cpu number (valid for sched_setaffinity)
    int package = 0;  // physical_package_id, 0 when sysfs is absent
    int node = 0;     // NUMA node, 0 when sysfs is absent
  };

  std::vector<Cpu> cpus;  // usable cpus, sorted by (node, package, id)
  int num_packages = 1;   // distinct packages among `cpus` (>= 1)
  int num_nodes = 1;      // distinct NUMA nodes among `cpus` (>= 1)
  bool from_sysfs = false;  // true when sysfs annotations were readable

  /// Enumerates the topology. Respects the current sched_getaffinity mask:
  /// cpus outside it are not listed even if sysfs knows them. Falls back to
  /// hardware_concurrency() anonymous cpus on one package/node when the
  /// mask or sysfs is unreadable. Never fails.
  static CpuTopology Detect();

  /// Process-wide snapshot, detected once on first use. Engines use this;
  /// tests that mutate the affinity mask call Detect() directly.
  static const CpuTopology& Cached();

  uint32_t num_cpus() const { return static_cast<uint32_t>(cpus.size()); }

  /// Cpu a worker thread with pool index `t` should pin to (round-robin
  /// over the sorted cpu list), or -1 when no cpus were enumerated.
  int CpuForThread(uint32_t t) const {
    return cpus.empty() ? -1 : cpus[t % cpus.size()].id;
  }

  /// Package of thread `t` under the same round-robin placement.
  int PackageForThread(uint32_t t) const {
    return cpus.empty() ? 0 : cpus[t % cpus.size()].package;
  }

  /// NUMA node of thread `t` under the same round-robin placement.
  int NodeForThread(uint32_t t) const {
    return cpus.empty() ? 0 : cpus[t % cpus.size()].node;
  }
};

/// Pins the calling thread to kernel cpu `cpu`. Returns false (leaving the
/// thread's affinity unchanged) when `cpu` is negative, out of range, or
/// the platform refuses — callers treat pinning as advisory.
bool PinCurrentThreadToCpu(int cpu);

/// Pins `thread` to kernel cpu `cpu` from outside (via its native handle),
/// so a spawner can pin its workers synchronously and know the outcome
/// before handing them work. Same advisory semantics as above.
bool PinThreadToCpu(std::thread& thread, int cpu);

namespace numa {

/// Number of NUMA memory nodes the process can see (>= 1). Delegates to
/// CpuTopology::Cached().
int NumMemoryNodes();

/// Best-effort first-touch-style placement: asks the kernel to prefer
/// `node` for the page-aligned interior of [p, p + bytes), moving already
/// faulted pages (MPOL_MF_MOVE). Spans smaller than a page, a single-node
/// machine, node < 0, or a kernel without mbind all make this a successful
/// no-op; a refused syscall returns false and leaves the default policy —
/// the memory stays usable either way, which is the "plain allocation"
/// fallback the engines rely on when libnuma-style support is absent.
bool BindSpanToNode(void* p, size_t bytes, int node);

/// BindSpanToNode over a vector's backing storage.
template <typename T>
bool BindVectorToNode(std::vector<T>& v, int node) {
  return BindSpanToNode(static_cast<void*>(v.data()), v.size() * sizeof(T),
                        node);
}

}  // namespace numa

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_TOPOLOGY_H_
