// Copyright 2026 The GRAPE+ Reproduction Authors.
// The statistics collector of Section 6: per-worker counters gathered during
// a run (messages, bytes, rounds, busy/idle time) feeding both the
// delay-stretch controller and the experiment reports (Exp-1/Exp-2 columns).
#ifndef GRAPEPLUS_RUNTIME_STATS_COLLECTOR_H_
#define GRAPEPLUS_RUNTIME_STATS_COLLECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace grape {

/// Counters for one (virtual) worker.
struct WorkerStats {
  uint64_t rounds = 0;           // IncEval invocations (PEval not counted)
  uint64_t msgs_sent = 0;        // designated messages M(i,j)
  uint64_t msgs_received = 0;
  uint64_t entries_sent = 0;     // individual (x, val, r) triples
  uint64_t bytes_sent = 0;
  uint64_t updates_applied = 0;  // buffer entries consumed by IncEval
  double busy_time = 0.0;        // PEval + IncEval compute time
  double idle_time = 0.0;        // waiting with an empty buffer
  double suspended_time = 0.0;   // held by the delay stretch / staleness bound
  double work_units = 0.0;       // program-reported work (edges relaxed, ...)
  // Direction telemetry (dual-mode programs; core/direction.h). Counts
  // include PEval, so push_rounds + pull_rounds = rounds + 1 there.
  uint64_t push_rounds = 0;         // rounds run with the scatter kernel
  uint64_t pull_rounds = 0;         // rounds run with the gather kernel
  uint64_t direction_switches = 0;  // rounds whose direction changed
};

/// Wall-clock split of one physical pool thread of the threaded engine —
/// distinct from WorkerStats, which tracks *virtual* workers (a thread
/// multiplexes many). Busy = executing PEval/IncEval rounds; idle = parked
/// at the superstep barrier or the notify hub. The split is what makes
/// topology wins visible: pinning/NUMA placement shows up as busy time
/// dropping while idle absorbs the skew.
struct ThreadStats {
  double busy_time = 0.0;
  double idle_time = 0.0;
  uint64_t rounds = 0;  // virtual-worker rounds this thread executed
};

/// Aggregate view across workers.
struct RunStats {
  std::vector<WorkerStats> workers;
  double makespan = 0.0;  // virtual or wall time of the whole run

  /// Threaded engine only: per-physical-thread busy/idle split (empty for
  /// the sim engine, which has no physical threads).
  std::vector<ThreadStats> threads;
  /// Threaded engine, BSP path only: measured wall time of each superstep
  /// in ns (index 0 = the PEval superstep).
  std::vector<uint64_t> superstep_wall_ns;
  /// Threaded engine only: condition-variable wakeups of pool threads that
  /// found no work (WorkerPool::spurious_wakeups() at the end of the run).
  uint64_t spurious_wakeups = 0;

  uint64_t total_rounds() const;
  uint64_t total_msgs() const;
  uint64_t total_bytes() const;
  double total_busy() const;
  double total_idle() const;
  double total_suspended() const;
  uint64_t max_rounds() const;
  /// Straggler = worker with the most busy time; returns its round count
  /// (the quantity the paper tracks in the Fig. 7 case study).
  uint64_t straggler_rounds() const;
  // Direction telemetry aggregates (zero for single-kernel programs).
  uint64_t total_push_rounds() const;
  uint64_t total_pull_rounds() const;
  uint64_t total_direction_switches() const;

  // Physical-thread aggregates (zero when `threads` is empty).
  double total_thread_busy() const;
  double total_thread_idle() const;
  uint64_t total_supersteps() const {
    return superstep_wall_ns.size();
  }

  std::string ToString() const;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_STATS_COLLECTOR_H_
