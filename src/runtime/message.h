// Copyright 2026 The GRAPE+ Reproduction Authors.
// Designated messages (Section 3): triples (x, val, r) grouped per
// destination fragment, and the per-worker buffer B_x̄i that stores incoming
// updates until the next round of IncEval drains it.
//
// The buffer is a dense slot array indexed by the destination fragment's
// local vertex id (stamped on each entry by the dispatch routing index), so
// Append/Combine are O(1) array writes and Drain walks an explicit dirty
// list — no hash map, no drain-time sort, no heap-allocated mutex.
#ifndef GRAPEPLUS_RUNTIME_MESSAGE_H_
#define GRAPEPLUS_RUNTIME_MESSAGE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "runtime/topology.h"
#include "util/common.h"
#include "util/logging.h"

namespace grape {

/// One update parameter change: (x, val, r) of the paper where x is the
/// status variable of vertex `vid`. `lid` is a dense routing key: the
/// emitting program stamps its *source* local id; the dispatcher rewrites it
/// to the *destination* fragment's local id before delivery, so receivers
/// index state arrays directly instead of hashing `vid`. Entries built by
/// hand (tests, external blobs) may leave it kInvalidLocalVertex: every
/// consumer falls back to the vid-keyed slow path then.
template <typename V>
struct UpdateEntry {
  VertexId vid;
  V value;
  Round round;
  LocalVertex lid = kInvalidLocalVertex;
};

/// A designated message M(i, j).
template <typename V>
struct Message {
  FragmentId from = kInvalidFragment;
  FragmentId to = kInvalidFragment;
  Round round = 0;  // the round at which the values were produced
  std::vector<UpdateEntry<V>> entries;
  /// Chandy–Lamport-style checkpoint token id carried by this message
  /// (Section 6); kNoToken when checkpointing is idle.
  static constexpr uint64_t kNoToken = 0;
  uint64_t token = kNoToken;
};

/// Payload size model used by communication accounting (Exp-2).
template <typename V>
struct ValueTraits {
  static size_t Bytes(const V&) { return sizeof(V); }
};

/// Wire bytes of a batch of entries. The routing key `lid` is not counted:
/// it is a receiver-side index that a real transport would derive from the
/// partition, not payload.
template <typename V>
size_t EntriesBytes(std::span<const UpdateEntry<V>> entries) {
  size_t b = 0;
  for (const auto& e : entries) {
    b += sizeof(VertexId) + sizeof(Round) + ValueTraits<V>::Bytes(e.value);
  }
  return b;
}

template <typename V>
size_t MessageBytes(const Message<V>& m) {
  return EntriesBytes(std::span<const UpdateEntry<V>>(m.entries));
}

/// The buffer B_x̄i of worker P_i. Incoming entries are merged per vertex
/// with the program's aggregate function faggr as they arrive (equivalent to
/// aggregating at drain time, since faggr is associative & commutative), so
/// a drain produces at most one update per vertex. Tracks the staleness
/// signals the delay-stretch controller needs: number of buffered messages
/// and the set of distinct senders (the paper's η_i).
///
/// Storage is dense: slot k holds the pending update whose routing key is k
/// (the destination local id for engine-delivered entries, the raw vid for
/// hand-built ones). Engines pre-size it with the fragment's local vertex
/// count; standalone use grows on demand. Drain order is the first-touch
/// order of the dirty list — deterministic for a deterministic append
/// sequence, unspecified otherwise.
template <typename V>
class UpdateBuffer {
 public:
  UpdateBuffer() = default;
  explicit UpdateBuffer(uint32_t num_slots) {
    slots_.resize(num_slots);
    dirty_.reserve(num_slots);
  }
  // Moves leave the source a fully usable empty buffer (the seed's
  // defaulted move left a null heap mutex behind — any later method call on
  // a moved-from buffer, e.g. after container reallocation, crashed).
  // Moving is not thread-safe with respect to concurrent buffer access —
  // both buffers must be externally quiescent, which is why neither side's
  // mu_ is taken and the thread-safety analysis is waived here.
  UpdateBuffer(UpdateBuffer&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : slots_(std::move(other.slots_)),
        dirty_(std::move(other.dirty_)),
        num_messages_(std::exchange(other.num_messages_, 0)),
        senders_(std::move(other.senders_)),
        degree_offsets_(std::exchange(other.degree_offsets_, {})),
        frontier_degree_(std::exchange(other.frontier_degree_, 0)) {
    other.slots_.clear();
    other.dirty_.clear();
    other.senders_.clear();
  }
  UpdateBuffer& operator=(UpdateBuffer&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      dirty_ = std::move(other.dirty_);
      num_messages_ = std::exchange(other.num_messages_, 0);
      senders_ = std::move(other.senders_);
      degree_offsets_ = std::exchange(other.degree_offsets_, {});
      frontier_degree_ = std::exchange(other.frontier_degree_, 0);
      other.slots_.clear();
      other.dirty_.clear();
      other.senders_.clear();
    }
    return *this;
  }

  /// Registers the destination fragment's local CSR offsets (size
  /// num_inner + 1) so the buffer can track the *frontier out-degree* — the
  /// summed out-degree of its dirty vertices — incrementally: O(1) per
  /// first-touch of a slot, no per-decision scan. Keys at or past the span
  /// (outer-copy lids, hand-built vid keys) contribute zero degree. The
  /// span's storage must outlive the buffer's use of it (engines point it
  /// at the partition's fragments, which outlive the run).
  void SetDegreeOffsets(std::span<const uint64_t> offsets) {
    SpinLockGuard lock(mu_);
    degree_offsets_ = offsets;
    frontier_degree_ = 0;
    for (uint32_t k : dirty_) frontier_degree_ += DegreeOf(k);
  }

  /// Summed local out-degree of the buffered dirty vertices — the "edges a
  /// push round would traverse" half of the Ligra density signal consumed
  /// by the direction controller. Zero until SetDegreeOffsets is called.
  uint64_t FrontierOutDegree() const {
    SpinLockGuard lock(mu_);
    return frontier_degree_;
  }

  /// Best-effort NUMA placement of the dense slot storage and dirty list
  /// on `node` (runtime/topology.h) — a pure memory-locality hint the
  /// threaded engine applies once the buffer's consumer thread is known.
  /// No-op on single-node machines. Call before concurrent use.
  void BindToNumaNode(int node) {
    SpinLockGuard lock(mu_);
    numa::BindVectorToNode(slots_, node);
    numa::BindVectorToNode(dirty_, node);
  }

  /// Appends a message, folding entries into the dense slots via `combine`.
  template <typename Combine>
  void Append(const Message<V>& msg, Combine&& combine) {
    AppendEntries(msg.from, std::span<const UpdateEntry<V>>(msg.entries),
                  std::forward<Combine>(combine));
  }

  /// Appends one logical message given directly as an entry batch — the
  /// threaded engine's zero-copy delivery path (no Message envelope).
  template <typename Combine>
  void AppendEntries(FragmentId from, std::span<const UpdateEntry<V>> entries,
                     Combine&& combine) {
    SpinLockGuard lock(mu_);
    for (const auto& e : entries) FoldLocked(e, combine);
    ++num_messages_;
    NoteSenderLocked(from);
  }

  /// Drains all pending updates (cleared afterwards) in first-touch order.
  std::vector<UpdateEntry<V>> Drain() {
    SpinLockGuard lock(mu_);
    std::vector<UpdateEntry<V>> out;
    out.reserve(dirty_.size());
    for (uint32_t k : dirty_) {
      Slot& s = slots_[k];
      out.push_back(std::move(s.entry));
      s.dirty = 0;
    }
    dirty_.clear();
    num_messages_ = 0;
    senders_.clear();
    frontier_degree_ = 0;
    return out;
  }

  /// Drains at most `max_n` pending updates in first-touch order, leaving
  /// the rest buffered — the async engine's chunked quanta. Equivalent to a
  /// prefix of what Drain() would return; frontier-degree tracking stays
  /// exact. The message/sender counts are not split across a partial drain
  /// (they describe whole messages): they are left as an upper bound until
  /// the buffer fully empties. Delegates to Drain() when everything fits.
  std::vector<UpdateEntry<V>> DrainUpTo(size_t max_n) {
    {
      SpinLockGuard lock(mu_);
      if (max_n < dirty_.size()) {
        std::vector<UpdateEntry<V>> out;
        out.reserve(max_n);
        for (size_t i = 0; i < max_n; ++i) {
          Slot& s = slots_[dirty_[i]];
          out.push_back(std::move(s.entry));
          s.dirty = 0;
          frontier_degree_ -= DegreeOf(dirty_[i]);
        }
        dirty_.erase(dirty_.begin(),
                     dirty_.begin() + static_cast<ptrdiff_t>(max_n));
        return out;
      }
    }
    return Drain();
  }

  bool Empty() const {
    SpinLockGuard lock(mu_);
    return dirty_.empty();
  }

  /// Number of buffered (un-drained) messages — the paper's η_i.
  uint64_t NumMessages() const {
    SpinLockGuard lock(mu_);
    return num_messages_;
  }

  /// Number of distinct workers with buffered messages.
  uint64_t NumDistinctSenders() const {
    SpinLockGuard lock(mu_);
    return senders_.size();
  }

  uint64_t NumPendingVertices() const {
    SpinLockGuard lock(mu_);
    return dirty_.size();
  }

  /// Copy of the pending entries without clearing (checkpointing support),
  /// in the same order Drain() would produce.
  std::vector<UpdateEntry<V>> Snapshot() const {
    SpinLockGuard lock(mu_);
    std::vector<UpdateEntry<V>> out;
    out.reserve(dirty_.size());
    for (uint32_t k : dirty_) out.push_back(slots_[k].entry);
    return out;
  }

  /// Replaces the buffer content with `entries` (recovery support).
  template <typename Combine>
  void Reset(const std::vector<UpdateEntry<V>>& entries, Combine&& combine) {
    SpinLockGuard lock(mu_);
    for (uint32_t k : dirty_) slots_[k].dirty = 0;
    dirty_.clear();
    senders_.clear();
    num_messages_ = 0;
    frontier_degree_ = 0;
    for (const auto& e : entries) {
      FoldLocked(e, combine);
      ++num_messages_;
    }
  }

 private:
  struct Slot {
    UpdateEntry<V> entry{};
    uint8_t dirty = 0;
  };

  static uint32_t KeyOf(const UpdateEntry<V>& e) {
    return e.lid != kInvalidLocalVertex ? e.lid : e.vid;
  }

  /// Largest key the buffer will auto-grow to. Engine-delivered entries are
  /// keyed by destination local ids (bounded by the fragment), standalone
  /// vid-keyed use must stay dense: a sparse huge vid would silently
  /// allocate gigabytes of slots, so it is rejected loudly instead.
  static constexpr uint32_t kMaxAutoGrowKey = 1u << 28;

  template <typename Combine>
  void FoldLocked(const UpdateEntry<V>& e, Combine& combine) REQUIRES(mu_) {
    const uint32_t k = KeyOf(e);
    if (k >= slots_.size()) {
      GRAPE_CHECK(k <= kMaxAutoGrowKey)
          << "UpdateBuffer key " << k << " too sparse for dense storage";
      slots_.resize(std::max<size_t>(static_cast<size_t>(k) + 1,
                                     slots_.size() * 2));
    }
    Slot& s = slots_[k];
    if (!s.dirty) {
      s.entry = e;
      s.dirty = 1;
      dirty_.push_back(k);
      frontier_degree_ += DegreeOf(k);
    } else {
      s.entry.value = combine(s.entry.value, e.value);
      s.entry.round = std::max(s.entry.round, e.round);
    }
  }

  void NoteSenderLocked(FragmentId from) REQUIRES(mu_) {
    // η_i counts distinct peers, which is bounded by the fragment count —
    // a linear scan over a tiny vector beats a hash set here.
    if (std::find(senders_.begin(), senders_.end(), from) == senders_.end()) {
      senders_.push_back(from);
    }
  }

  uint64_t DegreeOf(uint32_t k) const REQUIRES(mu_) {
    return k + 1 < degree_offsets_.size()
               ? degree_offsets_[k + 1] - degree_offsets_[k]
               : 0;
  }

  /// Capability guarding every mutable member below. The move operations
  /// are the single (documented) exception to the contract.
  mutable SpinLock mu_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  /// Slot keys in first-touch order.
  std::vector<uint32_t> dirty_ GUARDED_BY(mu_);
  uint64_t num_messages_ GUARDED_BY(mu_) = 0;
  std::vector<FragmentId> senders_ GUARDED_BY(mu_);
  /// Destination fragment's local CSR offsets (frontier-degree tracking).
  std::span<const uint64_t> degree_offsets_ GUARDED_BY(mu_);
  uint64_t frontier_degree_ GUARDED_BY(mu_) = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_MESSAGE_H_
