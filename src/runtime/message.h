// Copyright 2026 The GRAPE+ Reproduction Authors.
// Designated messages (Section 3): triples (x, val, r) grouped per
// destination fragment, and the per-worker buffer B_x̄i that stores incoming
// updates until the next round of IncEval drains it.
#ifndef GRAPEPLUS_RUNTIME_MESSAGE_H_
#define GRAPEPLUS_RUNTIME_MESSAGE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/common.h"

namespace grape {

/// One update parameter change: (x, val, r) of the paper where x is the
/// status variable of vertex `vid`.
template <typename V>
struct UpdateEntry {
  VertexId vid;
  V value;
  Round round;
};

/// A designated message M(i, j).
template <typename V>
struct Message {
  FragmentId from = kInvalidFragment;
  FragmentId to = kInvalidFragment;
  Round round = 0;  // the round at which the values were produced
  std::vector<UpdateEntry<V>> entries;
  /// Chandy–Lamport-style checkpoint token id carried by this message
  /// (Section 6); kNoToken when checkpointing is idle.
  static constexpr uint64_t kNoToken = 0;
  uint64_t token = kNoToken;
};

/// Payload size model used by communication accounting (Exp-2).
template <typename V>
struct ValueTraits {
  static size_t Bytes(const V&) { return sizeof(V); }
};

template <typename V>
size_t MessageBytes(const Message<V>& m) {
  size_t b = 0;
  for (const auto& e : m.entries) {
    b += sizeof(VertexId) + sizeof(Round) + ValueTraits<V>::Bytes(e.value);
  }
  return b;
}

/// The buffer B_x̄i of worker P_i. Incoming entries are merged per vertex with
/// the program's aggregate function faggr as they arrive (equivalent to
/// aggregating at drain time, since faggr is associative & commutative), so a
/// drain produces at most one update per vertex. Tracks the staleness
/// signals the delay-stretch controller needs: number of buffered messages
/// and the set of distinct senders (the paper's η_i).
template <typename V>
class UpdateBuffer {
 public:
  UpdateBuffer() : mu_(std::make_unique<std::mutex>()) {}
  UpdateBuffer(UpdateBuffer&&) noexcept = default;
  UpdateBuffer& operator=(UpdateBuffer&&) noexcept = default;

  /// Appends a message, folding entries into the pending map via `combine`.
  template <typename Combine>
  void Append(const Message<V>& msg, Combine&& combine) {
    std::lock_guard<std::mutex> lock(*mu_);
    for (const auto& e : msg.entries) {
      auto [it, inserted] = pending_.try_emplace(e.vid, e);
      if (!inserted) {
        it->second.value = combine(it->second.value, e.value);
        it->second.round = std::max(it->second.round, e.round);
      }
    }
    ++num_messages_;
    senders_.insert(msg.from);
  }

  /// Drains all pending updates (cleared afterwards). Returns entries in
  /// unspecified but deterministic-per-content order.
  std::vector<UpdateEntry<V>> Drain() {
    std::lock_guard<std::mutex> lock(*mu_);
    std::vector<UpdateEntry<V>> out;
    out.reserve(pending_.size());
    for (auto& [vid, e] : pending_) out.push_back(e);
    pending_.clear();
    num_messages_ = 0;
    senders_.clear();
    // Deterministic order regardless of hash-map iteration.
    std::sort(out.begin(), out.end(),
              [](const UpdateEntry<V>& a, const UpdateEntry<V>& b) {
                return a.vid < b.vid;
              });
    return out;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return pending_.empty();
  }

  /// Number of buffered (un-drained) messages — the paper's η_i.
  uint64_t NumMessages() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return num_messages_;
  }

  /// Number of distinct workers with buffered messages.
  uint64_t NumDistinctSenders() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return senders_.size();
  }

  uint64_t NumPendingVertices() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return pending_.size();
  }

  /// Copy of the pending entries without clearing (checkpointing support).
  std::vector<UpdateEntry<V>> Snapshot() const {
    std::lock_guard<std::mutex> lock(*mu_);
    std::vector<UpdateEntry<V>> out;
    out.reserve(pending_.size());
    for (const auto& [vid, e] : pending_) out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const UpdateEntry<V>& a, const UpdateEntry<V>& b) {
                return a.vid < b.vid;
              });
    return out;
  }

  /// Replaces the buffer content with `entries` (recovery support).
  template <typename Combine>
  void Reset(const std::vector<UpdateEntry<V>>& entries, Combine&& combine) {
    std::lock_guard<std::mutex> lock(*mu_);
    pending_.clear();
    senders_.clear();
    num_messages_ = 0;
    for (const auto& e : entries) {
      auto [it, inserted] = pending_.try_emplace(e.vid, e);
      if (!inserted) it->second.value = combine(it->second.value, e.value);
      ++num_messages_;
    }
  }

 private:
  mutable std::unique_ptr<std::mutex> mu_;
  std::unordered_map<VertexId, UpdateEntry<V>> pending_;
  uint64_t num_messages_ = 0;
  std::unordered_set<FragmentId> senders_;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_MESSAGE_H_
