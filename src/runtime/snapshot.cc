#include "runtime/snapshot.h"

#include "util/logging.h"

namespace grape {

CheckpointCoordinator::CheckpointCoordinator(uint32_t num_workers)
    : num_workers_(num_workers), snapshotted_token_(num_workers, 0) {}

uint64_t CheckpointCoordinator::StartCheckpoint() {
  MutexLock lock(mu_);
  current_ = next_token_++;
  return current_;
}

uint64_t CheckpointCoordinator::current_token() const {
  MutexLock lock(mu_);
  return current_;
}

bool CheckpointCoordinator::ShouldSnapshot(FragmentId w, uint64_t token) {
  if (token == 0) return false;
  MutexLock lock(mu_);
  GRAPE_DCHECK(w < num_workers_);
  if (snapshotted_token_[w] >= token) return false;  // already held the token
  snapshotted_token_[w] = token;
  return true;
}

bool CheckpointCoordinator::HasSnapshotted(FragmentId w, uint64_t token) const {
  MutexLock lock(mu_);
  return snapshotted_token_[w] >= token;
}

void CheckpointCoordinator::NoteLateMessage(FragmentId w, uint64_t token) {
  MutexLock lock(mu_);
  GRAPE_DCHECK(w < num_workers_);
  if (token != late_token_) {
    late_token_ = token;
    late_count_ = 0;
  }
  ++late_count_;
}

bool CheckpointCoordinator::Complete(uint64_t token) const {
  MutexLock lock(mu_);
  for (uint64_t t : snapshotted_token_) {
    if (t < token) return false;
  }
  return true;
}

uint64_t CheckpointCoordinator::late_messages(uint64_t token) const {
  MutexLock lock(mu_);
  return token == late_token_ ? late_count_ : 0;
}

}  // namespace grape
