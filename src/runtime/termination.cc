#include "runtime/termination.h"

namespace grape {

TerminationDetector::TerminationDetector(uint32_t num_workers) {
  inactive_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    inactive_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void TerminationDetector::SetActive(FragmentId w) {
  inactive_[w]->store(false, std::memory_order_release);
}

void TerminationDetector::SetInactive(FragmentId w) {
  inactive_[w]->store(true, std::memory_order_release);
}

bool TerminationDetector::IsInactive(FragmentId w) const {
  return inactive_[w]->load(std::memory_order_acquire);
}

bool TerminationDetector::AllInactive() const {
  for (const auto& f : inactive_) {
    if (!f->load(std::memory_order_acquire)) return false;
  }
  return true;
}

bool TerminationDetector::TryTerminate(const InFlightCounter& inflight) {
  ++probes_;
  // Phase 1: the `inactive` census. In-flight messages would re-activate a
  // worker, so quiescence must hold as well.
  if (!AllInactive() || !inflight.Quiescent()) return false;
  // Phase 2: `terminate` broadcast; each worker acks iff still inactive.
  // (A message delivered between the phases flips its target to active,
  // which models that worker answering `wait`.)
  if (!AllInactive() || !inflight.Quiescent()) return false;
  stop_.store(true, std::memory_order_release);
  return true;
}

}  // namespace grape
