#include "runtime/termination.h"

namespace grape {

TerminationDetector::TerminationDetector(uint32_t num_workers) {
  inactive_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    inactive_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void TerminationDetector::SetActive(FragmentId w) {
  // order: release — the activity that caused the flip (message delivery,
  // round start) must be visible to a probe that reads this flag.
  inactive_[w]->store(false, std::memory_order_release);
}

void TerminationDetector::SetInactive(FragmentId w) {
  // order: release — the worker's drained-buffer state happens-before a
  // probe's acquire read of the flag.
  inactive_[w]->store(true, std::memory_order_release);
}

bool TerminationDetector::IsInactive(FragmentId w) const {
  // order: acquire pairs with SetActive/SetInactive release stores.
  return inactive_[w]->load(std::memory_order_acquire);
}

bool TerminationDetector::AllInactive() const {
  for (const auto& f : inactive_) {
    // order: acquire — see IsInactive; the census must observe the state
    // each worker published with its flag.
    if (!f->load(std::memory_order_acquire)) return false;
  }
  return true;
}

bool TerminationDetector::TryTerminate(const InFlightCounter& inflight) {
  ++probes_;
  // Phase 1: the `inactive` census. In-flight messages would re-activate a
  // worker, so quiescence must hold as well.
  if (!AllInactive() || !inflight.Quiescent()) return false;
  // Phase 2: `terminate` broadcast; each worker acks iff still inactive.
  // (A message delivered between the phases flips its target to active,
  // which models that worker answering `wait`.)
  if (!AllInactive() || !inflight.Quiescent()) return false;
  // order: release pairs with ShouldStop's acquire — the successful probe's
  // observations happen-before any worker acting on the stop.
  stop_.store(true, std::memory_order_release);
  return true;
}

}  // namespace grape
