// Copyright 2026 The GRAPE+ Reproduction Authors.
// Worklists for the barrier-free asynchronous engine (core/async_engine.h):
//
//   ChunkedWorklist — per-lane chunked FIFOs of uint32 items with
//     atomic-flag dedup and chunk-granular work stealing, the Galois
//     AsyncSet / dChunkedFIFO scheduling pattern: an item is queued at most
//     once (PushUnique), each lane serves its own thread FIFO, and an empty
//     lane steals a whole chunk from a victim so stolen work keeps locality.
//     The queue is a *fast path*, not a correctness structure: the async
//     engine falls back to a global eligibility scan on every hub wake, so
//     a racily dropped or stale entry only delays work by one notify.
//
//   BucketedWorklist<T> — single-consumer delta-stepping buckets: items
//     carry a priority, Push files them into bucket floor(priority / delta),
//     PopBatch serves the lowest non-empty bucket first. Used for the
//     priority formulation of SSSP/BFS (PrioritizedProgram in core/pie.h):
//     lower tentative distances relax first, cutting wasted re-relaxations.
//     Scheduling order is a heuristic only — monotone-min programs stay
//     correct under any order — so out-of-range priorities are clamped into
//     the nearest bucket instead of growing the ring without bound.
#ifndef GRAPEPLUS_RUNTIME_WORKLIST_H_
#define GRAPEPLUS_RUNTIME_WORKLIST_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "util/common.h"
#include "util/logging.h"

namespace grape::obs {
class Counter;
}  // namespace grape::obs

namespace grape {

/// Per-lane chunked FIFO with atomic-flag dedup and chunk stealing. Items
/// are small dense ids (the async engine queues virtual-worker ids). All
/// methods are thread-safe; Pop/Steal take the calling lane's id so pushes
/// of rescheduled work stay lane-local.
class ChunkedWorklist {
 public:
  /// Items per chunk — the stealing granularity (Galois uses 8..64; work
  /// here is coarse virtual-worker rounds, so the smaller end suffices).
  static constexpr uint32_t kChunkItems = 16;

  /// `num_lanes` serving threads, items in [0, num_items).
  ChunkedWorklist(uint32_t num_lanes, uint32_t num_items);
  ~ChunkedWorklist();
  GRAPE_DISALLOW_COPY_AND_ASSIGN(ChunkedWorklist);

  /// Queues `item` on `lane` unless it is already queued anywhere (the
  /// AsyncSet dedup: one atomic flag per item). Returns whether it pushed.
  bool PushUnique(uint32_t lane, uint32_t item);

  /// Pops the oldest item of `lane`'s own FIFO; clears the item's queued
  /// flag (it may be re-pushed immediately). Returns false when empty.
  bool Pop(uint32_t lane, uint32_t* item);

  /// Steals one whole chunk from another lane into `lane`, then pops from
  /// it. Returns false when every other lane is empty too.
  bool Steal(uint32_t lane, uint32_t* item);

  /// Approximate: true when no lane holds items (exact once all producers
  /// are quiescent).
  bool Empty() const {
    // order: acquire pairs with the release increments/decrements below so
    // an empty read after quiescence observes the final queue state.
    return size_.load(std::memory_order_acquire) == 0;
  }
  uint64_t size() const {
    // order: acquire — see Empty().
    return size_.load(std::memory_order_acquire);
  }

  uint64_t pushes() const {
    // order: relaxed — monotone telemetry counter.
    return pushes_.load(std::memory_order_relaxed);
  }
  uint64_t steals() const {
    // order: relaxed — monotone telemetry counter.
    return steals_.load(std::memory_order_relaxed);
  }
  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }

 private:
  /// One fixed-capacity block of items; [begin, end) are live.
  struct Chunk {
    std::array<uint32_t, kChunkItems> items;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  /// Cache-line aligned: neighbouring lanes' locks must not false-share.
  struct alignas(64) Lane {
    mutable SpinLock mu;
    std::deque<Chunk> chunks GUARDED_BY(mu);
  };

  bool PopLocal(uint32_t lane, uint32_t* item);

  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Queued flag per item (the dedup of Galois' AsyncSet).
  std::unique_ptr<std::atomic<bool>[]> queued_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> pushes_{0};
  std::atomic<uint64_t> steals_{0};
  // Observability: depth gauge via a snapshot callback, push/steal counters
  // through the registry (obs/metrics.h).
  uint64_t metrics_callback_ = 0;
  obs::Counter* push_counter_ = nullptr;
  obs::Counter* steal_counter_ = nullptr;
};

/// Single-consumer delta-stepping buckets. Not thread-safe: the async
/// engine keeps one per virtual worker, touched only while that worker's
/// round claim is held (the same exclusivity discipline as program state).
template <typename T>
class BucketedWorklist {
 public:
  /// Bound on the live bucket window. Priorities past the window clamp into
  /// the last bucket — they run later than ideal, never incorrectly.
  static constexpr size_t kMaxBuckets = 4096;

  explicit BucketedWorklist(double delta = 1.0) { set_delta(delta); }

  /// Bucket width; non-positive/NaN widths degrade to a single FIFO bucket.
  void set_delta(double delta) { delta_ = delta > 0.0 ? delta : 0.0; }
  double delta() const { return delta_; }

  void Push(double priority, const T& item) {
    size_t abs = BucketOf(priority);
    if (buckets_.empty()) {
      base_bucket_ = abs;
    } else if (abs < base_bucket_) {
      // Below the current window: grow it downward so lower priorities
      // still sort first (the first push may well carry a high priority).
      // Bounded — if growth would exceed the window cap, collapse into the
      // current floor bucket instead; early scheduling is always safe for
      // the monotone programs this orders.
      size_t grow = base_bucket_ - abs;
      const size_t room = kMaxBuckets - buckets_.size();
      if (grow > room) grow = room;
      for (size_t i = 0; i < grow; ++i) buckets_.emplace_front();
      base_bucket_ -= grow;
      if (abs < base_bucket_) abs = base_bucket_;
    }
    const size_t offset = std::min(abs - base_bucket_, kMaxBuckets - 1);
    if (offset >= buckets_.size()) buckets_.resize(offset + 1);
    buckets_[offset].push_back(item);
    ++size_;
  }

  /// Moves up to `max_n` items of the *lowest* non-empty bucket into `out`
  /// (appended); never crosses a bucket boundary, so a batch is priority-
  /// homogeneous up to delta. Order within a bucket is unspecified.
  /// Returns the number of items delivered.
  size_t PopBatch(size_t max_n, std::vector<T>* out) {
    if (size_ == 0 || max_n == 0) return 0;
    while (!buckets_.empty() && buckets_.front().empty()) {
      buckets_.pop_front();
      ++base_bucket_;
    }
    GRAPE_DCHECK(!buckets_.empty());
    std::vector<T>& b = buckets_.front();
    size_t taken = 0;
    while (taken < max_n && !b.empty()) {
      out->push_back(std::move(b.back()));
      b.pop_back();
      --size_;
      ++taken;
    }
    if (size_ == 0) {
      buckets_.clear();
      base_bucket_ = 0;
    }
    return taken;
  }

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void Clear() {
    buckets_.clear();
    base_bucket_ = 0;
    size_ = 0;
  }

 private:
  size_t BucketOf(double priority) const {
    if (delta_ <= 0.0 || !(priority > 0.0)) return 0;  // NaN-safe
    const double b = priority / delta_;
    if (b >= static_cast<double>(kMaxBuckets)) return kMaxBuckets - 1;
    return static_cast<size_t>(b);
  }

  double delta_ = 1.0;
  size_t size_ = 0;
  /// Absolute bucket index of buckets_.front().
  size_t base_bucket_ = 0;
  std::deque<std::vector<T>> buckets_;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_WORKLIST_H_
