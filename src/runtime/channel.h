// Copyright 2026 The GRAPE+ Reproduction Authors.
// Point-to-point push-based channels for the threaded engine (Section 3:
// "a worker P_i can send a message M(i,j) directly to worker P_j ... P_j can
// receive messages at any time"), plus global in-flight accounting used for
// exact BSP barriers and termination detection.
#ifndef GRAPEPLUS_RUNTIME_CHANNEL_H_
#define GRAPEPLUS_RUNTIME_CHANNEL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "runtime/message.h"
#include "util/common.h"
#include "util/sync.h"

namespace grape {

/// Counts messages sent but not yet folded into a destination buffer.
/// `Quiescent()` together with all-buffers-empty implies global quiescence.
class InFlightCounter {
 public:
  // order: acq_rel — a send must be visible to any quiescence probe that
  // observes the matching deliver (the probe's acquire pairs with these).
  void OnSend(uint64_t n = 1) { count_.fetch_add(n, std::memory_order_acq_rel); }
  void OnDeliver(uint64_t n = 1) {
    // order: acq_rel — see OnSend; the decrement publishes the delivery.
    count_.fetch_sub(n, std::memory_order_acq_rel);
  }
  // order: acquire pairs with OnSend/OnDeliver so a zero read means every
  // preceding delivery's effects are visible to the terminating probe.
  bool Quiescent() const { return count_.load(std::memory_order_acquire) == 0; }
  // order: acquire — same pairing as Quiescent().
  uint64_t count() const { return count_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// A notification hub: worker threads block here when they have no runnable
/// virtual worker; message delivery and global state changes ring the bell.
class NotifyHub {
 public:
  /// Wakes all waiters.
  void NotifyAll() {
    MutexLock lock(mu_);
    ++epoch_;
    cv_.NotifyAll();
  }

  /// Blocks until notified after `seen_epoch`, or `timeout_ms` elapses.
  /// Returns the current epoch.
  uint64_t WaitFor(uint64_t seen_epoch, int64_t timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    MutexLock lock(mu_);
    while (epoch_ == seen_epoch) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    return epoch_;
  }

  /// Sub-millisecond-precision timed wait: blocks until notified after
  /// `seen_epoch` or `seconds` elapses (clamped to >= 0). The threaded
  /// engine sleeps exactly until the earliest worker wake deadline with
  /// this, instead of polling on a coarse capped timeout.
  uint64_t WaitForSeconds(uint64_t seen_epoch, double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(seconds, 0.0)));
    MutexLock lock(mu_);
    while (epoch_ == seen_epoch) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    return epoch_;
  }

  /// Untimed wait: blocks until notified after `seen_epoch`. Callers must
  /// guarantee that every state change they care about rings the hub.
  uint64_t Wait(uint64_t seen_epoch) {
    MutexLock lock(mu_);
    while (epoch_ == seen_epoch) cv_.Wait(mu_);
    return epoch_;
  }

  uint64_t Epoch() {
    MutexLock lock(mu_);
    return epoch_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_RUNTIME_CHANNEL_H_
