// Copyright 2026 The GRAPE+ Reproduction Authors.
// Wall-clock tracer: per-thread fixed-capacity ring buffers of spans,
// recorded by both engines behind a near-zero-cost-when-off guard and
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or rendered as the same ASCII Gantt the sim engine's
// virtual-time traces use — one span stream, two renderers, so sim and
// threaded runs read identically.
//
// Cost model (the overhead contract of docs/OBSERVABILITY.md):
//   * disabled (default): every Record()/scope constructor is one relaxed
//     atomic bool load — no clock read, no allocation, no branch beyond the
//     guard. This is why span sites can stay compiled into release builds.
//   * enabled: a steady_clock read plus one ring slot write under an
//     uncontended per-thread spinlock. Rings are fixed capacity
//     (overwrite-oldest), so tracing never allocates on the hot path and
//     memory is bounded at capacity * threads regardless of run length.
//
// Ring buffers are owned by the Tracer (not thread_local storage): a pool
// thread that exits leaves its ring behind, so Collect() after the pool
// joins still sees every span of the run.
#ifndef GRAPEPLUS_OBS_TRACE_H_
#define GRAPEPLUS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"
#include "util/sync.h"

namespace grape::obs {

/// What a span measures. Extend freely — the exporters render unknown kinds
/// by name, nothing switches on the full set.
enum class TraceKind : uint8_t {
  kSuperstep,        // one BSP barrier-to-barrier interval (master lane)
  kPEval,            // a worker's PEval round
  kIncEval,          // a worker's IncEval round
  kBufferDrain,      // draining a worker's update buffer before IncEval
  kBarrierWait,      // a physical thread parked at the superstep barrier
  kIdleWait,         // a physical thread parked at the async notify hub
  kChunkAcquire,     // out-of-core chunk marked resident
  kChunkRelease,     // out-of-core chunk dropped
  kDirectionDecide,  // push/pull decision of a round
  kPhase,            // coarse pipeline phase (ingest / partition / run)
  kSteal,            // async worklist chunk steal (thread lane; arg0 = worker)
};

const char* TraceKindName(TraceKind kind);

/// One recorded event. Duration events have dur_ns >= 0; instant events
/// (decisions, chunk transitions) carry dur_ns < 0. `track` is the lane the
/// event belongs to: virtual workers use their FragmentId, physical threads
/// kThreadLaneBase + tid, engine-global lanes the constants below.
struct TraceEvent {
  int64_t start_ns = 0;  // since the tracer's Enable() epoch
  int64_t dur_ns = -1;
  uint32_t track = 0;
  TraceKind kind = TraceKind::kPhase;
  uint64_t arg0 = 0;  // kind-specific (round, chunk index, direction, ...)
  uint64_t arg1 = 0;
  const char* name = nullptr;  // static-storage label; null = kind name
};

class Tracer {
 public:
  static constexpr uint32_t kThreadLaneBase = 1u << 16;  // physical threads
  static constexpr uint32_t kIoLane = 1u << 17;          // chunk residency
  static constexpr uint32_t kMasterLane = (1u << 17) + 1;  // supersteps
  static constexpr size_t kDefaultCapacity = 1u << 14;   // events per thread

  static Tracer& Global();

  /// Arms the tracer: resets the epoch, drops previously collected rings
  /// and starts recording into fresh per-thread rings of `capacity` events.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();  // stops recording; collected events remain readable

  /// The fast guard: relaxed load, safe from any thread.
  static bool enabled() {
    // order: relaxed — best-effort on/off guard; spans racing the flip may
    // record or not, and the epoch is published by Enable's mutex instead.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the Enable() epoch (steady clock).
  int64_t NowNs() const;

  /// Copies the event into the calling thread's ring (oldest overwritten
  /// when full). No-op when disabled.
  void Record(const TraceEvent& e);

  /// Convenience: record a completed duration span ending now.
  void RecordSpan(TraceKind kind, uint32_t track, int64_t start_ns,
                  uint64_t arg0 = 0, uint64_t arg1 = 0);
  /// Convenience: record an instant event stamped now.
  void RecordInstant(TraceKind kind, uint32_t track, uint64_t arg0 = 0,
                     uint64_t arg1 = 0);

  /// All recorded events (every ring, including rings of exited threads),
  /// sorted by start time. Safe to call while recording continues; events
  /// recorded concurrently may or may not be included.
  std::vector<TraceEvent> Collect() const;

  /// Events dropped to ring overwrite since Enable().
  uint64_t dropped() const;

 private:
  struct Ring;
  friend struct TracerTls;
  Ring* LocalRing();

  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
  // Bumps on Enable(); invalidates cached rings. Atomic so Record()'s fast
  // path can validate its TLS cache with a relaxed load instead of mu_.
  std::atomic<uint64_t> generation_{0};
  // Written only by Enable() (under mu_), read lock-free by NowNs(): a span
  // recorded while Enable() races gets a nonsense-but-harmless timestamp
  // into a ring the same Enable() is about to drop.
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII duration span: stamps the start on construction (only when the
/// tracer is on — a disabled scope costs one relaxed load) and records on
/// destruction. Args are read at destruction time, so they may be filled
/// after construction via set_args().
class TraceSpanScope {
 public:
  TraceSpanScope(TraceKind kind, uint32_t track, uint64_t arg0 = 0,
                 uint64_t arg1 = 0)
      : track_(track), arg0_(arg0), arg1_(arg1), kind_(kind),
        armed_(Tracer::enabled()) {
    if (armed_) start_ = Tracer::Global().NowNs();
  }
  ~TraceSpanScope() {
    if (armed_) {
      Tracer::Global().RecordSpan(kind_, track_, start_, arg0_, arg1_);
    }
  }
  TraceSpanScope(const TraceSpanScope&) = delete;
  TraceSpanScope& operator=(const TraceSpanScope&) = delete;

  void set_args(uint64_t arg0, uint64_t arg1 = 0) {
    arg0_ = arg0;
    arg1_ = arg1;
  }

 private:
  int64_t start_ = 0;
  uint32_t track_;
  uint64_t arg0_, arg1_;
  TraceKind kind_;
  bool armed_;
};

// ------------------------------------------------------------- exporters ---

/// Chrome trace-event JSON ("trace event format", the subset Perfetto and
/// chrome://tracing load): duration events as ph:"X" with microsecond
/// timestamps, instants as ph:"i", plus thread_name metadata naming each
/// lane. `to_us` scales start/dur values to microseconds (1e-3 for ns
/// events; 1e6 to interpret sim-time seconds as one virtual second = 1 s).
void WriteChromeTrace(const std::vector<TraceEvent>& events, double to_us,
                      std::ostream& os);
Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            double to_us, const std::string& path);

/// ASCII Gantt over the span stream: renders kPEval / kIncEval spans of
/// tracks [0, lanes) — '#' for PEval, the round digit for IncEval — exactly
/// like the sim engine's RunTrace::ToGantt (which now routes through here).
std::string GanttFromEvents(const std::vector<TraceEvent>& events,
                            uint32_t lanes, int width = 96);

}  // namespace grape::obs

#endif  // GRAPEPLUS_OBS_TRACE_H_
