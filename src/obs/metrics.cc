#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"
#include "util/logging.h"

namespace grape::obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

void SetMetricsEnabled(bool on) {
  // order: relaxed — a best-effort kill switch; updates racing the flip may
  // land on either side, which the overhead contract accepts.
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}
bool MetricsEnabled() {
  // order: relaxed — see SetMetricsEnabled; the flag publishes no data.
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- buckets ---

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(BucketLo(b));
      const double hi = static_cast<double>(BucketHi(b));
      if (lo <= 0.0) return 0.0;
      // Geometric interpolation: samples inside a power-of-two bucket are
      // better modelled log-uniform than uniform.
      const double f = (target - static_cast<double>(seen)) /
                       static_cast<double>(buckets[b]);
      return lo * std::pow(hi / lo, std::clamp(f, 0.0, 1.0));
    }
    seen = next;
  }
  return static_cast<double>(BucketHi(kNumBuckets - 1));
}

// ---------------------------------------------------------- thread blocks ---

/// One thread's private cells. The owning thread writes with relaxed
/// load+store (single writer — no RMW); Snapshot() reads relaxed from any
/// thread. Registration/retirement happen under the registry mutex.
struct MetricsRegistry::ThreadBlock {
  explicit ThreadBlock(MetricsRegistry* owner) : reg(owner) {
    // order: relaxed — the block is published to readers via the registry
    // mutex (blocks_ push under mu_), which provides the ordering.
    for (auto& c : cells) c.store(0, std::memory_order_relaxed);
  }
  MetricsRegistry* reg;
  std::array<std::atomic<uint64_t>, kMaxCells> cells;
};

/// Thread-local ownership of one block per (thread, registry) pair, with the
/// destructor retiring the block into its registry. A one-entry cache keeps
/// the common single-registry case at a pointer compare per update. Named
/// (not anonymous-namespace) so the registry can befriend it.
struct TlsBlocks {
  struct Entry {
    MetricsRegistry* reg;
    std::unique_ptr<MetricsRegistry::ThreadBlock> block;
  };
  MetricsRegistry* cached_reg = nullptr;
  MetricsRegistry::ThreadBlock* cached_block = nullptr;
  std::vector<Entry> entries;
  ~TlsBlocks();
};

namespace {
thread_local TlsBlocks g_tls;
}  // namespace

MetricsRegistry::ThreadBlock* MetricsRegistry::LocalBlock() {
  if (g_tls.cached_reg == this) return g_tls.cached_block;
  for (auto& e : g_tls.entries) {
    if (e.reg == this) {
      g_tls.cached_reg = this;
      g_tls.cached_block = e.block.get();
      return e.block.get();
    }
  }
  auto block = std::make_unique<ThreadBlock>(this);
  ThreadBlock* raw = block.get();
  {
    MutexLock lock(mu_);
    blocks_.push_back(raw);
  }
  g_tls.entries.push_back({this, std::move(block)});
  g_tls.cached_reg = this;
  g_tls.cached_block = raw;
  return raw;
}

TlsBlocks::~TlsBlocks() {
  for (auto& e : entries) e.reg->Retire(e.block.get());
}

void MetricsRegistry::Retire(ThreadBlock* block) {
  MutexLock lock(mu_);
  for (uint32_t i = 0; i < next_cell_; ++i) {
    // order: relaxed — the owning thread is exiting; its destructor's
    // happens-before edge into this call orders the final cell values.
    retired_[i] += block->cells[i].load(std::memory_order_relaxed);
  }
  blocks_.erase(std::remove(blocks_.begin(), blocks_.end(), block),
                blocks_.end());
}

void MetricsRegistry::CellAdd(uint32_t cell, uint64_t n) {
  std::atomic<uint64_t>& c = LocalBlock()->cells[cell];
  // order: relaxed — single-writer cell (this thread); Snapshot() tolerates
  // staleness and only needs tear-freedom. No RMW by design (hot path).
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry ---

MetricsRegistry::MetricsRegistry() : retired_(kMaxCells, 0) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: worker threads may outlive static destruction order
  // and must always find the registry alive when they retire their cells.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

void Counter::Add(uint64_t n) {
  if (reg_ == nullptr || !MetricsEnabled()) return;
  reg_->CellAdd(cell_, n);
}

void Histogram::Observe(uint64_t value) {
  if (reg_ == nullptr || !MetricsEnabled()) return;
  const uint32_t b = static_cast<uint32_t>(std::bit_width(value));
  reg_->CellAdd(base_ + b, 1);
  reg_->CellAdd(base_ + HistogramData::kNumBuckets, value);  // sum cell
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    Metric& m = metrics_[it->second];
    GRAPE_CHECK(m.kind == Kind::kCounter)
        << "metric '" << name << "' already registered as a histogram";
    return m.counter.get();
  }
  GRAPE_CHECK(next_cell_ + 1 <= kMaxCells) << "metrics cell space exhausted";
  Metric m;
  m.name = name;
  m.kind = Kind::kCounter;
  m.base = next_cell_;
  next_cell_ += 1;
  m.counter = std::make_unique<Counter>();
  m.counter->reg_ = this;
  m.counter->cell_ = m.base;
  Counter* handle = m.counter.get();
  index_.emplace(name, metrics_.size());
  metrics_.push_back(std::move(m));
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  constexpr uint32_t kHistCells = HistogramData::kNumBuckets + 1;
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    Metric& m = metrics_[it->second];
    GRAPE_CHECK(m.kind == Kind::kHistogram)
        << "metric '" << name << "' already registered as a counter";
    return m.histogram.get();
  }
  GRAPE_CHECK(next_cell_ + kHistCells <= kMaxCells)
      << "metrics cell space exhausted";
  Metric m;
  m.name = name;
  m.kind = Kind::kHistogram;
  m.base = next_cell_;
  next_cell_ += kHistCells;
  m.histogram = std::make_unique<Histogram>();
  m.histogram->reg_ = this;
  m.histogram->base_ = m.base;
  Histogram* handle = m.histogram.get();
  index_.emplace(name, metrics_.size());
  metrics_.push_back(std::move(m));
  return handle;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

uint64_t MetricsRegistry::AddCallback(
    std::function<void(MetricsSnapshot*)> cb) {
  MutexLock lock(mu_);
  const uint64_t handle = next_callback_++;
  callbacks_.emplace_back(handle, std::move(cb));
  return handle;
}

void MetricsRegistry::RemoveCallback(uint64_t handle) {
  MutexLock lock(mu_);
  std::erase_if(callbacks_, [&](const auto& e) { return e.first == handle; });
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  // Fold: retired sums of dead threads + live cells of every registered
  // block. Live cells are racing relaxed stores; any value read is a valid
  // recent total for that shard.
  std::vector<uint64_t> cells(retired_.begin(),
                              retired_.begin() + next_cell_);
  for (const ThreadBlock* b : blocks_) {
    for (uint32_t i = 0; i < next_cell_; ++i) {
      // order: relaxed — racing single-writer stores; any observed value is
      // a valid recent total for that shard (documented contract).
      cells[i] += b->cells[i].load(std::memory_order_relaxed);
    }
  }
  for (const Metric& m : metrics_) {
    if (m.kind == Kind::kCounter) {
      snap.counters[m.name] = cells[m.base];
    } else {
      HistogramData h;
      for (size_t b = 0; b < HistogramData::kNumBuckets; ++b) {
        h.buckets[b] = cells[m.base + b];
        h.count += h.buckets[b];
      }
      h.sum = cells[m.base + HistogramData::kNumBuckets];
      snap.histograms[m.name] = h;
    }
  }
  snap.gauges = gauges_;
  for (const auto& [handle, cb] : callbacks_) cb(&snap);
  return snap;
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(mu_);
  std::fill(retired_.begin(), retired_.end(), 0);
  for (ThreadBlock* b : blocks_) {
    for (uint32_t i = 0; i < next_cell_; ++i) {
      // order: relaxed — a racing owner-thread update may survive the reset
      // into the next epoch; A/B phases quiesce threads around resets.
      b->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  gauges_.clear();
}

// --------------------------------------------------------------- snapshot ---

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, v] : counters) {
    w->Key(name);
    w->Uint(v);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, v] : gauges) {
    w->Key(name);
    w->Double(v);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Uint(h.count);
    w->Key("sum");
    w->Uint(h.sum);
    w->Key("mean");
    w->Double(h.Mean());
    w->Key("p50");
    w->Double(h.Quantile(0.50));
    w->Key("p90");
    w->Double(h.Quantile(0.90));
    w->Key("p99");
    w->Double(h.Quantile(0.99));
    // Non-empty buckets as [lower_bound, count] pairs.
    w->Key("buckets");
    w->BeginArray();
    for (size_t b = 0; b < HistogramData::kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      w->BeginArray();
      w->Uint(HistogramData::BucketLo(b));
      w->Uint(h.buckets[b]);
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

}  // namespace grape::obs
