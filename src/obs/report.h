// Copyright 2026 The GRAPE+ Reproduction Authors.
// RunReport: the one JSON document that carries everything a run produced —
// graph shape, per-run engine stats (rounds, messages, direction telemetry,
// spurious wakeups), and a full metrics snapshot of the global registry
// (which, via its snapshot callbacks, folds in WorkerPool, ChunkedArcSource
// and lid-cache telemetry). Written by `grape_cli --metrics-out=` and
// embedded by bench/stress_ingest into BENCH_ingest.json, where
// tools/check_bench.py validates the section.
#ifndef GRAPEPLUS_OBS_REPORT_H_
#define GRAPEPLUS_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/stats_collector.h"
#include "util/status.h"

namespace grape {
struct Partition;
}  // namespace grape

namespace grape::obs {

/// Schema tag of the emitted document; bump when the layout changes so
/// check_bench.py can reject stale producers.
inline constexpr const char* kRunReportSchema = "grapeplus-runreport-v1";

class RunReport {
 public:
  void SetGraph(uint64_t vertices, uint64_t arcs, uint32_t fragments) {
    vertices_ = vertices;
    arcs_ = arcs;
    fragments_ = fragments;
    have_graph_ = true;
  }

  /// Records one engine run. `engine` is "sim" or "threaded"; wall_seconds
  /// is real time for threaded runs and virtual makespan for sim runs.
  void AddRun(const std::string& name, const std::string& engine,
              const RunStats& stats, bool converged, double wall_seconds);

  /// Serialises the report, embedding a fresh Snapshot() of the global
  /// metrics registry at call time.
  std::string ToJson() const;

  Status WriteFile(const std::string& path) const;

 private:
  struct Run {
    std::string name;
    std::string engine;
    RunStats stats;
    bool converged = false;
    double wall_seconds = 0.0;
  };

  bool have_graph_ = false;
  uint64_t vertices_ = 0;
  uint64_t arcs_ = 0;
  uint32_t fragments_ = 0;
  std::vector<Run> runs_;
};

/// While alive, publishes the partition's aggregate lid-cache counters as
/// `partition.lid_cache.{hits,misses,cached_lids,cached_chunks}` gauges on
/// every snapshot of the global registry. Run-scoped (the partition has no
/// hook of its own to register): create it next to the partition, let it
/// die before the partition does.
class ScopedPartitionMetrics {
 public:
  explicit ScopedPartitionMetrics(const Partition& partition);
  ~ScopedPartitionMetrics();
  ScopedPartitionMetrics(const ScopedPartitionMetrics&) = delete;
  ScopedPartitionMetrics& operator=(const ScopedPartitionMetrics&) = delete;

 private:
  uint64_t handle_;
};

}  // namespace grape::obs

#endif  // GRAPEPLUS_OBS_REPORT_H_
