#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "util/table.h"

namespace grape::obs {

std::atomic<bool> Tracer::enabled_{false};

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSuperstep:
      return "superstep";
    case TraceKind::kPEval:
      return "peval";
    case TraceKind::kIncEval:
      return "inceval";
    case TraceKind::kBufferDrain:
      return "buffer_drain";
    case TraceKind::kBarrierWait:
      return "barrier_wait";
    case TraceKind::kIdleWait:
      return "idle_wait";
    case TraceKind::kChunkAcquire:
      return "chunk_acquire";
    case TraceKind::kChunkRelease:
      return "chunk_release";
    case TraceKind::kDirectionDecide:
      return "direction_decide";
    case TraceKind::kPhase:
      return "phase";
    case TraceKind::kSteal:
      return "steal";
  }
  return "unknown";
}

/// Per-thread ring. The owning thread writes under the spinlock; Collect()
/// takes the same lock, so concurrent collection sees consistent slots.
/// Uncontended lock/unlock is two relaxed-ish atomics — cheap at span
/// granularity, and what keeps Collect() safe mid-run under TSan.
struct Tracer::Ring {
  explicit Ring(size_t capacity) : buf(capacity) {}
  mutable SpinLock mu;
  std::vector<TraceEvent> buf GUARDED_BY(mu);
  size_t head GUARDED_BY(mu) = 0;      // next slot to write
  uint64_t total GUARDED_BY(mu) = 0;   // events ever recorded
};

namespace {

/// Cached (tracer generation -> ring) per thread. The ring itself is owned
/// by the tracer via shared_ptr, so a ring outlives both the thread (tracer
/// keeps it for Collect) and an Enable() reset racing the recording thread
/// (the thread's shared_ptr keeps the old generation's ring alive until the
/// cache notices the bump).
struct TracerTlsCache {
  uint64_t generation = 0;
  std::shared_ptr<void> ring;  // type-erased Tracer::Ring
};
thread_local TracerTlsCache g_trace_tls;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* g = new Tracer();  // leaked: threads may record at exit
  return *g;
}

void Tracer::Enable(size_t capacity) {
  MutexLock lock(mu_);
  rings_.clear();
  capacity_ = std::max<size_t>(capacity, 16);
  // order: relaxed — the bump only invalidates TLS ring caches; a stale
  // read routes a racing Record into a dropped ring, which is harmless.
  generation_.fetch_add(1, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  // order: relaxed — see enabled(); no data is published through the flag.
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  // order: relaxed — see enabled().
  enabled_.store(false, std::memory_order_relaxed);
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Ring* Tracer::LocalRing() {
  MutexLock lock(mu_);
  // order: relaxed — mu_ (held here and in Enable) orders generation_
  // against rings_/capacity_; the atomic exists for Record's fast path.
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (g_trace_tls.ring != nullptr && g_trace_tls.generation == gen) {
    return static_cast<Ring*>(g_trace_tls.ring.get());
  }
  auto ring = std::make_shared<Ring>(capacity_);
  rings_.push_back(ring);
  g_trace_tls.generation = gen;
  g_trace_tls.ring = ring;
  return ring.get();
}

void Tracer::Record(const TraceEvent& e) {
  if (!enabled()) return;
  // Fast path: a relaxed generation load validates the cached ring without
  // touching mu_. A momentarily stale read only risks writing into a ring
  // of a previous generation — harmless, the thread's shared_ptr keeps it
  // alive and its events are discarded with it.
  Ring* ring;
  if (g_trace_tls.ring != nullptr &&
      g_trace_tls.generation ==
          // order: relaxed — a stale generation read is explicitly
          // tolerated (see above); the slow path re-reads under mu_.
          generation_.load(std::memory_order_relaxed)) {
    ring = static_cast<Ring*>(g_trace_tls.ring.get());
  } else {
    ring = LocalRing();
  }
  SpinLockGuard guard(ring->mu);
  ring->buf[ring->head] = e;
  ring->head = (ring->head + 1) % ring->buf.size();
  ++ring->total;
}

void Tracer::RecordSpan(TraceKind kind, uint32_t track, int64_t start_ns,
                        uint64_t arg0, uint64_t arg1) {
  TraceEvent e;
  e.start_ns = start_ns;
  e.dur_ns = std::max<int64_t>(0, NowNs() - start_ns);
  e.track = track;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
  Record(e);
}

void Tracer::RecordInstant(TraceKind kind, uint32_t track, uint64_t arg0,
                           uint64_t arg1) {
  TraceEvent e;
  e.start_ns = NowNs();
  e.dur_ns = -1;
  e.track = track;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
  Record(e);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    SpinLockGuard guard(ring->mu);
    const size_t n = ring->buf.size();
    const size_t held = std::min<uint64_t>(ring->total, n);
    // Oldest-first: when the ring wrapped, the oldest held event sits at
    // head (the next slot to be overwritten).
    const size_t first = ring->total > n ? ring->head : 0;
    for (size_t i = 0; i < held; ++i) {
      out.push_back(ring->buf[(first + i) % n]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    SpinLockGuard guard(ring->mu);
    const uint64_t n = ring->buf.size();
    if (ring->total > n) dropped += ring->total - n;
  }
  return dropped;
}

// ------------------------------------------------------------- exporters ---

namespace {

/// Human lane name for the thread_name metadata events.
std::string LaneName(uint32_t track) {
  if (track == Tracer::kIoLane) return "chunk io";
  if (track == Tracer::kMasterLane) return "supersteps";
  if (track >= Tracer::kThreadLaneBase && track < Tracer::kIoLane) {
    return "thread " + std::to_string(track - Tracer::kThreadLaneBase);
  }
  return "worker " + std::to_string(track);
}

void WriteEventArgs(JsonWriter* w, const TraceEvent& e) {
  w->Key("args");
  w->BeginObject();
  switch (e.kind) {
    case TraceKind::kPEval:
    case TraceKind::kIncEval:
      w->Key("round");
      w->Uint(e.arg0);
      w->Key("direction");
      w->String(e.arg1 == 1 ? "pull" : "push");
      break;
    case TraceKind::kSuperstep:
      w->Key("superstep");
      w->Uint(e.arg0);
      break;
    case TraceKind::kBufferDrain:
      w->Key("updates");
      w->Uint(e.arg0);
      break;
    case TraceKind::kChunkAcquire:
    case TraceKind::kChunkRelease:
      w->Key("chunk");
      w->Uint(e.arg0);
      w->Key("arcs");
      w->Uint(e.arg1);
      break;
    case TraceKind::kDirectionDecide:
      w->Key("direction");
      w->String(e.arg0 == 1 ? "pull" : "push");
      w->Key("signal");
      w->Uint(e.arg1);
      break;
    case TraceKind::kSteal:
      w->Key("worker");
      w->Uint(e.arg0);
      break;
    default:
      w->Key("arg0");
      w->Uint(e.arg0);
      w->Key("arg1");
      w->Uint(e.arg1);
      break;
  }
  w->EndObject();
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events, double to_us,
                      std::ostream& os) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  // Metadata first: name every lane that appears.
  std::vector<uint32_t> tracks;
  for (const TraceEvent& e : events) tracks.push_back(e.track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  for (const uint32_t t : tracks) {
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Uint(0);
    w.Key("tid");
    w.Uint(t);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(LaneName(t));
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name != nullptr ? e.name : TraceKindName(e.kind));
    w.Key("cat");
    w.String("grape");
    w.Key("ph");
    w.String(e.dur_ns >= 0 ? "X" : "i");
    if (e.dur_ns < 0) {
      w.Key("s");
      w.String("t");  // instant scope: thread
    }
    w.Key("pid");
    w.Uint(0);
    w.Key("tid");
    w.Uint(e.track);
    w.Key("ts");
    w.Double(static_cast<double>(e.start_ns) * to_us);
    if (e.dur_ns >= 0) {
      w.Key("dur");
      w.Double(static_cast<double>(e.dur_ns) * to_us);
    }
    WriteEventArgs(&w, e);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << w.str();
}

Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            double to_us, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  WriteChromeTrace(events, to_us, os);
  os.flush();
  if (!os) return Status::IoError("short write to " + path);
  return Status::OK();
}

std::string GanttFromEvents(const std::vector<TraceEvent>& events,
                            uint32_t lanes, int width) {
  std::vector<GanttSpan> spans;
  double t_end = 0.0;
  for (const TraceEvent& e : events) {
    if (e.track >= lanes || e.dur_ns < 0) continue;
    if (e.kind != TraceKind::kPEval && e.kind != TraceKind::kIncEval) {
      continue;
    }
    const double start = static_cast<double>(e.start_ns);
    const double end = start + static_cast<double>(e.dur_ns);
    const char glyph = e.kind == TraceKind::kPEval
                           ? '#'
                           : static_cast<char>('0' + (e.arg0 % 10));
    spans.push_back(
        GanttSpan{static_cast<int>(e.track), start, end, glyph});
    t_end = std::max(t_end, end);
  }
  return RenderGantt(spans, static_cast<int>(lanes), t_end, width);
}

}  // namespace grape::obs
