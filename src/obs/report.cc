#include "obs/report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "partition/fragment.h"

namespace grape::obs {

void RunReport::AddRun(const std::string& name, const std::string& engine,
                       const RunStats& stats, bool converged,
                       double wall_seconds) {
  Run r;
  r.name = name;
  r.engine = engine;
  r.stats = stats;
  r.converged = converged;
  r.wall_seconds = wall_seconds;
  runs_.push_back(std::move(r));
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRunReportSchema);
  if (have_graph_) {
    w.Key("graph");
    w.BeginObject();
    w.Key("vertices");
    w.Uint(vertices_);
    w.Key("arcs");
    w.Uint(arcs_);
    w.Key("fragments");
    w.Uint(fragments_);
    w.EndObject();
  }
  w.Key("runs");
  w.BeginArray();
  for (const Run& r : runs_) {
    w.BeginObject();
    w.Key("name");
    w.String(r.name);
    w.Key("engine");
    w.String(r.engine);
    w.Key("converged");
    w.Bool(r.converged);
    w.Key("wall_seconds");
    w.Double(r.wall_seconds);
    w.Key("makespan");
    w.Double(r.stats.makespan);
    w.Key("workers");
    w.Uint(r.stats.workers.size());
    w.Key("rounds");
    w.Uint(r.stats.total_rounds());
    w.Key("straggler_rounds");
    w.Uint(r.stats.straggler_rounds());
    w.Key("msgs");
    w.Uint(r.stats.total_msgs());
    w.Key("bytes");
    w.Uint(r.stats.total_bytes());
    w.Key("busy_seconds");
    w.Double(r.stats.total_busy());
    w.Key("idle_seconds");
    w.Double(r.stats.total_idle());
    w.Key("suspended_seconds");
    w.Double(r.stats.total_suspended());
    w.Key("push_rounds");
    w.Uint(r.stats.total_push_rounds());
    w.Key("pull_rounds");
    w.Uint(r.stats.total_pull_rounds());
    w.Key("direction_switches");
    w.Uint(r.stats.total_direction_switches());
    w.Key("spurious_wakeups");
    w.Uint(r.stats.spurious_wakeups);
    w.Key("threads");
    w.Uint(r.stats.threads.size());
    w.Key("thread_busy_seconds");
    w.Double(r.stats.total_thread_busy());
    w.Key("thread_idle_seconds");
    w.Double(r.stats.total_thread_idle());
    w.Key("supersteps");
    w.Uint(r.stats.total_supersteps());
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.Raw(MetricsRegistry::Global().Snapshot().ToJson());
  w.EndObject();
  return w.Take();
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os << ToJson() << "\n";
  os.flush();
  if (!os) return Status::IoError("short write to " + path);
  return Status::OK();
}

ScopedPartitionMetrics::ScopedPartitionMetrics(const Partition& partition) {
  handle_ = MetricsRegistry::Global().AddCallback(
      [&partition](MetricsSnapshot* snap) {
        const LidCacheStats s = partition.TotalLidCacheStats();
        snap->gauges["partition.lid_cache.hits"] =
            static_cast<double>(s.hits);
        snap->gauges["partition.lid_cache.misses"] =
            static_cast<double>(s.misses);
        snap->gauges["partition.lid_cache.cached_lids"] =
            static_cast<double>(s.cached_lids);
        snap->gauges["partition.lid_cache.cached_chunks"] =
            static_cast<double>(s.cached_chunks);
      });
}

ScopedPartitionMetrics::~ScopedPartitionMetrics() {
  MetricsRegistry::Global().RemoveCallback(handle_);
}

}  // namespace grape::obs
