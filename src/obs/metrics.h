// Copyright 2026 The GRAPE+ Reproduction Authors.
// Metrics registry: named counters, gauges and log-bucketed histograms with
// per-thread sharded cells, aggregated only at Snapshot() time.
//
// Design rules (the "overhead contract" of docs/OBSERVABILITY.md):
//
//   * No atomic read-modify-write on the hot path. Every counter/histogram
//     cell is written by exactly one thread; Add() is a relaxed load +
//     relaxed store (a plain add on every target ISA), which a concurrent
//     Snapshot() may observe slightly stale but never torn. This is what
//     "per-thread sharded" buys over a shared std::atomic fetch_add.
//   * The slow path (first touch of the registry by a thread, registering
//     its cell block) takes the registry mutex once per thread, not per
//     update. A thread that exits folds its cells into a retired sum under
//     the same mutex, so totals survive thread churn (engine pools are
//     created per run).
//   * Counters and histograms are disabled globally via SetMetricsEnabled —
//     a single relaxed bool load per update — so an A/B of "metrics on vs
//     off" measures the full instrumentation cost (the bench gate holds it
//     under 3% on the smoke stress profile).
//
// The registry alone only sees what is pushed through its own handles. The
// pre-existing ad-hoc telemetry re-registers via snapshot callbacks:
// components with clear ownership (WorkerPool, ChunkedArcSource) hook
// AddCallback in their constructors and publish their internal atomics as
// gauges when a snapshot is taken; run-scoped telemetry (RunStats, lid
// caches of a Partition) is published by RunReport / ScopedPartitionMetrics
// (obs/report.h). Either way, one Snapshot() sees everything.
//
// A MetricsRegistry must outlive every thread that updates metrics created
// from it (thread exit calls back into the registry to retire its cells).
// The process-wide Global() registry satisfies this trivially; tests using
// local registries must join their threads first.
#ifndef GRAPEPLUS_OBS_METRICS_H_
#define GRAPEPLUS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.h"

namespace grape::obs {

/// Global kill-switch for counter/histogram updates (gauges and snapshot
/// callbacks are snapshot-time only and unaffected). Default: enabled.
void SetMetricsEnabled(bool on);
bool MetricsEnabled();

/// Aggregated log-bucketed histogram. Bucket b holds values whose
/// bit_width is b: bucket 0 = {0}, bucket b>=1 = [2^(b-1), 2^b).
struct HistogramData {
  static constexpr size_t kNumBuckets = 65;  // bit_width of uint64 is 0..64

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  static uint64_t BucketLo(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t BucketHi(size_t b) {  // inclusive
    return b == 0 ? 0 : (uint64_t{1} << (b - 1)) * 2 - 1;
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate with geometric interpolation inside the bucket —
  /// exact to within the bucket's factor-of-two bounds (asserted against
  /// exact references in tests/obs_test.cc). q in [0, 1].
  double Quantile(double q) const;
};

class MetricsRegistry;

/// Named monotonic counter. Handle is a stable pointer owned by the
/// registry; copy it freely, Add() from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1);
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  uint32_t cell_ = 0;  // this counter's slot in every thread block
};

/// Named log-bucketed histogram; Observe() records one uint64 sample
/// (typically nanoseconds) into the observing thread's cells.
class Histogram {
 public:
  void Observe(uint64_t value);

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  uint32_t base_ = 0;  // first of kNumBuckets+1 cells (buckets, then sum)
};

/// One aggregated view of everything the registry knows: folded counter and
/// histogram cells (live threads + retired), gauge values, and whatever the
/// registered snapshot callbacks publish. Callbacks may add to any map.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  void WriteJson(class JsonWriter* w) const;
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Global();

  /// Returns the counter/histogram registered under `name`, creating it on
  /// first use. Handles stay valid for the registry's lifetime; repeated
  /// calls with one name return the same handle.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Last-write-wins named gauge (absolute values: residency, rates).
  void SetGauge(const std::string& name, double value);

  /// Registers a snapshot callback — the re-registration hook for ad-hoc
  /// component counters. Invoked under the registry mutex during every
  /// Snapshot(); must not call back into the registry. Returns a handle for
  /// RemoveCallback (call it before the component dies).
  uint64_t AddCallback(std::function<void(MetricsSnapshot*)> cb);
  void RemoveCallback(uint64_t handle);

  /// Folds all shards (live thread blocks + retired cells) and gauges,
  /// then runs the callbacks. Safe while other threads keep updating —
  /// concurrent updates land in this snapshot or the next, never tear.
  MetricsSnapshot Snapshot();

  /// Zeroes every counter/histogram cell and gauge (not the name space or
  /// the callbacks). For A/B phases and tests.
  void ResetValues();

  /// Cells per thread block; counters take 1, histograms kNumBuckets + 1.
  static constexpr uint32_t kMaxCells = 8192;

 private:
  friend class Counter;
  friend class Histogram;
  friend struct TlsBlocks;  // thread-exit retirement (metrics.cc)
  struct ThreadBlock;

  /// Hot path: the calling thread's cell block (registered on first use).
  ThreadBlock* LocalBlock();
  void Retire(ThreadBlock* block);  // fold + unregister on thread exit

  void CellAdd(uint32_t cell, uint64_t n);

  enum class Kind : uint8_t { kCounter, kHistogram };
  struct Metric {
    std::string name;
    Kind kind;
    uint32_t base;  // first cell
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
  };

  Mutex mu_;
  std::vector<Metric> metrics_ GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> index_ GUARDED_BY(mu_);
  uint32_t next_cell_ GUARDED_BY(mu_) = 0;
  /// Live thread blocks (block registration / retirement).
  std::vector<ThreadBlock*> blocks_ GUARDED_BY(mu_);
  /// Folded cells of dead threads.
  std::vector<uint64_t> retired_ GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ GUARDED_BY(mu_);
  std::vector<std::pair<uint64_t, std::function<void(MetricsSnapshot*)>>>
      callbacks_ GUARDED_BY(mu_);
  uint64_t next_callback_ GUARDED_BY(mu_) = 1;
};

}  // namespace grape::obs

#endif  // GRAPEPLUS_OBS_METRICS_H_
