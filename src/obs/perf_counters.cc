#include "obs/perf_counters.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define GRAPEPLUS_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace grape::obs {

#if GRAPEPLUS_HAVE_PERF_EVENT

namespace {

const uint64_t kConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES,
    PERF_COUNT_HW_CACHE_MISSES,
};

int OpenCounter(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;               // works without CAP_PERFMON
  attr.exclude_hv = 1;
  attr.inherit = 1;  // include child threads spawned inside the phase
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

bool PerfAvailable() {
  static const bool available = [] {
    const int fd = OpenCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return available;
}

PerfCounterGroup::PerfCounterGroup() {
  for (int& fd : fds_) fd = -1;
  if (!PerfAvailable()) return;
  // Independent fds rather than a single PERF_FORMAT_GROUP leader: group
  // reads share one scheduling slot and fail together when the PMU is
  // over-committed, while independent counters multiplex gracefully. The
  // phase durations measured here (whole pipeline stages) dwarf any
  // multiplexing skew.
  for (int i = 0; i < kNumCounters; ++i) {
    fds_[i] = OpenCounter(kConfigs[i], -1);
    if (fds_[i] < 0) {
      for (int j = 0; j <= i; ++j) {
        if (fds_[j] >= 0) close(fds_[j]);
        fds_[j] = -1;
      }
      return;
    }
  }
  valid_ = true;
}

PerfCounterGroup::~PerfCounterGroup() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounterGroup::Begin() {
  if (!valid_) return;
  for (const int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfReading PerfCounterGroup::End() {
  PerfReading r;
  if (!valid_) return r;
  uint64_t values[kNumCounters] = {0, 0, 0, 0};
  bool ok = true;
  for (int i = 0; i < kNumCounters; ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    if (read(fds_[i], &values[i], sizeof(values[i])) !=
        static_cast<ssize_t>(sizeof(values[i]))) {
      ok = false;
    }
  }
  if (!ok) return r;
  r.valid = true;
  r.cycles = values[0];
  r.instructions = values[1];
  r.cache_refs = values[2];
  r.cache_misses = values[3];
  return r;
}

#else  // !GRAPEPLUS_HAVE_PERF_EVENT

bool PerfAvailable() { return false; }

PerfCounterGroup::PerfCounterGroup() {
  for (int& fd : fds_) fd = -1;
}
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::Begin() {}
PerfReading PerfCounterGroup::End() { return PerfReading{}; }

#endif  // GRAPEPLUS_HAVE_PERF_EVENT

PerfPhaseScope::PerfPhaseScope(const char* phase) : phase_(phase) {
  if (Tracer::enabled()) trace_start_ns_ = Tracer::Global().NowNs();
  group_.Begin();
}

PerfPhaseScope::~PerfPhaseScope() {
  const PerfReading r = group_.End();
  if (trace_start_ns_ >= 0) {
    TraceEvent e;
    e.start_ns = trace_start_ns_;
    e.dur_ns = std::max<int64_t>(
        0, Tracer::Global().NowNs() - trace_start_ns_);
    e.track = Tracer::kMasterLane;
    e.kind = TraceKind::kPhase;
    e.arg0 = r.cycles;
    e.arg1 = r.instructions;
    e.name = phase_;
    Tracer::Global().Record(e);
  }
  if (!r.valid) return;
  auto& reg = MetricsRegistry::Global();
  const std::string prefix = std::string("perf.") + phase_ + ".";
  reg.SetGauge(prefix + "cycles", static_cast<double>(r.cycles));
  reg.SetGauge(prefix + "instructions",
               static_cast<double>(r.instructions));
  reg.SetGauge(prefix + "cache_refs", static_cast<double>(r.cache_refs));
  reg.SetGauge(prefix + "cache_misses",
               static_cast<double>(r.cache_misses));
  reg.SetGauge(prefix + "ipc", r.ipc());
  reg.SetGauge(prefix + "cache_miss_rate", r.cache_miss_rate());
}

}  // namespace grape::obs
