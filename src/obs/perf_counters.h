// Copyright 2026 The GRAPE+ Reproduction Authors.
// Hardware perf-counter phase scopes over raw perf_event_open: cycles,
// instructions, LLC references and misses around coarse pipeline phases
// (ingest, partition, engine run). Strictly best-effort — perf_event_open
// is a privileged syscall that CI containers, non-Linux hosts and locked-
// down kernels (perf_event_paranoid >= 2 without CAP_PERFMON) all refuse,
// so every entry point degrades to a silent no-op: PerfAvailable() probes
// once, readings carry a `valid` flag, and a scope that failed to open
// publishes nothing. Nothing in the build or the tests requires the
// counters to work; they only require the no-op path not to crash.
#ifndef GRAPEPLUS_OBS_PERF_COUNTERS_H_
#define GRAPEPLUS_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace grape::obs {

/// One sampled reading across the group. `valid` is false when any counter
/// failed to open or read — consumers must gate on it, not on zeros (a
/// fully idle phase can legitimately read near-zero cache misses).
struct PerfReading {
  bool valid = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_refs = 0;
  uint64_t cache_misses = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double cache_miss_rate() const {
    return cache_refs == 0 ? 0.0
                           : static_cast<double>(cache_misses) /
                                 static_cast<double>(cache_refs);
  }
};

/// True when perf_event_open works for this process (probed once, cached).
bool PerfAvailable();

/// A group of hardware counters for the calling thread + its children.
/// Begin() resets and enables; End() disables and reads. Counters that
/// failed to open leave the whole reading invalid.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool valid() const { return valid_; }
  void Begin();
  PerfReading End();

 private:
  static constexpr int kNumCounters = 4;
  int fds_[kNumCounters];
  bool valid_ = false;
};

/// RAII phase scope: opens a counter group on construction, and on
/// destruction publishes `perf.<phase>.{cycles,instructions,cache_refs,
/// cache_misses,ipc,cache_miss_rate}` as gauges in the global metrics
/// registry plus a kPhase trace span (when the tracer is on). Constructed
/// only when the caller opted in (--perf); a scope on an unavailable
/// system constructs and destructs without side effects.
class PerfPhaseScope {
 public:
  explicit PerfPhaseScope(const char* phase);
  ~PerfPhaseScope();
  PerfPhaseScope(const PerfPhaseScope&) = delete;
  PerfPhaseScope& operator=(const PerfPhaseScope&) = delete;

 private:
  const char* phase_;
  int64_t trace_start_ns_ = -1;
  PerfCounterGroup group_;
};

}  // namespace grape::obs

#endif  // GRAPEPLUS_OBS_PERF_COUNTERS_H_
