// Copyright 2026 The GRAPE+ Reproduction Authors.
// Minimal streaming JSON writer for the observability exports (metrics
// snapshots, RunReport, Chrome trace events). Write-only and allocation-light
// on purpose: the library has no JSON dependency, and the exporters only
// ever serialise — parsing (in tests) re-reads the output with a standalone
// mini parser to prove well-formedness.
#ifndef GRAPEPLUS_OBS_JSON_H_
#define GRAPEPLUS_OBS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace grape::obs {

/// Emits one JSON document into an owned string. Nesting is tracked with an
/// explicit stack, commas are inserted automatically; the caller guarantees
/// Key() before every value inside an object (debug-unchecked — the tests
/// re-parse every export).
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(std::string_view k) {
    Comma();
    AppendString(k);
    out_ += ':';
    key_pending_ = true;
  }

  void String(std::string_view v) {
    Comma();
    AppendString(v);
  }
  void Uint(uint64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Int(int64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }
  void Double(double v) {
    Comma();
    if (!std::isfinite(v)) {  // inf/nan are not JSON; export null instead
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ += buf;
  }
  /// Splices an already-serialised JSON value (embedding a sub-report).
  void Raw(std::string_view json) {
    Comma();
    out_.append(json);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Open(char c) {
    Comma();
    out_ += c;
    first_.push_back(true);
  }
  void Close(char c) {
    out_ += c;
    first_.pop_back();
  }
  /// Separator before any value: nothing after '{', '[' or a key.
  void Comma() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
  void AppendString(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool key_pending_ = false;
};

}  // namespace grape::obs

#endif  // GRAPEPLUS_OBS_JSON_H_
