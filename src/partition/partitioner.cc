#include "partition/partitioner.h"

#include <algorithm>

#include "util/logging.h"

namespace grape {

std::vector<FragmentId> HashPartitioner::Assign(const Graph& g,
                                                FragmentId m) const {
  GRAPE_CHECK(m > 0);
  std::vector<FragmentId> placement(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t h = (static_cast<uint64_t>(v) + seed_) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    placement[v] = static_cast<FragmentId>(h % m);
  }
  return placement;
}

std::vector<FragmentId> RangePartitioner::Assign(const Graph& g,
                                                 FragmentId m) const {
  GRAPE_CHECK(m > 0);
  const VertexId n = g.num_vertices();
  std::vector<FragmentId> placement(n);
  const uint64_t chunk = (static_cast<uint64_t>(n) + m - 1) / m;
  for (VertexId v = 0; v < n; ++v) {
    placement[v] = static_cast<FragmentId>(std::min<uint64_t>(v / chunk, m - 1));
  }
  return placement;
}

std::vector<FragmentId> LdgPartitioner::Assign(const Graph& g,
                                               FragmentId m) const {
  GRAPE_CHECK(m > 0);
  const VertexId n = g.num_vertices();
  std::vector<FragmentId> placement(n, kInvalidFragment);
  std::vector<uint64_t> sizes(m, 0);
  const double capacity =
      slack_ * static_cast<double>(n) / static_cast<double>(m) + 1.0;
  std::vector<double> score(m);
  for (VertexId v = 0; v < n; ++v) {
    std::fill(score.begin(), score.end(), 0.0);
    for (const Arc& a : g.OutEdges(v)) {
      if (a.dst < v && placement[a.dst] != kInvalidFragment) {
        score[placement[a.dst]] += 1.0;
      }
    }
    FragmentId best = 0;
    double best_score = -1.0;
    for (FragmentId i = 0; i < m; ++i) {
      const double penalty = 1.0 - static_cast<double>(sizes[i]) / capacity;
      const double s = (score[i] + 0.001) * penalty;
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    placement[v] = best;
    ++sizes[best];
  }
  return placement;
}

std::vector<FragmentId> ExplicitPartitioner::Assign(const Graph& g,
                                                    FragmentId m) const {
  GRAPE_CHECK(placement_.size() == g.num_vertices());
  for (FragmentId f : placement_) GRAPE_CHECK(f < m);
  return placement_;
}

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name) {
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "range") return std::make_unique<RangePartitioner>();
  if (name == "ldg") return std::make_unique<LdgPartitioner>();
  GRAPE_LOG(Fatal) << "unknown partitioner: " << name;
  return nullptr;
}

}  // namespace grape
