#include "partition/partitioner.h"

#include <algorithm>

#include "util/logging.h"

namespace grape {

std::vector<FragmentId> HashPartitioner::Assign(const GraphView& g,
                                                FragmentId m) const {
  GRAPE_CHECK(m > 0);
  std::vector<FragmentId> placement(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t h = (static_cast<uint64_t>(v) + seed_) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    placement[v] = static_cast<FragmentId>(h % m);
  }
  return placement;
}

std::vector<FragmentId> RangePartitioner::Assign(const GraphView& g,
                                                 FragmentId m) const {
  GRAPE_CHECK(m > 0);
  const VertexId n = g.num_vertices();
  std::vector<FragmentId> placement(n);
  const uint64_t chunk = (static_cast<uint64_t>(n) + m - 1) / m;
  for (VertexId v = 0; v < n; ++v) {
    placement[v] = static_cast<FragmentId>(std::min<uint64_t>(v / chunk, m - 1));
  }
  return placement;
}

std::vector<FragmentId> LdgPartitioner::Assign(const GraphView& g,
                                               FragmentId m) const {
  GRAPE_CHECK(m > 0);
  const VertexId n = g.num_vertices();
  std::vector<FragmentId> placement(n, kInvalidFragment);
  std::vector<uint64_t> sizes(m, 0);
  const double capacity =
      slack_ * static_cast<double>(n) / static_cast<double>(m) + 1.0;
  const auto penalty = [&](FragmentId i) {
    return 1.0 - static_cast<double>(sizes[i]) / capacity;
  };

  // Scatter placed-neighbour counts into `score`, touching only the
  // fragments that actually hold neighbours and resetting just those
  // afterwards — O(deg(v)) per vertex instead of the seed's two O(m) sweeps
  // (fill + full argmax scan), which made the whole pass O(n*m).
  std::vector<double> score(m, 0.0);
  std::vector<FragmentId> touched;
  touched.reserve(m);

  // Among fragments with no placed neighbour the best candidate is always a
  // smallest one (score 0 => s = 0.001 * penalty, maximal at minimal size),
  // lowest id first. Track the minimum-size fragments as a lazily swept
  // sorted list: sizes only grow, so min_size only grows; each rebuild is
  // O(m) and happens at most ~n/m times => O(n) amortised.
  uint64_t min_size = 0;
  std::vector<FragmentId> at_min(m);
  for (FragmentId i = 0; i < m; ++i) at_min[i] = i;
  size_t at_min_head = 0;
  const auto min_size_fragment = [&]() -> FragmentId {
    while (true) {
      while (at_min_head < at_min.size() &&
             sizes[at_min[at_min_head]] != min_size) {
        ++at_min_head;  // stale: grew past min_size since being listed
      }
      if (at_min_head < at_min.size()) return at_min[at_min_head];
      ++min_size;
      at_min.clear();
      at_min_head = 0;
      for (FragmentId i = 0; i < m; ++i) {
        if (sizes[i] == min_size) at_min.push_back(i);
      }
    }
  };

  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.OutEdges(v)) {
      if (a.dst < v && placement[a.dst] != kInvalidFragment) {
        const FragmentId f = placement[a.dst];
        if (score[f] == 0.0) touched.push_back(f);
        score[f] += 1.0;
      }
    }
    FragmentId best = min_size_fragment();
    double best_score = (score[best] + 0.001) * penalty(best);
    for (FragmentId f : touched) {
      const double s = (score[f] + 0.001) * penalty(f);
      if (s > best_score || (s == best_score && f < best)) {
        best_score = s;
        best = f;
      }
    }
    for (FragmentId f : touched) score[f] = 0.0;
    touched.clear();
    placement[v] = best;
    ++sizes[best];
  }
  return placement;
}

std::vector<FragmentId> ExplicitPartitioner::Assign(const GraphView& g,
                                                    FragmentId m) const {
  GRAPE_CHECK(placement_.size() == g.num_vertices());
  for (FragmentId f : placement_) GRAPE_CHECK(f < m);
  return placement_;
}

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name) {
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "range") return std::make_unique<RangePartitioner>();
  if (name == "ldg") return std::make_unique<LdgPartitioner>();
  GRAPE_LOG(Fatal) << "unknown partitioner: " << name;
  return nullptr;
}

}  // namespace grape
