// Copyright 2026 The GRAPE+ Reproduction Authors.
// Skew injection (Section 7, Exp-4): the paper reshuffles a portion of a
// balanced partition to reach a target skew ratio r = ||F_max||/||F_median||,
// deliberately creating stragglers.
#ifndef GRAPEPLUS_PARTITION_SKEW_H_
#define GRAPEPLUS_PARTITION_SKEW_H_

#include <vector>

#include "graph/graph.h"
#include "partition/fragment.h"

namespace grape {

/// Moves vertices from other fragments into fragment 0 until fragment 0 holds
/// roughly `target_skew` times the median fragment's vertex count. Returns the
/// modified placement. `seed` controls which vertices move.
std::vector<FragmentId> InjectSkew(const GraphView& g,
                                   std::vector<FragmentId> placement,
                                   FragmentId num_fragments,
                                   double target_skew, uint64_t seed = 0);

}  // namespace grape

#endif  // GRAPEPLUS_PARTITION_SKEW_H_
