// Copyright 2026 The GRAPE+ Reproduction Authors.
// Edge-cut graph fragments (Section 2 of the paper).
//
// A strategy P partitions G into fragments (F_1 .. F_m); each F_i is a
// subgraph holding its *inner* vertices V_i plus *outer copies* of the remote
// endpoints of cut edges. Border sets follow the paper's definitions:
//   F_i.I  — inner vertices with an incoming cut edge (entry points),
//   F_i.O' — inner vertices with an outgoing cut edge,
//   F_i.O  — outer copies: remote vertices targeted by a local cut edge,
//   F_i.I' — remote vertices with a cut edge into F_i.
// Local vertex ids are [0, num_inner) for inner vertices followed by
// [num_inner, num_inner + num_outer) for outer copies.
//
// BuildPartition constructs fragments and all routing metadata with dense
// index structures (no hash maps) and, when given a WorkerPool, runs the
// per-fragment phases concurrently; parallel and serial construction produce
// identical partitions.
#ifndef GRAPEPLUS_PARTITION_FRAGMENT_H_
#define GRAPEPLUS_PARTITION_FRAGMENT_H_

#include <algorithm>
#include <span>
#include <vector>

#include "graph/chunked_arc_source.h"
#include "graph/graph.h"
#include "util/common.h"

namespace grape {

class WorkerPool;

/// An arc whose target is a fragment-local id.
struct LocalArc {
  LocalVertex dst;
  double weight;
};

/// One fragment F_i. Immutable once built by BuildPartition().
class Fragment {
 public:
  FragmentId id() const { return id_; }
  uint32_t num_inner() const { return static_cast<uint32_t>(inner_.size()); }
  uint32_t num_outer() const { return static_cast<uint32_t>(outer_.size()); }
  uint32_t num_local() const { return num_inner() + num_outer(); }
  /// Arc count of the local CSR (from the offsets, which exist in both
  /// materialised and streaming mode).
  uint64_t num_arcs() const { return offsets_.empty() ? 0 : offsets_.back(); }
  /// Fragment "size" used for skew metrics: |V_i| + |E_i|.
  uint64_t size() const { return num_inner() + num_arcs(); }

  bool IsInner(LocalVertex l) const { return l < num_inner(); }

  /// Global id of a local vertex (inner or outer).
  VertexId GlobalId(LocalVertex l) const {
    return l < num_inner() ? inner_[l] : outer_[l - num_inner()];
  }

  /// Local id of a global vertex, or kInvalidLocal if absent. Binary search
  /// over the sorted inner/outer arrays (reference and init paths only; the
  /// engine hot paths use the precomputed routing tables and dispatch-stamped
  /// lids instead).
  static constexpr LocalVertex kInvalidLocal = kInvalidLocalVertex;
  LocalVertex LocalId(VertexId g) const {
    auto ii = std::lower_bound(inner_.begin(), inner_.end(), g);
    if (ii != inner_.end() && *ii == g) {
      return static_cast<LocalVertex>(ii - inner_.begin());
    }
    auto oi = std::lower_bound(outer_.begin(), outer_.end(), g);
    if (oi != outer_.end() && *oi == g) {
      return num_inner() + static_cast<LocalVertex>(oi - outer_.begin());
    }
    return kInvalidLocal;
  }

  /// Out-adjacency of an *inner* local vertex (outer copies carry no edges).
  /// Materialised fragments only; streaming fragments serve adjacency via
  /// Adjacency() / SweepInnerAdjacency() below.
  std::span<const LocalArc> OutEdges(LocalVertex l) const {
    GRAPE_DCHECK(IsInner(l));
    GRAPE_CHECK(!streaming())
        << "Fragment::OutEdges needs materialised arcs; this fragment "
           "streams from a ChunkedArcSource — use Adjacency()";
    return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
  }

  uint64_t OutDegree(LocalVertex l) const {
    return IsInner(l) ? offsets_[l + 1] - offsets_[l] : 0;
  }

  // ---- out-of-core adjacency -------------------------------------------

  /// True when this fragment holds no local arc array and instead streams
  /// adjacency from the partition's ChunkedArcSource (see PartitionOptions).
  bool streaming() const { return arc_source_ != nullptr; }
  const ChunkedArcSource* arc_source() const { return arc_source_; }

  /// Local id of an arc target: inner targets resolve through the
  /// partition's dense owner-lid index, cut targets through binary search
  /// over the sorted outer-copy list — exactly the mapping the materialised
  /// build bakes into its LocalArc records.
  LocalVertex LocalTarget(VertexId g) const {
    if (placement_[g] == id_) return owner_lid_[g];
    const auto oi = std::lower_bound(outer_.begin(), outer_.end(), g);
    GRAPE_DCHECK(oi != outer_.end() && *oi == g);
    return num_inner() + static_cast<LocalVertex>(oi - outer_.begin());
  }

  /// Translates the global adjacency of a vertex into local-id arcs in
  /// `scratch` — same order and values as the materialised arcs. Streaming
  /// fragments only. The returned span is valid until scratch next changes.
  std::span<const LocalArc> TranslateArcs(VertexId global_v,
                                          std::vector<LocalArc>& scratch) const;

  /// Mode-independent point adjacency of an inner vertex: the materialised
  /// span, or a translation into `scratch` (heap bounded by the vertex
  /// degree) on streaming fragments. Frontier-driven programs (SSSP, BFS)
  /// relax through this; note the chunk budget does not bound the mapped
  /// backend's page-cache footprint on this path (see
  /// ChunkedArcSource::OutEdges(v)).
  std::span<const LocalArc> Adjacency(LocalVertex l,
                                      std::vector<LocalArc>& scratch) const {
    GRAPE_DCHECK(IsInner(l));
    if (!streaming()) {
      return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
    }
    const auto arcs = TranslateArcs(GlobalId(l), scratch);
    arc_source_->NotePointResidency(arcs.size());
    return arcs;
  }

  /// Sweeps every inner vertex in ascending local-id order, invoking
  /// fn(l, arcs_of) where arcs_of() produces the adjacency on demand (so
  /// sweeps that skip settled vertices, e.g. PageRank, pay no translation
  /// for them). Streaming fragments walk the source's chunk plan, but a
  /// window is only Acquired (madvised in on mapped backends, counted
  /// against the residency budget) when the first arcs_of() inside it
  /// actually fires — a sweep over mostly-settled vertices touches only the
  /// chunks it reads, not the whole file. At most one window is held at a
  /// time, so resident arcs stay bounded by the source's effective budget;
  /// materialised fragments serve direct spans. The vertex visit order is
  /// identical in both modes, which is what makes streaming execution
  /// bit-identical.
  template <typename Fn>
  void SweepInnerAdjacency(std::vector<LocalArc>& scratch, Fn&& fn) const {
    const LocalVertex ni = num_inner();
    if (!streaming()) {
      for (LocalVertex l = 0; l < ni; ++l) {
        fn(l, [&]() -> std::span<const LocalArc> {
          return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
        });
      }
      return;
    }
    const ChunkedArcSource& src = *arc_source_;
    LocalVertex l = 0;
    while (l < ni) {
      const size_t k = src.ChunkOf(inner_[l]);
      const VertexId window_end = src.chunk(k).end;
      bool acquired = false;
      ChunkedArcSource::Chunk c;
      for (; l < ni && inner_[l] < window_end; ++l) {
        fn(l, [&]() -> std::span<const LocalArc> {
          if (!acquired) {
            c = src.Acquire(k);
            acquired = true;
          }
          return TranslateArcs(inner_[l], scratch);
        });
      }
      if (acquired) src.Release(c);
    }
  }

  /// F_i.I membership for an inner vertex.
  bool InEntrySet(LocalVertex l) const { return IsInner(l) && in_i_[l] != 0; }
  /// F_i.O' membership for an inner vertex.
  bool InExitSet(LocalVertex l) const {
    return IsInner(l) && in_oprime_[l] != 0;
  }

  /// All inner global ids (sorted). V_i.
  std::span<const VertexId> inner_vertices() const { return inner_; }
  /// All outer-copy global ids (sorted). F_i.O.
  std::span<const VertexId> outer_vertices() const { return outer_; }
  /// Remote sources with an edge into this fragment (sorted). F_i.I'.
  std::span<const VertexId> remote_sources() const { return iprime_; }

 private:
  friend struct PartitionBuilderAccess;
  FragmentId id_ = 0;
  std::vector<VertexId> inner_;
  std::vector<VertexId> outer_;
  std::vector<VertexId> iprime_;
  std::vector<uint64_t> offsets_;
  std::vector<LocalArc> arcs_;      // empty in streaming mode
  std::vector<uint8_t> in_i_;       // indexed by inner local id
  std::vector<uint8_t> in_oprime_;  // indexed by inner local id
  // Streaming mode: the shared arc source plus views of the owning
  // partition's placement / owner-lid indexes (valid while it lives).
  const ChunkedArcSource* arc_source_ = nullptr;
  std::span<const FragmentId> placement_;
  std::span<const LocalVertex> owner_lid_;
};

/// One resolved routing destination: the receiving fragment and the vertex's
/// local id *there* (so the receiver indexes dense state directly).
struct RouteTarget {
  FragmentId frag = kInvalidFragment;
  LocalVertex lid = kInvalidLocalVertex;
  bool operator==(const RouteTarget&) const = default;
};

/// Build-time routing table for one source fragment, indexed by the source's
/// local vertex id. Replaces per-entry copy-holder + `LocalId` lookups on
/// the dispatch path with O(1) array reads.
struct FragmentRouting {
  /// To-owner target per local vertex: valid (frag != kInvalidFragment)
  /// exactly for outer copies — their updates flow back to the owner.
  std::vector<RouteTarget> owner;
  /// CSR of owner-broadcast targets per local vertex: the fragments (other
  /// than self and owner) holding a copy of the vertex, with local ids.
  /// Used when C_i = F_i.O ∪ F_i.I (kOwnerBroadcast programs, e.g. CF).
  std::vector<uint32_t> copy_offsets;  // size num_local + 1
  std::vector<RouteTarget> copy_targets;

  std::span<const RouteTarget> Copies(LocalVertex l) const {
    return {copy_targets.data() + copy_offsets[l],
            copy_offsets[l + 1] - copy_offsets[l]};
  }
};

/// A partitioned graph plus the routing metadata of Section 3: the index I_i
/// that maps a border vertex to the fragments holding it.
struct Partition {
  /// View of the partitioned graph (in-memory Graph or mmap store; the
  /// backing storage must outlive the partition).
  GraphView graph;
  /// Owner fragment of every global vertex.
  std::vector<FragmentId> placement;
  /// Local id of every global vertex inside its *owner* fragment (dense;
  /// replaces per-fragment hash lookups during construction and routing).
  std::vector<LocalVertex> owner_lid;
  std::vector<Fragment> fragments;

  /// Dense border-copy index (replaces the seed's copy_holders hash map):
  /// CopyHolders(v) is the sorted list of fragments where v appears as an
  /// outer copy. copy_offsets has size num_vertices + 1.
  std::vector<uint64_t> copy_offsets;
  std::vector<FragmentId> copy_frags;

  /// Per-source-fragment dense routing tables (engine hot path).
  std::vector<FragmentRouting> routing;

  FragmentId num_fragments() const {
    return static_cast<FragmentId>(fragments.size());
  }
  FragmentId Owner(VertexId v) const { return placement[v]; }

  std::span<const FragmentId> CopyHolders(VertexId v) const {
    if (copy_offsets.empty()) return {};
    return {copy_frags.data() + copy_offsets[v],
            copy_offsets[v + 1] - copy_offsets[v]};
  }

  /// The paper's index I_i: fragments (≠ from) that must receive an update of
  /// border vertex v. When `to_copies` is set, the owner pushes updates back
  /// out to all copy holders (needed when C_i = F_i.O ∪ F_i.I, e.g. CF);
  /// otherwise updates flow copy→owner only (CC / SSSP / PageRank).
  /// Reference implementation over the dense copy index, kept for tests and
  /// for entries whose source local id is unknown; engines route via
  /// `routing`.
  void Recipients(VertexId v, FragmentId from, bool to_copies,
                  std::vector<FragmentId>* out) const;
};

/// Partition quality metrics (Section 7, Exp-4).
struct PartitionMetrics {
  double skew = 1.0;            // r = ||F_max|| / ||F_median||
  double edge_cut_fraction = 0;  // cut arcs / total arcs
  uint64_t total_border = 0;     // sum of |F_i.O|
};

/// Out-of-core build options.
struct PartitionOptions {
  /// When set, fragments skip materialising their per-fragment arc arrays —
  /// the only partition structure proportional to |E| — and stream adjacency
  /// from this source at PEval/IncEval time instead (per-vertex structures
  /// stay dense in RAM). The source must wrap the very view the partition is
  /// built over and must outlive the partition (as must the Partition object
  /// itself: streaming fragments reference its placement / owner-lid
  /// arrays). Programs must reach adjacency through Fragment::Adjacency or
  /// Fragment::SweepInnerAdjacency (PageRank, CC, SSSP and BFS do);
  /// Fragment::OutEdges is unavailable on streaming fragments.
  const ChunkedArcSource* arc_source = nullptr;
};

/// Builds fragments + routing index from a vertex->fragment assignment.
/// With a pool, the per-fragment construction phases run concurrently; the
/// result is identical to the serial build.
Partition BuildPartition(const GraphView& g, std::vector<FragmentId> placement,
                         FragmentId num_fragments, WorkerPool* pool = nullptr,
                         const PartitionOptions& opts = {});

/// Computes skew / cut metrics of a partition.
PartitionMetrics ComputeMetrics(const Partition& p);

}  // namespace grape

#endif  // GRAPEPLUS_PARTITION_FRAGMENT_H_
