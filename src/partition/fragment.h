// Copyright 2026 The GRAPE+ Reproduction Authors.
// Edge-cut graph fragments (Section 2 of the paper).
//
// A strategy P partitions G into fragments (F_1 .. F_m); each F_i is a
// subgraph holding its *inner* vertices V_i plus *outer copies* of the remote
// endpoints of cut edges. Border sets follow the paper's definitions:
//   F_i.I  — inner vertices with an incoming cut edge (entry points),
//   F_i.O' — inner vertices with an outgoing cut edge,
//   F_i.O  — outer copies: remote vertices targeted by a local cut edge,
//   F_i.I' — remote vertices with a cut edge into F_i.
// Local vertex ids are [0, num_inner) for inner vertices followed by
// [num_inner, num_inner + num_outer) for outer copies.
//
// Pull-mode (PartitionOptions::in_adjacency / in_arc_source) additionally
// equips fragments with the *in*-adjacency of their inner vertices, served
// from a transpose view (MmapGraph::TransposeView() or TransposeGraph()).
// The outer-copy set is then widened with the remote in-edge sources F_i.I',
// so reverse-edge (pull) programs receive those vertices' values through the
// ordinary owner-broadcast routing — no second routing index.
//
// BuildPartition constructs fragments and all routing metadata with dense
// index structures (no hash maps) and, when given a WorkerPool, runs the
// per-fragment phases concurrently; parallel and serial construction produce
// identical partitions.
#ifndef GRAPEPLUS_PARTITION_FRAGMENT_H_
#define GRAPEPLUS_PARTITION_FRAGMENT_H_

#include <algorithm>
#include <span>
#include <vector>

#include "graph/chunked_arc_source.h"
#include "graph/graph.h"
#include "util/common.h"

namespace grape {

class WorkerPool;

/// An arc whose target is a fragment-local id.
struct LocalArc {
  LocalVertex dst;
  double weight;
};

/// Aggregate counters of a fragment's memoised outer-lid caches (out + in).
struct LidCacheStats {
  uint64_t hits = 0;         // arcs whose lid was served from a cached chunk
  uint64_t misses = 0;       // arcs translated fresh (cache build or bypass)
  uint64_t cached_lids = 0;  // lids currently memoised (4 bytes each)
  uint64_t cached_chunks = 0;
};

/// One fragment F_i. Immutable once built by BuildPartition() — except for
/// the memoised translation caches below, which follow the same ownership
/// discipline as program state: they are only touched by the thread that
/// currently runs this fragment's round (engines serialise rounds per
/// fragment via the worker claim).
class Fragment {
 public:
  FragmentId id() const { return id_; }
  uint32_t num_inner() const { return static_cast<uint32_t>(inner_.size()); }
  uint32_t num_outer() const { return static_cast<uint32_t>(outer_.size()); }
  uint32_t num_local() const { return num_inner() + num_outer(); }
  /// Arc count of the local CSR (from the offsets, which exist in both
  /// materialised and streaming mode).
  uint64_t num_arcs() const { return offsets_.empty() ? 0 : offsets_.back(); }
  /// In-arc count (pull-enabled fragments only, else 0).
  uint64_t num_in_arcs() const {
    return in_offsets_.empty() ? 0 : in_offsets_.back();
  }
  /// Fragment "size" used for skew metrics: |V_i| + |E_i|.
  uint64_t size() const { return num_inner() + num_arcs(); }

  bool IsInner(LocalVertex l) const { return l < num_inner(); }

  /// Global id of a local vertex (inner or outer).
  VertexId GlobalId(LocalVertex l) const {
    return l < num_inner() ? inner_[l] : outer_[l - num_inner()];
  }

  /// Local id of a global vertex, or kInvalidLocal if absent. Binary search
  /// over the sorted inner/outer arrays (reference and init paths only; the
  /// engine hot paths use the precomputed routing tables and dispatch-stamped
  /// lids instead).
  static constexpr LocalVertex kInvalidLocal = kInvalidLocalVertex;
  LocalVertex LocalId(VertexId g) const {
    auto ii = std::lower_bound(inner_.begin(), inner_.end(), g);
    if (ii != inner_.end() && *ii == g) {
      return static_cast<LocalVertex>(ii - inner_.begin());
    }
    auto oi = std::lower_bound(outer_.begin(), outer_.end(), g);
    if (oi != outer_.end() && *oi == g) {
      return num_inner() + static_cast<LocalVertex>(oi - outer_.begin());
    }
    return kInvalidLocal;
  }

  /// Out-adjacency of an *inner* local vertex (outer copies carry no edges).
  /// Materialised fragments only; streaming fragments serve adjacency via
  /// Adjacency() / SweepInnerAdjacency() below.
  std::span<const LocalArc> OutEdges(LocalVertex l) const {
    GRAPE_DCHECK(IsInner(l));
    GRAPE_CHECK(!streaming())
        << "Fragment::OutEdges needs materialised arcs; this fragment "
           "streams from a ChunkedArcSource — use Adjacency()";
    return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
  }

  uint64_t OutDegree(LocalVertex l) const {
    return IsInner(l) ? offsets_[l + 1] - offsets_[l] : 0;
  }

  /// The local out-CSR offsets (size num_inner + 1; present in streaming
  /// mode too). Engines register this with each worker's UpdateBuffer so
  /// the frontier out-degree — the push-cost half of the direction
  /// controller's density signal — is tracked incrementally as updates
  /// arrive, instead of re-scanned per decision.
  std::span<const uint64_t> out_offsets() const { return offsets_; }

  // ---- out-of-core adjacency -------------------------------------------

  /// True when this fragment holds no local arc array and instead streams
  /// adjacency from the partition's ChunkedArcSource (see PartitionOptions).
  bool streaming() const { return arc_source_ != nullptr; }
  const ChunkedArcSource* arc_source() const { return arc_source_; }

  /// Local id of an arc target: inner targets resolve through the
  /// partition's dense owner-lid index, cut targets through binary search
  /// over the sorted outer-copy list — exactly the mapping the materialised
  /// build bakes into its LocalArc records. A global id this fragment does
  /// not hold (out of range, or neither inner nor an outer copy) yields
  /// kInvalidLocal in every build mode — never a garbage local id — and
  /// translation callers drop such arcs. Streaming fragments only (the
  /// placement/owner-lid views are attached with the arc source).
  LocalVertex LocalTarget(VertexId g) const {
    if (g >= placement_.size()) return kInvalidLocal;
    if (placement_[g] == id_) return owner_lid_[g];
    const auto oi = std::lower_bound(outer_.begin(), outer_.end(), g);
    if (oi == outer_.end() || *oi != g) return kInvalidLocal;
    return num_inner() + static_cast<LocalVertex>(oi - outer_.begin());
  }

  /// Translates the global adjacency of a vertex into local-id arcs in
  /// `scratch` — same order and values as the materialised arcs (arcs whose
  /// target this fragment does not hold are dropped; a valid build never
  /// produces such arcs). Streaming fragments only. The returned span is
  /// valid until scratch next changes.
  std::span<const LocalArc> TranslateArcs(VertexId global_v,
                                          std::vector<LocalArc>& scratch) const {
    GRAPE_DCHECK(streaming());
    return TranslateFrom(arc_source_->view(), global_v, scratch);
  }

  /// The single definition of global->local arc translation: `view` is the
  /// forward view for out-adjacency or a transpose view for in-adjacency.
  /// Every uncached translation path (point lookups, sweep bypass) funnels
  /// through here so drop-invalid semantics cannot diverge.
  std::span<const LocalArc> TranslateFrom(const GraphView& view, VertexId v,
                                          std::vector<LocalArc>& scratch) const;

  /// Mode-independent point adjacency of an inner vertex: the materialised
  /// span, or a translation into `scratch` (heap bounded by the vertex
  /// degree) on streaming fragments. Frontier-driven programs (SSSP, BFS)
  /// relax through this. On the mapped backend each lookup touches the
  /// source's point-window LRU (ChunkedArcSource::NotePointLookup), so the
  /// page-cache footprint of this path is bounded by a few chunk windows
  /// and stale windows are MADV_DONTNEED-ed on eviction. Point lookups
  /// bypass the memoised lid cache (it is keyed by chunk windows).
  std::span<const LocalArc> Adjacency(LocalVertex l,
                                      std::vector<LocalArc>& scratch) const {
    GRAPE_DCHECK(IsInner(l));
    if (!streaming()) {
      return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
    }
    const VertexId g = GlobalId(l);
    arc_source_->NotePointLookup(g);
    const auto arcs = TranslateArcs(g, scratch);
    arc_source_->NotePointResidency(arcs.size());
    return arcs;
  }

  /// Sweeps every inner vertex in ascending local-id order, invoking
  /// fn(l, arcs_of) where arcs_of() produces the adjacency on demand (so
  /// sweeps that skip settled vertices, e.g. PageRank, pay no translation
  /// for them). Streaming fragments walk the source's chunk plan, but a
  /// window is only Acquired (madvised in on mapped backends, counted
  /// against the residency budget) when the first arcs_of() inside it
  /// actually fires — a sweep over mostly-settled vertices touches only the
  /// chunks it reads, not the whole file. At most one window is held at a
  /// time, so resident arcs stay bounded by the source's effective budget;
  /// materialised fragments serve direct spans. The vertex visit order is
  /// identical in both modes, which is what makes streaming execution
  /// bit-identical. Streaming sweeps memoise each chunk's translated lids in
  /// a per-fragment cache on first acquisition and serve later sweeps from
  /// it (see PartitionOptions::lid_cache_arcs).
  template <typename Fn>
  void SweepInnerAdjacency(std::vector<LocalArc>& scratch, Fn&& fn) const {
    const LocalVertex ni = num_inner();
    if (!streaming()) {
      for (LocalVertex l = 0; l < ni; ++l) {
        fn(l, [&]() -> std::span<const LocalArc> {
          return {arcs_.data() + offsets_[l], offsets_[l + 1] - offsets_[l]};
        });
      }
      return;
    }
    StreamSweep(*arc_source_, offsets_, out_lid_cache_, scratch,
                std::forward<Fn>(fn));
  }

  // ---- pull-mode (reverse-edge) adjacency ------------------------------

  /// True when BuildPartition was given an in-adjacency (transpose) view:
  /// SweepInnerInAdjacency / InDegree are available.
  bool has_in_adjacency() const { return has_in_adj_; }
  /// True when in-arcs stream from a ChunkedArcSource over the transpose
  /// view instead of being materialised.
  bool in_streaming() const { return in_arc_source_ != nullptr; }
  const ChunkedArcSource* in_arc_source() const { return in_arc_source_; }

  uint64_t InDegree(LocalVertex l) const {
    return IsInner(l) && has_in_adj_ ? in_offsets_[l + 1] - in_offsets_[l] : 0;
  }

  /// Pull-mode mirror of SweepInnerAdjacency: visits every inner vertex in
  /// ascending local-id order and serves its *in*-adjacency — arcs (u -> v)
  /// translated so `dst` is the local id of the in-neighbour u (inner or
  /// outer copy; remote in-sources are part of the widened outer set, so a
  /// pull program reads their freshest broadcast values straight out of its
  /// local state). Same lazy chunk windows, same residency bounds, same
  /// memoised lid cache, same bit-identical visit order as the out sweep.
  template <typename Fn>
  void SweepInnerInAdjacency(std::vector<LocalArc>& scratch, Fn&& fn) const {
    GRAPE_CHECK(has_in_adj_)
        << "Fragment::SweepInnerInAdjacency needs a pull-enabled partition "
           "(PartitionOptions::in_adjacency / in_arc_source)";
    const LocalVertex ni = num_inner();
    if (!in_streaming()) {
      for (LocalVertex l = 0; l < ni; ++l) {
        fn(l, [&]() -> std::span<const LocalArc> {
          return {in_arcs_.data() + in_offsets_[l],
                  in_offsets_[l + 1] - in_offsets_[l]};
        });
      }
      return;
    }
    StreamSweep(*in_arc_source_, in_offsets_, in_lid_cache_, scratch,
                std::forward<Fn>(fn));
  }

  /// Frontier-masked pull sweep: like SweepInnerInAdjacency, but arcs_of()
  /// yields only in-arcs whose *source* local id is set in `source_mask`
  /// (size num_local) — dense gather rounds skip settled sources without a
  /// per-arc branch in the program's kernel. The filtered arcs land in
  /// `masked_scratch` (distinct from `scratch`, which the streaming
  /// translation layer owns), keep their sweep order, and are valid until
  /// the next vertex is visited. Works identically over materialised and
  /// streaming in-arcs, so masked gathers stay bit-identical across
  /// backends.
  template <typename Fn>
  void SweepInnerInAdjacency(std::vector<LocalArc>& scratch,
                             std::vector<LocalArc>& masked_scratch,
                             std::span<const uint8_t> source_mask,
                             Fn&& fn) const {
    GRAPE_DCHECK(source_mask.size() >= num_local());
    SweepInnerInAdjacency(scratch, [&](LocalVertex l, const auto& arcs_of) {
      fn(l, [&]() -> std::span<const LocalArc> {
        const std::span<const LocalArc> arcs = arcs_of();
        masked_scratch.clear();
        for (const LocalArc& a : arcs) {
          if (source_mask[a.dst]) masked_scratch.push_back(a);
        }
        return {masked_scratch.data(), masked_scratch.size()};
      });
    });
  }

  /// Builds the compact CSR of the inner vertices' *cut* out-arcs (targets
  /// are outer-copy lids) into caller storage — one adjacency sweep in
  /// local-id order, so the result is identical across materialised and
  /// streaming builds. Dual-mode gather kernels enforce cut arcs
  /// source-side through this index (the in-sweep only covers
  /// fragment-local arcs); the single definition here keeps every
  /// program's pull round arithmetic aligned. `offsets` gets size
  /// num_inner + 1.
  void BuildCutArcIndex(std::vector<LocalArc>& scratch,
                        std::vector<uint64_t>* offsets,
                        std::vector<LocalVertex>* targets) const;

  /// Best-effort NUMA placement hint (runtime/topology.h): binds the
  /// fragment's arc-sized arrays (materialised out/in arcs, CSR offsets)
  /// and the already-memoised lid-cache entries to `node` now, and tags the
  /// lid caches so entries built by later streaming sweeps bind as they
  /// appear. Page-level memory-policy hint only — never alters logical
  /// state, hence const (the same mutability discipline as the caches
  /// themselves); a no-op on single-node machines.
  void SetPreferredNumaNode(int node) const;

  /// Combined hit/miss accounting of the out- and in-sweep lid caches.
  LidCacheStats lid_cache_stats() const {
    LidCacheStats s;
    for (const LidCache* c : {&out_lid_cache_, &in_lid_cache_}) {
      s.hits += c->hits;
      s.misses += c->misses;
      s.cached_lids += c->cached_lids;
      s.cached_chunks += c->cached_chunks;
    }
    return s;
  }

  /// F_i.I membership for an inner vertex.
  bool InEntrySet(LocalVertex l) const { return IsInner(l) && in_i_[l] != 0; }
  /// F_i.O' membership for an inner vertex.
  bool InExitSet(LocalVertex l) const {
    return IsInner(l) && in_oprime_[l] != 0;
  }

  /// All inner global ids (sorted). V_i.
  std::span<const VertexId> inner_vertices() const { return inner_; }
  /// All outer-copy global ids (sorted). F_i.O — widened with F_i.I' on
  /// pull-enabled partitions.
  std::span<const VertexId> outer_vertices() const { return outer_; }
  /// Remote sources with an edge into this fragment (sorted). F_i.I'.
  std::span<const VertexId> remote_sources() const { return iprime_; }

 private:
  friend struct PartitionBuilderAccess;

  /// Per-chunk memoised translation cache: chunk k's entry holds the local
  /// ids of every arc target of this fragment's inner vertices inside the
  /// window, in sweep order, so repeat sweeps replace the per-arc
  /// placement-lookup / outer binary search with one array read. Entries are
  /// built on the first acquisition of a window and kept until the budget is
  /// full (never evicted: sweeps scan chunks sequentially, which thrashes an
  /// LRU — a stable prefix of cached chunks is strictly better). 4 bytes per
  /// cached arc, a quarter of the 16-byte arc records whose re-translation
  /// it saves.
  struct LidCache {
    std::vector<std::vector<LocalVertex>> per_chunk;
    uint64_t budget = 0;  // max cached lids; 0 disables the cache
    uint64_t cached_lids = 0;
    uint64_t cached_chunks = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    int preferred_node = -1;  // NUMA hint for entries (-1 = no preference)
  };

  /// Returns chunk k's lid entry, building it on first use, or nullptr when
  /// the cache is disabled/full (callers then translate directly). `l0` is
  /// the first inner local id inside the window, `window_end` its global
  /// end; `offs` the matching local CSR offsets (out or in).
  std::vector<LocalVertex>* LidWindow(const ChunkedArcSource& src,
                                      std::span<const uint64_t> offs,
                                      LidCache& cache, size_t k,
                                      LocalVertex l0, VertexId window_end,
                                      bool* prebuilt) const;

  /// Shared chunk-windowed streaming sweep over `src` (the forward view for
  /// out-sweeps, the transpose view for in-sweeps). `offs` must be the local
  /// CSR offsets matching the view's degrees.
  template <typename Fn>
  void StreamSweep(const ChunkedArcSource& src, std::span<const uint64_t> offs,
                   LidCache& cache, std::vector<LocalArc>& scratch,
                   Fn&& fn) const {
    const LocalVertex ni = num_inner();
    LocalVertex l = 0;
    while (l < ni) {
      const size_t k = src.ChunkOf(inner_[l]);
      const VertexId window_end = src.chunk(k).end;
      const LocalVertex l0 = l;
      bool acquired = false;
      bool prebuilt = false;
      std::vector<LocalVertex>* lids = nullptr;
      ChunkedArcSource::Chunk c;
      for (; l < ni && inner_[l] < window_end; ++l) {
        fn(l, [&]() -> std::span<const LocalArc> {
          if (!acquired) {
            c = src.Acquire(k);
            acquired = true;
            lids = LidWindow(src, offs, cache, k, l0, window_end, &prebuilt);
          }
          if (lids == nullptr) {
            cache.misses += src.view().OutDegree(inner_[l]);
            return TranslateFrom(src.view(), inner_[l], scratch);
          }
          const auto arcs = src.view().OutEdges(inner_[l]);
          if (prebuilt) cache.hits += arcs.size();
          const uint64_t base = offs[l] - offs[l0];
          scratch.clear();
          scratch.reserve(arcs.size());
          const LocalVertex* lid_run = lids->data() + base;
          // Software-prefetch the lid translations ahead of their use: the
          // memoised run and the mmapped arc records stream side by side,
          // and the hint keeps the next lines in flight while this arc's
          // LocalArc is assembled (the mmapped side may still be
          // page-cold, where the hardware prefetcher gives up).
          constexpr size_t kAhead = 16;
          for (size_t i = 0; i < arcs.size(); ++i) {
            if (i + kAhead < arcs.size()) {
              GRAPE_PREFETCH(lid_run + i + kAhead);
              GRAPE_PREFETCH(&arcs[i + kAhead]);
            }
            const LocalVertex lid = lid_run[i];
            if (lid == kInvalidLocal) continue;  // unknown target: drop
            scratch.push_back(LocalArc{lid, arcs[i].weight});
          }
          return {scratch.data(), scratch.size()};
        });
      }
      if (acquired) src.Release(c);
    }
  }

  FragmentId id_ = 0;
  std::vector<VertexId> inner_;
  std::vector<VertexId> outer_;
  std::vector<VertexId> iprime_;
  std::vector<uint64_t> offsets_;
  std::vector<LocalArc> arcs_;      // empty in streaming mode
  std::vector<uint8_t> in_i_;       // indexed by inner local id
  std::vector<uint8_t> in_oprime_;  // indexed by inner local id
  // Pull-mode: local in-CSR of inner vertices (offsets always, arcs only
  // when materialised).
  bool has_in_adj_ = false;
  std::vector<uint64_t> in_offsets_;
  std::vector<LocalArc> in_arcs_;  // empty when in-arcs stream
  // Streaming mode: the shared arc source(s) plus views of the owning
  // partition's placement / owner-lid indexes (valid while it lives).
  const ChunkedArcSource* arc_source_ = nullptr;
  const ChunkedArcSource* in_arc_source_ = nullptr;
  std::span<const FragmentId> placement_;
  std::span<const LocalVertex> owner_lid_;
  // Memoised translation caches. Mutable with the same single-writer
  // discipline as program state: only the thread holding this fragment's
  // round claim touches them (the claim handoff orders the accesses).
  mutable LidCache out_lid_cache_;
  mutable LidCache in_lid_cache_;
};

/// Lazily built cut-arc CSR for per-fragment program state: the single
/// definition of the cache every dual-mode gather kernel embeds (their
/// in-sweeps cover only fragment-local arcs, so cut out-arcs are enforced
/// source-side through this index). Built once per State lifetime via
/// Fragment::BuildCutArcIndex.
struct CutArcIndex {
  bool built = false;
  std::vector<uint64_t> offsets;     // size num_inner + 1 once built
  std::vector<LocalVertex> targets;  // outer-copy lids in sweep order

  void Ensure(const Fragment& f, std::vector<LocalArc>& scratch) {
    if (built) return;
    built = true;
    f.BuildCutArcIndex(scratch, &offsets, &targets);
  }
};

/// One resolved routing destination: the receiving fragment and the vertex's
/// local id *there* (so the receiver indexes dense state directly).
struct RouteTarget {
  FragmentId frag = kInvalidFragment;
  LocalVertex lid = kInvalidLocalVertex;
  bool operator==(const RouteTarget&) const = default;
};

/// Build-time routing table for one source fragment, indexed by the source's
/// local vertex id. Replaces per-entry copy-holder + `LocalId` lookups on
/// the dispatch path with O(1) array reads.
struct FragmentRouting {
  /// To-owner target per local vertex: valid (frag != kInvalidFragment)
  /// exactly for outer copies — their updates flow back to the owner.
  std::vector<RouteTarget> owner;
  /// CSR of owner-broadcast targets per local vertex: the fragments (other
  /// than self and owner) holding a copy of the vertex, with local ids.
  /// Used when C_i = F_i.O ∪ F_i.I (kOwnerBroadcast programs, e.g. CF and
  /// the pull-mode programs, whose readers hold copies of their in-sources).
  std::vector<uint32_t> copy_offsets;  // size num_local + 1
  std::vector<RouteTarget> copy_targets;

  std::span<const RouteTarget> Copies(LocalVertex l) const {
    return {copy_targets.data() + copy_offsets[l],
            copy_offsets[l + 1] - copy_offsets[l]};
  }
};

/// A partitioned graph plus the routing metadata of Section 3: the index I_i
/// that maps a border vertex to the fragments holding it.
struct Partition {
  /// View of the partitioned graph (in-memory Graph or mmap store; the
  /// backing storage must outlive the partition).
  GraphView graph;
  /// Owner fragment of every global vertex.
  std::vector<FragmentId> placement;
  /// Local id of every global vertex inside its *owner* fragment (dense;
  /// replaces per-fragment hash lookups during construction and routing).
  std::vector<LocalVertex> owner_lid;
  std::vector<Fragment> fragments;

  /// Dense border-copy index (replaces the seed's copy_holders hash map):
  /// CopyHolders(v) is the sorted list of fragments where v appears as an
  /// outer copy. copy_offsets has size num_vertices + 1.
  std::vector<uint64_t> copy_offsets;
  std::vector<FragmentId> copy_frags;

  /// Per-source-fragment dense routing tables (engine hot path).
  std::vector<FragmentRouting> routing;

  FragmentId num_fragments() const {
    return static_cast<FragmentId>(fragments.size());
  }
  FragmentId Owner(VertexId v) const { return placement[v]; }

  std::span<const FragmentId> CopyHolders(VertexId v) const {
    if (copy_offsets.empty()) return {};
    return {copy_frags.data() + copy_offsets[v],
            copy_offsets[v + 1] - copy_offsets[v]};
  }

  /// The paper's index I_i: fragments (≠ from) that must receive an update of
  /// border vertex v. When `to_copies` is set, the owner pushes updates back
  /// out to all copy holders (needed when C_i = F_i.O ∪ F_i.I, e.g. CF);
  /// otherwise updates flow copy→owner only (CC / SSSP / PageRank).
  /// Reference implementation over the dense copy index, kept for tests and
  /// for entries whose source local id is unknown; engines route via
  /// `routing`.
  void Recipients(VertexId v, FragmentId from, bool to_copies,
                  std::vector<FragmentId>* out) const;

  /// Sum of every fragment's lid-cache counters (bench/stress reporting).
  LidCacheStats TotalLidCacheStats() const;
};

/// Partition quality metrics (Section 7, Exp-4).
struct PartitionMetrics {
  double skew = 1.0;            // r = ||F_max|| / ||F_median||
  double edge_cut_fraction = 0;  // cut arcs / total arcs
  uint64_t total_border = 0;     // sum of |F_i.O|
};

/// Out-of-core / pull-mode build options.
struct PartitionOptions {
  /// When set, fragments skip materialising their per-fragment arc arrays —
  /// the only partition structure proportional to |E| — and stream adjacency
  /// from this source at PEval/IncEval time instead (per-vertex structures
  /// stay dense in RAM). The source must wrap the very view the partition is
  /// built over and must outlive the partition (as must the Partition object
  /// itself: streaming fragments reference its placement / owner-lid
  /// arrays). Programs must reach adjacency through Fragment::Adjacency or
  /// Fragment::SweepInnerAdjacency (PageRank, CC, SSSP, BFS and CF do);
  /// Fragment::OutEdges is unavailable on streaming fragments.
  const ChunkedArcSource* arc_source = nullptr;

  /// Pull-mode: the transpose of the partitioned view (in-arcs exposed as
  /// the out-CSR of the reverse graph — MmapGraph::TransposeView() or
  /// TransposeGraph(g).View()). Fragments then also carry the in-adjacency
  /// of their inner vertices (materialised local in-arcs unless
  /// `in_arc_source` streams them) and the outer-copy set is widened with
  /// the remote in-edge sources F_i.I', so pull programs receive their
  /// values through the normal owner-broadcast routing. The transpose's
  /// backing storage must outlive the build (and the partition, when
  /// streaming). Partitions built this way are meant for pull programs;
  /// push programs still run correctly but ship some unread copy updates.
  const GraphView* in_adjacency = nullptr;

  /// Streaming pull-mode: chunked source wrapping the transpose view (takes
  /// the place of `in_adjacency`, which may then be omitted); in-arcs are
  /// translated on the fly instead of materialised. Same lifetime rules as
  /// `arc_source`.
  const ChunkedArcSource* in_arc_source = nullptr;

  /// Per-fragment, per-direction cap on the memoised outer-lid cache that
  /// streaming sweeps build (translated local ids per chunk, resolved once
  /// on first acquisition and reused across sweeps). Counted in cached lids
  /// (4 bytes each — a quarter of the 16-byte arc records the cache saves
  /// re-translating). The default auto-scales to 32x the source's effective
  /// chunk budget, so out-of-core runs stay memory-bounded by a constant
  /// multiple of the window they asked for while graphs within that
  /// footprint get full cross-sweep reuse; 0 disables, any other value is
  /// taken literally (pass a huge one to memoise everything).
  static constexpr uint64_t kLidCacheAuto = UINT64_MAX;
  uint64_t lid_cache_arcs = kLidCacheAuto;
};

/// Builds fragments + routing index from a vertex->fragment assignment.
/// With a pool, the per-fragment construction phases run concurrently; the
/// result is identical to the serial build.
Partition BuildPartition(const GraphView& g, std::vector<FragmentId> placement,
                         FragmentId num_fragments, WorkerPool* pool = nullptr,
                         const PartitionOptions& opts = {});

/// Computes skew / cut metrics of a partition.
PartitionMetrics ComputeMetrics(const Partition& p);

}  // namespace grape

#endif  // GRAPEPLUS_PARTITION_FRAGMENT_H_
