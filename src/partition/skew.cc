#include "partition/skew.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace grape {

std::vector<FragmentId> InjectSkew(const GraphView& g,
                                   std::vector<FragmentId> placement,
                                   FragmentId m, double target_skew,
                                   uint64_t seed) {
  GRAPE_CHECK(m >= 2) << "skew injection needs at least two fragments";
  GRAPE_CHECK(target_skew >= 1.0);
  std::vector<uint64_t> counts(m, 0);
  for (FragmentId f : placement) ++counts[f];

  // Target: fragment 0 should hold ~ target_skew * median of the others.
  // Since donors shrink as we move, solve for the final sizes: moving k
  // vertices evenly from m-1 donors leaves median ~ (n - c0 - k)/(m-1).
  const uint64_t n = g.num_vertices();
  const double c0 = static_cast<double>(counts[0]);
  const double k_exact =
      (target_skew * (static_cast<double>(n) - c0) - c0 * (m - 1.0)) /
      (target_skew + (m - 1.0));
  const uint64_t to_move =
      k_exact > 0 ? static_cast<uint64_t>(k_exact) : 0;

  Rng rng(seed ^ 0xC0FFEEULL);
  // Collect movable vertices (not already on fragment 0), shuffle, move.
  std::vector<VertexId> movable;
  movable.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (placement[v] != 0) movable.push_back(v);
  }
  for (size_t i = movable.size(); i > 1; --i) {
    std::swap(movable[i - 1], movable[rng.Uniform(i)]);
  }
  const uint64_t limit = std::min<uint64_t>(to_move, movable.size());
  for (uint64_t i = 0; i < limit; ++i) placement[movable[i]] = 0;
  return placement;
}

}  // namespace grape
