#include "partition/fragment.h"

#include <algorithm>

namespace grape {

/// Grants BuildPartition access to Fragment internals without exposing
/// mutators in the public API.
struct PartitionBuilderAccess {
  static Fragment Build(const Graph& g, FragmentId id,
                        const std::vector<FragmentId>& placement,
                        std::vector<VertexId> inner);
  static void MarkEntry(Fragment& f, LocalVertex l) { f.in_i_[l] = 1; }
  static void SetRemoteSources(Fragment& f, std::vector<VertexId> iprime) {
    f.iprime_ = std::move(iprime);
  }
};

Fragment PartitionBuilderAccess::Build(const Graph& g, FragmentId id,
                                       const std::vector<FragmentId>& placement,
                                       std::vector<VertexId> inner) {
  Fragment f;
  f.id_ = id;
  std::sort(inner.begin(), inner.end());
  f.inner_ = std::move(inner);

  // Discover outer copies (F.O), entry set (F.I via reverse pass below),
  // exit set (F.O').
  const uint32_t ni = static_cast<uint32_t>(f.inner_.size());
  f.in_i_.assign(ni, 0);
  f.in_oprime_.assign(ni, 0);
  for (uint32_t l = 0; l < ni; ++l) {
    f.global_to_local_.emplace(f.inner_[l], l);
  }

  std::vector<VertexId> outer;
  for (uint32_t l = 0; l < ni; ++l) {
    const VertexId v = f.inner_[l];
    for (const Arc& a : g.OutEdges(v)) {
      if (placement[a.dst] != id) {
        outer.push_back(a.dst);
        f.in_oprime_[l] = 1;
      }
    }
  }
  std::sort(outer.begin(), outer.end());
  outer.erase(std::unique(outer.begin(), outer.end()), outer.end());
  f.outer_ = std::move(outer);
  for (uint32_t j = 0; j < f.outer_.size(); ++j) {
    f.global_to_local_.emplace(f.outer_[j], ni + j);
  }

  // Local CSR for inner vertices.
  f.offsets_.assign(ni + 1, 0);
  for (uint32_t l = 0; l < ni; ++l) {
    f.offsets_[l + 1] = f.offsets_[l] + g.OutDegree(f.inner_[l]);
  }
  f.arcs_.resize(f.offsets_[ni]);
  for (uint32_t l = 0; l < ni; ++l) {
    uint64_t cursor = f.offsets_[l];
    for (const Arc& a : g.OutEdges(f.inner_[l])) {
      f.arcs_[cursor++] = LocalArc{f.LocalId(a.dst), a.weight};
    }
  }
  return f;
}

Partition BuildPartition(const Graph& g, std::vector<FragmentId> placement,
                         FragmentId num_fragments) {
  GRAPE_CHECK(placement.size() == g.num_vertices());
  Partition p;
  p.graph = &g;
  p.placement = std::move(placement);

  std::vector<std::vector<VertexId>> inner(num_fragments);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    GRAPE_CHECK(p.placement[v] < num_fragments)
        << "vertex " << v << " assigned to invalid fragment";
    inner[p.placement[v]].push_back(v);
  }
  p.fragments.reserve(num_fragments);
  for (FragmentId i = 0; i < num_fragments; ++i) {
    p.fragments.push_back(
        PartitionBuilderAccess::Build(g, i, p.placement, std::move(inner[i])));
  }

  // Entry sets (F.I) and remote sources (F.I'): an edge (u -> v) crossing
  // from fragment i to fragment j puts v into F_j.I and u into F_j.I'.
  std::vector<std::vector<VertexId>> iprime(num_fragments);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const FragmentId fu = p.placement[u];
    for (const Arc& a : g.OutEdges(u)) {
      const FragmentId fv = p.placement[a.dst];
      if (fu == fv) continue;
      Fragment& fj = p.fragments[fv];
      const LocalVertex lv = fj.LocalId(a.dst);
      GRAPE_DCHECK(lv != Fragment::kInvalidLocal && fj.IsInner(lv));
      PartitionBuilderAccess::MarkEntry(fj, lv);
      iprime[fv].push_back(u);
    }
  }
  for (FragmentId i = 0; i < num_fragments; ++i) {
    auto& ip = iprime[i];
    std::sort(ip.begin(), ip.end());
    ip.erase(std::unique(ip.begin(), ip.end()), ip.end());
    PartitionBuilderAccess::SetRemoteSources(p.fragments[i], std::move(ip));
  }

  // Routing index: which fragments hold a copy of each border vertex.
  for (FragmentId i = 0; i < num_fragments; ++i) {
    for (VertexId v : p.fragments[i].outer_vertices()) {
      p.copy_holders[v].push_back(i);
    }
  }
  for (auto& [v, holders] : p.copy_holders) std::sort(holders.begin(), holders.end());

  // Dense per-source routing tables: all the hash lookups the dispatch path
  // used to do per entry (copy_holders + destination LocalId) are resolved
  // here, once, at build time.
  p.routing.resize(num_fragments);
  static const std::vector<FragmentId> kNoHolders;
  for (FragmentId i = 0; i < num_fragments; ++i) {
    const Fragment& f = p.fragments[i];
    FragmentRouting& r = p.routing[i];
    const uint32_t nl = f.num_local();
    r.owner.assign(nl, RouteTarget{});
    r.copy_offsets.assign(nl + 1, 0);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      if (owner != i) {
        r.owner[l] = RouteTarget{owner, p.fragments[owner].LocalId(g_id)};
      }
      auto it = p.copy_holders.find(g_id);
      const auto& holders = it != p.copy_holders.end() ? it->second
                                                       : kNoHolders;
      for (FragmentId h : holders) {
        if (h != i && h != owner) ++r.copy_offsets[l + 1];
      }
    }
    for (LocalVertex l = 0; l < nl; ++l) {
      r.copy_offsets[l + 1] += r.copy_offsets[l];
    }
    r.copy_targets.resize(r.copy_offsets[nl]);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      auto it = p.copy_holders.find(g_id);
      if (it == p.copy_holders.end()) continue;
      uint32_t cursor = r.copy_offsets[l];
      for (FragmentId h : it->second) {
        if (h == i || h == owner) continue;
        r.copy_targets[cursor++] =
            RouteTarget{h, p.fragments[h].LocalId(g_id)};
      }
    }
  }
  return p;
}

void Partition::Recipients(VertexId v, FragmentId from, bool to_copies,
                           std::vector<FragmentId>* out) const {
  out->clear();
  const FragmentId owner = placement[v];
  if (owner != from) out->push_back(owner);
  if (to_copies) {
    auto it = copy_holders.find(v);
    if (it != copy_holders.end()) {
      for (FragmentId h : it->second) {
        if (h != from && h != owner) out->push_back(h);
      }
    }
  }
}

PartitionMetrics ComputeMetrics(const Partition& p) {
  PartitionMetrics m;
  std::vector<uint64_t> sizes;
  sizes.reserve(p.fragments.size());
  for (const Fragment& f : p.fragments) {
    sizes.push_back(f.size());
    m.total_border += f.num_outer();
  }
  if (sizes.empty()) return m;
  std::vector<uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const uint64_t median = sorted[sorted.size() / 2];
  const uint64_t maxv = sorted.back();
  m.skew = median > 0 ? static_cast<double>(maxv) / static_cast<double>(median)
                      : 1.0;
  uint64_t cut = 0, total = 0;
  const Graph& g = *p.graph;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.OutEdges(u)) {
      ++total;
      if (p.placement[u] != p.placement[a.dst]) ++cut;
    }
  }
  m.edge_cut_fraction =
      total > 0 ? static_cast<double>(cut) / static_cast<double>(total) : 0.0;
  return m;
}

}  // namespace grape
