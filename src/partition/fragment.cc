#include "partition/fragment.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <type_traits>

#include "runtime/topology.h"
#include "util/parallel.h"

namespace grape {

namespace {

/// Runs fn(i) for each fragment, one pool index per fragment. Fragment
/// phases parallelise naturally at fragment granularity; the serial fallback
/// iterates in id order (the parallel result is identical because every
/// phase writes only fragment-owned state).
template <typename Fn>
void ForEachFragment(WorkerPool* pool, FragmentId m, Fn&& fn) {
  if (pool == nullptr || m <= 1) {
    for (FragmentId i = 0; i < m; ++i) fn(i);
    return;
  }
  pool->Run(m, [&](uint32_t i) { fn(static_cast<FragmentId>(i)); });
}

/// Deduplicates `ids` into an ascending unique list. For dense inputs a mark
/// array + ascending scan beats sort+unique (linear, no comparisons); sparse
/// inputs keep the sort. Both produce the identical ascending result.
std::vector<VertexId> SortedUnique(std::vector<VertexId> ids, VertexId n) {
  if (ids.size() >= static_cast<size_t>(n) / 8) {
    std::vector<uint8_t> mark(n, 0);
    size_t unique = 0;
    for (VertexId v : ids) {
      unique += 1 - mark[v];
      mark[v] = 1;
    }
    std::vector<VertexId> out;
    out.reserve(unique);
    for (VertexId v = 0; v < n; ++v) {
      if (mark[v]) out.push_back(v);
    }
    return out;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

/// Grants BuildPartition access to Fragment internals without exposing
/// mutators in the public API.
struct PartitionBuilderAccess {
  static void BuildFragment(const GraphView& g, const GraphView* tv,
                            FragmentId id,
                            const std::vector<FragmentId>& placement,
                            const std::vector<LocalVertex>& owner_lid,
                            std::span<const VertexId> inner, bool materialize,
                            bool materialize_in, Fragment* f);
  /// Switches a fragment to streaming mode: adjacency comes from the
  /// source(s), arc targets resolve through the partition's dense indexes.
  /// Either source may be null (e.g. materialised out-arcs + streamed
  /// in-arcs); the index views are attached whenever any source is present.
  static void AttachSources(Fragment& f, const ChunkedArcSource* out_source,
                            const ChunkedArcSource* in_source,
                            const Partition& p, uint64_t lid_cache_arcs) {
    // kLidCacheAuto keeps the cache proportional to the window the caller
    // budgeted for (not to |E|): full reuse for graphs within the footprint,
    // a cached prefix beyond it.
    const auto budget_for = [&](const ChunkedArcSource* src) -> uint64_t {
      if (src == nullptr) return 0;
      if (lid_cache_arcs != PartitionOptions::kLidCacheAuto) {
        return lid_cache_arcs;
      }
      return 32 * src->effective_budget();
    };
    f.arc_source_ = out_source;
    f.in_arc_source_ = in_source;
    f.placement_ = p.placement;
    f.owner_lid_ = p.owner_lid;
    f.out_lid_cache_.budget = budget_for(out_source);
    f.in_lid_cache_.budget = budget_for(in_source);
  }
  /// Thread-safe and idempotent: concurrent source fragments may mark the
  /// same entry vertex.
  static void MarkEntry(Fragment& f, LocalVertex l) {
    // order: relaxed — idempotent flag; the partition build's join
    // publishes it before any reader runs.
    std::atomic_ref<uint8_t>(f.in_i_[l]).store(1, std::memory_order_relaxed);
  }
  static void SetRemoteSources(Fragment& f, std::vector<VertexId> iprime) {
    f.iprime_ = std::move(iprime);
  }
};

void PartitionBuilderAccess::BuildFragment(
    const GraphView& g, const GraphView* tv, FragmentId id,
    const std::vector<FragmentId>& placement,
    const std::vector<LocalVertex>& owner_lid,
    std::span<const VertexId> inner, bool materialize, bool materialize_in,
    Fragment* f) {
  f->id_ = id;
  f->inner_.assign(inner.begin(), inner.end());  // already sorted ascending

  // Discover outer copies (F.O) and the exit set (F.O'); the entry set (F.I)
  // is filled by BuildPartition's cut-edge pass.
  const uint32_t ni = f->num_inner();
  f->in_i_.assign(ni, 0);
  f->in_oprime_.assign(ni, 0);

  std::vector<VertexId> outer;
  for (uint32_t l = 0; l < ni; ++l) {
    const VertexId v = f->inner_[l];
    for (const Arc& a : g.OutEdges(v)) {
      if (placement[a.dst] != id) {
        outer.push_back(a.dst);
        f->in_oprime_[l] = 1;
      }
    }
  }
  if (tv != nullptr) {
    // Pull-enabled build: remote in-edge sources (F.I') join the outer-copy
    // set, so pull programs read their broadcast values from local state and
    // the routing index ships owner updates to every reader.
    for (uint32_t l = 0; l < ni; ++l) {
      for (const Arc& a : tv->OutEdges(f->inner_[l])) {
        if (placement[a.dst] != id) outer.push_back(a.dst);
      }
    }
  }
  f->outer_ = SortedUnique(std::move(outer), g.num_vertices());

  // Local CSR offsets for inner vertices (kept in streaming mode too: they
  // are vertex-sized and serve OutDegree / num_arcs).
  f->offsets_.assign(ni + 1, 0);
  for (uint32_t l = 0; l < ni; ++l) {
    f->offsets_[l + 1] = f->offsets_[l] + g.OutDegree(f->inner_[l]);
  }
  if (tv != nullptr) {
    f->has_in_adj_ = true;
    f->in_offsets_.assign(ni + 1, 0);
    for (uint32_t l = 0; l < ni; ++l) {
      f->in_offsets_[l + 1] = f->in_offsets_[l] + tv->OutDegree(f->inner_[l]);
    }
  }
  if (!materialize && !materialize_in) {
    return;  // streaming fragments translate arcs on the fly
  }

  // Local arc records. Arc targets resolve through the dense owner-lid
  // array (internal arcs) or a scratch outer-lid table (cut arcs) — no hash
  // lookups.
  std::unique_ptr<LocalVertex[]> outer_lid;
  if (!f->outer_.empty()) {
    // Only outer slots are ever read, so the table can stay uninitialised.
    outer_lid = std::make_unique_for_overwrite<LocalVertex[]>(
        g.num_vertices());
    for (uint32_t j = 0; j < f->outer_.size(); ++j) {
      outer_lid[f->outer_[j]] = ni + j;
    }
  }
  const auto lid_of = [&](VertexId dst) {
    return placement[dst] == id ? owner_lid[dst] : outer_lid[dst];
  };
  if (materialize) {
    f->arcs_.resize(f->offsets_[ni]);
    for (uint32_t l = 0; l < ni; ++l) {
      uint64_t cursor = f->offsets_[l];
      for (const Arc& a : g.OutEdges(f->inner_[l])) {
        f->arcs_[cursor++] = LocalArc{lid_of(a.dst), a.weight};
      }
    }
  }
  if (materialize_in) {
    f->in_arcs_.resize(f->in_offsets_[ni]);
    for (uint32_t l = 0; l < ni; ++l) {
      uint64_t cursor = f->in_offsets_[l];
      for (const Arc& a : tv->OutEdges(f->inner_[l])) {
        f->in_arcs_[cursor++] = LocalArc{lid_of(a.dst), a.weight};
      }
    }
  }
}

Partition BuildPartition(const GraphView& g, std::vector<FragmentId> placement,
                         FragmentId num_fragments, WorkerPool* pool,
                         const PartitionOptions& opts) {
  GRAPE_CHECK(placement.size() == g.num_vertices());
  if (opts.arc_source != nullptr) {
    // Streaming fragments translate from the source's view at run time; it
    // must alias the very storage this partition is built over.
    GRAPE_CHECK(opts.arc_source->view().arcs().data() == g.arcs().data() &&
                opts.arc_source->view().offsets().data() ==
                    g.offsets().data())
        << "PartitionOptions::arc_source must wrap the partitioned view";
  }
  // Resolve the pull-mode transpose: an explicit view, or the in-streaming
  // source's own view.
  GraphView in_view_storage;
  const GraphView* tv = opts.in_adjacency;
  if (opts.in_arc_source != nullptr) {
    in_view_storage = opts.in_arc_source->view();
    GRAPE_CHECK(tv == nullptr ||
                (tv->arcs().data() == in_view_storage.arcs().data() &&
                 tv->offsets().data() == in_view_storage.offsets().data()))
        << "PartitionOptions::in_arc_source must wrap the in_adjacency view";
    tv = &in_view_storage;
  }
  if (tv != nullptr) {
    GRAPE_CHECK(tv->num_vertices() == g.num_vertices() &&
                tv->num_arcs() == g.num_arcs())
        << "PartitionOptions in-adjacency must be the transpose of the "
           "partitioned view";
  }
  const VertexId n = g.num_vertices();
  const FragmentId m = num_fragments;
  Partition p;
  p.graph = g;
  p.placement = std::move(placement);

  ParallelFor(pool, n, [&](uint64_t v) {
    GRAPE_CHECK(p.placement[v] < m)
        << "vertex " << v << " assigned to invalid fragment";
  });

  // Inner vertex lists: one stable scatter of the ascending vertex ids keyed
  // by placement — each fragment's slice comes out sorted, no per-fragment
  // push_back or sort.
  std::vector<VertexId> ids(n);
  ParallelFor(pool, n, [&](uint64_t v) { ids[v] = static_cast<VertexId>(v); });
  std::vector<VertexId> inner_all(n);
  std::vector<uint64_t> frag_off;
  StableScatterByKey(
      pool, ids.data(), n, m,
      [&](VertexId v) { return p.placement[v]; }, inner_all.data(),
      &frag_off);
  ids.clear();
  ids.shrink_to_fit();

  // Dense owner-local-id index: v's local id inside its owner fragment.
  p.owner_lid.assign(n, kInvalidLocalVertex);
  ForEachFragment(pool, m, [&](FragmentId i) {
    for (uint64_t k = frag_off[i]; k < frag_off[i + 1]; ++k) {
      p.owner_lid[inner_all[k]] = static_cast<LocalVertex>(k - frag_off[i]);
    }
  });

  // Per-fragment CSR construction (independent per fragment).
  p.fragments.resize(m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    PartitionBuilderAccess::BuildFragment(
        g, tv, i, p.placement, p.owner_lid,
        {inner_all.data() + frag_off[i], frag_off[i + 1] - frag_off[i]},
        /*materialize=*/opts.arc_source == nullptr,
        /*materialize_in=*/tv != nullptr && opts.in_arc_source == nullptr,
        &p.fragments[i]);
  });

  // Entry sets (F.I) and remote sources (F.I'): an edge (u -> v) crossing
  // from fragment i to fragment j puts v into F_j.I and u into F_j.I'.
  // Source fragments mark entry bits directly (idempotent relaxed stores, so
  // concurrent markers never conflict) and record cut sources per
  // destination; each destination then deduplicates its source lists. Both
  // phases are fragment-parallel and chunking-independent.
  std::vector<std::vector<VertexId>> cut_srcs(static_cast<size_t>(m) * m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    const Fragment& f = p.fragments[i];
    for (VertexId u : f.inner_vertices()) {
      for (const Arc& a : g.OutEdges(u)) {
        const FragmentId j = p.placement[a.dst];
        if (j != i) {
          PartitionBuilderAccess::MarkEntry(p.fragments[j],
                                            p.owner_lid[a.dst]);
          auto& srcs = cut_srcs[static_cast<size_t>(i) * m + j];
          // Adjacent cut arcs of one source often share a destination
          // fragment; the back-check drops those duplicates for free.
          if (srcs.empty() || srcs.back() != u) srcs.push_back(u);
        }
      }
    }
  });
  ForEachFragment(pool, m, [&](FragmentId j) {
    std::vector<VertexId> iprime;
    for (FragmentId i = 0; i < m; ++i) {
      const auto& srcs = cut_srcs[static_cast<size_t>(i) * m + j];
      iprime.insert(iprime.end(), srcs.begin(), srcs.end());
    }
    PartitionBuilderAccess::SetRemoteSources(
        p.fragments[j], SortedUnique(std::move(iprime), n));
  });
  cut_srcs.clear();
  cut_srcs.shrink_to_fit();

  // Dense border-copy index: count holders per vertex (fragment-parallel,
  // relaxed atomics — counts are order-independent), prefix, then scatter in
  // fragment-id order so each holder list comes out sorted.
  p.copy_offsets.assign(static_cast<size_t>(n) + 1, 0);
  ForEachFragment(pool, m, [&](FragmentId i) {
    for (VertexId v : p.fragments[i].outer_vertices()) {
      // order: relaxed — counts are order-independent; the pool join
      // publishes them before the prefix scan reads.
      std::atomic_ref<uint64_t>(p.copy_offsets[v + 1])
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (VertexId v = 0; v < n; ++v) p.copy_offsets[v + 1] += p.copy_offsets[v];
  p.copy_frags.resize(p.copy_offsets[n]);
  {
    std::vector<uint64_t> cursor(p.copy_offsets.begin(),
                                 p.copy_offsets.end() - 1);
    for (FragmentId i = 0; i < m; ++i) {
      for (VertexId v : p.fragments[i].outer_vertices()) {
        p.copy_frags[cursor[v]++] = i;
      }
    }
  }

  // Dense per-source routing tables: all the lookups the dispatch path used
  // to do per entry are resolved here, once, at build time — per fragment,
  // in parallel.
  p.routing.resize(m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    const Fragment& f = p.fragments[i];
    FragmentRouting& r = p.routing[i];
    const uint32_t nl = f.num_local();
    r.owner.assign(nl, RouteTarget{});
    r.copy_offsets.assign(nl + 1, 0);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      if (owner != i) {
        r.owner[l] = RouteTarget{owner, p.owner_lid[g_id]};
      }
      uint32_t cnt = 0;
      for (FragmentId h : p.CopyHolders(g_id)) {
        if (h != i && h != owner) ++cnt;
      }
      r.copy_offsets[l + 1] = cnt;
    }
    for (LocalVertex l = 0; l < nl; ++l) {
      r.copy_offsets[l + 1] += r.copy_offsets[l];
    }
    r.copy_targets.resize(r.copy_offsets[nl]);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      uint32_t cursor = r.copy_offsets[l];
      for (FragmentId h : p.CopyHolders(g_id)) {
        if (h == i || h == owner) continue;
        r.copy_targets[cursor++] =
            RouteTarget{h, p.fragments[h].LocalId(g_id)};
      }
    }
  });

  if (opts.arc_source != nullptr || opts.in_arc_source != nullptr) {
    // Spans point at p.placement / p.owner_lid heap storage, which survives
    // the NRVO/move of the returned Partition.
    for (Fragment& f : p.fragments) {
      PartitionBuilderAccess::AttachSources(f, opts.arc_source,
                                            opts.in_arc_source, p,
                                            opts.lid_cache_arcs);
    }
  }
  return p;
}

void Fragment::BuildCutArcIndex(std::vector<LocalArc>& scratch,
                                std::vector<uint64_t>* offsets,
                                std::vector<LocalVertex>* targets) const {
  const LocalVertex ni = num_inner();
  offsets->assign(ni + 1, 0);
  targets->clear();
  SweepInnerAdjacency(scratch, [&](LocalVertex l, const auto& arcs_of) {
    if (OutDegree(l) > 0) {
      for (const LocalArc& a : arcs_of()) {
        if (!IsInner(a.dst)) targets->push_back(a.dst);
      }
    }
    (*offsets)[l + 1] = targets->size();
  });
}

std::span<const LocalArc> Fragment::TranslateFrom(
    const GraphView& view, VertexId v, std::vector<LocalArc>& scratch) const {
  const std::span<const Arc> arcs = view.OutEdges(v);
  scratch.clear();
  scratch.reserve(arcs.size());
  // The placement read inside LocalTarget is a random gather keyed by the
  // arc target — exactly the access pattern the hardware stride prefetcher
  // cannot cover, so issue the next translations' loads ahead by hand.
  constexpr size_t kAhead = 16;
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (i + kAhead < arcs.size()) {
      GRAPE_PREFETCH(&placement_[arcs[i + kAhead].dst]);
    }
    const LocalVertex lid = LocalTarget(arcs[i].dst);
    if (lid == kInvalidLocal) continue;  // unknown target: drop the arc
    scratch.push_back(LocalArc{lid, arcs[i].weight});
  }
  return {scratch.data(), scratch.size()};
}

void Fragment::SetPreferredNumaNode(int node) const {
  const auto bind = [&](const auto& vec) {
    using T = std::remove_reference_t<decltype(vec[0])>;
    numa::BindSpanToNode(
        const_cast<void*>(static_cast<const void*>(vec.data())),
        vec.size() * sizeof(T), node);
  };
  bind(arcs_);
  bind(in_arcs_);
  bind(offsets_);
  bind(in_offsets_);
  for (LidCache* cache : {&out_lid_cache_, &in_lid_cache_}) {
    cache->preferred_node = node;
    for (const auto& entry : cache->per_chunk) bind(entry);
  }
}

std::vector<LocalVertex>* Fragment::LidWindow(const ChunkedArcSource& src,
                                              std::span<const uint64_t> offs,
                                              LidCache& cache, size_t k,
                                              LocalVertex l0,
                                              VertexId window_end,
                                              bool* prebuilt) const {
  *prebuilt = false;
  if (cache.budget == 0) return nullptr;
  if (cache.per_chunk.empty()) cache.per_chunk.resize(src.num_chunks());
  std::vector<LocalVertex>& entry = cache.per_chunk[k];
  if (!entry.empty()) {
    *prebuilt = true;
    return &entry;
  }
  // First acquisition of this window: resolve every arc target of the
  // fragment's inner vertices inside it, once, in sweep order. l1 is one
  // past the last inner vertex the window covers.
  const auto l1 = static_cast<LocalVertex>(
      std::lower_bound(inner_.begin() + l0, inner_.end(), window_end) -
      inner_.begin());
  const uint64_t arcs_in_window = offs[l1] - offs[l0];
  if (arcs_in_window == 0 ||
      cache.cached_lids + arcs_in_window > cache.budget) {
    return nullptr;  // empty or over budget: translate directly
  }
  entry.reserve(arcs_in_window);
  constexpr size_t kAhead = 16;
  for (LocalVertex l = l0; l < l1; ++l) {
    const std::span<const Arc> arcs = src.view().OutEdges(inner_[l]);
    for (size_t i = 0; i < arcs.size(); ++i) {
      if (i + kAhead < arcs.size()) {
        GRAPE_PREFETCH(&placement_[arcs[i + kAhead].dst]);
      }
      entry.push_back(LocalTarget(arcs[i].dst));
    }
  }
  if (cache.preferred_node >= 0) {
    numa::BindVectorToNode(entry, cache.preferred_node);
  }
  cache.cached_lids += arcs_in_window;
  ++cache.cached_chunks;
  cache.misses += arcs_in_window;
  return &entry;
}

void Partition::Recipients(VertexId v, FragmentId from, bool to_copies,
                           std::vector<FragmentId>* out) const {
  out->clear();
  const FragmentId owner = placement[v];
  if (owner != from) out->push_back(owner);
  if (to_copies) {
    for (FragmentId h : CopyHolders(v)) {
      if (h != from && h != owner) out->push_back(h);
    }
  }
}

LidCacheStats Partition::TotalLidCacheStats() const {
  LidCacheStats total;
  for (const Fragment& f : fragments) {
    const LidCacheStats s = f.lid_cache_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.cached_lids += s.cached_lids;
    total.cached_chunks += s.cached_chunks;
  }
  return total;
}

PartitionMetrics ComputeMetrics(const Partition& p) {
  PartitionMetrics m;
  std::vector<uint64_t> sizes;
  sizes.reserve(p.fragments.size());
  for (const Fragment& f : p.fragments) {
    sizes.push_back(f.size());
    m.total_border += f.num_outer();
  }
  if (sizes.empty()) return m;
  std::vector<uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const uint64_t median = sorted[sorted.size() / 2];
  const uint64_t maxv = sorted.back();
  m.skew = median > 0 ? static_cast<double>(maxv) / static_cast<double>(median)
                      : 1.0;
  uint64_t cut = 0, total = 0;
  const GraphView& g = p.graph;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.OutEdges(u)) {
      ++total;
      if (p.placement[u] != p.placement[a.dst]) ++cut;
    }
  }
  m.edge_cut_fraction =
      total > 0 ? static_cast<double>(cut) / static_cast<double>(total) : 0.0;
  return m;
}

}  // namespace grape
