#include "partition/fragment.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/parallel.h"

namespace grape {

namespace {

/// Runs fn(i) for each fragment, one pool index per fragment. Fragment
/// phases parallelise naturally at fragment granularity; the serial fallback
/// iterates in id order (the parallel result is identical because every
/// phase writes only fragment-owned state).
template <typename Fn>
void ForEachFragment(WorkerPool* pool, FragmentId m, Fn&& fn) {
  if (pool == nullptr || m <= 1) {
    for (FragmentId i = 0; i < m; ++i) fn(i);
    return;
  }
  pool->Run(m, [&](uint32_t i) { fn(static_cast<FragmentId>(i)); });
}

/// Deduplicates `ids` into an ascending unique list. For dense inputs a mark
/// array + ascending scan beats sort+unique (linear, no comparisons); sparse
/// inputs keep the sort. Both produce the identical ascending result.
std::vector<VertexId> SortedUnique(std::vector<VertexId> ids, VertexId n) {
  if (ids.size() >= static_cast<size_t>(n) / 8) {
    std::vector<uint8_t> mark(n, 0);
    size_t unique = 0;
    for (VertexId v : ids) {
      unique += 1 - mark[v];
      mark[v] = 1;
    }
    std::vector<VertexId> out;
    out.reserve(unique);
    for (VertexId v = 0; v < n; ++v) {
      if (mark[v]) out.push_back(v);
    }
    return out;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

/// Grants BuildPartition access to Fragment internals without exposing
/// mutators in the public API.
struct PartitionBuilderAccess {
  static void BuildFragment(const GraphView& g, FragmentId id,
                            const std::vector<FragmentId>& placement,
                            const std::vector<LocalVertex>& owner_lid,
                            std::span<const VertexId> inner, bool materialize,
                            Fragment* f);
  /// Switches a fragment to streaming mode: adjacency comes from `source`,
  /// arc targets resolve through the partition's dense indexes.
  static void AttachArcSource(Fragment& f, const ChunkedArcSource* source,
                              const Partition& p) {
    f.arc_source_ = source;
    f.placement_ = p.placement;
    f.owner_lid_ = p.owner_lid;
  }
  /// Thread-safe and idempotent: concurrent source fragments may mark the
  /// same entry vertex.
  static void MarkEntry(Fragment& f, LocalVertex l) {
    std::atomic_ref<uint8_t>(f.in_i_[l]).store(1, std::memory_order_relaxed);
  }
  static void SetRemoteSources(Fragment& f, std::vector<VertexId> iprime) {
    f.iprime_ = std::move(iprime);
  }
};

void PartitionBuilderAccess::BuildFragment(
    const GraphView& g, FragmentId id,
    const std::vector<FragmentId>& placement,
    const std::vector<LocalVertex>& owner_lid,
    std::span<const VertexId> inner, bool materialize, Fragment* f) {
  f->id_ = id;
  f->inner_.assign(inner.begin(), inner.end());  // already sorted ascending

  // Discover outer copies (F.O) and the exit set (F.O'); the entry set (F.I)
  // is filled by BuildPartition's cut-edge pass.
  const uint32_t ni = f->num_inner();
  f->in_i_.assign(ni, 0);
  f->in_oprime_.assign(ni, 0);

  std::vector<VertexId> outer;
  for (uint32_t l = 0; l < ni; ++l) {
    const VertexId v = f->inner_[l];
    for (const Arc& a : g.OutEdges(v)) {
      if (placement[a.dst] != id) {
        outer.push_back(a.dst);
        f->in_oprime_[l] = 1;
      }
    }
  }
  f->outer_ = SortedUnique(std::move(outer), g.num_vertices());

  // Local CSR offsets for inner vertices (kept in streaming mode too: they
  // are vertex-sized and serve OutDegree / num_arcs).
  f->offsets_.assign(ni + 1, 0);
  for (uint32_t l = 0; l < ni; ++l) {
    f->offsets_[l + 1] = f->offsets_[l] + g.OutDegree(f->inner_[l]);
  }
  if (!materialize) return;  // streaming fragments translate arcs on the fly

  // Local arc records. Arc targets resolve through the dense owner-lid
  // array (internal arcs) or a scratch outer-lid table (cut arcs) — no hash
  // lookups.
  std::unique_ptr<LocalVertex[]> outer_lid;
  if (!f->outer_.empty()) {
    // Only outer slots are ever read, so the table can stay uninitialised.
    outer_lid = std::make_unique_for_overwrite<LocalVertex[]>(
        g.num_vertices());
    for (uint32_t j = 0; j < f->outer_.size(); ++j) {
      outer_lid[f->outer_[j]] = ni + j;
    }
  }
  f->arcs_.resize(f->offsets_[ni]);
  for (uint32_t l = 0; l < ni; ++l) {
    uint64_t cursor = f->offsets_[l];
    for (const Arc& a : g.OutEdges(f->inner_[l])) {
      const LocalVertex lid =
          placement[a.dst] == id ? owner_lid[a.dst] : outer_lid[a.dst];
      f->arcs_[cursor++] = LocalArc{lid, a.weight};
    }
  }
}

Partition BuildPartition(const GraphView& g, std::vector<FragmentId> placement,
                         FragmentId num_fragments, WorkerPool* pool,
                         const PartitionOptions& opts) {
  GRAPE_CHECK(placement.size() == g.num_vertices());
  if (opts.arc_source != nullptr) {
    // Streaming fragments translate from the source's view at run time; it
    // must alias the very storage this partition is built over.
    GRAPE_CHECK(opts.arc_source->view().arcs().data() == g.arcs().data() &&
                opts.arc_source->view().offsets().data() ==
                    g.offsets().data())
        << "PartitionOptions::arc_source must wrap the partitioned view";
  }
  const VertexId n = g.num_vertices();
  const FragmentId m = num_fragments;
  Partition p;
  p.graph = g;
  p.placement = std::move(placement);

  ParallelFor(pool, n, [&](uint64_t v) {
    GRAPE_CHECK(p.placement[v] < m)
        << "vertex " << v << " assigned to invalid fragment";
  });

  // Inner vertex lists: one stable scatter of the ascending vertex ids keyed
  // by placement — each fragment's slice comes out sorted, no per-fragment
  // push_back or sort.
  std::vector<VertexId> ids(n);
  ParallelFor(pool, n, [&](uint64_t v) { ids[v] = static_cast<VertexId>(v); });
  std::vector<VertexId> inner_all(n);
  std::vector<uint64_t> frag_off;
  StableScatterByKey(
      pool, ids.data(), n, m,
      [&](VertexId v) { return p.placement[v]; }, inner_all.data(),
      &frag_off);
  ids.clear();
  ids.shrink_to_fit();

  // Dense owner-local-id index: v's local id inside its owner fragment.
  p.owner_lid.assign(n, kInvalidLocalVertex);
  ForEachFragment(pool, m, [&](FragmentId i) {
    for (uint64_t k = frag_off[i]; k < frag_off[i + 1]; ++k) {
      p.owner_lid[inner_all[k]] = static_cast<LocalVertex>(k - frag_off[i]);
    }
  });

  // Per-fragment CSR construction (independent per fragment).
  p.fragments.resize(m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    PartitionBuilderAccess::BuildFragment(
        g, i, p.placement, p.owner_lid,
        {inner_all.data() + frag_off[i], frag_off[i + 1] - frag_off[i]},
        /*materialize=*/opts.arc_source == nullptr, &p.fragments[i]);
  });

  // Entry sets (F.I) and remote sources (F.I'): an edge (u -> v) crossing
  // from fragment i to fragment j puts v into F_j.I and u into F_j.I'.
  // Source fragments mark entry bits directly (idempotent relaxed stores, so
  // concurrent markers never conflict) and record cut sources per
  // destination; each destination then deduplicates its source lists. Both
  // phases are fragment-parallel and chunking-independent.
  std::vector<std::vector<VertexId>> cut_srcs(static_cast<size_t>(m) * m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    const Fragment& f = p.fragments[i];
    for (VertexId u : f.inner_vertices()) {
      for (const Arc& a : g.OutEdges(u)) {
        const FragmentId j = p.placement[a.dst];
        if (j != i) {
          PartitionBuilderAccess::MarkEntry(p.fragments[j],
                                            p.owner_lid[a.dst]);
          auto& srcs = cut_srcs[static_cast<size_t>(i) * m + j];
          // Adjacent cut arcs of one source often share a destination
          // fragment; the back-check drops those duplicates for free.
          if (srcs.empty() || srcs.back() != u) srcs.push_back(u);
        }
      }
    }
  });
  ForEachFragment(pool, m, [&](FragmentId j) {
    std::vector<VertexId> iprime;
    for (FragmentId i = 0; i < m; ++i) {
      const auto& srcs = cut_srcs[static_cast<size_t>(i) * m + j];
      iprime.insert(iprime.end(), srcs.begin(), srcs.end());
    }
    PartitionBuilderAccess::SetRemoteSources(
        p.fragments[j], SortedUnique(std::move(iprime), n));
  });
  cut_srcs.clear();
  cut_srcs.shrink_to_fit();

  // Dense border-copy index: count holders per vertex (fragment-parallel,
  // relaxed atomics — counts are order-independent), prefix, then scatter in
  // fragment-id order so each holder list comes out sorted.
  p.copy_offsets.assign(static_cast<size_t>(n) + 1, 0);
  ForEachFragment(pool, m, [&](FragmentId i) {
    for (VertexId v : p.fragments[i].outer_vertices()) {
      std::atomic_ref<uint64_t>(p.copy_offsets[v + 1])
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (VertexId v = 0; v < n; ++v) p.copy_offsets[v + 1] += p.copy_offsets[v];
  p.copy_frags.resize(p.copy_offsets[n]);
  {
    std::vector<uint64_t> cursor(p.copy_offsets.begin(),
                                 p.copy_offsets.end() - 1);
    for (FragmentId i = 0; i < m; ++i) {
      for (VertexId v : p.fragments[i].outer_vertices()) {
        p.copy_frags[cursor[v]++] = i;
      }
    }
  }

  // Dense per-source routing tables: all the lookups the dispatch path used
  // to do per entry are resolved here, once, at build time — per fragment,
  // in parallel.
  p.routing.resize(m);
  ForEachFragment(pool, m, [&](FragmentId i) {
    const Fragment& f = p.fragments[i];
    FragmentRouting& r = p.routing[i];
    const uint32_t nl = f.num_local();
    r.owner.assign(nl, RouteTarget{});
    r.copy_offsets.assign(nl + 1, 0);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      if (owner != i) {
        r.owner[l] = RouteTarget{owner, p.owner_lid[g_id]};
      }
      uint32_t cnt = 0;
      for (FragmentId h : p.CopyHolders(g_id)) {
        if (h != i && h != owner) ++cnt;
      }
      r.copy_offsets[l + 1] = cnt;
    }
    for (LocalVertex l = 0; l < nl; ++l) {
      r.copy_offsets[l + 1] += r.copy_offsets[l];
    }
    r.copy_targets.resize(r.copy_offsets[nl]);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = f.GlobalId(l);
      const FragmentId owner = p.placement[g_id];
      uint32_t cursor = r.copy_offsets[l];
      for (FragmentId h : p.CopyHolders(g_id)) {
        if (h == i || h == owner) continue;
        r.copy_targets[cursor++] =
            RouteTarget{h, p.fragments[h].LocalId(g_id)};
      }
    }
  });

  if (opts.arc_source != nullptr) {
    // Spans point at p.placement / p.owner_lid heap storage, which survives
    // the NRVO/move of the returned Partition.
    for (Fragment& f : p.fragments) {
      PartitionBuilderAccess::AttachArcSource(f, opts.arc_source, p);
    }
  }
  return p;
}

std::span<const LocalArc> Fragment::TranslateArcs(
    VertexId global_v, std::vector<LocalArc>& scratch) const {
  GRAPE_DCHECK(streaming());
  const std::span<const Arc> arcs = arc_source_->view().OutEdges(global_v);
  scratch.clear();
  scratch.reserve(arcs.size());
  for (const Arc& a : arcs) {
    scratch.push_back(LocalArc{LocalTarget(a.dst), a.weight});
  }
  return {scratch.data(), scratch.size()};
}

void Partition::Recipients(VertexId v, FragmentId from, bool to_copies,
                           std::vector<FragmentId>* out) const {
  out->clear();
  const FragmentId owner = placement[v];
  if (owner != from) out->push_back(owner);
  if (to_copies) {
    for (FragmentId h : CopyHolders(v)) {
      if (h != from && h != owner) out->push_back(h);
    }
  }
}

PartitionMetrics ComputeMetrics(const Partition& p) {
  PartitionMetrics m;
  std::vector<uint64_t> sizes;
  sizes.reserve(p.fragments.size());
  for (const Fragment& f : p.fragments) {
    sizes.push_back(f.size());
    m.total_border += f.num_outer();
  }
  if (sizes.empty()) return m;
  std::vector<uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const uint64_t median = sorted[sorted.size() / 2];
  const uint64_t maxv = sorted.back();
  m.skew = median > 0 ? static_cast<double>(maxv) / static_cast<double>(median)
                      : 1.0;
  uint64_t cut = 0, total = 0;
  const GraphView& g = p.graph;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.OutEdges(u)) {
      ++total;
      if (p.placement[u] != p.placement[a.dst]) ++cut;
    }
  }
  m.edge_cut_fraction =
      total > 0 ? static_cast<double>(cut) / static_cast<double>(total) : 0.0;
  return m;
}

}  // namespace grape
