// Copyright 2026 The GRAPE+ Reproduction Authors.
// Vertex -> fragment assignment strategies (the paper's partition strategy P).
// XtraPuLP (used by the paper) is replaced by LDG streaming partitioning,
// which yields comparable balanced edge-cut partitions at laptop scale.
#ifndef GRAPEPLUS_PARTITION_PARTITIONER_H_
#define GRAPEPLUS_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/fragment.h"

namespace grape {

/// Strategy interface: produce a vertex->fragment assignment.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;
  virtual std::vector<FragmentId> Assign(const GraphView& g,
                                         FragmentId num_fragments) const = 0;

  /// Convenience: assign then build fragments (optionally in parallel).
  Partition Partition_(const GraphView& g, FragmentId num_fragments,
                       WorkerPool* pool = nullptr) const {
    return BuildPartition(g, Assign(g, num_fragments), num_fragments, pool);
  }
};

/// Multiplicative-hash partitioner (cheap, balanced in expectation, high cut).
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(uint64_t seed = 0) : seed_(seed) {}
  std::string name() const override { return "hash"; }
  std::vector<FragmentId> Assign(const GraphView& g,
                                 FragmentId num_fragments) const override;

 private:
  uint64_t seed_;
};

/// Contiguous ranges of vertex ids (locality-friendly for grid/road graphs).
class RangePartitioner : public Partitioner {
 public:
  std::string name() const override { return "range"; }
  std::vector<FragmentId> Assign(const GraphView& g,
                                 FragmentId num_fragments) const override;
};

/// Linear Deterministic Greedy streaming partitioner: each vertex goes to the
/// fragment with the most already-placed neighbours, damped by a capacity
/// penalty (1 - size/capacity). Balanced and lower-cut than hashing.
class LdgPartitioner : public Partitioner {
 public:
  explicit LdgPartitioner(double slack = 1.1) : slack_(slack) {}
  std::string name() const override { return "ldg"; }
  std::vector<FragmentId> Assign(const GraphView& g,
                                 FragmentId num_fragments) const override;

 private:
  double slack_;
};

/// Fixed assignment supplied by the caller (used for the Fig. 1(b) instance).
class ExplicitPartitioner : public Partitioner {
 public:
  explicit ExplicitPartitioner(std::vector<FragmentId> placement)
      : placement_(std::move(placement)) {}
  std::string name() const override { return "explicit"; }
  std::vector<FragmentId> Assign(const GraphView& g,
                                 FragmentId num_fragments) const override;

 private:
  std::vector<FragmentId> placement_;
};

/// Factory by name ("hash", "range", "ldg").
std::unique_ptr<Partitioner> MakePartitioner(const std::string& name);

}  // namespace grape

#endif  // GRAPEPLUS_PARTITION_PARTITIONER_H_
