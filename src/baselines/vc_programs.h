// Copyright 2026 The GRAPE+ Reproduction Authors.
// Vertex-centric baseline programs (Giraph / GraphLab / Maiter stand-ins).
//
// These run on the same AAP engine as the PIE programs but behave like
// vertex-centric systems: one round = one superstep that advances the
// frontier a single hop, with per-vertex activation and per-message charges
// from a VcCostModel. Local propagation therefore takes O(diameter) rounds
// and re-sends border values every hop — exactly the inefficiencies the
// paper attributes to vertex-centric engines, made measurable.
#ifndef GRAPEPLUS_BASELINES_VC_PROGRAMS_H_
#define GRAPEPLUS_BASELINES_VC_PROGRAMS_H_

#include <span>
#include <vector>

#include "baselines/cost_model.h"
#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

/// Vertex-centric SSSP (label-correcting, one hop per superstep).
class VcSsspProgram {
 public:
  using Value = double;
  using ResultT = std::vector<double>;
  static constexpr bool kOwnerBroadcast = false;

  VcSsspProgram(VertexId source, VcCostModel costs)
      : source_(source), costs_(std::move(costs)) {}

  struct State {
    std::vector<double> dist;
    std::vector<double> last_sent;
    std::vector<LocalVertex> frontier;
    std::vector<uint8_t> queued;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const { return a < b ? a : b; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;
  bool HasLocalWork(const State& st) const { return !st.frontier.empty(); }

 private:
  double Superstep(const Fragment& f, State& st, Emitter<Value>* out) const;
  VertexId source_;
  VcCostModel costs_;
};

/// Vertex-centric connected components (hash-min label propagation).
class VcCcProgram {
 public:
  using Value = VertexId;
  using ResultT = std::vector<VertexId>;
  static constexpr bool kOwnerBroadcast = false;

  explicit VcCcProgram(VcCostModel costs) : costs_(std::move(costs)) {}

  struct State {
    std::vector<VertexId> cid;
    std::vector<VertexId> last_sent;
    std::vector<LocalVertex> frontier;
    std::vector<uint8_t> queued;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const { return a < b ? a : b; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;
  bool HasLocalWork(const State& st) const { return !st.frontier.empty(); }

 private:
  double Superstep(const Fragment& f, State& st, Emitter<Value>* out) const;
  VcCostModel costs_;
};

/// Vertex-centric delta PageRank (Maiter's accumulative model at vertex
/// granularity; also what Giraph/GraphLab PR becomes under tolerance
/// termination).
class VcPageRankProgram {
 public:
  using Value = double;
  using ResultT = std::vector<double>;
  static constexpr bool kOwnerBroadcast = false;

  VcPageRankProgram(VcCostModel costs, double damping = 0.85,
                    double tol = 1e-9)
      : costs_(std::move(costs)), damping_(damping), tol_(tol) {}

  struct State {
    std::vector<double> score;
    std::vector<double> residual;
    std::vector<double> out_acc;
    uint64_t active = 0;  // inner vertices with residual >= tol
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const { return a + b; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;
  bool HasLocalWork(const State& st) const { return st.active > 0; }

 private:
  double Superstep(const Fragment& f, State& st, Emitter<Value>* out) const;
  VcCostModel costs_;
  double damping_;
  double tol_;
};

}  // namespace grape

#endif  // GRAPEPLUS_BASELINES_VC_PROGRAMS_H_
