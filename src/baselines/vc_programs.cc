#include "baselines/vc_programs.h"

#include <limits>
#include <utility>

namespace grape {

// ---------------------------------------------------------------- VcSssp ---

VcSsspProgram::State VcSsspProgram::Init(const Fragment& f) const {
  State st;
  st.dist.assign(f.num_local(), kInfinity);
  st.last_sent.assign(f.num_outer(), kInfinity);
  st.queued.assign(f.num_inner(), 0);
  return st;
}

double VcSsspProgram::Superstep(const Fragment& f, State& st,
                                Emitter<Value>* out) const {
  // One vertex-centric superstep: every frontier vertex relaxes its edges;
  // improved local targets join the next frontier, improved border copies
  // are shipped. No priority queue — that optimisation is "beyond the
  // capacity of vertex-centric systems" (Section 7 Exp-1).
  std::vector<LocalVertex> next;
  double work = 0;
  for (LocalVertex l : st.frontier) {
    st.queued[l] = 0;
    work += costs_.vertex_overhead;
    const double d = st.dist[l];
    for (const LocalArc& a : f.OutEdges(l)) {
      work += costs_.edge_op;
      const double nd = d + a.weight;
      if (nd < st.dist[a.dst]) {
        st.dist[a.dst] = nd;
        if (f.IsInner(a.dst)) {
          work += costs_.local_msg;
          if (!st.queued[a.dst]) {
            st.queued[a.dst] = 1;
            next.push_back(a.dst);
          }
        }
      }
    }
  }
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    double& sent = st.last_sent[o - f.num_inner()];
    if (st.dist[o] < sent) {
      sent = st.dist[o];
      work += costs_.remote_msg;
      out->Emit(o, f.GlobalId(o), st.dist[o]);
    }
  }
  st.frontier = std::move(next);
  return work;
}

double VcSsspProgram::PEval(const Fragment& f, State& st,
                            Emitter<Value>* out) const {
  const LocalVertex src = f.LocalId(source_);
  if (src == Fragment::kInvalidLocal || !f.IsInner(src)) return 1.0;
  st.dist[src] = 0.0;
  st.frontier = {src};
  st.queued[src] = 1;
  return Superstep(f, st, out);
}

double VcSsspProgram::IncEval(const Fragment& f, State& st,
                              std::span<const UpdateEntry<Value>> updates,
                              Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    work += costs_.local_msg;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    if (u.value < st.dist[l]) {
      st.dist[l] = u.value;
      if (!st.queued[l]) {
        st.queued[l] = 1;
        st.frontier.push_back(l);
      }
    }
  }
  return work + Superstep(f, st, out);
}

VcSsspProgram::ResultT VcSsspProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> dist(p.graph.num_vertices(), kInfinity);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      dist[f.GlobalId(l)] = states[i].dist[l];
    }
  }
  return dist;
}

// ------------------------------------------------------------------ VcCc ---

VcCcProgram::State VcCcProgram::Init(const Fragment& f) const {
  State st;
  st.cid.resize(f.num_local());
  for (LocalVertex l = 0; l < f.num_local(); ++l) st.cid[l] = f.GlobalId(l);
  st.last_sent.assign(f.num_outer(), kInvalidVertex);
  st.queued.assign(f.num_inner(), 0);
  return st;
}

double VcCcProgram::Superstep(const Fragment& f, State& st,
                              Emitter<Value>* out) const {
  std::vector<LocalVertex> next;
  double work = 0;
  for (LocalVertex l : st.frontier) {
    st.queued[l] = 0;
    work += costs_.vertex_overhead;
    const VertexId c = st.cid[l];
    for (const LocalArc& a : f.OutEdges(l)) {
      work += costs_.edge_op;
      if (c < st.cid[a.dst]) {
        st.cid[a.dst] = c;
        if (f.IsInner(a.dst)) {
          work += costs_.local_msg;
          if (!st.queued[a.dst]) {
            st.queued[a.dst] = 1;
            next.push_back(a.dst);
          }
        }
      }
    }
  }
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    VertexId& sent = st.last_sent[o - f.num_inner()];
    if (st.cid[o] < sent) {
      sent = st.cid[o];
      work += costs_.remote_msg;
      out->Emit(o, f.GlobalId(o), st.cid[o]);
    }
  }
  st.frontier = std::move(next);
  return work;
}

double VcCcProgram::PEval(const Fragment& f, State& st,
                          Emitter<Value>* out) const {
  st.frontier.reserve(f.num_inner());
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    st.frontier.push_back(l);
    st.queued[l] = 1;
  }
  return Superstep(f, st, out);
}

double VcCcProgram::IncEval(const Fragment& f, State& st,
                            std::span<const UpdateEntry<Value>> updates,
                            Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    work += costs_.local_msg;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    if (u.value < st.cid[l]) {
      st.cid[l] = u.value;
      if (!st.queued[l]) {
        st.queued[l] = 1;
        st.frontier.push_back(l);
      }
    }
  }
  return work + Superstep(f, st, out);
}

VcCcProgram::ResultT VcCcProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<VertexId> cid(p.graph.num_vertices(), kInvalidVertex);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      cid[f.GlobalId(l)] = states[i].cid[l];
    }
  }
  return cid;
}

// ------------------------------------------------------------ VcPageRank ---

VcPageRankProgram::State VcPageRankProgram::Init(const Fragment& f) const {
  State st;
  st.score.assign(f.num_inner(), 0.0);
  st.residual.assign(f.num_inner(), 0.0);
  st.out_acc.assign(f.num_outer(), 0.0);
  return st;
}

double VcPageRankProgram::Superstep(const Fragment& f, State& st,
                                    Emitter<Value>* out) const {
  // One hop: every vertex with pending residual settles it once.
  double work = 0;
  std::vector<double> incoming(f.num_inner(), 0.0);
  st.active = 0;
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    const double x = st.residual[l];
    if (x < tol_) continue;
    work += costs_.vertex_overhead;
    st.residual[l] = 0.0;
    st.score[l] += x;
    const uint64_t deg = f.OutDegree(l);
    if (deg == 0) continue;
    const double share = damping_ * x / static_cast<double>(deg);
    for (const LocalArc& a : f.OutEdges(l)) {
      work += costs_.edge_op;
      if (f.IsInner(a.dst)) {
        incoming[a.dst] += share;
        work += costs_.local_msg;
      } else {
        st.out_acc[a.dst - f.num_inner()] += share;
      }
    }
  }
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    st.residual[l] += incoming[l];
    if (st.residual[l] >= tol_) ++st.active;
  }
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    double& acc = st.out_acc[o - f.num_inner()];
    if (acc >= tol_) {
      work += costs_.remote_msg;
      out->Emit(o, f.GlobalId(o), acc);
      acc = 0.0;
    }
  }
  return std::max(work, 1.0);
}

double VcPageRankProgram::PEval(const Fragment& f, State& st,
                                Emitter<Value>* out) const {
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    st.residual[l] = 1.0 - damping_;
  }
  return Superstep(f, st, out);
}

double VcPageRankProgram::IncEval(const Fragment& f, State& st,
                                  std::span<const UpdateEntry<Value>> updates,
                                  Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    work += costs_.local_msg;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal || !f.IsInner(l)) continue;
    st.residual[l] += u.value;
  }
  return work + Superstep(f, st, out);
}

VcPageRankProgram::ResultT VcPageRankProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> score(p.graph.num_vertices(), 0.0);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      score[f.GlobalId(l)] = states[i].score[l];
    }
  }
  return score;
}

}  // namespace grape
