// Copyright 2026 The GRAPE+ Reproduction Authors.
// A reference Pregel executor (Malewicz et al., the system behind Giraph):
// vertex-centric compute() with supersteps, message combining and
// vote-to-halt. Single-threaded and engine-independent — used by the tests
// to cross-validate the AAP engine's BSP special case (same fixpoints,
// comparable superstep counts) and by Table 1 as the Giraph-model baseline.
#ifndef GRAPEPLUS_BASELINES_PREGEL_H_
#define GRAPEPLUS_BASELINES_PREGEL_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace grape {
namespace pregel {

/// Execution statistics of one Pregel run.
struct PregelStats {
  uint64_t supersteps = 0;
  uint64_t messages = 0;
  uint64_t vertex_activations = 0;
};

/// Message routing context handed to compute().
template <typename M>
class Context {
 public:
  Context(const Graph* g, VertexId v,
          std::unordered_map<VertexId, M>* next_inbox,
          M (*combine)(const M&, const M&), uint64_t* msg_counter)
      : g_(g), v_(v), next_(next_inbox), combine_(combine),
        msgs_(msg_counter) {}

  void SendTo(VertexId target, const M& msg) {
    ++*msgs_;
    auto [it, inserted] = next_->try_emplace(target, msg);
    if (!inserted) it->second = combine_(it->second, msg);
  }

  void SendToAllNeighbors(const M& msg) {
    for (const Arc& a : g_->OutEdges(v_)) SendTo(a.dst, msg);
  }

  const Graph& graph() const { return *g_; }
  VertexId vertex() const { return v_; }

 private:
  const Graph* g_;
  VertexId v_;
  std::unordered_map<VertexId, M>* next_;
  M (*combine_)(const M&, const M&);
  uint64_t* msgs_;
};

/// Vertex program concept:
///   struct Prog {
///     using MsgT = ...; using VValue = ...;
///     VValue Init(VertexId v, const Graph& g) const;
///     // Returns true if the vertex stays active for the next superstep
///     // even without messages (rare; PageRank-style self-activation).
///     bool Compute(Context<MsgT>& ctx, VValue& value,
///                  std::span<const MsgT> msgs, uint64_t superstep) const;
///     static MsgT Combine(const MsgT& a, const MsgT& b);
///   };
template <typename Prog>
class Engine {
 public:
  using M = typename Prog::MsgT;
  using VV = typename Prog::VValue;

  struct Result {
    std::vector<VV> values;
    PregelStats stats;
  };

  Engine(const Graph& g, Prog prog, uint64_t max_supersteps = 1'000'000)
      : g_(g), prog_(std::move(prog)), max_supersteps_(max_supersteps) {}

  Result Run() {
    const VertexId n = g_.num_vertices();
    Result r;
    r.values.reserve(n);
    for (VertexId v = 0; v < n; ++v) r.values.push_back(prog_.Init(v, g_));

    std::unordered_map<VertexId, M> inbox, next_inbox;
    std::vector<uint8_t> self_active(n, 1);  // superstep 0: all compute
    bool any_active = true;
    while (any_active && r.stats.supersteps < max_supersteps_) {
      any_active = false;
      next_inbox.clear();
      for (VertexId v = 0; v < n; ++v) {
        const bool has_msgs = inbox.contains(v);
        if (!has_msgs && !self_active[v]) continue;
        ++r.stats.vertex_activations;
        Context<M> ctx(&g_, v, &next_inbox, &Prog::Combine,
                       &r.stats.messages);
        std::span<const M> msgs;
        M single;
        if (has_msgs) {
          single = inbox.at(v);
          msgs = std::span<const M>(&single, 1);
        }
        self_active[v] =
            prog_.Compute(ctx, r.values[v], msgs, r.stats.supersteps) ? 1 : 0;
        if (self_active[v]) any_active = true;
      }
      inbox.swap(next_inbox);
      if (!inbox.empty()) any_active = true;
      ++r.stats.supersteps;
    }
    return r;
  }

 private:
  const Graph& g_;
  Prog prog_;
  uint64_t max_supersteps_;
};

}  // namespace pregel
}  // namespace grape

#endif  // GRAPEPLUS_BASELINES_PREGEL_H_
