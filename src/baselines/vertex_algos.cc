#include "baselines/vertex_algos.h"

namespace grape {
namespace pregel {

bool SsspVertexProgram::Compute(Context<MsgT>& ctx, VValue& value,
                                std::span<const MsgT> msgs,
                                uint64_t superstep) const {
  bool improved = false;
  if (superstep == 0 && ctx.vertex() == source) improved = true;
  for (const MsgT& m : msgs) {
    if (m < value) {
      value = m;
      improved = true;
    }
  }
  if (improved && value < kInfinity) {
    for (const Arc& a : ctx.graph().OutEdges(ctx.vertex())) {
      ctx.SendTo(a.dst, value + a.weight);
    }
  }
  return false;  // vote to halt; messages reactivate
}

bool CcVertexProgram::Compute(Context<MsgT>& ctx, VValue& value,
                              std::span<const MsgT> msgs,
                              uint64_t superstep) const {
  bool improved = superstep == 0;  // announce own id in the first superstep
  for (const MsgT& m : msgs) {
    if (m < value) {
      value = m;
      improved = true;
    }
  }
  if (improved) ctx.SendToAllNeighbors(value);
  return false;
}

bool PageRankVertexProgram::Compute(Context<MsgT>& ctx, VValue& value,
                                    std::span<const MsgT> msgs,
                                    uint64_t superstep) const {
  if (superstep == 0) value.residual = 1.0 - damping;
  for (const MsgT& m : msgs) value.residual += m;
  if (value.residual >= tol) {
    value.score += value.residual;
    const uint64_t deg = ctx.graph().OutDegree(ctx.vertex());
    if (deg > 0) {
      ctx.SendToAllNeighbors(damping * value.residual /
                             static_cast<double>(deg));
    }
    value.residual = 0.0;
  }
  return false;
}

}  // namespace pregel
}  // namespace grape
