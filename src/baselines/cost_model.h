// Copyright 2026 The GRAPE+ Reproduction Authors.
// Cost model for the vertex-centric baseline systems of Table 1.
//
// The paper compares GRAPE+ against Giraph, GraphLab (sync/async), GiraphUC,
// Maiter, PowerSwitch and Petuum. We reproduce each system's *model*
// (BSP / AP / BAP / Hsync / SSP) and its *granularity* (vertex-centric
// message passing vs block-centric incremental evaluation) and charge their
// characteristic overheads through the constants below. Absolute numbers are
// not the point — the shape of Table 1 (who wins and why: per-vertex
// activation overheads, per-message costs, extra rounds) is.
#ifndef GRAPEPLUS_BASELINES_COST_MODEL_H_
#define GRAPEPLUS_BASELINES_COST_MODEL_H_

#include <string>

namespace grape {

/// Work-unit charges for vertex-centric execution. The PIE programs of
/// src/algos charge ~1 unit per edge operation with no per-vertex overhead;
/// vertex-centric systems additionally pay per-activation and per-message
/// costs (function dispatch, message objects, serialisation).
struct VcCostModel {
  std::string name = "vc";
  double vertex_overhead = 4.0;  // per active vertex per superstep
  double edge_op = 1.0;          // per edge scanned
  double local_msg = 0.5;        // per intra-fragment value delivered
  double remote_msg = 1.0;       // per cross-fragment entry emitted

  /// GraphLab-like C++ engine (the paper's fastest vertex-centric systems),
  /// synchronous engine.
  static VcCostModel GraphLab() {
    return {"graphlab", 4.0, 1.0, 0.5, 1.0};
  }
  /// GraphLab's asynchronous engine: distributed neighbourhood locking and
  /// per-vertex scheduling make each activation considerably dearer than in
  /// the sync engine (the paper's Table 1 measures async PR 2x slower than
  /// sync on the same system).
  static VcCostModel GraphLabAsync() {
    return {"graphlab-async", 10.0, 1.5, 0.75, 1.2};
  }
  /// Giraph: JVM object churn and no in-memory sharing; the paper measures
  /// it far behind GraphLab on the same model.
  static VcCostModel Giraph() {
    return {"giraph", 40.0, 2.0, 2.0, 4.0};
  }
  /// GiraphUC: Giraph's costs minus most of the barrier stalls (the model
  /// change is handled by running it asynchronously).
  static VcCostModel GiraphUc() {
    return {"giraphuc", 40.0, 2.0, 2.0, 4.0};
  }
  /// Maiter: delta-based accumulative engine; lean C++ runtime but
  /// per-vertex receive/update/priority bookkeeping on every activation.
  static VcCostModel Maiter() {
    return {"maiter", 8.0, 1.0, 0.5, 1.0};
  }
  /// PowerSwitch: built on PowerGraph/GraphLab.
  static VcCostModel PowerSwitch() {
    return {"powerswitch", 4.0, 1.0, 0.5, 1.0};
  }
};

}  // namespace grape

#endif  // GRAPEPLUS_BASELINES_COST_MODEL_H_
