// Copyright 2026 The GRAPE+ Reproduction Authors.
// Vertex programs for the reference Pregel engine: SSSP, CC (hash-min) and
// delta PageRank. Messages are combined with the natural aggregates
// (min / min / sum), mirroring Pregel combiners.
#ifndef GRAPEPLUS_BASELINES_VERTEX_ALGOS_H_
#define GRAPEPLUS_BASELINES_VERTEX_ALGOS_H_

#include <span>

#include "baselines/pregel.h"

namespace grape {
namespace pregel {

/// Moore/Bellman-Ford SSSP: value = tentative distance.
struct SsspVertexProgram {
  using MsgT = double;
  using VValue = double;
  VertexId source;

  VValue Init(VertexId v, const Graph&) const {
    return v == source ? 0.0 : kInfinity;
  }
  bool Compute(Context<MsgT>& ctx, VValue& value, std::span<const MsgT> msgs,
               uint64_t superstep) const;
  static MsgT Combine(const MsgT& a, const MsgT& b) { return a < b ? a : b; }
};

/// Hash-min connected components: value = smallest id seen.
struct CcVertexProgram {
  using MsgT = VertexId;
  using VValue = VertexId;

  VValue Init(VertexId v, const Graph&) const { return v; }
  bool Compute(Context<MsgT>& ctx, VValue& value, std::span<const MsgT> msgs,
               uint64_t superstep) const;
  static MsgT Combine(const MsgT& a, const MsgT& b) { return a < b ? a : b; }
};

/// Delta PageRank: value = (score, residual); messages are residual deltas.
struct PrValue {
  double score = 0.0;
  double residual = 0.0;
};

struct PageRankVertexProgram {
  using MsgT = double;
  using VValue = PrValue;
  double damping = 0.85;
  double tol = 1e-9;

  VValue Init(VertexId, const Graph&) const {
    return PrValue{0.0, 0.0};
  }
  bool Compute(Context<MsgT>& ctx, VValue& value, std::span<const MsgT> msgs,
               uint64_t superstep) const;
  static MsgT Combine(const MsgT& a, const MsgT& b) { return a + b; }
};

}  // namespace pregel
}  // namespace grape

#endif  // GRAPEPLUS_BASELINES_VERTEX_ALGOS_H_
