#include "core/direction.h"

namespace grape {

std::string SweepDirectionName(SweepDirection d) {
  return d == SweepDirection::kPush ? "push" : "pull";
}

}  // namespace grape
