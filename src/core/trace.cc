#include "core/trace.h"

#include <algorithm>

#include "util/table.h"

namespace grape {

SimTime RunTrace::EndTime() const {
  SimTime t = 0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

uint64_t RunTrace::RoundsOf(FragmentId worker) const {
  uint64_t n = 0;
  for (const auto& s : spans_) {
    if (s.worker == worker && s.kind == SpanKind::kIncEval) ++n;
  }
  return n;
}

std::vector<obs::TraceEvent> RunTrace::ToEvents() const {
  std::vector<obs::TraceEvent> events;
  events.reserve(spans_.size());
  for (const auto& s : spans_) {
    obs::TraceEvent e;
    e.start_ns = static_cast<int64_t>(s.start * 1e9);
    e.dur_ns = std::max<int64_t>(
        0, static_cast<int64_t>(s.end * 1e9) - e.start_ns);
    e.track = s.worker;
    e.kind = s.kind == SpanKind::kPEval ? obs::TraceKind::kPEval
                                        : obs::TraceKind::kIncEval;
    e.arg0 = s.round;
    events.push_back(e);
  }
  return events;
}

std::string RunTrace::ToGantt(uint32_t num_workers, int width) const {
  return obs::GanttFromEvents(ToEvents(), num_workers, width);
}

void RunTrace::ToChromeTrace(std::ostream& os) const {
  obs::WriteChromeTrace(ToEvents(), /*to_us=*/1e-3, os);
}

}  // namespace grape
