#include "core/trace.h"

#include <algorithm>

#include "util/table.h"

namespace grape {

SimTime RunTrace::EndTime() const {
  SimTime t = 0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

uint64_t RunTrace::RoundsOf(FragmentId worker) const {
  uint64_t n = 0;
  for (const auto& s : spans_) {
    if (s.worker == worker && s.kind == SpanKind::kIncEval) ++n;
  }
  return n;
}

std::string RunTrace::ToGantt(uint32_t num_workers, int width) const {
  std::vector<GanttSpan> gs;
  gs.reserve(spans_.size());
  for (const auto& s : spans_) {
    char glyph = s.kind == SpanKind::kPEval
                     ? '#'
                     : static_cast<char>('0' + (s.round % 10));
    gs.push_back(GanttSpan{static_cast<int>(s.worker), s.start, s.end, glyph});
  }
  return RenderGantt(gs, static_cast<int>(num_workers), EndTime(), width);
}

}  // namespace grape
