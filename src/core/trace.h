// Copyright 2026 The GRAPE+ Reproduction Authors.
// Run traces: the busy intervals of every worker, enough to render the
// paper's Fig. 1(a) and Fig. 7 timing diagrams and to measure idle /
// suspended time per worker.
#ifndef GRAPEPLUS_CORE_TRACE_H_
#define GRAPEPLUS_CORE_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/common.h"

namespace grape {

enum class SpanKind { kPEval, kIncEval };

struct TraceSpan {
  FragmentId worker;
  Round round;
  SimTime start;
  SimTime end;
  SpanKind kind;
};

class RunTrace {
 public:
  void Add(FragmentId worker, Round round, SimTime start, SimTime end,
           SpanKind kind) {
    spans_.push_back({worker, round, start, end, kind});
  }
  void NoteRestart(SimTime t) { restarts_.push_back(t); }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<SimTime>& restarts() const { return restarts_; }

  SimTime EndTime() const;
  /// Number of IncEval rounds executed by `worker`.
  uint64_t RoundsOf(FragmentId worker) const;

  /// The sim-time spans as the unified obs span stream (one virtual second
  /// stamped as one second of nanoseconds) — both renderers below draw from
  /// this, so sim and threaded runs go through identical export paths.
  std::vector<obs::TraceEvent> ToEvents() const;

  /// ASCII Gantt chart ('#' = PEval, digits cycle per IncEval round).
  /// Thin wrapper over obs::GanttFromEvents. Renders all-idle rows for an
  /// empty trace and a single glyph cell for zero-duration spans.
  std::string ToGantt(uint32_t num_workers, int width = 96) const;

  /// Chrome trace-event JSON of the virtual-time spans (loadable in
  /// Perfetto; one virtual second renders as one second).
  void ToChromeTrace(std::ostream& os) const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<SimTime> restarts_;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_TRACE_H_
