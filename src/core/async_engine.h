// Copyright 2026 The GRAPE+ Reproduction Authors.
// The barrier-free asynchronous engine: the "fully asynchronous" limit of
// the paper's AAP spectrum. Where the sim and threaded engines still march
// in delay-stretched rounds, this engine has no rounds at all — worker
// threads pull virtual workers off chunked-FIFO worklists (Galois
// AsyncSet-style: atomic-flag dedup + chunk stealing, runtime/worklist.h)
// and run bounded IncEval *quanta* over whatever updates have arrived,
// delivering the resulting messages eagerly into destination buffers. A
// delivery immediately re-queues its destination; nothing ever waits for a
// superstep boundary.
//
// Scheduling refinements:
//   * PrioritizedProgram programs (SSSP/BFS) drain their buffer into a
//     per-worker delta-stepping BucketedWorklist and relax the lowest
//     buckets first — the priority formulation that cuts wasted
//     re-relaxations. Other programs (delta-residual PageRank, CC) take
//     bounded first-touch-order drains; PageRank's sum aggregate relies on
//     the buffer's exactly-once fold, which both paths preserve.
//   * Bounded staleness (EngineConfig::async_staleness_sec): workers whose
//     oldest unapplied update exceeds the bound are claimed ahead of the
//     worklists, keeping every delivered value's application delay bounded
//     ("Delayed Asynchronous Iterative Graph Algorithms" shows this is what
//     keeps fully asynchronous iteration convergent).
//
// Termination extends the condition-variable hub discipline of the
// threaded engine with a global quiescence check: the master probes
// (all workers unclaimed ∧ ineligible) ∧ in-flight quiescent via the
// two-phase TerminationDetector; worklist entries for ineligible workers
// are stale by construction and simply abandoned. The worklists are a fast
// path only — idle threads fall back to a global eligibility scan on every
// hub wake, so correctness never depends on queue precision.
//
// The engine is push-only: it uses the plain PEval/IncEval overloads (for
// DualModeProgram programs those are contractually identical to
// SweepDirection::kPush) — a gather kernel reads neighbour state that
// barrier-free interleaving cannot keep coherent.
#ifndef GRAPEPLUS_CORE_ASYNC_ENGINE_H_
#define GRAPEPLUS_CORE_ASYNC_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/modes.h"
#include "core/pie.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/fragment.h"
#include "runtime/channel.h"
#include "runtime/message.h"
#include "runtime/stats_collector.h"
#include "runtime/termination.h"
#include "runtime/worker_pool.h"
#include "runtime/worklist.h"
#include "util/timer.h"

namespace grape {

template <typename Program>
  requires PieProgram<Program>
class AsyncEngine {
 public:
  using V = typename Program::Value;
  using State = typename Program::State;

  struct Result {
    typename Program::ResultT result;
    RunStats stats;
    bool converged = true;
    double wall_seconds = 0.0;
    uint64_t termination_probes = 0;
    /// Worklist telemetry of the run (also exported as async.* metrics).
    uint64_t worklist_pushes = 0;
    uint64_t worklist_steals = 0;
  };

  AsyncEngine(const Partition& partition, Program program, EngineConfig config)
      : partition_(partition),
        program_(std::move(program)),
        cfg_(std::move(config)) {}

  /// Re-runnable: each call starts from a fresh engine state.
  Result Run() {
    const uint32_t m = partition_.num_fragments();
    uint32_t threads = cfg_.num_threads;
    if (threads == 0) {
      threads = std::min<uint32_t>(m, std::thread::hardware_concurrency());
      if (threads == 0) threads = 1;
    }
    ResetRunState(threads);
    run_wall_.Restart();
    Stopwatch wall;
    states_.clear();
    states_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      states_.push_back(program_.Init(partition_.fragments[i]));
      // order: release — publishes the freshly built state to Eligible()
      // probes on other threads.
      workers_[i]->local_work.store(HasLocalWork(i),
                                    std::memory_order_release);
    }
    stats_.threads.resize(threads);
    {
      WorkerPool pool(threads, WorkerPoolOptions{cfg_.pin_threads, nullptr});
      pool.Launch(threads, [this](uint32_t tid) { ThreadLoop(tid); });
      MasterLoop();
      pool.Wait();
      stats_.spurious_wakeups = pool.spurious_wakeups();
    }
    for (FragmentId w = 0; w < m; ++w) {
      // order: relaxed — the pool join above already ordered all worker
      // writes before this fold.
      stats_.workers[w].msgs_received =
          workers_[w]->msgs_received.load(std::memory_order_relaxed);
      if (partition_.fragments[w].arc_source() != nullptr) {
        partition_.fragments[w].arc_source()->ReleasePointWindows();
      }
    }
    Result r{program_.Assemble(partition_, states_), std::move(stats_),
             converged_, wall.ElapsedSeconds(), term_->probes_attempted(),
             worklists_->pushes(), worklists_->steals()};
    r.stats.makespan = r.wall_seconds;
    return r;
  }

 private:
  /// Per-virtual-worker runtime block. Cache-line aligned: neighbouring
  /// workers' claim flags and buffers must not false-share.
  struct alignas(64) WorkerRt {
    UpdateBuffer<V> buffer;
    std::atomic<bool> claimed{false};
    std::atomic<bool> peval_done{false};
    std::atomic<uint64_t> msgs_received{0};
    /// Cached Program::HasLocalWork(state) — see ThreadedEngine::WorkerRt.
    std::atomic<bool> local_work{false};
    /// True while `buckets` holds drained-but-unapplied updates. Written
    /// under the claim (release), read lock-free by eligibility probes —
    /// the buckets themselves are claim-private like program state.
    std::atomic<bool> pending_private{false};
    /// Wall seconds when the oldest currently-unapplied update arrived;
    /// 0 = none pending. Advisory (bounded-staleness scheduling): a racily
    /// lost store only skips one overdue boost, never loses work.
    std::atomic<double> oldest_pending{0.0};
    /// Delta-stepping buckets (PrioritizedProgram only; claim-private).
    BucketedWorklist<UpdateEntry<V>> buckets;
    /// Quanta executed (IncEval invocations); only touched under the claim.
    Round round = 0;
    Emitter<V> emitter;
    std::vector<UpdateEntry<V>> outbox;
    std::vector<UpdateEntry<V>> batch;  // quantum input scratch
    std::vector<std::vector<UpdateEntry<V>>> out_by_dst;
    std::vector<FragmentId> touched;
    std::vector<FragmentId> recipients;
  };

  void ResetRunState(uint32_t threads) {
    const uint32_t m = partition_.num_fragments();
    term_ = std::make_unique<TerminationDetector>(m);
    worklists_ = std::make_unique<ChunkedWorklist>(threads, m);
    workers_.clear();
    workers_.resize(m);
    for (uint32_t i = 0; i < m; ++i) {
      const Fragment& f = partition_.fragments[i];
      workers_[i] = std::make_unique<WorkerRt>();
      workers_[i]->buffer = UpdateBuffer<V>(f.num_local());
      workers_[i]->buffer.SetDegreeOffsets(f.out_offsets());
      workers_[i]->buckets.set_delta(cfg_.async_delta);
      workers_[i]->out_by_dst.assign(m, {});
    }
    stats_ = RunStats{};
    stats_.workers.resize(m);
    // order: relaxed — single-threaded setup; the pool start publishes it.
    total_quanta_.store(0, std::memory_order_relaxed);
    converged_ = true;
    quanta_counter_ =
        obs::MetricsRegistry::Global().GetCounter("async.quanta");
    stale_counter_ =
        obs::MetricsRegistry::Global().GetCounter("async.stale_claims");
  }

  bool HasLocalWork(FragmentId w) const {
    if constexpr (requires(const Program& p, const State& s) {
                    { p.HasLocalWork(s) } -> std::convertible_to<bool>;
                  }) {
      return program_.HasLocalWork(states_[w]);
    } else {
      return false;
    }
  }

  bool Eligible(FragmentId w) const {
    // order: acquire (both loads) pairs with the owner's release stores
    // after a quantum — a true hint reads with the state that produced it.
    return !workers_[w]->buffer.Empty() ||
           workers_[w]->local_work.load(std::memory_order_acquire) ||
           // order: acquire — same pairing as local_work above.
           workers_[w]->pending_private.load(std::memory_order_acquire);
  }

  /// Master (the calling thread): probes global quiescence — all workers
  /// unclaimed and ineligible, no in-flight messages — through the same
  /// two-phase detector as the threaded engine. Workers ring `master_hub_`
  /// whenever quiescence may have been reached; the timeout is a safety
  /// net only.
  void MasterLoop() {
    while (!term_->ShouldStop()) {
      const uint64_t epoch = master_hub_.Epoch();
      bool all_quiet = true;
      for (FragmentId w = 0; w < workers_.size(); ++w) {
        // order: acquire pairs with the claim release — an unclaimed read
        // observes the owning quantum's final buffer/bucket state.
        if (workers_[w]->claimed.load(std::memory_order_acquire) ||
            Eligible(w)) {
          all_quiet = false;
          break;
        }
      }
      if (all_quiet && term_->TryTerminate(inflight_)) {
        hub_.NotifyAll();
        break;
      }
      // order: relaxed — a monotone budget check; exactness is not needed.
      if (total_quanta_.load(std::memory_order_relaxed) >
          cfg_.max_total_rounds) {
        converged_ = false;
        term_->ForceStop();
        hub_.NotifyAll();
        break;
      }
      master_hub_.WaitFor(epoch, /*timeout_ms=*/10);
    }
    term_->ForceStop();
    hub_.NotifyAll();
  }

  void ThreadLoop(uint32_t tid) {
    ThreadStats& ts = stats_.threads[tid];
    while (!term_->ShouldStop()) {
      // Epoch captured *before* the pick: any delivery, claim release or
      // stop in the window bumps it, so the wait below returns immediately
      // instead of sleeping through the change.
      const uint64_t epoch = hub_.Epoch();
      bool is_peval = false;
      const int32_t w = PickWork(tid, &is_peval);
      if (w < 0) {
        obs::TraceSpanScope idle_span(obs::TraceKind::kIdleWait,
                                      obs::Tracer::kThreadLaneBase + tid);
        Stopwatch idle;
        // Same discipline as the threaded engine: a stop flagged before
        // the epoch capture already rang its final NotifyAll; Epoch() and
        // NotifyAll share the hub mutex, so this load sees it.
        if (term_->ShouldStop()) break;
        hub_.Wait(epoch);
        ts.idle_time += idle.ElapsedSeconds();
        continue;
      }
      ts.busy_time += RunQuantum(static_cast<FragmentId>(w), is_peval);
      ++ts.rounds;
      DeliverEntries(static_cast<FragmentId>(w), tid);
      const bool still_eligible = Eligible(static_cast<FragmentId>(w));
      if (!still_eligible) term_->SetInactive(static_cast<FragmentId>(w));
      // order: release pairs with claimants' acquire — the quantum's state,
      // bucket and buffer writes are visible to the next claimant.
      workers_[w]->claimed.store(false, std::memory_order_release);
      // Re-queue leftover work lane-locally (dedup keeps this idempotent
      // against deliverers racing to queue the same worker).
      if (still_eligible) {
        worklists_->PushUnique(tid, static_cast<uint32_t>(w));
      }
      hub_.NotifyAll();
      master_hub_.NotifyAll();
    }
  }

  /// Claims `w` if it is unclaimed and eligible. On success the caller owns
  /// the worker's state until it releases the claim.
  bool TryClaim(FragmentId w) {
    auto& rt = *workers_[w];
    // order: acquire pairs with the claim's release store (cheap skip).
    if (rt.claimed.load(std::memory_order_acquire)) return false;
    if (!Eligible(w)) return false;
    // order: acq_rel — winning the claim acquires the previous quantum's
    // writes; losing publishes nothing.
    if (rt.claimed.exchange(true, std::memory_order_acq_rel)) return false;
    if (!Eligible(w)) {  // drained by a racing quantum since the check
      // order: release — hand the claim back untouched.
      rt.claimed.store(false, std::memory_order_release);
      return false;
    }
    term_->SetActive(w);
    return true;
  }

  /// Picks and claims a runnable worker: PEval claims first, then workers
  /// whose oldest unapplied update exceeds the staleness bound, then the
  /// calling lane's FIFO, then chunk stealing, then — the liveness
  /// fallback the queues are allowed to be imprecise under — a global
  /// eligibility scan. Returns -1 when nothing is runnable.
  int32_t PickWork(uint32_t tid, bool* is_peval) {
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      auto& rt = *workers_[w];
      // order: acquire — a done flag is read with the PEval state it covers.
      if (rt.peval_done.load(std::memory_order_acquire)) continue;
      // order: acquire — cheap skip, see TryClaim.
      if (rt.claimed.load(std::memory_order_acquire)) continue;
      // order: acq_rel — winning the claim acquires init's writes.
      if (rt.claimed.exchange(true, std::memory_order_acq_rel)) continue;
      // order: acq_rel — first winner both claims PEval and sees init.
      if (!rt.peval_done.exchange(true, std::memory_order_acq_rel)) {
        term_->SetActive(w);
        *is_peval = true;
        return static_cast<int32_t>(w);
      }
      // order: release — hand the claim back (we changed nothing).
      rt.claimed.store(false, std::memory_order_release);
    }
    if (cfg_.async_staleness_sec > 0.0) {
      const double now = run_wall_.ElapsedSeconds();
      for (FragmentId w = 0; w < workers_.size(); ++w) {
        // order: acquire pairs with the delivering/owning release store.
        const double t0 =
            workers_[w]->oldest_pending.load(std::memory_order_acquire);
        if (t0 > 0.0 && now - t0 > cfg_.async_staleness_sec && TryClaim(w)) {
          stale_counter_->Add(1);
          return static_cast<int32_t>(w);
        }
      }
    }
    uint32_t item = 0;
    while (worklists_->Pop(tid, &item)) {
      if (TryClaim(item)) return static_cast<int32_t>(item);
    }
    while (worklists_->Steal(tid, &item)) {
      if (obs::Tracer::enabled()) {
        obs::Tracer::Global().RecordInstant(
            obs::TraceKind::kSteal, obs::Tracer::kThreadLaneBase + tid, item);
      }
      if (TryClaim(item)) return static_cast<int32_t>(item);
    }
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      if (TryClaim(w)) return static_cast<int32_t>(w);
    }
    return -1;
  }

  /// Runs one PEval or a bounded IncEval quantum for w; fills the worker's
  /// outbox. The caller holds the claim, so per-worker state is exclusive.
  /// Returns the quantum's measured wall time in seconds.
  double RunQuantum(FragmentId w, bool is_peval) {
    const bool traced = obs::Tracer::enabled();
    const int64_t trace_start = traced ? obs::Tracer::Global().NowNs() : 0;
    Round trace_round = 0;
    Stopwatch sw;
    auto& rt = *workers_[w];
    Emitter<V>& emitter = rt.emitter;
    emitter.Clear();
    double work = 0.0;
    if (is_peval) {
      emitter.SetRound(0);
      work = program_.PEval(partition_.fragments[w], states_[w], &emitter);
    } else {
      const uint32_t quantum = std::max<uint32_t>(cfg_.async_chunk, 1);
      rt.batch.clear();
      if constexpr (PrioritizedProgram<Program>) {
        // Move everything buffered into the delta-stepping buckets (the
        // buffer already deduplicated per vertex on arrival), then take
        // the lowest-priority batch. Duplicates across refills are safe:
        // the min aggregate filters stale values in IncEval.
        auto drained = rt.buffer.Drain();
        for (const auto& e : drained) {
          rt.buckets.Push(program_.UpdatePriority(e.value), e);
        }
        rt.buckets.PopBatch(quantum, &rt.batch);
      } else {
        // Exactly-once path (PageRank's sum aggregate): a bounded
        // first-touch-order drain; undrained updates stay buffered.
        rt.batch = rt.buffer.DrainUpTo(quantum);
      }
      stats_.workers[w].updates_applied += rt.batch.size();
      if (traced) {
        obs::Tracer::Global().RecordInstant(obs::TraceKind::kBufferDrain, w,
                                            rt.batch.size());
      }
      const Round round = ++rt.round;
      trace_round = round;
      emitter.SetRound(round);
      work = program_.IncEval(partition_.fragments[w], states_[w],
                              std::span<const UpdateEntry<V>>(rt.batch),
                              &emitter);
      // order: relaxed — budget counter only (see MasterLoop's check).
      total_quanta_.fetch_add(1, std::memory_order_relaxed);
      ++stats_.workers[w].rounds;
      quanta_counter_->Add(1);
    }
    const double elapsed = sw.ElapsedSeconds();
    if (traced) {
      obs::Tracer::Global().RecordSpan(
          is_peval ? obs::TraceKind::kPEval : obs::TraceKind::kIncEval, w,
          trace_start, static_cast<uint64_t>(trace_round));
    }
    stats_.workers[w].busy_time += elapsed;
    stats_.workers[w].work_units += work;
    rt.outbox.swap(emitter.entries());
    if constexpr (PrioritizedProgram<Program>) {
      // order: release — published with the bucket state it describes for
      // Eligible()'s acquire readers.
      rt.pending_private.store(!rt.buckets.Empty(), std::memory_order_release);
    }
    // order: release — the hint is published with the quantum's state
    // writes for Eligible()'s acquire readers.
    rt.local_work.store(HasLocalWork(w), std::memory_order_release);
    // Staleness clock: restart the age when updates remain unapplied
    // (conservative — remaining updates count as arriving now), clear it
    // when everything drained. Advisory; see the field comment.
    bool waiting = !rt.buffer.Empty();
    if constexpr (PrioritizedProgram<Program>) {
      waiting = waiting || !rt.buckets.Empty();
    }
    // order: release — pairs with the overdue scan's acquire load.
    rt.oldest_pending.store(waiting ? run_wall_.ElapsedSeconds() : 0.0,
                            std::memory_order_release);
    return elapsed;
  }

  void PushTo(WorkerRt& rt, const RouteTarget& t, const UpdateEntry<V>& e) {
    auto& box = rt.out_by_dst[t.frag];
    if (box.empty()) rt.touched.push_back(t.frag);
    box.push_back(UpdateEntry<V>{e.vid, e.value, e.round, t.lid});
  }

  /// Groups and delivers the outbox of `from` into destination buffers
  /// immediately, re-queueing every touched destination on the delivering
  /// thread's lane — the barrier-free propagation step.
  void DeliverEntries(FragmentId from, uint32_t tid) {
    auto& rt = *workers_[from];
    if (rt.outbox.empty()) return;
    for (const auto& e : rt.outbox) {
      RouteUpdateEntry<Program::kOwnerBroadcast>(
          partition_, from, e, rt.recipients,
          [this, &rt](const RouteTarget& t, const UpdateEntry<V>& entry) {
            PushTo(rt, t, entry);
          });
    }
    rt.outbox.clear();
    for (FragmentId dst : rt.touched) {
      auto& ents = rt.out_by_dst[dst];
      auto& drt = *workers_[dst];
      inflight_.OnSend();
      ++stats_.workers[from].msgs_sent;
      stats_.workers[from].entries_sent += ents.size();
      stats_.workers[from].bytes_sent +=
          EntriesBytes(std::span<const UpdateEntry<V>>(ents));
      const bool first_pending = drt.buffer.Empty();
      drt.buffer.AppendEntries(from, std::span<const UpdateEntry<V>>(ents),
                               [this](const V& a, const V& b) {
                                 return program_.Combine(a, b);
                               });
      term_->SetActive(dst);
      // order: relaxed — stats counter; AppendEntries' lock ordered the
      // delivery itself.
      drt.msgs_received.fetch_add(1, std::memory_order_relaxed);
      if (first_pending) {
        // order: release — pairs with the overdue scan's acquire load.
        drt.oldest_pending.store(run_wall_.ElapsedSeconds(),
                                 std::memory_order_release);
      }
      inflight_.OnDeliver();
      ents.clear();
      worklists_->PushUnique(tid, dst);
    }
    rt.touched.clear();
    hub_.NotifyAll();
  }

  const Partition& partition_;
  Program program_;
  EngineConfig cfg_;
  std::unique_ptr<TerminationDetector> term_;
  std::unique_ptr<ChunkedWorklist> worklists_;
  InFlightCounter inflight_;
  NotifyHub hub_;         // workers idle-wait here
  NotifyHub master_hub_;  // quiescence-probing master waits here

  std::vector<std::unique_ptr<WorkerRt>> workers_;
  std::vector<State> states_;
  RunStats stats_;
  std::atomic<uint64_t> total_quanta_{0};
  bool converged_ = true;
  Stopwatch run_wall_;
  obs::Counter* quanta_counter_ = nullptr;
  obs::Counter* stale_counter_ = nullptr;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_ASYNC_ENGINE_H_
