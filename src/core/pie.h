// Copyright 2026 The GRAPE+ Reproduction Authors.
// The PIE programming model (Section 2): a PIE program supplies
//   PEval    — a sequential batch algorithm over one fragment,
//   IncEval  — a sequential incremental algorithm applying update-parameter
//              changes M_i and emitting changed candidate values,
//   Assemble — combines partial results,
// plus the declarations PEval makes: the candidate set C_i (border vertices
// whose status variables are the update parameters) and the aggregate
// function faggr that resolves conflicting values.
//
// Programs are compile-time ducks; the expected shape is:
//
//   struct MyProgram {
//     using Value = ...;              // status-variable / message value type
//     struct State { ... };           // per-fragment state
//     using ResultT = ...;            // Assemble's output
//     // C_i = F_i.O only (false) or F_i.O ∪ F_i.I (true; owner re-broadcasts
//     // its border values to copy holders — needed by CF).
//     static constexpr bool kOwnerBroadcast = false;
//
//     State Init(const Fragment& f) const;
//     double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
//     double IncEval(const Fragment& f, State& st,
//                    std::span<const UpdateEntry<Value>> updates,
//                    Emitter<Value>* out) const;
//     Value Combine(const Value& a, const Value& b) const;   // faggr
//     ResultT Assemble(const Partition& p,
//                      const std::vector<State>& states) const;
//   };
//
// PEval / IncEval return the *work units* they performed (edges relaxed,
// vertices scanned, ...); the engines convert work into (virtual or modelled)
// time. Emitted entries are the changed values of C_i.x̄, routed by the
// engine as designated messages M(i,j).
#ifndef GRAPEPLUS_CORE_PIE_H_
#define GRAPEPLUS_CORE_PIE_H_

#include <concepts>
#include <span>
#include <utility>
#include <vector>

#include "core/direction.h"
#include "partition/fragment.h"
#include "runtime/message.h"

namespace grape {

/// Resolves the fragment-local id of a received update: O(1) via the
/// dispatch-stamped destination lid, falling back to the fragment's hash
/// lookup for hand-built entries (tests, recovered snapshots of old runs)
/// and for stale lids that no longer name this vertex here.
template <typename V>
inline LocalVertex ResolveLocal(const Fragment& f, const UpdateEntry<V>& e) {
  if (e.lid < f.num_local() && f.GlobalId(e.lid) == e.vid) return e.lid;
  return f.LocalId(e.vid);
}

/// Routes one outbox entry of fragment `from` to its recipients via the
/// precomputed routing index, invoking push(target, entry) per destination
/// — the single definition of the dispatch fan-out shared by both engines
/// (and the microbenchmarks). Falls back to the hash-based reference
/// routing for entries naming a vertex the source fragment does not hold;
/// `recipients_scratch` avoids per-call allocation on that path.
template <bool kToCopies, typename V, typename Push>
inline void RouteUpdateEntry(const Partition& p, FragmentId from,
                             const UpdateEntry<V>& e,
                             std::vector<FragmentId>& recipients_scratch,
                             Push&& push) {
  const Fragment& f = p.fragments[from];
  LocalVertex l = e.lid;
  if (l >= f.num_local() || f.GlobalId(l) != e.vid) l = f.LocalId(e.vid);
  if (l != kInvalidLocalVertex) {
    const FragmentRouting& routes = p.routing[from];
    const RouteTarget& t = routes.owner[l];
    if (t.frag != kInvalidFragment) push(t, e);
    if constexpr (kToCopies) {
      for (const RouteTarget& c : routes.Copies(l)) push(c, e);
    }
  } else {
    p.Recipients(e.vid, from, kToCopies, &recipients_scratch);
    for (FragmentId dst : recipients_scratch) {
      push(RouteTarget{dst, p.fragments[dst].LocalId(e.vid)}, e);
    }
  }
}

/// Collects the changed update parameters of one PEval/IncEval invocation.
template <typename V>
class Emitter {
 public:
  /// Declares that border vertex `global_vid`'s status variable now holds
  /// `value`; `source_lid` is its local id in the emitting fragment, which
  /// lets the engine route through the precomputed O(1) routing index. The
  /// engine stamps the producing round and routes copies. Programs that
  /// cannot name the local id may pass kInvalidLocalVertex — the engine then
  /// falls back to hash-based routing for that entry.
  template <typename U>
  void Emit(LocalVertex source_lid, VertexId global_vid, U&& value) {
    entries_.push_back(UpdateEntry<V>{global_vid,
                                      static_cast<V>(std::forward<U>(value)),
                                      round_, source_lid});
  }

  void SetRound(Round r) { round_ = r; }
  std::vector<UpdateEntry<V>>& entries() { return entries_; }
  const std::vector<UpdateEntry<V>>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<UpdateEntry<V>> entries_;
  Round round_ = 0;
};

/// Compile-time check that a type is a usable PIE program.
template <typename P>
concept PieProgram = requires(const P p, const Fragment& f,
                              typename P::State& st,
                              Emitter<typename P::Value>* em,
                              const typename P::Value& v) {
  typename P::Value;
  typename P::State;
  typename P::ResultT;
  { P::kOwnerBroadcast } -> std::convertible_to<bool>;
  { p.Init(f) } -> std::same_as<typename P::State>;
  { p.PEval(f, st, em) } -> std::convertible_to<double>;
  { p.Combine(v, v) } -> std::same_as<typename P::Value>;
};

/// A PIE program that implements both a scatter (push) and a gather (pull)
/// kernel behind one message protocol: PEval/IncEval overloads taking a
/// trailing SweepDirection select the kernel per round. The engines detect
/// this concept and consult their DirectionController (core/direction.h)
/// each round; the plain overloads must behave exactly like the directed
/// ones with SweepDirection::kPush, so a dual-mode program under the
/// default push policy is bit-identical to its single-kernel ancestor.
/// Both kernels must share Value / Combine / kOwnerBroadcast — the engine
/// may interleave directions freely, and correctness rests on the
/// aggregate's monotone confluence, not on which side traverses an arc.
template <typename P>
concept DualModeProgram =
    PieProgram<P> &&
    requires(const P p, const Fragment& f, typename P::State& st,
             Emitter<typename P::Value>* em,
             std::span<const UpdateEntry<typename P::Value>> updates) {
      { p.PEval(f, st, em, SweepDirection::kPull) }
          -> std::convertible_to<double>;
      { p.IncEval(f, st, updates, em, SweepDirection::kPull) }
          -> std::convertible_to<double>;
    };

/// A PIE program whose pending updates carry a natural scheduling priority
/// (lower runs earlier): UpdatePriority maps an update value to the
/// delta-stepping key the async engine buckets it under (SSSP: the
/// tentative distance; BFS: the hop level). The order is a heuristic only —
/// the program must stay correct under any update order (monotone-min
/// aggregates are: a stale or duplicated update is filtered by the min) —
/// so engines are free to ignore it, clamp it, or batch across buckets.
template <typename P>
concept PrioritizedProgram =
    PieProgram<P> && requires(const P p, const typename P::Value& v) {
      { p.UpdatePriority(v) } -> std::convertible_to<double>;
    };

}  // namespace grape

#endif  // GRAPEPLUS_CORE_PIE_H_
