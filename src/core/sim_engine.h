// Copyright 2026 The GRAPE+ Reproduction Authors.
// The AAP engine over a discrete-event virtual clock (Section 3).
//
// Each fragment F_i is a virtual worker P_i. Workers run PEval once, then
// rounds of IncEval triggered when (a) the buffer B_x̄i is non-empty and
// (b) the delay stretch DS_i has elapsed. Messages are point-to-point and
// push-based with a configurable latency; BSP / AP / SSP / AAP / Hsync are
// δ configurations of the shared DelayStretchController.
//
// The programs' state transitions are real — only time is virtual — so the
// engine produces exact fixpoints plus deterministic timing traces (the
// paper's Fig. 1 / Fig. 7 diagrams) on a single machine.
//
// Hot-path layout: update buffers are dense slot arrays sized from the
// fragment, and the outbox is routed through the partition's precomputed
// routing index into reusable per-destination vectors — no hash map or
// std::map is touched per entry.
#ifndef GRAPEPLUS_CORE_SIM_ENGINE_H_
#define GRAPEPLUS_CORE_SIM_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/delay_stretch.h"
#include "core/direction.h"
#include "core/modes.h"
#include "core/pie.h"
#include "core/trace.h"
#include "partition/fragment.h"
#include "runtime/message.h"
#include "runtime/sim_clock.h"
#include "runtime/snapshot.h"
#include "runtime/stats_collector.h"
#include "util/random.h"

namespace grape {

template <typename Program>
  requires PieProgram<Program>
class SimEngine {
 public:
  using V = typename Program::Value;
  using State = typename Program::State;

  struct Result {
    typename Program::ResultT result;
    RunStats stats;
    RunTrace trace;
    bool converged = true;
    uint64_t checkpoint_late_messages = 0;
    /// Barrier releases (= supersteps) in BSP / Hsync-BSP phases.
    uint64_t supersteps = 0;
  };

  SimEngine(const Partition& partition, Program program, EngineConfig config)
      : partition_(partition),
        program_(std::move(program)),
        cfg_(std::move(config)) {
    ResetRunState();
  }

  /// Executes the full PEval -> IncEval* -> Assemble pipeline. Re-runnable:
  /// each call starts from a fresh engine state over the same partition.
  Result Run() {
    ResetRunState();
    const uint32_t m = partition_.num_fragments();
    states_.clear();
    states_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      states_.push_back(program_.Init(partition_.fragments[i]));
    }
    for (uint32_t i = 0; i < m; ++i) {
      clock_.Schedule(0.0, [this, i] { StartRound(i, /*is_peval=*/true); });
    }
    if (cfg_.checkpoint_time > 0.0) {
      clock_.Schedule(cfg_.checkpoint_time, [this] { BeginCheckpoint(); });
    }
    if (cfg_.fail_time > 0.0 && cfg_.fail_worker >= 0) {
      clock_.Schedule(cfg_.fail_time, [this] { FailAndRecover(); });
    }

    bool converged = true;
    uint64_t events = 0;
    while (clock_.Step()) {
      if (++events > cfg_.max_events ||
          total_rounds_ > cfg_.max_total_rounds) {
        converged = false;
        break;
      }
    }
    // Quiescence sanity: nobody may end suspended with pending updates.
    for (uint32_t i = 0; i < m; ++i) {
      GRAPE_CHECK(!converged || workers_[i].buffer.Empty())
          << "worker " << i << " terminated with a non-empty buffer";
    }

    // Direction telemetry folds from the per-worker controllers, and any
    // point-lookup windows held by streaming sources are dropped now that
    // the run is over (their pages would otherwise stay advised in).
    for (uint32_t i = 0; i < m; ++i) {
      stats_.workers[i].push_rounds = directions_[i].push_rounds();
      stats_.workers[i].pull_rounds = directions_[i].pull_rounds();
      stats_.workers[i].direction_switches = directions_[i].switches();
      if (partition_.fragments[i].arc_source() != nullptr) {
        partition_.fragments[i].arc_source()->ReleasePointWindows();
      }
    }

    Result r{program_.Assemble(partition_, states_), std::move(stats_),
             std::move(trace_), converged, 0, supersteps_};
    r.stats.makespan = r.trace.EndTime();
    if (checkpoint_token_ != 0) {
      r.checkpoint_late_messages =
          checkpoints_->late_messages(checkpoint_token_);
    }
    return r;
  }

  /// Access to the controller for white-box tests.
  const DelayStretchController& controller() const { return *controller_; }

  /// Worker w's direction controller of the last Run() (telemetry tests).
  const DirectionController& direction_controller(FragmentId w) const {
    return directions_[w];
  }

 private:
  enum class Phase { kBusy, kIdle, kWaiting, kSuspended };

  struct WorkerRt {
    Phase phase = Phase::kIdle;
    UpdateBuffer<V> buffer;
    SimClock::EventId wake = 0;
    bool has_wake = false;
    double phase_since = 0.0;
    /// Reused across rounds (swap with outbox) so a round allocates no
    /// emission vector once capacities have warmed up.
    Emitter<V> emitter;
    std::vector<UpdateEntry<V>> outbox;  // emissions of the running round
    double round_cost = 0.0;
    Round running_round = 0;
    double round_started = 0.0;
    // Checkpoint bookkeeping.
    bool snapshotted = false;
    State snapshot_state{};
    std::vector<UpdateEntry<V>> snapshot_buffer;
    Round snapshot_round = 0;
    bool token_pending = false;  // saw the token while busy
    /// Tokened messages that arrived before this worker snapshotted: they
    /// belong to the post-cut era, so they are held out of the buffer until
    /// the snapshot is taken (prevents double delivery after rollback).
    std::vector<Message<V>> stashed_tokened;
  };

  /// Rebuilds all per-run state so Run() can be called repeatedly without
  /// the counters, buffers or controller of a previous run leaking in.
  void ResetRunState() {
    const uint32_t m = partition_.num_fragments();
    clock_ = SimClock{};
    controller_ = std::make_unique<DelayStretchController>(
        cfg_.mode, m, cfg_.msg_latency);
    checkpoints_ = std::make_unique<CheckpointCoordinator>(m);
    checkpoint_token_ = 0;
    workers_.clear();
    workers_.resize(m);
    directions_.clear();
    directions_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      const Fragment& f = partition_.fragments[i];
      workers_[i].buffer = UpdateBuffer<V>(f.num_local());
      workers_[i].buffer.SetDegreeOffsets(f.out_offsets());
      directions_.emplace_back(cfg_.direction, f.num_arcs(),
                               f.has_in_adjacency(), /*trace_track=*/i);
      if constexpr (DualModeProgram<Program>) {
        GRAPE_CHECK(cfg_.direction.mode != DirectionConfig::Mode::kPull ||
                    f.has_in_adjacency())
            << "direction=pull needs a pull-enabled partition "
               "(PartitionOptions::in_adjacency / in_arc_source)";
      }
    }
    stats_ = RunStats{};
    stats_.workers.resize(m);
    trace_ = RunTrace{};
    rngs_.clear();
    rngs_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) rngs_.emplace_back(cfg_.seed * 7919 + i);
    out_by_dst_.assign(m, {});
    entry_pool_.clear();
    touched_.clear();
    inflight_ = 0;
    busy_count_ = 0;
    total_rounds_ = 0;
    supersteps_ = 0;
  }

  double Speed(FragmentId w) const {
    return cfg_.speed_factors.empty() ? 1.0 : cfg_.speed_factors[w];
  }

  double Jitter(FragmentId w) {
    if (cfg_.compute_jitter <= 0.0) return 1.0;
    return rngs_[w].UniformDouble(1.0 - cfg_.compute_jitter,
                                  1.0 + cfg_.compute_jitter);
  }

  bool Quiescent() const { return inflight_ == 0 && busy_count_ == 0; }

  /// Programs may report pending fragment-local work even with an empty
  /// buffer (vertex-centric internal propagation, CF training epochs).
  bool HasLocalWork(FragmentId w) const {
    if constexpr (requires(const Program& p, const State& s) {
                    { p.HasLocalWork(s) } -> std::convertible_to<bool>;
                  }) {
      return program_.HasLocalWork(states_[w]);
    } else {
      return false;
    }
  }

  /// A worker may start a round iff it has buffered updates or local work.
  bool Eligible(FragmentId w) const {
    return !workers_[w].buffer.Empty() || HasLocalWork(w);
  }

  /// Workers that still constrain r_min: busy, delayed, or holding updates.
  const std::vector<uint8_t>& RelevantMask() {
    relevant_.assign(workers_.size(), 0);
    for (size_t i = 0; i < workers_.size(); ++i) {
      const auto& w = workers_[i];
      relevant_[i] = (w.phase != Phase::kIdle ||
                      Eligible(static_cast<FragmentId>(i)))
                         ? 1
                         : 0;
    }
    return relevant_;
  }

  void SetPhase(FragmentId w, Phase p) {
    auto& rt = workers_[w];
    const double now = clock_.Now();
    const double elapsed = now - rt.phase_since;
    switch (rt.phase) {
      case Phase::kIdle:
        stats_.workers[w].idle_time += elapsed;
        break;
      case Phase::kWaiting:
      case Phase::kSuspended:
        stats_.workers[w].suspended_time += elapsed;
        break;
      case Phase::kBusy:
        break;  // busy time accounted at round end
    }
    rt.phase = p;
    rt.phase_since = now;
  }

  void StartRound(FragmentId w, bool is_peval) {
    auto& rt = workers_[w];
    GRAPE_DCHECK(rt.phase != Phase::kBusy);
    CancelWake(w);
    SetPhase(w, Phase::kBusy);
    ++busy_count_;
    const double now = clock_.Now();
    controller_->OnRoundStart(w, now);

    // Wall-clock span of the real program execution (the simulated span
    // goes to trace_ in EndRound, stamped with virtual time): both engines
    // feed the same span stream, so a sim run's Perfetto trace shows where
    // host time actually went.
    const bool traced = obs::Tracer::enabled();
    const int64_t trace_start = traced ? obs::Tracer::Global().NowNs() : 0;
    uint64_t trace_pull = 0;

    Emitter<V>& emitter = rt.emitter;
    emitter.Clear();
    double work = 0.0;
    if (is_peval) {
      rt.running_round = 0;
      emitter.SetRound(0);
      if constexpr (DualModeProgram<Program>) {
        const SweepDirection dir = directions_[w].Decide(
            /*is_peval=*/true, 0, rt.buffer.NumPendingVertices(),
            rt.buffer.FrontierOutDegree());
        trace_pull = dir == SweepDirection::kPull ? 1 : 0;
        work = program_.PEval(partition_.fragments[w], states_[w], &emitter,
                              dir);
      } else {
        work = program_.PEval(partition_.fragments[w], states_[w], &emitter);
      }
    } else {
      rt.running_round = controller_->round(w) + 1;
      emitter.SetRound(rt.running_round);
      controller_->OnDrain(w, rt.buffer.NumDistinctSenders());
      // Frontier density signals must be read before the drain clears the
      // dirty list.
      [[maybe_unused]] const uint64_t frontier_v =
          rt.buffer.NumPendingVertices();
      [[maybe_unused]] const uint64_t frontier_deg =
          rt.buffer.FrontierOutDegree();
      auto updates = rt.buffer.Drain();
      stats_.workers[w].updates_applied += updates.size();
      if (traced) {
        obs::Tracer::Global().RecordInstant(obs::TraceKind::kBufferDrain, w,
                                            updates.size());
      }
      if constexpr (DualModeProgram<Program>) {
        const SweepDirection dir = directions_[w].Decide(
            /*is_peval=*/false, rt.running_round, frontier_v, frontier_deg);
        trace_pull = dir == SweepDirection::kPull ? 1 : 0;
        work = program_.IncEval(partition_.fragments[w], states_[w],
                                std::span<const UpdateEntry<V>>(updates),
                                &emitter, dir);
      } else {
        work = program_.IncEval(partition_.fragments[w], states_[w],
                                std::span<const UpdateEntry<V>>(updates),
                                &emitter);
      }
      ++total_rounds_;
    }
    if (traced) {
      obs::Tracer::Global().RecordSpan(
          is_peval ? obs::TraceKind::kPEval : obs::TraceKind::kIncEval, w,
          trace_start, rt.running_round, trace_pull);
    }
    // Swap (not move): the outbox was emptied by its last dispatch, so its
    // capacity flows back into the emitter for the next round.
    rt.outbox.swap(emitter.entries());
    // The floor models fixed per-round overhead and scales with the worker's
    // speed factor like the work does (a 2x-slow worker is 2x slower at
    // everything — the Example 1 setting "P1,P2 take 3 units, P3 takes 6").
    rt.round_cost = std::max(cfg_.min_round_time,
                             work * cfg_.work_unit_time) *
                    Speed(w) * Jitter(w);
    if constexpr (DualModeProgram<Program>) {
      // Work units are deterministic and backend-independent, so the
      // measured-cost rule keeps auto runs bit-reproducible. The simulator's
      // "wall clock" is its virtual round cost — also deterministic, so
      // --direction-wallclock stays reproducible under simulation.
      directions_[w].NoteRound(work, rt.round_cost);
    }
    rt.round_started = now;
    stats_.workers[w].work_units += work;
    const bool peval = is_peval;
    clock_.Schedule(now + rt.round_cost, [this, w, peval] {
      EndRound(w, peval);
    });
  }

  void EndRound(FragmentId w, bool is_peval) {
    auto& rt = workers_[w];
    const double now = clock_.Now();
    --busy_count_;
    stats_.workers[w].busy_time += rt.round_cost;
    trace_.Add(w, rt.running_round, rt.round_started, now,
               is_peval ? SpanKind::kPEval : SpanKind::kIncEval);
    if (!is_peval) {
      ++stats_.workers[w].rounds;
      controller_->OnRoundEnd(w, now, rt.round_cost);
    } else {
      // Seed the round-time predictor so δ has a t_i estimate from the
      // first IncEval decision onwards.
      controller_->SeedRoundTime(w, now, rt.round_cost);
    }

    // This round's output is pre-cut (no token yet): receivers either fold
    // it into their snapshot (late message) or carry it in the buffer their
    // snapshot captures. The worker then snapshots, so everything it sends
    // from here on is post-cut, and finally absorbs any tokened messages it
    // had to hold out of the snapshot.
    DispatchOutbox(w);
    if (rt.token_pending) {
      TakeSnapshot(w);
      rt.token_pending = false;
      UnstashTokened(w);
    }

    // Hsync watches the round gap to decide AP -> BSP switches.
    controller_->NoteRoundGap(controller_->RMax() -
                              controller_->RMin(RelevantMask()));

    if (Eligible(w)) {
      SetPhase(w, Phase::kIdle);  // transient; ReDecide moves it on
      ReDecide(w);
    } else {
      // Buffer empty: flag `inactive` to the master (termination protocol).
      SetPhase(w, Phase::kIdle);
      controller_->OnIdleStart(w, now);
    }
    MaybeWakeSuspended();
    CheckBarrier();
  }

  void PushTo(const RouteTarget& t, const UpdateEntry<V>& e) {
    auto& box = out_by_dst_[t.frag];
    if (box.empty()) {
      // The last send moved this box's storage into a Message envelope;
      // refill it from the pool of delivered envelopes instead of growing a
      // fresh allocation every round.
      if (box.capacity() == 0 && !entry_pool_.empty()) {
        box = std::move(entry_pool_.back());
        entry_pool_.pop_back();
      }
      touched_.push_back(t.frag);
    }
    box.push_back(UpdateEntry<V>{e.vid, e.value, e.round, t.lid});
  }

  /// Returns a delivered envelope's entry vector to the pool (bounded so a
  /// burst of in-flight messages cannot pin memory forever).
  void RecycleEntries(std::vector<UpdateEntry<V>>&& entries) {
    if (entry_pool_.size() >= workers_.size() * 2) return;
    entries.clear();
    entry_pool_.push_back(std::move(entries));
  }

  /// Routes the outbox as designated messages M(w, j) through the
  /// precomputed routing index into reusable per-destination boxes: O(1)
  /// array reads per destination, destination local ids stamped on copies.
  void DispatchOutbox(FragmentId w) {
    auto& rt = workers_[w];
    if (rt.outbox.empty()) return;
    for (const auto& e : rt.outbox) {
      RouteUpdateEntry<Program::kOwnerBroadcast>(
          partition_, w, e, recipients_,
          [this](const RouteTarget& t, const UpdateEntry<V>& entry) {
            PushTo(t, entry);
          });
    }
    rt.outbox.clear();
    const double now = clock_.Now();
    for (FragmentId dst : touched_) {
      auto& box = out_by_dst_[dst];
      Message<V> msg;
      msg.from = w;
      msg.to = dst;
      msg.round = box.back().round;
      msg.entries = std::move(box);
      box.clear();
      msg.token = rt.snapshotted ? checkpoint_token_ : Message<V>::kNoToken;
      const double lat = cfg_.msg_latency +
                         cfg_.per_entry_latency *
                             static_cast<double>(msg.entries.size());
      ++inflight_;
      ++stats_.workers[w].msgs_sent;
      stats_.workers[w].entries_sent += msg.entries.size();
      stats_.workers[w].bytes_sent += MessageBytes(msg);
      auto shared = std::make_shared<Message<V>>(std::move(msg));
      clock_.Schedule(now + lat, [this, shared] {
        Arrive(*shared);
        // The buffer folded (or stashed a copy of) the entries; the
        // envelope's storage goes back to the pool.
        RecycleEntries(std::move(shared->entries));
      });
    }
    touched_.clear();
  }

  void Arrive(const Message<V>& msg) {
    --inflight_;
    const FragmentId w = msg.to;
    auto& rt = workers_[w];
    const double now = clock_.Now();

    // Checkpoint token propagation (Section 6): a tokened message makes the
    // receiver snapshot first; an un-tokened message arriving after the
    // receiver snapshotted is folded into the snapshot as a "late" message.
    if (checkpoint_token_ != 0) {
      if (msg.token == checkpoint_token_ && !rt.snapshotted) {
        if (rt.phase == Phase::kBusy) {
          // Post-cut payload cannot enter the pre-cut snapshot: hold it
          // until the snapshot is taken at round end.
          rt.token_pending = true;
          rt.stashed_tokened.push_back(msg);
          ++stats_.workers[w].msgs_received;
          controller_->OnMessages(w, now, 1);
          if (inflight_ == 0) {
            MaybeWakeSuspended();
            CheckBarrier();
          }
          return;
        }
        TakeSnapshot(w);
      } else if (msg.token == Message<V>::kNoToken && rt.snapshotted) {
        for (const auto& e : msg.entries) rt.snapshot_buffer.push_back(e);
        checkpoints_->NoteLateMessage(w, checkpoint_token_);
      }
    }

    const bool first_pending = rt.buffer.Empty();
    rt.buffer.Append(msg, [this](const V& a, const V& b) {
      return program_.Combine(a, b);
    });
    ++stats_.workers[w].msgs_received;
    controller_->OnMessages(w, now, 1, first_pending);

    if (rt.phase != Phase::kBusy && !controller_->BarrierMode()) ReDecide(w);
    if (inflight_ == 0) {
      MaybeWakeSuspended();
      CheckBarrier();
    }
  }

  /// Releases all eligible workers atomically at global quiescence — the
  /// superstep barrier of BSP (and Hsync's BSP sub-mode).
  void CheckBarrier() {
    if (!controller_->BarrierMode() || !Quiescent()) return;
    std::vector<FragmentId> eligible;
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      if (workers_[w].phase != Phase::kBusy && Eligible(w)) {
        eligible.push_back(w);
      }
    }
    if (eligible.empty()) return;
    ++supersteps_;
    controller_->OnBarrierRelease();
    for (FragmentId w : eligible) StartRound(w, /*is_peval=*/false);
  }

  /// Applies δ to worker w (non-busy, eligible).
  void ReDecide(FragmentId w) {
    auto& rt = workers_[w];
    if (rt.phase == Phase::kBusy || !Eligible(w)) return;
    const double now = clock_.Now();
    const uint64_t local = HasLocalWork(w) ? 1 : 0;
    const DelayDecision d = controller_->Decide(
        w, now, rt.buffer.NumMessages() + local,
        rt.buffer.NumDistinctSenders() + local, RelevantMask());
    switch (d.kind) {
      case DelayDecision::Kind::kRunNow:
        StartRound(w, /*is_peval=*/false);
        break;
      case DelayDecision::Kind::kWaitFor: {
        CancelWake(w);
        SetPhase(w, Phase::kWaiting);
        const double wait = std::max(d.wait, 1e-9);
        rt.wake = clock_.Schedule(now + wait, [this, w] { OnWake(w); });
        rt.has_wake = true;
        break;
      }
      case DelayDecision::Kind::kSuspend:
        CancelWake(w);
        SetPhase(w, Phase::kSuspended);
        break;
    }
  }

  void OnWake(FragmentId w) {
    auto& rt = workers_[w];
    rt.has_wake = false;
    if (rt.phase == Phase::kBusy || !Eligible(w)) return;
    // The suspension exceeded DS_i: activate unless a staleness bound still
    // forbids it (in which case Decide() suspends).
    const uint64_t local = HasLocalWork(w) ? 1 : 0;
    const DelayDecision d = controller_->Decide(
        w, clock_.Now(), rt.buffer.NumMessages() + local,
        rt.buffer.NumDistinctSenders() + local, RelevantMask());
    if (d.kind == DelayDecision::Kind::kSuspend) {
      SetPhase(w, Phase::kSuspended);
      return;
    }
    StartRound(w, /*is_peval=*/false);
  }

  void CancelWake(FragmentId w) {
    auto& rt = workers_[w];
    if (rt.has_wake) {
      clock_.Cancel(rt.wake);
      rt.has_wake = false;
    }
  }

  /// Re-evaluates all suspended workers after a global state change
  /// (r_min advance, barrier quiescence, ...).
  void MaybeWakeSuspended() {
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      if (workers_[w].phase == Phase::kSuspended && Eligible(w)) {
        ReDecide(w);
      }
    }
  }

  // ---- checkpoint / recovery (Section 6) ----

  void BeginCheckpoint() {
    checkpoint_token_ = checkpoints_->StartCheckpoint();
    // Master broadcasts the request; it reaches workers after one latency.
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      clock_.Schedule(clock_.Now() + cfg_.msg_latency, [this, w] {
        auto& rt = workers_[w];
        if (rt.snapshotted) return;  // already held the token
        if (rt.phase == Phase::kBusy) {
          rt.token_pending = true;
        } else {
          TakeSnapshot(w);
        }
      });
    }
  }

  void TakeSnapshot(FragmentId w) {
    auto& rt = workers_[w];
    if (!checkpoints_->ShouldSnapshot(w, checkpoint_token_)) return;
    rt.snapshotted = true;
    rt.snapshot_state = states_[w];
    rt.snapshot_buffer = rt.buffer.Snapshot();
    rt.snapshot_round = controller_->round(w);
  }

  /// Appends messages held back during the snapshot, then reschedules.
  void UnstashTokened(FragmentId w) {
    auto& rt = workers_[w];
    if (rt.stashed_tokened.empty()) return;
    for (const auto& msg : rt.stashed_tokened) {
      rt.buffer.Append(msg, [this](const V& a, const V& b) {
        return program_.Combine(a, b);
      });
    }
    rt.stashed_tokened.clear();
  }

  void FailAndRecover() {
    if (checkpoint_token_ == 0 ||
        !checkpoints_->Complete(checkpoint_token_)) {
      GRAPE_LOG(Warning) << "failure injected before checkpoint completion; "
                            "ignoring (no consistent state to roll back to)";
      return;
    }
    trace_.NoteRestart(clock_.Now());
    clock_.DropPending();
    inflight_ = 0;
    busy_count_ = 0;
    std::vector<Round> rounds(workers_.size());
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      auto& rt = workers_[w];
      states_[w] = rt.snapshot_state;
      rounds[w] = rt.snapshot_round;
      rt.phase = Phase::kIdle;
      rt.phase_since = clock_.Now();
      rt.has_wake = false;
      rt.token_pending = false;
      rt.outbox.clear();
      rt.stashed_tokened.clear();
      rt.buffer.Reset(rt.snapshot_buffer,
                      [this](const V& a, const V& b) {
                        return program_.Combine(a, b);
                      });
    }
    controller_->RestoreRounds(rounds);
    // Single-recovery support: checkpointing machinery disarms after the
    // rollback (a fresh checkpoint could be started by a follow-up event).
    checkpoint_token_ = 0;
    for (auto& rt : workers_) rt.snapshotted = false;
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].buffer.Empty()) ReDecide(w);
    }
  }

  const Partition& partition_;
  Program program_;
  EngineConfig cfg_;
  SimClock clock_;
  std::unique_ptr<DelayStretchController> controller_;
  std::unique_ptr<CheckpointCoordinator> checkpoints_;
  uint64_t checkpoint_token_ = 0;

  std::vector<WorkerRt> workers_;
  std::vector<State> states_;
  /// Per-worker push/pull decision state (dual-mode programs; always built
  /// so the accessor is valid, trivially push-only otherwise).
  std::vector<DirectionController> directions_;
  std::vector<Rng> rngs_;
  std::vector<uint8_t> relevant_;
  // Reusable dispatch scratch (the sim engine is single-threaded).
  std::vector<std::vector<UpdateEntry<V>>> out_by_dst_;
  /// Entry vectors of delivered Message envelopes, recycled into
  /// out_by_dst_ boxes — the sim engine's per-superstep allocation rate no
  /// longer scales with message count.
  std::vector<std::vector<UpdateEntry<V>>> entry_pool_;
  std::vector<FragmentId> touched_;
  std::vector<FragmentId> recipients_;
  RunStats stats_;
  RunTrace trace_;
  uint64_t inflight_ = 0;
  uint32_t busy_count_ = 0;
  uint64_t total_rounds_ = 0;
  uint64_t supersteps_ = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_SIM_ENGINE_H_
