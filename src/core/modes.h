// Copyright 2026 The GRAPE+ Reproduction Authors.
// Parallel-model configuration. BSP, AP and SSP are special cases of AAP
// obtained by fixing the delay-stretch function δ (Section 3, "Special
// cases"); Hsync (PowerSwitch) is simulated by a switching rule.
#ifndef GRAPEPLUS_CORE_MODES_H_
#define GRAPEPLUS_CORE_MODES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/direction.h"
#include "util/common.h"

namespace grape {

enum class Mode {
  kBsp,    // δ: DS_i = +∞ iff r_i > r_min (global supersteps)
  kAp,     // δ: DS_i = 0 (run whenever the buffer is non-empty)
  kSsp,    // δ: DS_i = +∞ iff r_i − r_min > c, else 0
  kAap,    // δ: dynamic Eq. (1)
  kHsync,  // PowerSwitch-style explicit AP↔BSP switching
};

std::string ModeName(Mode m);

struct ModeConfig {
  Mode mode = Mode::kAap;

  /// SSP staleness bound c; also used by AAP when `bounded_staleness` is on
  /// (CF needs it, Section 5.3 Remark).
  int staleness_bound = 3;

  /// Enables the predicate S(r_i, r_min, r_max) clamp inside AAP.
  bool bounded_staleness = false;

  /// L⊥: initial / floor value of the accumulation bound L_i, in units of
  /// distinct sending workers.
  double l_bottom = 0.0;

  /// Δt_i as a fraction of the predicted next-round time t_i (Eq. 1); used
  /// to cap delay stretches.
  double delta_t_fraction = 0.5;

  /// AAP's accumulation target as a fraction of the worker's observed peer
  /// count: "δ set L_i as 60% of the number of workers" (Appendix B). A
  /// worker starts its round once it has heard from this share of the peers
  /// that usually feed it, grouping fast workers into BSP-like waves while
  /// stragglers proceed asynchronously.
  double sender_fraction = 0.6;

  /// Hsync: switch to BSP when r_max − r_min exceeds this, back to AP at 0.
  int hsync_gap_hi = 4;

  static ModeConfig Bsp() { return {.mode = Mode::kBsp}; }
  static ModeConfig Ap() { return {.mode = Mode::kAp}; }
  static ModeConfig Ssp(int c) {
    return {.mode = Mode::kSsp, .staleness_bound = c};
  }
  static ModeConfig Aap(double l_bottom = 0.0) {
    ModeConfig m;
    m.mode = Mode::kAap;
    m.l_bottom = l_bottom;
    return m;
  }
  static ModeConfig Hsync() { return {.mode = Mode::kHsync}; }
};

/// Full engine configuration (shared by the sim and threaded engines; the
/// timing fields are virtual time units in the sim engine and seconds in the
/// threaded engine).
struct EngineConfig {
  ModeConfig mode;

  /// Per-round push/pull direction policy for DualModeProgram programs
  /// (core/direction.h); ignored by single-kernel programs. kPull and kAuto
  /// require a pull-enabled partition (PartitionOptions::in_adjacency /
  /// in_arc_source) — without one every round degrades to push.
  DirectionConfig direction;

  /// Per-virtual-worker speed multipliers (>1 = slower); empty = all 1.0.
  /// Stragglers in the paper's experiments are produced by skewed fragments
  /// and/or these factors (Fig. 7 colours worker P12 as the straggler).
  std::vector<double> speed_factors;

  /// Message delivery latency (Fig. 1 uses 1 time unit per hop).
  double msg_latency = 1.0;
  /// Additional latency per message entry (bandwidth model); 0 = pure delay.
  double per_entry_latency = 0.0;

  /// Sim time per program-reported work unit.
  double work_unit_time = 1.0;
  /// Floor cost of any round (avoids zero-length rounds).
  double min_round_time = 0.01;

  /// Multiplicative jitter on compute times: each round's cost is scaled by
  /// uniform [1-jitter, 1+jitter]. Drives the Church–Rosser schedule sweeps.
  double compute_jitter = 0.0;
  uint64_t seed = 0;

  /// Safety valves.
  uint64_t max_total_rounds = 10'000'000;
  uint64_t max_events = 200'000'000;

  /// Checkpointing / failure injection (sim engine): when > 0, the master
  /// starts a token checkpoint at this virtual time.
  double checkpoint_time = 0.0;
  /// When >= 0 and `fail_time` > 0, worker `fail_worker` crashes at
  /// `fail_time` and the whole run rolls back to the last snapshot.
  int32_t fail_worker = -1;
  double fail_time = 0.0;

  /// Threaded engine only: number of physical threads (n < m in the paper's
  /// virtual-worker setup). 0 = one thread per fragment.
  uint32_t num_threads = 0;

  /// Threaded engine only: pin pool threads to cores, round-robin over the
  /// usable cpus in (node, package) order (runtime/topology.h). Advisory —
  /// refused pins leave threads floating. `grape_cli --pin`.
  bool pin_threads = false;

  /// Async engine only: max buffered updates applied per IncEval quantum.
  /// Small quanta approximate per-vertex execution (fine-grained
  /// interleaving, fresh values propagate sooner); large quanta amortise
  /// the call overhead. Clamped to >= 1.
  uint32_t async_chunk = 64;

  /// Async engine only: delta-stepping bucket width for PrioritizedProgram
  /// programs (SSSP/BFS). Updates bucket under floor(priority / delta);
  /// non-positive widths degrade to one FIFO bucket. Scheduling only —
  /// results never depend on it.
  double async_delta = 1.0;

  /// Async engine only: bounded staleness — the max wall-clock seconds a
  /// delivered-but-unapplied update may wait before its destination worker
  /// is scheduled ahead of the worklists ("Delayed Asynchronous Iterative
  /// Graph Algorithms": bounded delay keeps async iteration convergent).
  /// <= 0 disables the overdue scan.
  double async_staleness_sec = 0.05;

  /// Threaded engine only: bind each virtual worker's state (update-buffer
  /// slots, per-vertex program state, memoised lid caches) to the NUMA
  /// node of the thread expected to drain it. Placement is a pure memory
  /// optimisation — it never changes results — and degrades to a no-op on
  /// single-node boxes or kernels without mbind. `grape_cli --numa=0`
  /// disables it.
  bool numa_local = true;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_MODES_H_
