#include "core/delay_stretch.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace grape {

std::string ModeName(Mode m) {
  switch (m) {
    case Mode::kBsp: return "BSP";
    case Mode::kAp: return "AP";
    case Mode::kSsp: return "SSP";
    case Mode::kAap: return "AAP";
    case Mode::kHsync: return "Hsync";
  }
  return "?";
}

DelayStretchController::DelayStretchController(const ModeConfig& cfg,
                                               uint32_t num_workers,
                                               double latency_hint)
    : cfg_(cfg),
      n_(num_workers),
      latency_hint_(latency_hint),
      rounds_(num_workers, 0),
      round_time_(num_workers, Ema(0.4)),
      rate_(num_workers, RateEstimator(0.4)),
      idle_since_(num_workers, 0.0),
      idle_(num_workers, 1),
      l_(num_workers, cfg.l_bottom),
      observed_peers_(num_workers,
                      num_workers > 1 ? num_workers - 1.0 : 0.0),
      peers_known_(num_workers, 0) {}

void DelayStretchController::OnRoundStart(FragmentId w, double now) {
  idle_[w] = 0;
  idle_since_[w] = now;
}

void DelayStretchController::OnRoundEnd(FragmentId w, double now,
                                        double round_time) {
  ++rounds_[w];
  round_time_[w].Add(round_time);
  idle_[w] = 1;
  idle_since_[w] = now;
}

void DelayStretchController::SeedRoundTime(FragmentId w, double now,
                                           double round_time) {
  round_time_[w].Add(round_time);
  idle_[w] = 1;
  idle_since_[w] = now;
}

void DelayStretchController::OnMessages(FragmentId w, double now,
                                        uint64_t count, bool first_pending) {
  rate_[w].OnEvent(now, count);
  if (first_pending && idle_[w]) idle_since_[w] = now;
}

void DelayStretchController::OnDrain(FragmentId w, uint64_t distinct_senders) {
  // Learn how many peers feed this worker: the largest wave observed so
  // far, after an optimistic first drain (the all-peers prior would make
  // sparse-topology workers wait for senders that never come).
  const double seen = static_cast<double>(distinct_senders);
  if (!peers_known_[w]) {
    peers_known_[w] = 1;
    observed_peers_[w] = seen;
  } else {
    observed_peers_[w] = std::max(seen, observed_peers_[w]);
  }
}

void DelayStretchController::OnIdleStart(FragmentId w, double now) {
  idle_[w] = 1;
  idle_since_[w] = now;
}

Round DelayStretchController::RMin(const std::vector<uint8_t>& relevant) const {
  Round r = std::numeric_limits<Round>::max();
  for (uint32_t i = 0; i < n_; ++i) {
    if (relevant.empty() || relevant[i]) r = std::min(r, rounds_[i]);
  }
  return r == std::numeric_limits<Round>::max() ? 0 : r;
}

Round DelayStretchController::RMax() const {
  Round r = 0;
  for (uint32_t i = 0; i < n_; ++i) r = std::max(r, rounds_[i]);
  return r;
}

double DelayStretchController::PredictedRoundTime(FragmentId w) const {
  return round_time_[w].initialized() ? round_time_[w].value() : 0.0;
}

double DelayStretchController::ArrivalRate(FragmentId w) const {
  return rate_[w].RatePerUnit();
}

double DelayStretchController::GroupRoundTime(
    const std::vector<uint8_t>& relevant) const {
  std::vector<double> ts;
  ts.reserve(n_);
  for (uint32_t i = 0; i < n_; ++i) {
    if ((relevant.empty() || relevant[i]) && round_time_[i].initialized()) {
      ts.push_back(round_time_[i].value());
    }
  }
  if (ts.empty()) return 0.0;
  std::nth_element(ts.begin(), ts.begin() + ts.size() / 2, ts.end());
  return ts[ts.size() / 2];
}

DelayDecision DelayStretchController::DecideAap(
    FragmentId w, double now, uint64_t eta, uint64_t eta_senders,
    const std::vector<uint8_t>& relevant) {
  // Section 3, "Dynamic adjustment" + Appendix B: the accumulation bound
  // L_i is a share of the peers that usually feed this worker ("δ set L_i
  // as 60% of the number of workers"). A worker starts its round once it
  // has heard from that share — fast workers thereby self-organise into
  // BSP-like waves (each waits for most of its group) while stragglers are
  // neither blocked nor block anyone. T_idle bounds every wait.
  (void)eta;
  const double target =
      std::max(cfg_.l_bottom, cfg_.sender_fraction * observed_peers_[w]);
  l_[w] = target;
  if (static_cast<double>(eta_senders) >= target) {
    return {DelayDecision::Kind::kRunNow, 0};
  }

  // Estimate how long the missing senders take to arrive (message arrival
  // rate as an upper bound on the sender arrival rate), capped by a couple
  // of group-round-times-or-latencies, minus the time already waited. The
  // cadence is the *group's* (median peer round time): fast workers thereby
  // pace each other — the paper's "fast workers are automatically grouped
  // together and run essentially BSP within the group".
  const double s_i = rate_[w].RatePerUnit();
  const double t_i =
      std::max(PredictedRoundTime(w), GroupRoundTime(relevant));
  const double timescale = std::max(t_i, latency_hint_);
  const double cap = timescale > 0.0 ? 2.0 * timescale : 0.0;
  if (cap <= 0.0) return {DelayDecision::Kind::kRunNow, 0};
  double t_more =
      s_i > 0.0 ? (target - static_cast<double>(eta_senders)) / s_i : cap;
  // The missing senders' messages are at least one delivery latency away;
  // waking earlier would consume a partial generation and recompute.
  t_more = std::max(t_more, latency_hint_);
  const double t_idle = idle_[w] ? std::max(0.0, now - idle_since_[w]) : 0.0;
  const double ds = std::min(t_more, cap) - t_idle;
  if (ds <= 0.0) return {DelayDecision::Kind::kRunNow, 0};
  return {DelayDecision::Kind::kWaitFor, ds};
}

bool DelayStretchController::BarrierMode() const {
  return cfg_.mode == Mode::kBsp ||
         (cfg_.mode == Mode::kHsync && hsync_in_bsp_);
}

void DelayStretchController::NoteRoundGap(Round gap) {
  if (cfg_.mode != Mode::kHsync) return;
  if (!hsync_in_bsp_ && gap > cfg_.hsync_gap_hi) {
    hsync_in_bsp_ = true;
    hsync_bsp_supersteps_ = 0;
  }
}

void DelayStretchController::OnBarrierRelease() {
  if (cfg_.mode != Mode::kHsync || !hsync_in_bsp_) return;
  // PowerSwitch's switch-back: a few synchronised supersteps realign the
  // workers, then asynchrony resumes.
  if (++hsync_bsp_supersteps_ >= 3) hsync_in_bsp_ = false;
}

void DelayStretchController::RestoreRounds(const std::vector<Round>& rounds) {
  GRAPE_CHECK(rounds.size() == rounds_.size());
  rounds_ = rounds;
}

DelayDecision DelayStretchController::Decide(
    FragmentId w, double now, uint64_t eta, uint64_t eta_senders,
    const std::vector<uint8_t>& relevant) {
  if (eta == 0) return {DelayDecision::Kind::kSuspend, 0};
  if (BarrierMode()) return {DelayDecision::Kind::kSuspend, 0};

  const Round r_min = RMin(relevant);
  const Round r_i = rounds_[w];

  switch (cfg_.mode) {
    case Mode::kBsp:
      return {DelayDecision::Kind::kSuspend, 0};  // handled above
    case Mode::kAp:
    case Mode::kHsync:  // AP sub-mode
      return {DelayDecision::Kind::kRunNow, 0};
    case Mode::kSsp:
      // The fastest worker may lead the slowest by at most c rounds.
      return (r_i - r_min <= cfg_.staleness_bound)
                 ? DelayDecision{DelayDecision::Kind::kRunNow, 0}
                 : DelayDecision{DelayDecision::Kind::kSuspend, 0};
    case Mode::kAap: {
      // Predicate S: bounded staleness only when the program requires it.
      if (cfg_.bounded_staleness && r_i - r_min > cfg_.staleness_bound) {
        return {DelayDecision::Kind::kSuspend, 0};
      }
      return DecideAap(w, now, eta, eta_senders, relevant);
    }
  }
  return {DelayDecision::Kind::kRunNow, 0};
}

}  // namespace grape
