#include "core/delay_stretch.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace grape {

std::string ModeName(Mode m) {
  switch (m) {
    case Mode::kBsp: return "BSP";
    case Mode::kAp: return "AP";
    case Mode::kSsp: return "SSP";
    case Mode::kAap: return "AAP";
    case Mode::kHsync: return "Hsync";
  }
  return "?";
}

DelayStretchController::DelayStretchController(const ModeConfig& cfg,
                                               uint32_t num_workers,
                                               double latency_hint)
    : cfg_(cfg),
      n_(num_workers),
      latency_hint_(latency_hint),
      rounds_(num_workers) {
  ctl_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    auto c = std::make_unique<WorkerCtl>();
    c->observed_peers = num_workers > 1 ? num_workers - 1.0 : 0.0;
    // order: relaxed — advisory mirror (see WorkerCtl); the constructor
    // publishes ctl_ itself before any thread runs.
    c->l.store(cfg.l_bottom, std::memory_order_relaxed);
    ctl_.push_back(std::move(c));
  }
}

void DelayStretchController::OnRoundStart(FragmentId w, double now) {
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  c.idle = false;
  c.idle_since = now;
}

void DelayStretchController::OnRoundEnd(FragmentId w, double now,
                                        double round_time) {
  // order: acq_rel — the increment publishes the finished round's state
  // updates to staleness probes (RMin/RMax readers) that observe it.
  rounds_[w].fetch_add(1, std::memory_order_acq_rel);
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  c.round_time.Add(round_time);
  // order: relaxed — advisory mirror for other workers' GroupRoundTime.
  c.predicted.store(c.round_time.value(), std::memory_order_relaxed);
  c.idle = true;
  c.idle_since = now;
}

void DelayStretchController::SeedRoundTime(FragmentId w, double now,
                                           double round_time) {
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  c.round_time.Add(round_time);
  // order: relaxed — advisory mirror, as in OnRoundEnd.
  c.predicted.store(c.round_time.value(), std::memory_order_relaxed);
  c.idle = true;
  c.idle_since = now;
}

void DelayStretchController::OnMessages(FragmentId w, double now,
                                        uint64_t count, bool first_pending) {
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  c.rate.OnEvent(now, count);
  if (first_pending && c.idle) c.idle_since = now;
}

void DelayStretchController::OnDrain(FragmentId w, uint64_t distinct_senders) {
  // Learn how many peers feed this worker: the largest wave observed so
  // far, after an optimistic first drain (the all-peers prior would make
  // sparse-topology workers wait for senders that never come).
  const double seen = static_cast<double>(distinct_senders);
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  if (!c.peers_known) {
    c.peers_known = true;
    c.observed_peers = seen;
  } else {
    c.observed_peers = std::max(seen, c.observed_peers);
  }
}

void DelayStretchController::OnIdleStart(FragmentId w, double now) {
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  c.idle = true;
  c.idle_since = now;
}

Round DelayStretchController::RMin(const std::vector<uint8_t>& relevant) const {
  Round r = std::numeric_limits<Round>::max();
  for (uint32_t i = 0; i < n_; ++i) {
    if (relevant.empty() || relevant[i]) {
      // order: relaxed — see round(); bounds tolerate staleness.
      r = std::min(r, rounds_[i].load(std::memory_order_relaxed));
    }
  }
  return r == std::numeric_limits<Round>::max() ? 0 : r;
}

Round DelayStretchController::RMax() const {
  Round r = 0;
  for (uint32_t i = 0; i < n_; ++i) {
    // order: relaxed — see round().
    r = std::max(r, rounds_[i].load(std::memory_order_relaxed));
  }
  return r;
}

double DelayStretchController::ArrivalRate(FragmentId w) const {
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  return c.rate.RatePerUnit();
}

double DelayStretchController::GroupRoundTime(
    const std::vector<uint8_t>& relevant) const {
  // Reads the lock-free predicted-time mirrors: other workers' estimator
  // locks are never taken from inside a Decide().
  std::vector<double> ts;
  ts.reserve(n_);
  for (uint32_t i = 0; i < n_; ++i) {
    if (relevant.empty() || relevant[i]) {
      // order: relaxed — advisory mirror; a stale estimate skews a wait.
      const double t = ctl_[i]->predicted.load(std::memory_order_relaxed);
      if (t > 0.0) ts.push_back(t);
    }
  }
  if (ts.empty()) return 0.0;
  std::nth_element(ts.begin(), ts.begin() + ts.size() / 2, ts.end());
  return ts[ts.size() / 2];
}

DelayDecision DelayStretchController::DecideAap(
    FragmentId w, double now, uint64_t eta, uint64_t eta_senders,
    const std::vector<uint8_t>& relevant) {
  // Section 3, "Dynamic adjustment" + Appendix B: the accumulation bound
  // L_i is a share of the peers that usually feed this worker ("δ set L_i
  // as 60% of the number of workers"). A worker starts its round once it
  // has heard from that share — fast workers thereby self-organise into
  // BSP-like waves (each waits for most of its group) while stragglers are
  // neither blocked nor block anyone. T_idle bounds every wait.
  (void)eta;
  WorkerCtl& c = *ctl_[w];
  MutexLock lock(c.mu);
  const double target =
      std::max(cfg_.l_bottom, cfg_.sender_fraction * c.observed_peers);
  // order: relaxed — introspection mirror only.
  c.l.store(target, std::memory_order_relaxed);
  if (static_cast<double>(eta_senders) >= target) {
    return {DelayDecision::Kind::kRunNow, 0};
  }

  // Estimate how long the missing senders take to arrive (message arrival
  // rate as an upper bound on the sender arrival rate), capped by a couple
  // of group-round-times-or-latencies, minus the time already waited. The
  // cadence is the *group's* (median peer round time): fast workers thereby
  // pace each other — the paper's "fast workers are automatically grouped
  // together and run essentially BSP within the group".
  const double s_i = c.rate.RatePerUnit();
  const double own = c.round_time.initialized() ? c.round_time.value() : 0.0;
  const double t_i = std::max(own, GroupRoundTime(relevant));
  const double timescale = std::max(t_i, latency_hint_);
  const double cap = timescale > 0.0 ? 2.0 * timescale : 0.0;
  if (cap <= 0.0) return {DelayDecision::Kind::kRunNow, 0};
  double t_more =
      s_i > 0.0 ? (target - static_cast<double>(eta_senders)) / s_i : cap;
  // The missing senders' messages are at least one delivery latency away;
  // waking earlier would consume a partial generation and recompute.
  t_more = std::max(t_more, latency_hint_);
  const double t_idle = c.idle ? std::max(0.0, now - c.idle_since) : 0.0;
  const double ds = std::min(t_more, cap) - t_idle;
  if (ds <= 0.0) return {DelayDecision::Kind::kRunNow, 0};
  return {DelayDecision::Kind::kWaitFor, ds};
}

bool DelayStretchController::BarrierMode() const {
  return cfg_.mode == Mode::kBsp ||
         (cfg_.mode == Mode::kHsync && hsync_in_bsp());
}

void DelayStretchController::NoteRoundGap(Round gap) {
  if (cfg_.mode != Mode::kHsync) return;
  MutexLock lock(hsync_mu_);
  // order: relaxed — hsync_mu_ serialises writers; the flag's readers pair
  // with the release store below.
  if (!hsync_in_bsp_.load(std::memory_order_relaxed) &&
      gap > cfg_.hsync_gap_hi) {
    // order: release pairs with hsync_in_bsp()'s acquire.
    hsync_in_bsp_.store(true, std::memory_order_release);
    hsync_bsp_supersteps_ = 0;
  }
}

void DelayStretchController::OnBarrierRelease() {
  if (cfg_.mode != Mode::kHsync) return;
  MutexLock lock(hsync_mu_);
  // order: relaxed — hsync_mu_ serialises writers (see NoteRoundGap).
  if (!hsync_in_bsp_.load(std::memory_order_relaxed)) return;
  // PowerSwitch's switch-back: a few synchronised supersteps realign the
  // workers, then asynchrony resumes.
  if (++hsync_bsp_supersteps_ >= 3) {
    // order: release pairs with hsync_in_bsp()'s acquire.
    hsync_in_bsp_.store(false, std::memory_order_release);
  }
}

void DelayStretchController::RestoreRounds(const std::vector<Round>& rounds) {
  GRAPE_CHECK(rounds.size() == rounds_.size());
  for (uint32_t i = 0; i < n_; ++i) {
    // order: release — the restored snapshot state happens-before probes
    // that read the counters.
    rounds_[i].store(rounds[i], std::memory_order_release);
  }
}

DelayDecision DelayStretchController::Decide(
    FragmentId w, double now, uint64_t eta, uint64_t eta_senders,
    const std::vector<uint8_t>& relevant) {
  if (eta == 0) return {DelayDecision::Kind::kSuspend, 0};
  if (BarrierMode()) return {DelayDecision::Kind::kSuspend, 0};

  const Round r_min = RMin(relevant);
  const Round r_i = round(w);

  switch (cfg_.mode) {
    case Mode::kBsp:
      return {DelayDecision::Kind::kSuspend, 0};  // handled above
    case Mode::kAp:
    case Mode::kHsync:  // AP sub-mode
      return {DelayDecision::Kind::kRunNow, 0};
    case Mode::kSsp:
      // The fastest worker may lead the slowest by at most c rounds.
      return (r_i - r_min <= cfg_.staleness_bound)
                 ? DelayDecision{DelayDecision::Kind::kRunNow, 0}
                 : DelayDecision{DelayDecision::Kind::kSuspend, 0};
    case Mode::kAap: {
      // Predicate S: bounded staleness only when the program requires it.
      if (cfg_.bounded_staleness && r_i - r_min > cfg_.staleness_bound) {
        return {DelayDecision::Kind::kSuspend, 0};
      }
      return DecideAap(w, now, eta, eta_senders, relevant);
    }
  }
  return {DelayDecision::Kind::kRunNow, 0};
}

}  // namespace grape
