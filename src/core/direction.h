// Copyright 2026 The GRAPE+ Reproduction Authors.
// Adaptive per-round push/pull direction switching (the libgrape-lite /
// Ligra "edgeMap" optimisation adapted to the AAP engines).
//
// A DualModeProgram exposes both a scatter (push) and a gather (pull)
// kernel behind one PIE surface; each round the engine measures the active
// frontier — the buffered dirty vertices and their summed out-degree,
// tracked incrementally by UpdateBuffer's dirty list — and asks a
// per-worker DirectionController which kernel to run. The controller
// applies Ligra/GBBS-style density thresholds against the fragment's arc
// count, with a hysteresis band so a frontier hovering near the threshold
// does not flap A-B-A between directions.
//
// The choice is purely a performance decision: dual-mode programs keep one
// message protocol (value type, faggr, broadcast discipline) for both
// kernels, so any per-round mixture of directions reaches the same
// fixpoint (the monotone-aggregate Church–Rosser argument of Section 5).
#ifndef GRAPEPLUS_CORE_DIRECTION_H_
#define GRAPEPLUS_CORE_DIRECTION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/common.h"

namespace grape {

/// The traversal direction of one PEval/IncEval round.
enum class SweepDirection : uint8_t {
  kPush,  // scatter: iterate the frontier's out-adjacency
  kPull,  // gather: iterate inner vertices' in-adjacency
};

std::string SweepDirectionName(SweepDirection d);

/// Engine-level direction policy (EngineConfig::direction).
struct DirectionConfig {
  enum class Mode : uint8_t {
    kPush,  // always run the scatter kernel (default; matches pre-dual runs)
    kPull,  // always run the gather kernel (partition must be pull-enabled)
    kAuto,  // per-round density switch with hysteresis
  };
  Mode mode = Mode::kPush;

  /// Cold-start density thresholds, as fractions of the fragment's local
  /// arc count |E_i|. The decision signal is |frontier| + sum of frontier
  /// out-degrees (the edges a push round would traverse, Ligra's
  /// |F| + outdeg(F)): switch to pull when the signal reaches
  /// `dense_frac * |E_i|`, back to push only when it falls below
  /// `sparse_frac * |E_i|`; the gap is the hysteresis band, so a signal
  /// oscillating inside it keeps the current direction.
  ///
  /// Ligra's break-even is |E|/20, priced for lock-free scatter contention
  /// on shared frontiers. Here each fragment's kernel runs single-threaded
  /// (parallelism is across virtual workers), so a gather round costs
  /// O(|E_i|) however small its frontier, and static thresholds cannot
  /// know how the two kernels' costs compare for a given program — the
  /// paper's adaptivity thesis applies to the controller itself. The
  /// density rule therefore only governs until the controller has observed
  /// at least one round of each kernel; from then on it compares the
  /// *measured* per-round costs (see DirectionController::NoteRound), with
  /// `cost_margin` as the hysteresis.
  double dense_frac = 0.35;
  double sparse_frac = 0.15;

  /// Measured-cost hysteresis: the other direction's predicted round cost
  /// must be at least this fraction cheaper before the controller
  /// switches. Damps A-B-A flapping when the kernels run neck and neck.
  double cost_margin = 0.25;

  /// Extra bias on *entering* the gather regime: pull must predict
  /// cheaper than push by this factor (on top of cost_margin) before a
  /// push worker switches. Work units price a round's memory traffic, not
  /// its convergence value — a pull unit is a masked filter probe while a
  /// push unit moves real mass, and a one-hop Jacobi round settles less
  /// than a multi-sweep scatter round — so near-parity predictions must
  /// resolve to push (measured on the 1M stress profile: an unbiased rule
  /// spent 72 gather rounds to lose 13% to pure push on PageRank, while
  /// CC's genuine gather wins clear this bar comfortably).
  double pull_entry_bias = 2.0;

  /// Cold-start exploration: if auto has run this many consecutive pull
  /// rounds without ever sampling the push kernel (a persistently dense
  /// frontier never crosses the sparse threshold), it forces one push
  /// round so the measured-cost rule can engage. Deterministic. Kept
  /// minimal: every cold-start pull round on a push-favoured workload is
  /// pure loss, and the PEval gather already sampled the pull kernel.
  uint32_t explore_after = 1;

  /// Wall-clock calibration: feed the measured-cost EWMAs with the round's
  /// measured wall time instead of its deterministic work units, when the
  /// engine supplies one (the threaded engine does; the sim engine's
  /// "wall" is its virtual round cost). Wall time prices what work units
  /// cannot — cache behaviour, NUMA distance, SIMD throughput of each
  /// kernel on the actual box — but it varies run to run, so auto's
  /// decisions stop being bit-reproducible across machines. Off by
  /// default; opt in via `grape_cli --direction-wallclock`.
  bool measured_wall_clock = false;
};

/// One per-round telemetry record of a worker's direction decision.
struct DirectionSample {
  Round round = 0;
  SweepDirection dir = SweepDirection::kPush;
  uint64_t frontier_vertices = 0;  // buffered dirty vertices at decision time
  uint64_t frontier_degree = 0;    // their summed local out-degree
  bool switched = false;           // differs from the previous round's choice
  /// Measured wall time of the round this decision governed, in ns
  /// (0 until NoteRound reports; the sim engine reports virtual seconds
  /// scaled to ns). Telemetry only — decisions use it solely under
  /// DirectionConfig::measured_wall_clock.
  uint64_t wall_ns = 0;
};

/// Per-virtual-worker direction decision state. Engines own one per
/// fragment and consult it at round start; it is only touched by the thread
/// that holds the worker's round claim (same single-writer discipline as
/// program state), so it needs no internal locking.
class DirectionController {
 public:
  DirectionController() = default;

  /// Trace lane sentinel: a controller constructed without a lane emits no
  /// trace events (tests construct them standalone).
  static constexpr uint32_t kNoTrack = UINT32_MAX;

  /// `frag_arcs` is |E_i| of the worker's fragment; `pull_available` gates
  /// the gather direction (false when the partition carries no
  /// in-adjacency — every decision is then kPush regardless of the mode).
  /// `trace_track` is the lane (normally the worker's FragmentId) decision
  /// instants are recorded on when the wall-clock tracer is enabled.
  DirectionController(const DirectionConfig& cfg, uint64_t frag_arcs,
                      bool pull_available, uint32_t trace_track = kNoTrack)
      : cfg_(cfg), pull_available_(pull_available),
        trace_track_(trace_track) {
    const double arcs = static_cast<double>(frag_arcs);
    dense_at_ = cfg.dense_frac * arcs;
    sparse_at_ = cfg.sparse_frac * arcs;
    if (sparse_at_ > dense_at_) sparse_at_ = dense_at_;  // band never inverts
  }

  /// Decides the direction of the round about to run and records telemetry.
  /// `is_peval` rounds see the full vertex set as frontier (every status
  /// variable is fresh), so auto treats them as dense. `frontier_vertices` /
  /// `frontier_degree` are the buffer's dirty-list signals, read before the
  /// drain.
  SweepDirection Decide(bool is_peval, Round round, uint64_t frontier_vertices,
                        uint64_t frontier_degree) {
    SweepDirection next = SweepDirection::kPush;
    if (pull_available_) {
      switch (cfg_.mode) {
        case DirectionConfig::Mode::kPush:
          break;
        case DirectionConfig::Mode::kPull:
          next = SweepDirection::kPull;
          break;
        case DirectionConfig::Mode::kAuto: {
          if (is_peval) {
            next = SweepDirection::kPull;  // full frontier: dense by definition
            break;
          }
          const double signal = static_cast<double>(frontier_vertices) +
                                static_cast<double>(frontier_degree);
          if (pull_cost_ > 0.0 && push_rate_ > 0.0) {
            // Measured regime: predict this round's cost under each kernel
            // — push scales with the frontier signal, pull is a full
            // gather whatever the frontier — and switch only on a clear
            // (cost_margin) advantage.
            const double pred_push = push_rate_ * std::max(signal, 1.0);
            const double margin = 1.0 + cfg_.cost_margin;
            if (current_ == SweepDirection::kPush) {
              next = pull_cost_ * margin * cfg_.pull_entry_bias < pred_push
                         ? SweepDirection::kPull
                         : SweepDirection::kPush;
            } else {
              next = pred_push * margin < pull_cost_ ? SweepDirection::kPush
                                                     : SweepDirection::kPull;
            }
          } else if (current_ == SweepDirection::kPull &&
                     push_rate_ <= 0.0 &&
                     pull_streak_ >= cfg_.explore_after) {
            // Cold-start exploration: a persistently dense frontier would
            // otherwise never sample the scatter kernel, leaving the
            // measured-cost rule dormant.
            next = SweepDirection::kPush;
          } else if (current_ == SweepDirection::kPush) {
            next = signal >= dense_at_ && dense_at_ > 0.0
                       ? SweepDirection::kPull
                       : SweepDirection::kPush;
          } else {
            // Hysteresis: stay pull until the signal clearly drops out of
            // the dense regime.
            next = signal < sparse_at_ ? SweepDirection::kPush
                                       : SweepDirection::kPull;
          }
          break;
        }
      }
    }
    const bool switched = decided_ && next != current_;
    decided_ = true;
    current_ = next;
    last_signal_ = static_cast<double>(frontier_vertices) +
                   static_cast<double>(frontier_degree);
    last_was_peval_ = is_peval;
    if (next == SweepDirection::kPush) {
      ++push_rounds_;
      pull_streak_ = 0;
    } else {
      ++pull_rounds_;
      ++pull_streak_;
    }
    switches_ += switched ? 1 : 0;
    last_logged_ = log_.size() < kMaxLog;
    if (last_logged_) {
      log_.push_back(DirectionSample{round, next, frontier_vertices,
                                     frontier_degree, switched});
    }
    // Structured telemetry: the same decision the log_ sample records, as a
    // trace instant on the worker's lane (arg0 = direction, arg1 = the
    // density signal the choice was based on).
    if (trace_track_ != kNoTrack && obs::Tracer::enabled()) {
      obs::Tracer::Global().RecordInstant(
          obs::TraceKind::kDirectionDecide, trace_track_,
          next == SweepDirection::kPull ? 1 : 0,
          frontier_vertices + frontier_degree);
    }
    return next;
  }

  /// Reports the cost of the round the last Decide() chose, in the
  /// program's work units — deterministic and identical across storage
  /// backends, unlike wall time, so auto runs stay bit-reproducible.
  /// Feeds the per-direction EWMAs the measured-cost rule compares: the
  /// pull kernel's cost per round (a full gather is frontier-independent)
  /// and the push kernel's cost per unit of frontier signal. PEval push
  /// rounds carry no meaningful signal and are skipped.
  ///
  /// `wall_seconds` (< 0 = unavailable) is the round's measured wall time;
  /// it is always recorded in the telemetry log, and replaces `cost` as
  /// the EWMA sample when DirectionConfig::measured_wall_clock is set.
  void NoteRound(double cost, double wall_seconds = -1.0) {
    if (!decided_) return;
    if (wall_seconds >= 0.0 && last_logged_) {
      log_.back().wall_ns = static_cast<uint64_t>(wall_seconds * 1e9);
    }
    const double sample =
        cfg_.measured_wall_clock && wall_seconds >= 0.0 ? wall_seconds : cost;
    constexpr double kAlpha = 0.3;
    const auto fold = [&](double ewma, double s) {
      return ewma <= 0.0 ? s : ewma + kAlpha * (s - ewma);
    };
    if (current_ == SweepDirection::kPull) {
      pull_cost_ = fold(pull_cost_, sample);
    } else if (!last_was_peval_) {
      push_rate_ = fold(push_rate_, sample / std::max(last_signal_, 1.0));
    }
  }

  SweepDirection current() const { return current_; }
  uint64_t push_rounds() const { return push_rounds_; }
  uint64_t pull_rounds() const { return pull_rounds_; }
  uint64_t switches() const { return switches_; }
  /// Per-round decision log (capped at kMaxLog entries to bound telemetry
  /// memory on long runs; counters above keep exact totals).
  const std::vector<DirectionSample>& log() const { return log_; }

  static constexpr size_t kMaxLog = 4096;

 private:
  DirectionConfig cfg_;
  bool pull_available_ = false;
  uint32_t trace_track_ = kNoTrack;
  double dense_at_ = 0.0;
  double sparse_at_ = 0.0;
  SweepDirection current_ = SweepDirection::kPush;
  bool decided_ = false;
  bool last_was_peval_ = false;
  bool last_logged_ = false;  // did the last Decide() append to log_?
  double last_signal_ = 0.0;
  // Measured-cost EWMAs (< 0 until the kernel has been sampled).
  double pull_cost_ = -1.0;
  double push_rate_ = -1.0;
  uint32_t pull_streak_ = 0;
  uint64_t push_rounds_ = 0;
  uint64_t pull_rounds_ = 0;
  uint64_t switches_ = 0;
  std::vector<DirectionSample> log_;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_DIRECTION_H_
