// Copyright 2026 The GRAPE+ Reproduction Authors.
// The delay-stretch controller: the adjustment function δ of Section 3.
//
// Each worker P_i carries a delay stretch DS_i; P_i starts its next round of
// IncEval only when (a) its buffer is non-empty and (b) it has been suspended
// for DS_i time. Eq. (1):
//
//        ⎧ +∞            ¬S(r_i, r_min, r_max) ∨ (η_i = 0)
//   DS_i=⎨ T_Li − T_idle  S(...) ∧ (1 ≤ η_i < L_i)
//        ⎩ 0              S(...) ∧ (η_i ≥ L_i)
//
// where η_i is the buffered-message staleness, L_i predicts how many
// messages are worth accumulating (adapted from the predicted round time t_i
// and the message arrival rate s_i), T_Li ≈ (L_i − η_i)/s_i, and T_idle
// prevents indefinite waiting. BSP / AP / SSP are fixed-δ special cases.
//
// Thread safety: all per-worker estimator state sits behind a per-worker
// mutex, and the cross-worker signals (round counters, predicted round
// times) are mirrored into atomics, so concurrent Decide()/OnMessages()
// calls for different workers never contend on a shared lock — the threaded
// engine no longer funnels every scheduling decision through one mutex.
#ifndef GRAPEPLUS_CORE_DELAY_STRETCH_H_
#define GRAPEPLUS_CORE_DELAY_STRETCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/modes.h"
#include "util/stats.h"
#include "util/sync.h"

namespace grape {

/// What a worker should do with its non-empty buffer.
struct DelayDecision {
  enum class Kind {
    kRunNow,   // DS_i = 0
    kWaitFor,  // DS_i finite: re-check after `wait` time (or on new arrival)
    kSuspend,  // DS_i = +∞: wait for a global state change (r_min advance,
               //            BSP barrier, or message arrival)
  };
  Kind kind = Kind::kRunNow;
  double wait = 0.0;
};

/// Per-run controller shared by all virtual workers of one engine instance.
/// The engine reports round starts/ends, message arrivals and idleness; the
/// controller answers Decide() queries. Safe for concurrent use from many
/// threads; calls about distinct workers proceed in parallel.
class DelayStretchController {
 public:
  /// `latency_hint` is the runtime's typical message delivery latency; the
  /// accumulation window of Eq. (1) is scaled by max(t_i, latency) so that a
  /// worker waits for at least one "generation" of in-flight messages.
  DelayStretchController(const ModeConfig& cfg, uint32_t num_workers,
                         double latency_hint = 0.0);

  DelayStretchController(const DelayStretchController&) = delete;
  DelayStretchController& operator=(const DelayStretchController&) = delete;

  // ---- engine feedback ----
  void OnRoundStart(FragmentId w, double now);
  /// `round_time` is the busy time of the finished round.
  void OnRoundEnd(FragmentId w, double now, double round_time);
  /// Initialises the t_i predictor without advancing the round counter
  /// (called at PEval completion).
  void SeedRoundTime(FragmentId w, double now, double round_time);
  /// `first_pending` marks the empty -> non-empty buffer transition; the
  /// idle clock T_idle restarts there, so DS_i bounds the wait *after the
  /// worker became runnable* (anti-starvation) while still letting long-idle
  /// workers accumulate a fresh window.
  void OnMessages(FragmentId w, double now, uint64_t count,
                  bool first_pending = false);

  /// Reports the distinct senders consumed by a round's drain; the
  /// controller learns each worker's feeding-peer count from it.
  void OnDrain(FragmentId w, uint64_t distinct_senders);
  void OnIdleStart(FragmentId w, double now);

  // ---- queries ----
  /// Current round of worker w (rounds completed; PEval = round 0).
  Round round(FragmentId w) const {
    // order: relaxed — staleness bounds tolerate slightly stale counters;
    // OnRoundEnd's acq_rel increment is what orders the round's effects.
    return rounds_[w].load(std::memory_order_relaxed);
  }

  /// r_min/r_max over `relevant` workers (engine passes true for workers that
  /// are busy or have buffered messages; exhausted idle workers do not hold
  /// back staleness bounds — they rejoin when reactivated).
  Round RMin(const std::vector<uint8_t>& relevant) const;
  Round RMax() const;

  /// δ. `eta` = buffered messages of w, `eta_senders` = distinct workers
  /// among them; `relevant` as in RMin. In barrier mode (see BarrierMode())
  /// this always suspends: the engine releases all eligible workers
  /// atomically at global quiescence instead.
  DelayDecision Decide(FragmentId w, double now, uint64_t eta,
                       uint64_t eta_senders,
                       const std::vector<uint8_t>& relevant);

  /// True when workers advance in global supersteps: BSP, or Hsync while in
  /// its BSP sub-mode. The engine then gates starts on global quiescence.
  bool BarrierMode() const;

  /// Hsync: engine reports the current round gap r_max − r_min after each
  /// round; a large gap flips the sub-mode to BSP.
  void NoteRoundGap(Round gap);
  /// Hsync: engine reports each barrier release; after a few BSP supersteps
  /// the sub-mode flips back to AP (PowerSwitch's switch-back).
  void OnBarrierRelease();
  bool hsync_in_bsp() const {
    // order: acquire pairs with the release stores in NoteRoundGap /
    // OnBarrierRelease — a mode flip is seen with the state that caused it.
    return hsync_in_bsp_.load(std::memory_order_acquire);
  }

  /// Recovery support: reset per-worker round counters to a snapshot.
  void RestoreRounds(const std::vector<Round>& rounds);

  /// Introspection for tests.
  double PredictedRoundTime(FragmentId w) const {
    // order: relaxed — advisory mirror; see WorkerCtl.
    return ctl_[w]->predicted.load(std::memory_order_relaxed);
  }
  double ArrivalRate(FragmentId w) const;
  double CurrentBound(FragmentId w) const {
    // order: relaxed — advisory mirror; see WorkerCtl.
    return ctl_[w]->l.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker estimator block. One cache line each; its mutex serialises
  /// only operations about this worker.
  struct alignas(64) WorkerCtl {
    mutable Mutex mu;
    Ema round_time GUARDED_BY(mu) = Ema{0.4};                // t_i
    RateEstimator rate GUARDED_BY(mu) = RateEstimator{0.4};  // s_i
    double idle_since GUARDED_BY(mu) = 0.0;
    bool idle GUARDED_BY(mu) = true;
    /// Workers that usually feed this one.
    double observed_peers GUARDED_BY(mu) = 0.0;
    bool peers_known GUARDED_BY(mu) = false;  // first drain seen
    /// Lock-free mirrors read by *other* workers' decisions — advisory
    /// values (relaxed): a stale read only skews a wait estimate.
    std::atomic<double> predicted{0.0};  // round_time.value()
    std::atomic<double> l{0.0};          // L_i (introspection)
  };

  /// Median predicted round time over relevant workers — the natural cadence
  /// of the worker "group" (robust to the straggler's outlier time).
  double GroupRoundTime(const std::vector<uint8_t>& relevant) const;
  DelayDecision DecideAap(FragmentId w, double now, uint64_t eta,
                          uint64_t eta_senders,
                          const std::vector<uint8_t>& relevant);

  ModeConfig cfg_;
  uint32_t n_;
  double latency_hint_;
  std::vector<std::atomic<Round>> rounds_;
  std::vector<std::unique_ptr<WorkerCtl>> ctl_;
  std::atomic<bool> hsync_in_bsp_{false};
  Mutex hsync_mu_;
  int hsync_bsp_supersteps_ GUARDED_BY(hsync_mu_) = 0;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_DELAY_STRETCH_H_
