// Copyright 2026 The GRAPE+ Reproduction Authors.
// The AAP engine over real threads: n physical worker threads drive m >= n
// virtual workers (the paper's Section 3 setting), with push-based immediate
// message delivery, the δ controller gating round starts, and the
// master/worker termination protocol of Section 3 (inactive census,
// terminate broadcast, ack/wait probe) deciding completion.
//
// Supports AP / SSP / AAP via the shared DelayStretchController and BSP via
// an explicit superstep path (barrier + post-barrier delivery). Hsync is a
// sim-engine-only mode (its switching heuristics need the virtual clock).
//
// Scheduling is decentralised: virtual workers are claimed with a per-worker
// atomic CAS, the controller locks per worker, and cross-thread counters are
// atomics — there is no global scheduler mutex. Physical threads live in a
// persistent WorkerPool shared across BSP supersteps, and the master blocks
// on a condition-variable hub instead of a polling sleep.
#ifndef GRAPEPLUS_CORE_THREADED_ENGINE_H_
#define GRAPEPLUS_CORE_THREADED_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/delay_stretch.h"
#include "core/direction.h"
#include "core/modes.h"
#include "core/pie.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/fragment.h"
#include "runtime/barrier.h"
#include "runtime/channel.h"
#include "runtime/message.h"
#include "runtime/stats_collector.h"
#include "runtime/termination.h"
#include "runtime/topology.h"
#include "runtime/worker_pool.h"
#include "util/timer.h"

namespace grape {

template <typename Program>
  requires PieProgram<Program>
class ThreadedEngine {
 public:
  using V = typename Program::Value;
  using State = typename Program::State;

  struct Result {
    typename Program::ResultT result;
    RunStats stats;
    bool converged = true;
    double wall_seconds = 0.0;
    uint64_t termination_probes = 0;
  };

  ThreadedEngine(const Partition& partition, Program program,
                 EngineConfig config)
      : partition_(partition),
        program_(std::move(program)),
        cfg_(std::move(config)) {
    GRAPE_CHECK(cfg_.mode.mode != Mode::kHsync)
        << "Hsync is only supported by the sim engine";
  }

  /// Re-runnable: each call starts from a fresh engine state.
  Result Run() {
    const uint32_t m = partition_.num_fragments();
    ResetRunState();
    run_wall_.Restart();
    Stopwatch wall;
    states_.clear();
    states_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      states_.push_back(program_.Init(partition_.fragments[i]));
      // order: release — publishes the freshly built state to Eligible()
      // probes on other threads.
      workers_[i]->local_work.store(HasLocalWork(i),
                                    std::memory_order_release);
    }
    uint32_t threads = cfg_.num_threads;
    if (threads == 0) {
      threads = std::min<uint32_t>(m, std::thread::hardware_concurrency());
      if (threads == 0) threads = 1;
    }

    stats_.threads.resize(threads);
    {
      // One persistent pool for the whole run: BSP supersteps reuse its
      // threads instead of spawn/join per superstep, and the async path
      // parks its long-running worker loops on it.
      WorkerPool pool(threads, WorkerPoolOptions{cfg_.pin_threads, nullptr});
      BindNumaState(pool, threads);
      if (cfg_.mode.mode == Mode::kBsp) {
        RunBsp(pool, threads);
      } else {
        RunAsync(pool, threads);
      }
      // Read before the pool joins at scope exit — the counter lives in it.
      stats_.spurious_wakeups = pool.spurious_wakeups();
    }

    // Fold the cross-thread atomic counters into the result stats; the
    // direction controllers are quiescent once the pool has joined. Any
    // point-lookup windows held by streaming sources are dropped with the
    // run.
    for (FragmentId w = 0; w < m; ++w) {
      // order: relaxed — the pool join above already ordered all worker
      // writes before this fold.
      stats_.workers[w].msgs_received =
          workers_[w]->msgs_received.load(std::memory_order_relaxed);
      stats_.workers[w].push_rounds = directions_[w].push_rounds();
      stats_.workers[w].pull_rounds = directions_[w].pull_rounds();
      stats_.workers[w].direction_switches = directions_[w].switches();
      if (partition_.fragments[w].arc_source() != nullptr) {
        partition_.fragments[w].arc_source()->ReleasePointWindows();
      }
    }

    Result r{program_.Assemble(partition_, states_), std::move(stats_),
             converged_, wall.ElapsedSeconds(), term_->probes_attempted()};
    r.stats.makespan = r.wall_seconds;
    return r;
  }

  /// Worker w's direction controller of the last Run() (telemetry tests).
  const DirectionController& direction_controller(FragmentId w) const {
    return directions_[w];
  }

 private:
  /// Per-virtual-worker runtime block. Cache-line aligned: neighbouring
  /// workers' claim flags and buffers must not false-share.
  struct alignas(64) WorkerRt {
    UpdateBuffer<V> buffer;
    std::atomic<bool> claimed{false};
    std::atomic<bool> peval_done{false};
    std::atomic<double> eligible_at{0.0};  // wall seconds
    std::atomic<uint64_t> msgs_received{0};
    /// Cached Program::HasLocalWork(state): program state is only written
    /// while the claim is held, so the owner refreshes this hint after every
    /// round and other threads read it lock-free (reading the state itself
    /// from a foreign thread would race with the running round).
    std::atomic<bool> local_work{false};
    /// Reused across rounds (swap with outbox); only touched while the
    /// worker's claim is held.
    Emitter<V> emitter;
    std::vector<UpdateEntry<V>> outbox;
    // Reusable per-destination dispatch boxes (exclusive to the thread that
    // holds the claim on this worker).
    std::vector<std::vector<UpdateEntry<V>>> out_by_dst;
    std::vector<FragmentId> touched;
    std::vector<FragmentId> recipients;
  };

  void ResetRunState() {
    const uint32_t m = partition_.num_fragments();
    controller_ = std::make_unique<DelayStretchController>(cfg_.mode, m);
    term_ = std::make_unique<TerminationDetector>(m);
    workers_.clear();
    workers_.resize(m);
    directions_.clear();
    directions_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      const Fragment& f = partition_.fragments[i];
      workers_[i] = std::make_unique<WorkerRt>();
      workers_[i]->buffer = UpdateBuffer<V>(f.num_local());
      workers_[i]->buffer.SetDegreeOffsets(f.out_offsets());
      workers_[i]->out_by_dst.assign(m, {});
      directions_.emplace_back(cfg_.direction, f.num_arcs(),
                               f.has_in_adjacency(), /*trace_track=*/i);
      if constexpr (DualModeProgram<Program>) {
        GRAPE_CHECK(cfg_.direction.mode != DirectionConfig::Mode::kPull ||
                    f.has_in_adjacency())
            << "direction=pull needs a pull-enabled partition "
               "(PartitionOptions::in_adjacency / in_arc_source)";
      }
    }
    stats_ = RunStats{};
    stats_.workers.resize(m);
    // order: relaxed — single-threaded setup; the pool start publishes it.
    total_rounds_.store(0, std::memory_order_relaxed);
    converged_ = true;
  }

  bool HasLocalWork(FragmentId w) const {
    if constexpr (requires(const Program& p, const State& s) {
                    { p.HasLocalWork(s) } -> std::convertible_to<bool>;
                  }) {
      return program_.HasLocalWork(states_[w]);
    } else {
      return false;
    }
  }

  bool Eligible(FragmentId w) const {
    // order: acquire pairs with the owner's release store after a round —
    // a true hint is read together with the state that produced it.
    return !workers_[w]->buffer.Empty() ||
           workers_[w]->local_work.load(std::memory_order_acquire);
  }

  // ---------------------------------------------------------------- BSP ---

  /// Best-effort NUMA placement of each virtual worker's hot state (buffer
  /// slots, per-vertex program state, memoised lid caches) on the node of
  /// the thread expected to drain it (the w % threads round-robin that
  /// matches the pool's pin layout). Placement never changes results; it
  /// is skipped entirely on single-node boxes or unpinned pools, where the
  /// mapping from thread to node is meaningless.
  void BindNumaState(const WorkerPool& pool, uint32_t threads) {
    if (!cfg_.numa_local || numa::NumMemoryNodes() <= 1 ||
        pool.pinned_threads() == 0) {
      return;
    }
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      const int node = pool.thread_node(w % threads);
      workers_[w]->buffer.BindToNumaNode(node);
      partition_.fragments[w].SetPreferredNumaNode(node);
      if constexpr (requires(Program& p, State& s) {
                      p.BindStateMemory(s, 0);
                    }) {
        program_.BindStateMemory(states_[w], node);
      }
    }
  }

  /// Supersteps with a barrier: all eligible workers run once in parallel,
  /// messages dispatch after the barrier (available next superstep).
  ///
  /// One persistent Launch drives the whole run: threads claim eligible
  /// workers through a shared cursor, rendezvous at an MCS/topology
  /// barrier, thread 0 plays master between the two crossings (dispatch,
  /// next frontier, stop decision), and the second crossing publishes its
  /// writes to everyone. The previous shape — pool.Run + cv-hub wait per
  /// superstep — woke every thread through one mutex per superstep; the
  /// barrier keeps arrival traffic distributed and thread-local.
  void RunBsp(WorkerPool& pool, uint32_t threads) {
    const uint32_t m = partition_.num_fragments();
    const std::unique_ptr<ThreadBarrier> barrier =
        MakeTopoAwareBarrier(CpuTopology::Cached(), threads);
    // Superstep state: written only by thread 0 between the two barrier
    // crossings, read by all threads after the second (the barrier is the
    // synchronisation point).
    std::vector<FragmentId> eligible(m);
    for (FragmentId w = 0; w < m; ++w) eligible[w] = w;
    std::atomic<uint32_t> cursor{0};
    std::atomic<bool> stop{m == 0};
    uint64_t supersteps = 0;
    Stopwatch step_wall;
    obs::Histogram* barrier_wait_ns =
        obs::MetricsRegistry::Global().GetHistogram("engine.barrier_wait_ns");
    pool.Run(threads, [&](uint32_t tid) {
      ThreadStats& ts = stats_.threads[tid];
      const auto arrive = [&] {
        obs::TraceSpanScope span(obs::TraceKind::kBarrierWait,
                                 obs::Tracer::kThreadLaneBase + tid);
        Stopwatch idle;
        barrier->Arrive(tid);
        const double waited = idle.ElapsedSeconds();
        ts.idle_time += waited;
        barrier_wait_ns->Observe(static_cast<uint64_t>(waited * 1e9));
      };
      bool is_peval = true;
      while (true) {
        while (true) {
          // order: relaxed — the cursor only partitions the eligible list;
          // the barrier crossings order the data.
          const uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= eligible.size()) break;
          ts.busy_time += RunOneRound(eligible[i], is_peval);
          ++ts.rounds;
        }
        arrive();
        if (tid == 0) {
          Stopwatch master;
          DispatchAllOutboxes();
          const uint64_t step_ns =
              static_cast<uint64_t>(step_wall.ElapsedSeconds() * 1e9);
          stats_.superstep_wall_ns.push_back(step_ns);
          if (obs::Tracer::enabled()) {
            auto& tracer = obs::Tracer::Global();
            tracer.RecordSpan(obs::TraceKind::kSuperstep,
                              obs::Tracer::kMasterLane,
                              tracer.NowNs() - static_cast<int64_t>(step_ns),
                              stats_.superstep_wall_ns.size() - 1);
          }
          step_wall.Restart();
          if (!is_peval) ++supersteps;
          eligible.clear();
          for (FragmentId w = 0; w < m; ++w) {
            if (Eligible(w)) eligible.push_back(w);
          }
          // order: relaxed — thread 0 writes between the crossings; the
          // second barrier publishes cursor/stop/eligible to every thread.
          cursor.store(0, std::memory_order_relaxed);
          if (eligible.empty() || supersteps >= cfg_.max_total_rounds) {
            // order: relaxed — see the cursor store above.
            stop.store(true, std::memory_order_relaxed);
          }
          ts.busy_time += master.ElapsedSeconds();
        }
        arrive();
        // order: relaxed — the barrier just crossed is the synchronisation
        // point for thread 0's superstep-state writes.
        if (stop.load(std::memory_order_relaxed)) break;
        is_peval = false;
      }
    });
    converged_ = supersteps < cfg_.max_total_rounds;
  }

  void DispatchAllOutboxes() {
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      DeliverEntries(w);
    }
  }

  // -------------------------------------------------------- AP/SSP/AAP ---

  void RunAsync(WorkerPool& pool, uint32_t threads) {
    pool.Launch(threads, [this](uint32_t tid) { WorkerLoop(tid); });
    // Master: run the termination protocol until a probe succeeds. Workers
    // ring `master_hub_` whenever global quiescence may have been reached;
    // the timeout is only a safety net (e.g. a kWaitFor expiring with no
    // further traffic).
    while (!term_->ShouldStop()) {
      const uint64_t epoch = master_hub_.Epoch();
      bool all_quiet = true;
      for (FragmentId w = 0; w < workers_.size(); ++w) {
        // order: acquire pairs with the claim release — an unclaimed read
        // observes the owning round's final buffer state.
        if (workers_[w]->claimed.load(std::memory_order_acquire) ||
            Eligible(w)) {
          all_quiet = false;
          break;
        }
      }
      if (all_quiet && term_->TryTerminate(inflight_)) {
        hub_.NotifyAll();
        break;
      }
      // order: relaxed — a monotone budget check; exactness is not needed.
      if (total_rounds_.load(std::memory_order_relaxed) >
          cfg_.max_total_rounds) {
        converged_ = false;
        term_->ForceStop();
        hub_.NotifyAll();
        break;
      }
      master_hub_.WaitFor(epoch, /*timeout_ms=*/10);
    }
    term_->ForceStop();
    hub_.NotifyAll();
    pool.Wait();
  }

  void WorkerLoop(uint32_t tid) {
    ThreadStats& ts = stats_.threads[tid];
    while (!term_->ShouldStop()) {
      // The epoch is captured *before* the scan: any message delivered or
      // claim released while we look bumps it, so the wait below returns
      // immediately instead of sleeping through the change.
      const uint64_t epoch = hub_.Epoch();
      bool is_peval = false;
      double next_eligible = kInfinity;
      const double now = run_wall_.ElapsedSeconds();
      const int32_t w = PickWorker(now, &is_peval, &next_eligible);
      if (w < 0) {
        // Idle: sleep exactly until the earliest delay-stretch deadline
        // among pending workers, or — when none is pending — untimed until
        // the hub rings (message delivery, claim release, a fresh kWaitFor
        // deadline and termination all NotifyAll). No 1 ms polling spin.
        obs::TraceSpanScope idle_span(obs::TraceKind::kIdleWait,
                                      obs::Tracer::kThreadLaneBase + tid);
        Stopwatch idle;
        if (next_eligible == kInfinity) {
          // The loop guard ran before the epoch capture: termination
          // flagged in that window has already rung its final NotifyAll,
          // and an untimed wait on the post-bump epoch would sleep through
          // it forever. Epoch() and NotifyAll share the hub mutex, so
          // after capturing the bumped epoch this load is guaranteed to
          // see the master's pre-notify ForceStop.
          if (term_->ShouldStop()) break;
          hub_.Wait(epoch);
        } else {
          hub_.WaitForSeconds(epoch,
                              next_eligible - run_wall_.ElapsedSeconds());
        }
        ts.idle_time += idle.ElapsedSeconds();
        continue;
      }
      ts.busy_time += RunOneRound(static_cast<FragmentId>(w), is_peval);
      ++ts.rounds;
      DeliverEntries(static_cast<FragmentId>(w));
      if (!Eligible(static_cast<FragmentId>(w))) {
        term_->SetInactive(static_cast<FragmentId>(w));
      }
      // order: release pairs with pickers' acquire — the round's state and
      // buffer writes are visible to the next claimant.
      workers_[w]->claimed.store(false, std::memory_order_release);
      hub_.NotifyAll();
      master_hub_.NotifyAll();
    }
  }

  /// Picks a runnable virtual worker, claiming it with a per-worker CAS —
  /// concurrent pickers only ever contend on the claim flag of the same
  /// candidate, never on a global lock. `next_eligible` receives the
  /// earliest eligible_at deadline among workers that are pending but still
  /// inside their delay stretch (kInfinity when none is), so an idle caller
  /// knows exactly how long to sleep.
  int32_t PickWorker(double now, bool* is_peval, double* next_eligible) {
    thread_local std::vector<uint8_t> relevant;
    relevant.assign(workers_.size(), 0);
    for (size_t i = 0; i < workers_.size(); ++i) {
      // order: acquire — see the master scan in RunAsync.
      relevant[i] = (workers_[i]->claimed.load(std::memory_order_acquire) ||
                     Eligible(static_cast<FragmentId>(i)))
                        ? 1
                        : 0;
    }
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      auto& rt = *workers_[w];
      // order: acquire pairs with the claim's release store (cheap skip).
      if (rt.claimed.load(std::memory_order_acquire)) continue;
      // order: acquire — a done flag is read with the PEval state it covers.
      if (!rt.peval_done.load(std::memory_order_acquire)) {
        // order: acq_rel — winning the claim acquires the previous round's
        // writes; losing publishes nothing.
        if (rt.claimed.exchange(true, std::memory_order_acq_rel)) continue;
        // order: acq_rel — first winner both claims PEval and sees init.
        if (!rt.peval_done.exchange(true, std::memory_order_acq_rel)) {
          term_->SetActive(w);
          *is_peval = true;
          return static_cast<int32_t>(w);
        }
        // order: release — hand the claim back (we changed nothing).
        rt.claimed.store(false, std::memory_order_release);
        continue;
      }
      if (!Eligible(w)) continue;
      // order: relaxed — advisory deadline; a stale read only delays a
      // rescan by one hub wake.
      const double at = rt.eligible_at.load(std::memory_order_relaxed);
      if (now < at) {
        *next_eligible = std::min(*next_eligible, at);
        continue;
      }
      // order: acq_rel — winning acquires the last round's writes.
      if (rt.claimed.exchange(true, std::memory_order_acq_rel)) continue;
      if (!Eligible(w)) {  // drained by a racing round since the check
        // order: release — hand the claim back untouched.
        rt.claimed.store(false, std::memory_order_release);
        continue;
      }
      // order: acquire — the hint is read with the state that set it.
      const uint64_t local =
          rt.local_work.load(std::memory_order_acquire) ? 1 : 0;
      const DelayDecision d = controller_->Decide(
          w, now, rt.buffer.NumMessages() + local,
          rt.buffer.NumDistinctSenders() + local, relevant);
      switch (d.kind) {
        case DelayDecision::Kind::kRunNow:
          term_->SetActive(w);
          controller_->OnRoundStart(w, now);
          return static_cast<int32_t>(w);
        case DelayDecision::Kind::kWaitFor:
          // order: relaxed — advisory deadline (see the load above).
          rt.eligible_at.store(now + d.wait, std::memory_order_relaxed);
          *next_eligible = std::min(*next_eligible, now + d.wait);
          // order: release — hand the claim back.
          rt.claimed.store(false, std::memory_order_release);
          // Peers already parked in an untimed wait rescan and adopt this
          // fresh deadline — wakeups stay exact even when this thread goes
          // on to run a long round elsewhere.
          hub_.NotifyAll();
          break;
        case DelayDecision::Kind::kSuspend:
          // Re-examined when r_min advances / messages arrive.
          // order: release — hand the claim back.
          rt.claimed.store(false, std::memory_order_release);
          break;
      }
    }
    return -1;
  }

  /// Runs PEval or IncEval for w; fills the worker's outbox. The caller
  /// holds the claim on w, so per-worker state is exclusive here. Returns
  /// the round's measured wall time in seconds.
  double RunOneRound(FragmentId w, bool is_peval) {
    const bool traced = obs::Tracer::enabled();
    const int64_t trace_start = traced ? obs::Tracer::Global().NowNs() : 0;
    Round trace_round = 0;
    uint64_t trace_pull = 0;
    Stopwatch sw;
    auto& rt = *workers_[w];
    Emitter<V>& emitter = rt.emitter;
    emitter.Clear();
    double work = 0.0;
    if (is_peval) {
      emitter.SetRound(0);
      if constexpr (DualModeProgram<Program>) {
        const SweepDirection dir = directions_[w].Decide(
            /*is_peval=*/true, 0, rt.buffer.NumPendingVertices(),
            rt.buffer.FrontierOutDegree());
        trace_pull = dir == SweepDirection::kPull ? 1 : 0;
        work = program_.PEval(partition_.fragments[w], states_[w], &emitter,
                              dir);
      } else {
        work = program_.PEval(partition_.fragments[w], states_[w], &emitter);
      }
    } else {
      controller_->OnDrain(w, rt.buffer.NumDistinctSenders());
      // Density signals precede the drain (it clears the dirty list). New
      // messages may land between the reads and the drain — the decision
      // then undercounts slightly, which only shades the heuristic.
      [[maybe_unused]] const uint64_t frontier_v =
          rt.buffer.NumPendingVertices();
      [[maybe_unused]] const uint64_t frontier_deg =
          rt.buffer.FrontierOutDegree();
      auto updates = rt.buffer.Drain();
      stats_.workers[w].updates_applied += updates.size();
      if (traced) {
        obs::Tracer::Global().RecordInstant(obs::TraceKind::kBufferDrain, w,
                                            updates.size());
      }
      const Round round = controller_->round(w) + 1;
      trace_round = round;
      emitter.SetRound(round);
      if constexpr (DualModeProgram<Program>) {
        const SweepDirection dir = directions_[w].Decide(
            /*is_peval=*/false, round, frontier_v, frontier_deg);
        trace_pull = dir == SweepDirection::kPull ? 1 : 0;
        work = program_.IncEval(partition_.fragments[w], states_[w],
                                std::span<const UpdateEntry<V>>(updates),
                                &emitter, dir);
      } else {
        work = program_.IncEval(partition_.fragments[w], states_[w],
                                std::span<const UpdateEntry<V>>(updates),
                                &emitter);
      }
      // order: relaxed — budget counter only (see RunAsync's check).
      total_rounds_.fetch_add(1, std::memory_order_relaxed);
      ++stats_.workers[w].rounds;
    }
    const double elapsed = sw.ElapsedSeconds();
    if (traced) {
      obs::Tracer::Global().RecordSpan(
          is_peval ? obs::TraceKind::kPEval : obs::TraceKind::kIncEval, w,
          trace_start, trace_round, trace_pull);
    }
    if constexpr (DualModeProgram<Program>) {
      // The default cost signal is the program's work units — identical
      // across engines and storage backends, so auto decisions stay
      // bit-reproducible. The measured wall time rides along for the
      // telemetry log, and replaces the work units as the EWMA sample only
      // under DirectionConfig::measured_wall_clock.
      directions_[w].NoteRound(work, elapsed);
    }
    stats_.workers[w].busy_time += elapsed;
    stats_.workers[w].work_units += work;
    // Swap keeps the delivered outbox's capacity cycling back into the
    // emitter instead of reallocating every round.
    rt.outbox.swap(emitter.entries());
    // order: release — the hint is published with the round's state writes
    // for Eligible()'s acquire readers.
    rt.local_work.store(HasLocalWork(w), std::memory_order_release);
    const double now = run_wall_.ElapsedSeconds();
    if (is_peval) {
      controller_->SeedRoundTime(w, now, elapsed);
    } else {
      controller_->OnRoundEnd(w, now, elapsed);
    }
    return elapsed;
  }

  void PushTo(WorkerRt& rt, const RouteTarget& t, const UpdateEntry<V>& e) {
    auto& box = rt.out_by_dst[t.frag];
    if (box.empty()) rt.touched.push_back(t.frag);
    box.push_back(UpdateEntry<V>{e.vid, e.value, e.round, t.lid});
  }

  /// Groups and delivers the outbox of w to destination buffers immediately
  /// (the threaded runtime's channel latency is the memcpy itself). Routing
  /// goes through the precomputed index: O(1) array reads per entry, into
  /// per-destination boxes that keep their capacity across rounds.
  void DeliverEntries(FragmentId from) {
    auto& rt = *workers_[from];
    if (rt.outbox.empty()) return;
    for (const auto& e : rt.outbox) {
      RouteUpdateEntry<Program::kOwnerBroadcast>(
          partition_, from, e, rt.recipients,
          [this, &rt](const RouteTarget& t, const UpdateEntry<V>& entry) {
            PushTo(rt, t, entry);
          });
    }
    rt.outbox.clear();
    for (FragmentId dst : rt.touched) {
      auto& ents = rt.out_by_dst[dst];
      auto& drt = *workers_[dst];
      inflight_.OnSend();
      ++stats_.workers[from].msgs_sent;
      stats_.workers[from].entries_sent += ents.size();
      stats_.workers[from].bytes_sent +=
          EntriesBytes(std::span<const UpdateEntry<V>>(ents));
      const bool first_pending = drt.buffer.Empty();
      drt.buffer.AppendEntries(from, std::span<const UpdateEntry<V>>(ents),
                               [this](const V& a, const V& b) {
                                 return program_.Combine(a, b);
                               });
      term_->SetActive(dst);
      // order: relaxed — stats counter; AppendEntries' lock ordered the
      // delivery itself.
      drt.msgs_received.fetch_add(1, std::memory_order_relaxed);
      // Drop any published wait deadline: the fresh delivery can flip the
      // controller's decision to run-now, and a deadline left standing
      // makes every scanning thread skip dst (`now < at`) without
      // re-consulting Decide — with all threads parked in WaitForSeconds
      // that oversleeps the whole remaining wait. Clearing it forces the
      // next scan (woken by the NotifyAll below) to re-run Decide.
      // order: relaxed — advisory deadline, same as its other accesses;
      // the hub ring after delivery orders the wake itself.
      drt.eligible_at.store(0.0, std::memory_order_relaxed);
      controller_->OnMessages(dst, run_wall_.ElapsedSeconds(), 1,
                              first_pending);
      inflight_.OnDeliver();
      ents.clear();
    }
    rt.touched.clear();
    hub_.NotifyAll();
  }

  const Partition& partition_;
  Program program_;
  EngineConfig cfg_;
  std::unique_ptr<DelayStretchController> controller_;
  std::unique_ptr<TerminationDetector> term_;
  InFlightCounter inflight_;
  NotifyHub hub_;         // workers idle-wait here
  NotifyHub master_hub_;  // termination-protocol master waits here

  std::vector<std::unique_ptr<WorkerRt>> workers_;
  std::vector<State> states_;
  /// Per-worker push/pull decision state; element w is only touched by the
  /// thread holding w's round claim (same discipline as states_[w]).
  std::vector<DirectionController> directions_;
  RunStats stats_;
  std::atomic<uint64_t> total_rounds_{0};
  bool converged_ = true;
  Stopwatch run_wall_;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_THREADED_ENGINE_H_
