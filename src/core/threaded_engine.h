// Copyright 2026 The GRAPE+ Reproduction Authors.
// The AAP engine over real threads: n physical worker threads drive m >= n
// virtual workers (the paper's Section 3 setting), with push-based immediate
// message delivery, the δ controller gating round starts, and the
// master/worker termination protocol of Section 3 (inactive census,
// terminate broadcast, ack/wait probe) deciding completion.
//
// Supports AP / SSP / AAP via the shared DelayStretchController and BSP via
// an explicit superstep path (barrier + post-barrier delivery). Hsync is a
// sim-engine-only mode (its switching heuristics need the virtual clock).
#ifndef GRAPEPLUS_CORE_THREADED_ENGINE_H_
#define GRAPEPLUS_CORE_THREADED_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/delay_stretch.h"
#include "core/modes.h"
#include "core/pie.h"
#include "partition/fragment.h"
#include "runtime/channel.h"
#include "runtime/message.h"
#include "runtime/stats_collector.h"
#include "runtime/termination.h"
#include "util/timer.h"

namespace grape {

template <typename Program>
  requires PieProgram<Program>
class ThreadedEngine {
 public:
  using V = typename Program::Value;
  using State = typename Program::State;

  struct Result {
    typename Program::ResultT result;
    RunStats stats;
    bool converged = true;
    double wall_seconds = 0.0;
    uint64_t termination_probes = 0;
  };

  ThreadedEngine(const Partition& partition, Program program,
                 EngineConfig config)
      : partition_(partition),
        program_(std::move(program)),
        cfg_(std::move(config)),
        controller_(cfg_.mode, partition.num_fragments()),
        term_(partition.num_fragments()) {
    GRAPE_CHECK(cfg_.mode.mode != Mode::kHsync)
        << "Hsync is only supported by the sim engine";
    const uint32_t m = partition_.num_fragments();
    workers_.resize(m);
    for (uint32_t i = 0; i < m; ++i) workers_[i] = std::make_unique<WorkerRt>();
    stats_.workers.resize(m);
  }

  Result Run() {
    run_wall_.Restart();
    Stopwatch wall;
    const uint32_t m = partition_.num_fragments();
    states_.clear();
    states_.reserve(m);
    for (uint32_t i = 0; i < m; ++i) {
      states_.push_back(program_.Init(partition_.fragments[i]));
    }
    uint32_t threads = cfg_.num_threads;
    if (threads == 0) {
      threads = std::min<uint32_t>(m, std::thread::hardware_concurrency());
      if (threads == 0) threads = 1;
    }

    if (cfg_.mode.mode == Mode::kBsp) {
      RunBsp(threads);
    } else {
      RunAsync(threads);
    }

    Result r{program_.Assemble(partition_, states_), std::move(stats_),
             converged_, wall.ElapsedSeconds(), term_.probes_attempted()};
    r.stats.makespan = r.wall_seconds;
    return r;
  }

 private:
  struct WorkerRt {
    UpdateBuffer<V> buffer;
    std::atomic<bool> claimed{false};
    bool peval_done = false;     // guarded by sched_mu_
    double eligible_at = 0.0;    // wall seconds; guarded by sched_mu_
    std::vector<UpdateEntry<V>> outbox;  // BSP path only
  };

  bool HasLocalWork(FragmentId w) const {
    if constexpr (requires(const Program& p, const State& s) {
                    { p.HasLocalWork(s) } -> std::convertible_to<bool>;
                  }) {
      return program_.HasLocalWork(states_[w]);
    } else {
      return false;
    }
  }

  bool Eligible(FragmentId w) const {
    return !workers_[w]->buffer.Empty() || HasLocalWork(w);
  }

  // ---------------------------------------------------------------- BSP ---

  /// Supersteps with a barrier: all eligible workers run once in parallel;
  /// messages dispatch after the barrier (available next superstep).
  void RunBsp(uint32_t threads) {
    const uint32_t m = partition_.num_fragments();
    ParallelFor(threads, m, [&](FragmentId w) { RunOneRound(w, true); });
    DispatchAllOutboxes();
    uint64_t supersteps = 0;
    while (supersteps < cfg_.max_total_rounds) {
      std::vector<FragmentId> eligible;
      for (FragmentId w = 0; w < m; ++w) {
        if (Eligible(w)) eligible.push_back(w);
      }
      if (eligible.empty()) break;
      ParallelFor(threads, static_cast<uint32_t>(eligible.size()),
                  [&](uint32_t idx) { RunOneRound(eligible[idx], false); });
      DispatchAllOutboxes();
      ++supersteps;
    }
    converged_ = supersteps < cfg_.max_total_rounds;
  }

  static void ParallelFor(uint32_t threads, uint32_t n,
                          const std::function<void(uint32_t)>& fn) {
    std::atomic<uint32_t> next{0};
    auto body = [&] {
      for (uint32_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    };
    std::vector<std::thread> pool;
    const uint32_t k = std::min(threads, n);
    pool.reserve(k);
    for (uint32_t t = 1; t < k; ++t) pool.emplace_back(body);
    body();
    for (auto& t : pool) t.join();
  }

  void DispatchAllOutboxes() {
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      DeliverEntries(w, workers_[w]->outbox);
      workers_[w]->outbox.clear();
    }
  }

  // -------------------------------------------------------- AP/SSP/AAP ---

  void RunAsync(uint32_t threads) {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([this] { WorkerLoop(); });
    }
    // Master: run the termination protocol until a probe succeeds.
    uint64_t rounds_guard = 0;
    while (!term_.ShouldStop()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      bool all_quiet = true;
      for (FragmentId w = 0; w < workers_.size(); ++w) {
        if (workers_[w]->claimed.load() || Eligible(w)) {
          all_quiet = false;
          break;
        }
      }
      if (all_quiet && term_.TryTerminate(inflight_)) {
        hub_.NotifyAll();
        break;
      }
      if (total_rounds_.load() > cfg_.max_total_rounds) {
        converged_ = false;
        term_.ForceStop();
        hub_.NotifyAll();
        break;
      }
      ++rounds_guard;
    }
    term_.ForceStop();
    hub_.NotifyAll();
    for (auto& t : pool) t.join();
  }

  void WorkerLoop() {
    while (!term_.ShouldStop()) {
      bool is_peval = false;
      const int32_t w = PickWorker(run_wall_.ElapsedSeconds(), &is_peval);
      if (w < 0) {
        hub_.WaitFor(hub_.Epoch(), /*timeout_ms=*/1);
        continue;
      }
      RunOneRound(static_cast<FragmentId>(w), is_peval);
      DeliverEntries(static_cast<FragmentId>(w),
                     workers_[w]->outbox);
      workers_[w]->outbox.clear();
      if (!Eligible(static_cast<FragmentId>(w))) {
        term_.SetInactive(static_cast<FragmentId>(w));
      }
      workers_[w]->claimed.store(false);
      hub_.NotifyAll();
    }
  }

  /// Picks a runnable virtual worker under the scheduler lock, claiming it.
  int32_t PickWorker(double now, bool* is_peval) {
    std::lock_guard<std::mutex> lock(sched_mu_);
    relevant_.assign(workers_.size(), 0);
    for (size_t i = 0; i < workers_.size(); ++i) {
      relevant_[i] = (workers_[i]->claimed.load() ||
                      Eligible(static_cast<FragmentId>(i)))
                         ? 1
                         : 0;
    }
    for (FragmentId w = 0; w < workers_.size(); ++w) {
      auto& rt = *workers_[w];
      if (rt.claimed.load()) continue;
      if (!rt.peval_done) {
        rt.claimed.store(true);
        rt.peval_done = true;
        term_.SetActive(w);
        *is_peval = true;
        return static_cast<int32_t>(w);
      }
      if (!Eligible(w)) continue;
      if (now < rt.eligible_at) continue;
      const uint64_t local = HasLocalWork(w) ? 1 : 0;
      const DelayDecision d = controller_.Decide(
          w, now, rt.buffer.NumMessages() + local,
          rt.buffer.NumDistinctSenders() + local, relevant_);
      switch (d.kind) {
        case DelayDecision::Kind::kRunNow:
          rt.claimed.store(true);
          term_.SetActive(w);
          controller_.OnRoundStart(w, now);
          return static_cast<int32_t>(w);
        case DelayDecision::Kind::kWaitFor:
          rt.eligible_at = now + d.wait;
          break;
        case DelayDecision::Kind::kSuspend:
          break;  // re-examined when r_min advances / messages arrive
      }
    }
    return -1;
  }

  /// Runs PEval or IncEval for w; fills the worker's outbox.
  void RunOneRound(FragmentId w, bool is_peval) {
    Stopwatch sw;
    auto& rt = *workers_[w];
    Emitter<V> emitter;
    double work = 0.0;
    if (is_peval) {
      emitter.SetRound(0);
      work = program_.PEval(partition_.fragments[w], states_[w], &emitter);
    } else {
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        controller_.OnDrain(w, rt.buffer.NumDistinctSenders());
      }
      auto updates = rt.buffer.Drain();
      stats_.workers[w].updates_applied += updates.size();
      emitter.SetRound(controller_.round(w) + 1);
      work = program_.IncEval(partition_.fragments[w], states_[w],
                              std::span<const UpdateEntry<V>>(updates),
                              &emitter);
      total_rounds_.fetch_add(1);
      ++stats_.workers[w].rounds;
    }
    const double elapsed = sw.ElapsedSeconds();
    stats_.workers[w].busy_time += elapsed;
    stats_.workers[w].work_units += work;
    rt.outbox = std::move(emitter.entries());
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      const double now = run_wall_.ElapsedSeconds();
      if (is_peval) {
        controller_.SeedRoundTime(w, now, elapsed);
      } else {
        controller_.OnRoundEnd(w, now, elapsed);
      }
    }
  }

  /// Groups and delivers entries to their destination buffers immediately
  /// (the threaded runtime's channel latency is the memcpy itself).
  void DeliverEntries(FragmentId from,
                      const std::vector<UpdateEntry<V>>& entries) {
    if (entries.empty()) return;
    std::map<FragmentId, Message<V>> grouped;
    std::vector<FragmentId> recipients;
    for (const auto& e : entries) {
      partition_.Recipients(e.vid, from, Program::kOwnerBroadcast,
                            &recipients);
      for (FragmentId dst : recipients) {
        auto& msg = grouped[dst];
        msg.from = from;
        msg.to = dst;
        msg.entries.push_back(e);
      }
    }
    for (auto& [dst, msg] : grouped) {
      inflight_.OnSend();
      ++stats_.workers[from].msgs_sent;
      stats_.workers[from].entries_sent += msg.entries.size();
      stats_.workers[from].bytes_sent += MessageBytes(msg);
      const bool first_pending = workers_[dst]->buffer.Empty();
      workers_[dst]->buffer.Append(msg, [this](const V& a, const V& b) {
        return program_.Combine(a, b);
      });
      term_.SetActive(dst);
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        ++stats_.workers[dst].msgs_received;
        controller_.OnMessages(dst, run_wall_.ElapsedSeconds(), 1,
                               first_pending);
      }
      inflight_.OnDeliver();
    }
    hub_.NotifyAll();
  }

  const Partition& partition_;
  Program program_;
  EngineConfig cfg_;
  DelayStretchController controller_;
  TerminationDetector term_;
  InFlightCounter inflight_;
  NotifyHub hub_;

  std::vector<std::unique_ptr<WorkerRt>> workers_;
  std::vector<State> states_;
  std::vector<uint8_t> relevant_;
  std::mutex sched_mu_;
  RunStats stats_;
  std::atomic<uint64_t> total_rounds_{0};
  bool converged_ = true;
  Stopwatch run_wall_;
};

}  // namespace grape

#endif  // GRAPEPLUS_CORE_THREADED_ENGINE_H_
