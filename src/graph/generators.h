// Copyright 2026 The GRAPE+ Reproduction Authors.
// Synthetic workload generators standing in for the paper's datasets
// (Section 7): RMAT power-law graphs (Friendster / UKWeb), 2-D grid road
// networks (traffic), Watts–Strogatz small worlds, Erdős–Rényi randoms, and
// bipartite rating graphs (movieLens / Netflix). All seeded & deterministic.
#ifndef GRAPEPLUS_GRAPH_GENERATORS_H_
#define GRAPEPLUS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/random.h"

namespace grape {

class WorkerPool;

struct RmatOptions {
  VertexId num_vertices = 1 << 14;   // rounded up to a power of two
  uint64_t num_edges = 1 << 17;
  // GTgraph/Graph500 defaults; skewed quadrants produce power-law degrees.
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool directed = true;
  bool weighted = false;
  double min_weight = 1.0, max_weight = 100.0;
  uint64_t seed = 1;
};

/// Recursive-matrix power-law generator (the paper's GTgraph substitute).
/// Edges are produced in fixed per-shard RNG streams (shard count derived
/// from the edge count, never from the pool), so the output depends only on
/// the options — a pool merely parallelises shard generation and the CSR
/// build.
Graph MakeRmat(const RmatOptions& opts, WorkerPool* pool = nullptr);

struct GridOptions {
  VertexId rows = 128, cols = 128;
  /// Fraction of extra "diagonal highway" shortcuts.
  double shortcut_fraction = 0.01;
  bool weighted = true;
  double min_weight = 1.0, max_weight = 10.0;
  uint64_t seed = 7;
};

/// Undirected 2-D grid with a few shortcuts: a high-diameter road network in
/// the spirit of the paper's `traffic` dataset.
Graph MakeRoadGrid(const GridOptions& opts);

struct SmallWorldOptions {
  VertexId num_vertices = 4096;
  uint32_t k = 8;          // each vertex connects to k nearest ring neighbours
  double rewire_p = 0.05;  // Watts–Strogatz rewiring probability
  uint64_t seed = 11;
};

/// Undirected Watts–Strogatz small world.
Graph MakeSmallWorld(const SmallWorldOptions& opts);

struct ErdosRenyiOptions {
  VertexId num_vertices = 2048;
  uint64_t num_edges = 8192;
  bool directed = false;
  bool weighted = false;
  double min_weight = 1.0, max_weight = 10.0;
  uint64_t seed = 23;
};

/// G(n, m) uniform random graph. Sharded like MakeRmat: deterministic in the
/// options alone, parallel when given a pool.
Graph MakeErdosRenyi(const ErdosRenyiOptions& opts,
                     WorkerPool* pool = nullptr);

struct BipartiteOptions {
  VertexId num_users = 1000;
  VertexId num_items = 200;
  uint64_t num_ratings = 20000;
  /// Item popularity follows Zipf(s); users uniform.
  double zipf_s = 1.0;
  double min_rating = 1.0, max_rating = 5.0;
  uint64_t seed = 42;
  /// Ratings drawn from a planted low-rank model (rank `planted_rank`) plus
  /// noise, so CF training has structure to recover.
  uint32_t planted_rank = 8;
  double noise = 0.1;
};

/// Undirected user–item rating graph; users are MarkLeft()ed. Vertex ids:
/// users [0, num_users), items [num_users, num_users + num_items).
Graph MakeBipartiteRatings(const BipartiteOptions& opts);

/// A tiny fixed instance of the paper's Fig. 1(b): 8 components 0..7 spread
/// over 3 fragments with the dotted cut edges of the figure. Returns the
/// graph; `fragment_of` receives the intended vertex->fragment mapping.
Graph MakeFig1bExample(std::vector<FragmentId>* fragment_of);

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GENERATORS_H_
