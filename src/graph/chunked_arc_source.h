// Copyright 2026 The GRAPE+ Reproduction Authors.
// ChunkedArcSource: out-of-core iteration over a GraphView's arc section.
//
// A source slices the view's vertex range into *chunks* — maximal runs of
// consecutive vertices whose combined out-degree fits a configurable arc
// budget — and hands them out one at a time, so a sweep over the whole arc
// array (or a fragment's slice of it) never needs more than one budget's
// worth of arcs resident at once. Two backends:
//
//   kMemory — the view is an in-memory Graph; chunking only bounds the
//             working set the consumer materialises (scratch buffers).
//   kMapped — the view aliases an mmapped `.gcsr` file; the arc section is
//             hinted MADV_SEQUENTIAL once (kernel readahead prefetches the
//             following windows), Acquire madvise(WILLNEED)s the chunk's
//             byte range and the last concurrent Release of a chunk
//             madvise(DONTNEED)s it, so the page cache footprint of a sweep
//             tracks the budget instead of the file size. This is what
//             lifts PEval/IncEval past RAM-resident graphs: per-vertex
//             state stays dense in memory while arcs stream off disk chunk
//             by chunk.
//
// A source chunks whatever view it is given — the forward CSR or a
// transpose (MmapGraph::TransposeView() with Backend::kMapped, or
// TransposeGraph(g).View()); the latter is how pull-mode fragments stream
// in-adjacency (PartitionOptions::in_arc_source).
//
// The source also keeps residency accounting (current / peak acquired arcs)
// that the stress harness and the streaming tests assert against the budget.
// All methods are const and thread-safe: concurrent workers may acquire
// different chunks at once; the peak then reflects the sum of their windows.
#ifndef GRAPEPLUS_GRAPH_CHUNKED_ARC_SOURCE_H_
#define GRAPEPLUS_GRAPH_CHUNKED_ARC_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/common.h"

namespace grape::obs {
class Counter;
}  // namespace grape::obs

namespace grape {

class MmapGraph;

class ChunkedArcSource {
 public:
  enum class Backend { kMemory, kMapped };

  /// One vertex-range chunk of the plan. `arc_count <= effective_budget()`.
  struct Chunk {
    VertexId begin = 0;       // first vertex of the range
    VertexId end = 0;         // one past the last vertex
    uint64_t first_arc = 0;   // offsets[begin]
    uint64_t arc_count = 0;   // offsets[end] - offsets[begin]
    size_t index = 0;         // position in the chunk plan
  };

  /// Chunks `view` with at most `arc_budget` arcs each (a single vertex
  /// whose degree exceeds the budget gets a chunk of its own — see
  /// effective_budget()). A zero budget is treated as 1.
  ChunkedArcSource(const GraphView& view, uint64_t arc_budget,
                   Backend backend = Backend::kMemory);

  /// Mapped backend over an open `.gcsr` store (zero-copy view + madvise).
  /// The MmapGraph must outlive the source.
  ChunkedArcSource(const MmapGraph& g, uint64_t arc_budget);

  GRAPE_DISALLOW_COPY_AND_ASSIGN(ChunkedArcSource);

  const GraphView& view() const { return view_; }
  Backend backend() const { return backend_; }
  uint64_t arc_budget() const { return budget_; }

  /// The bound actually enforceable: max(arc_budget, largest single vertex
  /// degree) — a vertex's adjacency is indivisible, so a hub larger than the
  /// budget widens the bound to its own degree.
  uint64_t effective_budget() const { return effective_budget_; }

  size_t num_chunks() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }
  Chunk chunk(size_t k) const;

  /// Index of the chunk whose vertex range contains `v`.
  size_t ChunkOf(VertexId v) const;

  /// Marks chunk k resident: accounts its arcs and, on the mapped backend,
  /// advises the kernel to fault its byte range in (sequential readahead
  /// for the following windows is hinted once at construction via
  /// MADV_SEQUENTIAL, so the residency accounting is exact). Pair with
  /// Release. Concurrent holders of the same chunk are refcounted.
  Chunk Acquire(size_t k) const;

  /// Drops a chunk's residency: unaccounts it and, on the mapped backend,
  /// advises the kernel the byte range can be reclaimed — only once the
  /// last concurrent holder lets go, so one fragment's Release never evicts
  /// a window another fragment's sweep is still reading.
  void Release(const Chunk& c) const;

  /// The chunk's arcs: contiguous slice of the view's arc section.
  std::span<const Arc> ChunkArcs(const Chunk& c) const {
    return view_.arcs().subspan(c.first_arc, c.arc_count);
  }

  /// Arcs of one vertex within an acquired chunk (bounds-checked in debug).
  std::span<const Arc> OutEdges(const Chunk& c, VertexId v) const {
    GRAPE_DCHECK(v >= c.begin && v < c.end);
    return view_.OutEdges(v);
  }

  /// Random-access adjacency lookup outside any chunk (frontier-driven
  /// algorithms: SSSP/BFS relax in priority order, not vertex order). Only
  /// the consumer's heap translation is bounded (one adjacency at a time);
  /// pair with NotePointLookup so the mapped backend's page-cache footprint
  /// is bounded too. NotePointResidency records the largest single
  /// translation for reporting.
  std::span<const Arc> OutEdges(VertexId v) const { return view_.OutEdges(v); }
  void NotePointResidency(uint64_t arcs) const;

  /// Point-lookup residency window: acquires the chunk containing `v` into
  /// a small LRU of held windows (capacity point_lru_windows()), releasing
  /// — and on the mapped backend MADV_DONTNEED-ing — the least recently
  /// touched window when full. Before this LRU the point path never issued
  /// DONTNEED, so an out-of-core SSSP/BFS run grew clean-page residency
  /// without bound; now the acquired footprint of point lookups stays ≤
  /// point_lru_windows() windows (and is counted by resident_arcs(), so
  /// peak accounting covers it). kMemory backends no-op: there is no page
  /// cache to bound, and sweep-residency assertions stay exact. Held
  /// windows persist across rounds for frontier locality; engines call
  /// ReleasePointWindows() when a run finishes (the destructor also
  /// releases). Thread-safe — concurrent fragments share the LRU.
  void NotePointLookup(VertexId v) const;
  /// Releases every window NotePointLookup still holds. Idempotent.
  void ReleasePointWindows() const;
  uint32_t point_lru_windows() const { return point_lru_capacity_; }
  /// Capacity 0 disables the point LRU (the pre-fix unbounded behaviour).
  void set_point_lru_windows(uint32_t n) { point_lru_capacity_ = n; }

  ~ChunkedArcSource();

  /// Acquires every chunk in order, invoking fn(chunk, arcs) between
  /// Acquire and Release — the canonical full-view streaming sweep.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    for (size_t k = 0; k < num_chunks(); ++k) {
      const Chunk c = Acquire(k);
      fn(c, ChunkArcs(c));
      Release(c);
    }
  }

  /// Currently acquired arcs (sum over concurrently held chunks).
  uint64_t resident_arcs() const {
    // order: relaxed — advisory accounting; sampled by gauges/assertions.
    return resident_.load(std::memory_order_relaxed);
  }
  /// High-water mark of resident_arcs() since construction / ResetStats.
  uint64_t peak_resident_arcs() const {
    // order: relaxed — see resident_arcs().
    return peak_.load(std::memory_order_relaxed);
  }
  /// Largest single point-lookup translation observed (reporting only —
  /// bounded by the max degree by construction, see OutEdges(v)).
  uint64_t peak_point_arcs() const {
    // order: relaxed — see resident_arcs().
    return peak_point_.load(std::memory_order_relaxed);
  }
  /// Restarts the peak counters. resident_arcs() is NOT touched: it is
  /// live accounting, and point windows held across the reset must keep
  /// their balance for the matching Release. Peak restarts from the
  /// current residency for the same reason.
  void ResetStats() const;

 private:
  void Advise(uint64_t first_arc, uint64_t arc_count, int advice) const;

  GraphView view_;
  Backend backend_ = Backend::kMemory;
  uint64_t budget_ = 0;
  uint64_t effective_budget_ = 0;
  std::vector<VertexId> bounds_;  // chunk k spans [bounds_[k], bounds_[k+1])
  /// Concurrent-holder count per chunk (threaded sweeps share the source).
  mutable std::unique_ptr<std::atomic<uint32_t>[]> holders_;
  mutable std::atomic<uint64_t> resident_{0};
  mutable std::atomic<uint64_t> peak_{0};
  mutable std::atomic<uint64_t> peak_point_{0};
  // Point-lookup LRU (most recently touched at the back).
  uint32_t point_lru_capacity_ = 4;
  mutable SpinLock point_mu_;
  mutable std::vector<Chunk> point_held_ GUARDED_BY(point_mu_);
  // Observability: residency gauges published via a snapshot callback,
  // acquires counted through the registry (obs/metrics.h).
  uint64_t metrics_callback_ = 0;
  obs::Counter* acquire_counter_ = nullptr;
};

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_CHUNKED_ARC_SOURCE_H_
