// Copyright 2026 The GRAPE+ Reproduction Authors.
// GraphView: a non-owning, read-only view of a CSR graph. It is the common
// currency of every consumer of graph data — the in-memory `Graph`, the
// mmap-backed `.gcsr` store, partitioners, the sequential ground-truth
// algorithms and the metrics all speak GraphView, so a graph can be consumed
// straight off a memory-mapped file without ever being copied.
#ifndef GRAPEPLUS_GRAPH_GRAPH_VIEW_H_
#define GRAPEPLUS_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <span>

#include "util/common.h"
#include "util/logging.h"

namespace grape {

/// A weighted arc (target + label). The paper's L(e) is a positive number for
/// SSSP and a rating for CF; we store a double. The layout (4-byte dst,
/// 4 bytes padding, 8-byte weight) is also the on-disk arc record of the
/// `.gcsr` binary format — see src/graph/store/README.md.
struct Arc {
  VertexId dst;
  double weight;
};

/// Non-owning CSR view. The backing storage (a Graph's vectors or an mmapped
/// `.gcsr` file) must outlive the view. Copyable and cheap to pass by value.
class GraphView {
 public:
  GraphView() = default;
  GraphView(bool directed, std::span<const uint64_t> offsets,
            std::span<const Arc> arcs, std::span<const int64_t> vertex_labels,
            std::span<const uint8_t> left_side)
      : directed_(directed),
        offsets_(offsets),
        arcs_(arcs),
        vertex_labels_(vertex_labels),
        left_side_(left_side) {}

  bool directed() const { return directed_; }
  VertexId num_vertices() const {
    return offsets_.empty() ? 0
                            : static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t num_arcs() const { return arcs_.size(); }
  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  uint64_t num_edges() const { return directed_ ? num_arcs() : num_arcs() / 2; }

  /// Out-neighbourhood of v.
  std::span<const Arc> OutEdges(VertexId v) const {
    GRAPE_DCHECK(v < num_vertices());
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  uint64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Vertex labels (the paper's L(v)); empty if unlabelled.
  bool has_vertex_labels() const { return !vertex_labels_.empty(); }
  int64_t VertexLabel(VertexId v) const {
    return has_vertex_labels() ? vertex_labels_[v] : 0;
  }

  /// Bipartite tagging for CF: true iff v is a "user" node (left side).
  bool is_bipartite() const { return !left_side_.empty(); }
  bool IsLeft(VertexId v) const {
    GRAPE_DCHECK(is_bipartite());
    return left_side_[v] != 0;
  }

  /// Raw sections (used by the binary store and by deep-equality tests).
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const Arc> arcs() const { return arcs_; }
  std::span<const int64_t> vertex_labels() const { return vertex_labels_; }
  std::span<const uint8_t> left_side() const { return left_side_; }

 private:
  bool directed_ = true;
  std::span<const uint64_t> offsets_;
  std::span<const Arc> arcs_;
  std::span<const int64_t> vertex_labels_;
  std::span<const uint8_t> left_side_;
};

/// Deep content equality of two views (topology, weights, labels, sides).
bool GraphDataEqual(const GraphView& a, const GraphView& b);

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GRAPH_VIEW_H_
