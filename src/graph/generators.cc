#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/parallel.h"

namespace grape {

namespace {

/// Rounds n up to a power of two (RMAT requires it).
VertexId CeilPow2(VertexId n) {
  VertexId p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Shard count for `num_edges`: a pure function of the workload (never of
/// the pool or machine), so sharded generation is deterministic everywhere.
uint32_t GenShards(uint64_t num_edges) {
  constexpr uint64_t kEdgesPerShard = 1 << 16;
  return static_cast<uint32_t>(
      std::clamp<uint64_t>(num_edges / kEdgesPerShard, 1, 64));
}

/// Independent RNG stream for shard `s` of a seeded generation run.
Rng ShardRng(uint64_t seed, uint32_t shard) {
  return Rng(seed + 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(shard) + 1));
}

/// Splits `num_edges` across GenShards() shards, generating each shard with
/// `gen(rng, shard_edges_out)` (possibly on pool workers), then concatenates
/// the shards in order into `builder`.
template <typename GenFn>
void GenerateSharded(GraphBuilder& builder, uint64_t num_edges, uint64_t seed,
                     WorkerPool* pool, GenFn&& gen) {
  const uint32_t shards = GenShards(num_edges);
  std::vector<std::vector<Edge>> shard_edges(shards);
  const uint64_t per = num_edges / shards;
  const uint64_t extra = num_edges % shards;
  ParallelForChunks(pool, shards, shards, [&](uint64_t b, uint64_t e) {
    for (uint64_t s = b; s < e; ++s) {
      const uint64_t count = per + (s < extra ? 1 : 0);
      Rng rng = ShardRng(seed, static_cast<uint32_t>(s));
      shard_edges[s].reserve(count);
      gen(rng, count, shard_edges[s]);
    }
  });
  builder.ReserveEdges(num_edges);
  for (const auto& shard : shard_edges) builder.AddEdges(shard);
}

}  // namespace

Graph MakeRmat(const RmatOptions& opts, WorkerPool* pool) {
  const VertexId n = CeilPow2(std::max<VertexId>(2, opts.num_vertices));
  int levels = 0;
  while ((VertexId(1) << levels) < n) ++levels;
  GraphBuilder builder(n, opts.directed);
  const double ab = opts.a + opts.b;
  const double abc = opts.a + opts.b + opts.c;
  GenerateSharded(
      builder, opts.num_edges, opts.seed, pool,
      [&](Rng& rng, uint64_t count, std::vector<Edge>& out) {
        for (uint64_t e = 0; e < count; ++e) {
          VertexId src = 0, dst = 0;
          for (int l = 0; l < levels; ++l) {
            const double r = rng.NextDouble();
            // Pick the quadrant; add noise per level as GTgraph does.
            int quadrant;
            if (r < opts.a) quadrant = 0;
            else if (r < ab) quadrant = 1;
            else if (r < abc) quadrant = 2;
            else quadrant = 3;
            src = (src << 1) | ((quadrant >> 1) & 1);
            dst = (dst << 1) | (quadrant & 1);
          }
          if (src == dst) {
            dst = static_cast<VertexId>((dst + 1) % n);  // avoid self loops
          }
          const double w =
              opts.weighted
                  ? rng.UniformDouble(opts.min_weight, opts.max_weight)
                  : 1.0;
          out.push_back({src, dst, w});
        }
      });
  return std::move(builder).Build(pool);
}

Graph MakeRoadGrid(const GridOptions& opts) {
  const VertexId n = opts.rows * opts.cols;
  Rng rng(opts.seed);
  GraphBuilder builder(n, /*directed=*/false);
  const uint64_t grid_edges =
      n == 0 ? 0
             : static_cast<uint64_t>(opts.rows) * (opts.cols - 1) +
                   static_cast<uint64_t>(opts.cols) * (opts.rows - 1);
  builder.ReserveEdges(
      grid_edges + static_cast<uint64_t>(opts.shortcut_fraction *
                                         static_cast<double>(n)));
  auto id = [&](VertexId r, VertexId c) { return r * opts.cols + c; };
  auto weight = [&]() {
    return opts.weighted ? rng.UniformDouble(opts.min_weight, opts.max_weight)
                         : 1.0;
  };
  for (VertexId r = 0; r < opts.rows; ++r) {
    for (VertexId c = 0; c < opts.cols; ++c) {
      if (c + 1 < opts.cols) builder.AddEdge(id(r, c), id(r, c + 1), weight());
      if (r + 1 < opts.rows) builder.AddEdge(id(r, c), id(r + 1, c), weight());
    }
  }
  // "Highway" shortcuts between random distant locations.
  const uint64_t shortcuts =
      static_cast<uint64_t>(opts.shortcut_fraction * static_cast<double>(n));
  for (uint64_t i = 0; i < shortcuts; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a != b) builder.AddEdge(a, b, weight() * 0.5);
  }
  return std::move(builder).Build();
}

Graph MakeSmallWorld(const SmallWorldOptions& opts) {
  const VertexId n = opts.num_vertices;
  Rng rng(opts.seed);
  GraphBuilder builder(n, /*directed=*/false);
  const uint32_t half = std::max<uint32_t>(1, opts.k / 2);
  builder.ReserveEdges(static_cast<uint64_t>(n) * half);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t j = 1; j <= half; ++j) {
      VertexId u = (v + j) % n;
      if (rng.Bernoulli(opts.rewire_p)) {
        // Rewire to a uniform random endpoint (Watts–Strogatz).
        u = static_cast<VertexId>(rng.Uniform(n));
        if (u == v) u = (v + 1) % n;
      }
      builder.AddEdge(v, u, 1.0);
    }
  }
  return std::move(builder).Build();
}

Graph MakeErdosRenyi(const ErdosRenyiOptions& opts, WorkerPool* pool) {
  GraphBuilder builder(opts.num_vertices, opts.directed);
  GenerateSharded(
      builder, opts.num_edges, opts.seed, pool,
      [&](Rng& rng, uint64_t count, std::vector<Edge>& out) {
        for (uint64_t e = 0; e < count; ++e) {
          VertexId a = static_cast<VertexId>(rng.Uniform(opts.num_vertices));
          VertexId b = static_cast<VertexId>(rng.Uniform(opts.num_vertices));
          if (a == b) b = (b + 1) % opts.num_vertices;
          const double w =
              opts.weighted
                  ? rng.UniformDouble(opts.min_weight, opts.max_weight)
                  : 1.0;
          out.push_back({a, b, w});
        }
      });
  return std::move(builder).Build(pool);
}

Graph MakeBipartiteRatings(const BipartiteOptions& opts) {
  const VertexId n = opts.num_users + opts.num_items;
  Rng rng(opts.seed);
  GraphBuilder builder(n, /*directed=*/false);
  builder.ReserveEdges(opts.num_ratings);
  for (VertexId u = 0; u < opts.num_users; ++u) builder.MarkLeft(u);

  // Planted low-rank latent factors; ratings = u.f^T p.f + noise, clamped.
  const uint32_t rank = std::max<uint32_t>(1, opts.planted_rank);
  std::vector<double> uf(static_cast<size_t>(opts.num_users) * rank);
  std::vector<double> pf(static_cast<size_t>(opts.num_items) * rank);
  const double scale =
      std::sqrt((opts.max_rating + opts.min_rating) / (2.0 * rank));
  for (auto& x : uf) x = scale * (0.5 + rng.NextDouble());
  for (auto& x : pf) x = scale * (0.5 + rng.NextDouble());

  // Zipf item popularity via inverse-CDF over precomputed weights.
  std::vector<double> cdf(opts.num_items);
  double total = 0.0;
  for (VertexId i = 0; i < opts.num_items; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), opts.zipf_s);
    cdf[i] = total;
  }
  auto sample_item = [&]() -> VertexId {
    const double r = rng.NextDouble() * total;
    return static_cast<VertexId>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
  };

  for (uint64_t e = 0; e < opts.num_ratings; ++e) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(opts.num_users));
    const VertexId i = sample_item();
    double r = 0.0;
    for (uint32_t k = 0; k < rank; ++k) {
      r += uf[static_cast<size_t>(u) * rank + k] *
           pf[static_cast<size_t>(i) * rank + k];
    }
    r += opts.noise * rng.Gaussian();
    r = std::clamp(r, opts.min_rating, opts.max_rating);
    builder.AddEdge(u, opts.num_users + i, r);
  }
  return std::move(builder).Build();
}

Graph MakeFig1bExample(std::vector<FragmentId>* fragment_of) {
  // Eight components 0..7, each a triangle {3k, 3k+1, 3k+2}, chained as in
  // Fig 1(b): 0-1-2-3-4 plus 4-5, 5-6 and 4-7. Each cut edge attaches to a
  // distinct vertex of its component so that no two local components share a
  // border copy (they must stay separate under PEval's local DFS, as in the
  // paper's example where the minimal cid crosses fragments once per round).
  constexpr int kComponents = 8;
  const FragmentId frag_of_comp[kComponents] = {2, 0, 1, 0, 1, 0, 1, 2};
  GraphBuilder builder(3 * kComponents, /*directed=*/false);
  builder.ReserveEdges(3 * kComponents + 7);
  for (VertexId k = 0; k < kComponents; ++k) {
    builder.AddEdge(3 * k, 3 * k + 1);
    builder.AddEdge(3 * k + 1, 3 * k + 2);
    builder.AddEdge(3 * k, 3 * k + 2);
  }
  const VertexId chain[][2] = {{0, 3},   {4, 6},   {7, 9},  {10, 12},
                               {13, 15}, {16, 18}, {14, 21}};
  for (const auto& e : chain) builder.AddEdge(e[0], e[1]);
  if (fragment_of != nullptr) {
    fragment_of->assign(3 * kComponents, 0);
    for (VertexId k = 0; k < kComponents; ++k) {
      for (int j = 0; j < 3; ++j) {
        (*fragment_of)[3 * k + static_cast<VertexId>(j)] = frag_of_comp[k];
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace grape
