#include "graph/chunked_arc_source.h"

#include <algorithm>

#include "graph/store/gcsr_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRAPEPLUS_HAVE_MADVISE 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace grape {

namespace {

/// Raises `peak` to at least `value` (CAS loop; stats only).
void RaisePeak(std::atomic<uint64_t>& peak, uint64_t value) {
  // order: relaxed — a high-water mark publishes no other data.
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < value &&
         // order: relaxed — readers need an eventual maximum, not ordering.
         !peak.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ChunkedArcSource::ChunkedArcSource(const GraphView& view, uint64_t arc_budget,
                                   Backend backend)
    : view_(view), backend_(backend), budget_(std::max<uint64_t>(arc_budget, 1)) {
  // Re-register the residency accounting with the metrics registry (gauges
  // describe the most recently snapshotted source; the acquire counter sums
  // across sources for the process).
  acquire_counter_ =
      obs::MetricsRegistry::Global().GetCounter("graph.chunks.acquires");
  metrics_callback_ = obs::MetricsRegistry::Global().AddCallback(
      [this](obs::MetricsSnapshot* snap) {
        snap->gauges["graph.chunks.resident_arcs"] =
            static_cast<double>(resident_arcs());
        snap->gauges["graph.chunks.peak_resident_arcs"] =
            static_cast<double>(peak_resident_arcs());
        snap->gauges["graph.chunks.peak_point_arcs"] =
            static_cast<double>(peak_point_arcs());
      });
  const VertexId n = view_.num_vertices();
  effective_budget_ = budget_;
  if (n == 0) return;
  bounds_.push_back(0);
  uint64_t in_chunk = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t deg = view_.OutDegree(v);
    effective_budget_ = std::max(effective_budget_, deg);
    if (v > bounds_.back() && in_chunk + deg > budget_) {
      bounds_.push_back(v);
      in_chunk = 0;
    }
    in_chunk += deg;
  }
  bounds_.push_back(n);
  holders_ = std::make_unique<std::atomic<uint32_t>[]>(num_chunks());
#if GRAPEPLUS_HAVE_MADVISE
  if (backend_ == Backend::kMapped) {
    // One readahead hint for the whole section: the kernel prefetches ahead
    // of sequential sweeps on its own, so Acquire never needs to advise
    // windows it does not account for.
    Advise(0, view_.arcs().size(), MADV_SEQUENTIAL);
  }
#endif
}

ChunkedArcSource::ChunkedArcSource(const MmapGraph& g, uint64_t arc_budget)
    : ChunkedArcSource(g.View(), arc_budget, Backend::kMapped) {}

ChunkedArcSource::~ChunkedArcSource() {
  ReleasePointWindows();
  obs::MetricsRegistry::Global().RemoveCallback(metrics_callback_);
}

ChunkedArcSource::Chunk ChunkedArcSource::chunk(size_t k) const {
  GRAPE_CHECK(k < num_chunks());
  Chunk c;
  c.begin = bounds_[k];
  c.end = bounds_[k + 1];
  c.first_arc = view_.offsets()[c.begin];
  c.arc_count = view_.offsets()[c.end] - c.first_arc;
  c.index = k;
  return c;
}

size_t ChunkedArcSource::ChunkOf(VertexId v) const {
  GRAPE_DCHECK(v < view_.num_vertices());
  // bounds_ is ascending; the chunk of v is the last boundary <= v.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<size_t>(it - bounds_.begin()) - 1;
}

ChunkedArcSource::Chunk ChunkedArcSource::Acquire(size_t k) const {
  const Chunk c = chunk(k);
  // order: acq_rel pairs with Release's decrement — the holder that sees
  // itself last observes every prior holder's acquire.
  holders_[k].fetch_add(1, std::memory_order_acq_rel);
  // order: relaxed — residency accounting is advisory (gauges/assertions
  // sample it); no data is published through the counter.
  const uint64_t now =
      resident_.fetch_add(c.arc_count, std::memory_order_relaxed) +
      c.arc_count;
  RaisePeak(peak_, now);
  acquire_counter_->Add(1);
  if (obs::Tracer::enabled()) {
    obs::Tracer::Global().RecordInstant(obs::TraceKind::kChunkAcquire,
                                        obs::Tracer::kIoLane, c.index,
                                        c.arc_count);
  }
#if GRAPEPLUS_HAVE_MADVISE
  if (backend_ == Backend::kMapped) {
    Advise(c.first_arc, c.arc_count, MADV_WILLNEED);
  }
#endif
  return c;
}

void ChunkedArcSource::Release(const Chunk& c) const {
  // Only the last concurrent holder drops the window: fragments sweeping in
  // parallel share chunk ranges, and discarding pages a peer is still
  // reading would force it to re-fault its whole window.
  // order: acq_rel — the last decrement must observe every peer's window
  // use before the DONTNEED drops the pages.
  const uint32_t prev_holders =
      holders_[c.index].fetch_sub(1, std::memory_order_acq_rel);
  // A zero previous count means a double-release: some path released a
  // window it no longer held (the ReleasePointWindows teardown bug hid
  // here), and the DONTNEED below would drop pages a real holder is using.
  GRAPE_DCHECK(prev_holders >= 1);
  const bool last = prev_holders == 1;
#if GRAPEPLUS_HAVE_MADVISE
  if (last && backend_ == Backend::kMapped) {
    Advise(c.first_arc, c.arc_count, MADV_DONTNEED);
  }
#else
  (void)last;
#endif
  // order: relaxed — see Acquire's residency comment.
  const uint64_t prev_resident =
      resident_.fetch_sub(c.arc_count, std::memory_order_relaxed);
  // Residency must never go negative (it is unsigned — it would wrap):
  // every Release pairs with exactly one Acquire, and ResetStats preserves
  // the resident count precisely so held point windows stay accounted.
  GRAPE_DCHECK(prev_resident >= c.arc_count);
  if (obs::Tracer::enabled()) {
    obs::Tracer::Global().RecordInstant(obs::TraceKind::kChunkRelease,
                                        obs::Tracer::kIoLane, c.index,
                                        c.arc_count);
  }
}

void ChunkedArcSource::NotePointResidency(uint64_t arcs) const {
  RaisePeak(peak_point_, arcs);
}

void ChunkedArcSource::NotePointLookup(VertexId v) const {
  // Only the mapped backend has a page cache to bound; for kMemory the LRU
  // would add accounting noise to the exact sweep-residency assertions.
  if (backend_ != Backend::kMapped || point_lru_capacity_ == 0 ||
      num_chunks() == 0) {
    return;
  }
  GRAPE_DCHECK(v < view_.num_vertices());
  const size_t k = ChunkOf(v);
  {
    SpinLockGuard lock(point_mu_);
    for (size_t i = 0; i < point_held_.size(); ++i) {
      if (point_held_[i].index == k) {
        // Refresh recency; rotation keeps the rest of the order intact.
        std::rotate(point_held_.begin() + i, point_held_.begin() + i + 1,
                    point_held_.end());
        return;
      }
    }
  }
  // Miss: the madvise syscalls stay outside the spinlock — concurrent
  // lookups must not spin behind a page-cache fault. Two threads racing on
  // the same chunk may both Acquire and insert it; the refcounting keeps
  // the accounting balanced, the duplicate entry merely wastes one LRU
  // slot until evicted, and DONTNEED still only fires on the last holder.
  const Chunk c = Acquire(k);
  Chunk victim;
  bool evict = false;
  {
    SpinLockGuard lock(point_mu_);
    point_held_.push_back(c);
    if (point_held_.size() > point_lru_capacity_) {
      victim = point_held_.front();
      point_held_.erase(point_held_.begin());
      evict = true;
    }
  }
  if (evict) Release(victim);
}

void ChunkedArcSource::ReleasePointWindows() const {
  // Swap the held list out under the lock, release outside it. Two
  // invariants ride on this shape:
  //   * the madvise syscalls in Release stay outside point_mu_ (same
  //     policy as the NotePointLookup miss path) — a teardown must not
  //     make concurrent lookups spin behind page-cache work;
  //   * each held Chunk leaves point_held_ exactly once, so a teardown
  //     racing another teardown (or an LRU eviction) can never
  //     double-decrement a window's refcount: whoever swapped it owns the
  //     matching Release.
  std::vector<Chunk> held;
  {
    SpinLockGuard lock(point_mu_);
    held.swap(point_held_);
  }
  for (const Chunk& c : held) Release(c);
}

void ChunkedArcSource::ResetStats() const {
  // Peaks restart from the *current* residency, not zero: point windows
  // held across the reset (the LRU keeps them until ReleasePointWindows)
  // are still resident. Zeroing resident_ here while windows were held
  // made their eventual Release wrap the unsigned count below zero.
  // order: relaxed (all three) — callers quiesce sweeps around resets.
  const uint64_t now = resident_.load(std::memory_order_relaxed);
  peak_.store(now, std::memory_order_relaxed);
  peak_point_.store(0, std::memory_order_relaxed);
}

void ChunkedArcSource::Advise(uint64_t first_arc, uint64_t arc_count,
                              int advice) const {
#if GRAPEPLUS_HAVE_MADVISE
  if (arc_count == 0) return;
  static const uintptr_t kPage =
      static_cast<uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto* base =
      reinterpret_cast<const unsigned char*>(view_.arcs().data());
  uintptr_t lo = reinterpret_cast<uintptr_t>(base + first_arc * sizeof(Arc));
  uintptr_t hi = lo + arc_count * sizeof(Arc);
  if (advice == MADV_DONTNEED) {
    // Round inward: boundary pages are shared with neighbouring chunks that
    // may still be in use — discarding them would thrash.
    lo = (lo + kPage - 1) & ~(kPage - 1);
    hi &= ~(kPage - 1);
  } else {
    // Round outward: advising a partial boundary page is harmless.
    lo &= ~(kPage - 1);
    hi = (hi + kPage - 1) & ~(kPage - 1);
  }
  if (lo >= hi) return;
  // Advice only: failure (e.g. an unsupported filesystem) costs performance,
  // never correctness, so the return value is deliberately ignored.
  (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, advice);
#else
  (void)first_arc;
  (void)arc_count;
  (void)advice;
#endif
}

}  // namespace grape
