#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/parallel.h"

namespace grape {

bool GraphDataEqual(const GraphView& a, const GraphView& b) {
  if (a.directed() != b.directed()) return false;
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_arcs() != b.num_arcs()) return false;
  if (!std::equal(a.offsets().begin(), a.offsets().end(),
                  b.offsets().begin(), b.offsets().end())) {
    return false;
  }
  if (!std::equal(a.arcs().begin(), a.arcs().end(), b.arcs().begin(),
                  b.arcs().end(), [](const Arc& x, const Arc& y) {
                    return x.dst == y.dst && x.weight == y.weight;
                  })) {
    return false;
  }
  if (!std::equal(a.vertex_labels().begin(), a.vertex_labels().end(),
                  b.vertex_labels().begin(), b.vertex_labels().end())) {
    return false;
  }
  return std::equal(a.left_side().begin(), a.left_side().end(),
                    b.left_side().begin(), b.left_side().end());
}

StatusOr<Graph> Graph::FromCsr(bool directed, std::vector<uint64_t> offsets,
                               std::vector<Arc> arcs,
                               std::vector<int64_t> vertex_labels,
                               std::vector<uint8_t> left_side) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != arcs.size()) {
    return Status::InvalidArgument("CSR offsets malformed");
  }
  const size_t n = offsets.size() - 1;
  for (size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument("CSR offsets not monotone");
    }
  }
  if (!vertex_labels.empty() && vertex_labels.size() != n) {
    return Status::InvalidArgument("vertex label section size mismatch");
  }
  if (!left_side.empty() && left_side.size() != n) {
    return Status::InvalidArgument("left-side section size mismatch");
  }
  for (const Arc& a : arcs) {
    if (a.dst >= n) return Status::InvalidArgument("arc target out of range");
  }
  Graph g;
  g.directed_ = directed;
  g.offsets_ = std::move(offsets);
  g.arcs_ = std::move(arcs);
  g.vertex_labels_ = std::move(vertex_labels);
  g.left_side_ = std::move(left_side);
  return g;
}

GraphBuilder::GraphBuilder(VertexId n, bool directed)
    : n_(n), directed_(directed) {}

void GraphBuilder::ReserveEdges(uint64_t n) {
  edges_.reserve(edges_.size() + (directed_ ? n : 2 * n));
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, double weight) {
  GRAPE_DCHECK(src < n_ && dst < n_)
      << "edge (" << src << "," << dst << ") out of range n=" << n_;
  edges_.push_back({src, dst, weight});
  if (!directed_) edges_.push_back({dst, src, weight});
}

void GraphBuilder::AddEdges(std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    GRAPE_DCHECK(e.src < n_ && e.dst < n_)
        << "edge (" << e.src << "," << e.dst << ") out of range n=" << n_;
  }
  if (directed_) {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
    return;
  }
  edges_.reserve(edges_.size() + 2 * edges.size());
  for (const Edge& e : edges) {
    edges_.push_back(e);
    edges_.push_back({e.dst, e.src, e.weight});
  }
}

void GraphBuilder::SetVertexLabel(VertexId v, int64_t label) {
  if (labels_.empty()) labels_.assign(n_, 0);
  labels_[v] = label;
}

void GraphBuilder::MarkLeft(VertexId v) {
  if (left_.empty()) left_.assign(n_, 0);
  left_[v] = 1;
}

Graph GraphBuilder::Build(WorkerPool* pool) && {
  Graph g;
  g.directed_ = directed_;
  g.vertex_labels_ = std::move(labels_);
  g.left_side_ = std::move(left_);

  // Two stable counting scatters replace the seed's scatter-then-sort: the
  // first groups edges by target, the second regroups by source. Stability
  // makes the second pass emit each adjacency list already sorted by target
  // (ties in insertion order), so no per-vertex comparison sort is needed,
  // and makes the result identical for any worker count.
  const uint64_t m = edges_.size();
  std::vector<Edge> by_dst(m);
  StableScatterByKey(
      pool, edges_.data(), m, n_, [](const Edge& e) { return e.dst; },
      by_dst.data(), nullptr);
  edges_.clear();
  edges_.shrink_to_fit();

  std::vector<Edge> by_src(m);
  std::vector<uint64_t> offsets;
  StableScatterByKey(
      pool, by_dst.data(), m, n_, [](const Edge& e) { return e.src; },
      by_src.data(), &offsets);
  by_dst.clear();
  by_dst.shrink_to_fit();

  if (offsets.empty()) offsets.assign(1, 0);  // n == 0
  g.offsets_ = std::move(offsets);
  g.arcs_.resize(m);
  Arc* arcs = g.arcs_.data();
  const Edge* src_edges = by_src.data();
  ParallelFor(pool, m, [&](uint64_t i) {
    arcs[i] = Arc{src_edges[i].dst, src_edges[i].weight};
  });
  return g;
}

Graph TransposeGraph(const GraphView& g) {
  // Counting scatter over ascending sources — the exact order the `.gcsr`
  // in-adjacency extension writes, so in-memory and mmapped transposes are
  // arc-for-arc identical.
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> in_offsets(static_cast<size_t>(n) + 1, 0);
  for (const Arc& a : g.arcs()) ++in_offsets[a.dst + 1];
  for (VertexId v = 0; v < n; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<Arc> in_arcs(g.num_arcs());
  std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : g.OutEdges(u)) {
      in_arcs[cursor[a.dst]++] = Arc{u, a.weight};
    }
  }
  auto t = Graph::FromCsr(
      g.directed(), std::move(in_offsets), std::move(in_arcs),
      {g.vertex_labels().begin(), g.vertex_labels().end()},
      {g.left_side().begin(), g.left_side().end()});
  GRAPE_CHECK(t.ok()) << t.status().ToString();
  return std::move(t.value());
}

namespace seq {

std::vector<double> Sssp(const GraphView& g, VertexId src) {
  const VertexId n = g.num_vertices();
  std::vector<double> dist(n, kInfinity);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const Arc& a : g.OutEdges(v)) {
      const double nd = d + a.weight;
      if (nd < dist[a.dst]) {
        dist[a.dst] = nd;
        pq.push({nd, a.dst});
      }
    }
  }
  return dist;
}

namespace {
VertexId Find(std::vector<VertexId>& parent, VertexId x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

std::vector<VertexId> ConnectedComponents(const GraphView& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.OutEdges(v)) {
      VertexId rv = Find(parent, v), ru = Find(parent, a.dst);
      if (rv != ru) parent[std::max(rv, ru)] = std::min(rv, ru);
    }
  }
  std::vector<VertexId> cid(n);
  for (VertexId v = 0; v < n; ++v) cid[v] = Find(parent, v);
  return cid;
}

std::vector<double> PageRank(const GraphView& g, double damping, double eps,
                             int max_iters) {
  // Delta-accumulative formulation (Zhang et al. / Section 5.3): scores start
  // at 0, residuals at (1-d); iterate pushing d * x_v / N_v until the total
  // residual falls below eps.
  const VertexId n = g.num_vertices();
  std::vector<double> score(n, 0.0), residual(n, 1.0 - damping), next(n, 0.0);
  for (int it = 0; it < max_iters; ++it) {
    double total = 0.0;
    for (VertexId v = 0; v < n; ++v) total += residual[v];
    if (total < eps) break;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const double x = residual[v];
      if (x <= 0.0) continue;
      score[v] += x;
      const uint64_t deg = g.OutDegree(v);
      if (deg == 0) continue;
      const double share = damping * x / static_cast<double>(deg);
      for (const Arc& a : g.OutEdges(v)) next[a.dst] += share;
    }
    residual.swap(next);
  }
  return score;
}

std::vector<int64_t> BfsLevels(const GraphView& g, VertexId src) {
  std::vector<int64_t> level(g.num_vertices(), -1);
  std::queue<VertexId> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    for (const Arc& a : g.OutEdges(v)) {
      if (level[a.dst] < 0) {
        level[a.dst] = level[v] + 1;
        q.push(a.dst);
      }
    }
  }
  return level;
}

}  // namespace seq
}  // namespace grape
