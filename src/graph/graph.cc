#include "graph/graph.h"

#include <algorithm>
#include <queue>

namespace grape {

GraphBuilder::GraphBuilder(VertexId n, bool directed)
    : n_(n), directed_(directed) {}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, double weight) {
  GRAPE_DCHECK(src < n_ && dst < n_)
      << "edge (" << src << "," << dst << ") out of range n=" << n_;
  edges_.push_back({src, dst, weight});
  if (!directed_) edges_.push_back({dst, src, weight});
}

void GraphBuilder::SetVertexLabel(VertexId v, int64_t label) {
  if (labels_.empty()) labels_.assign(n_, 0);
  labels_[v] = label;
}

void GraphBuilder::MarkLeft(VertexId v) {
  if (left_.empty()) left_.assign(n_, 0);
  left_[v] = 1;
}

Graph GraphBuilder::Build() && {
  Graph g;
  g.directed_ = directed_;
  g.vertex_labels_ = std::move(labels_);
  g.left_side_ = std::move(left_);
  g.offsets_.assign(static_cast<size_t>(n_) + 1, 0);
  for (const auto& e : edges_) g.offsets_[e.src + 1]++;
  for (size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.arcs_.resize(edges_.size());
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.arcs_[cursor[e.src]++] = Arc{e.dst, e.weight};
  }
  // Sort each adjacency list by target for determinism and cache locality.
  for (VertexId v = 0; v < n_; ++v) {
    auto* begin = g.arcs_.data() + g.offsets_[v];
    auto* end = g.arcs_.data() + g.offsets_[v + 1];
    std::sort(begin, end, [](const Arc& a, const Arc& b) { return a.dst < b.dst; });
  }
  edges_.clear();
  return g;
}

namespace seq {

std::vector<double> Sssp(const Graph& g, VertexId src) {
  const VertexId n = g.num_vertices();
  std::vector<double> dist(n, kInfinity);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const Arc& a : g.OutEdges(v)) {
      const double nd = d + a.weight;
      if (nd < dist[a.dst]) {
        dist[a.dst] = nd;
        pq.push({nd, a.dst});
      }
    }
  }
  return dist;
}

namespace {
VertexId Find(std::vector<VertexId>& parent, VertexId x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

std::vector<VertexId> ConnectedComponents(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  for (VertexId v = 0; v < n; ++v) {
    for (const Arc& a : g.OutEdges(v)) {
      VertexId rv = Find(parent, v), ru = Find(parent, a.dst);
      if (rv != ru) parent[std::max(rv, ru)] = std::min(rv, ru);
    }
  }
  std::vector<VertexId> cid(n);
  for (VertexId v = 0; v < n; ++v) cid[v] = Find(parent, v);
  return cid;
}

std::vector<double> PageRank(const Graph& g, double damping, double eps,
                             int max_iters) {
  // Delta-accumulative formulation (Zhang et al. / Section 5.3): scores start
  // at 0, residuals at (1-d); iterate pushing d * x_v / N_v until the total
  // residual falls below eps.
  const VertexId n = g.num_vertices();
  std::vector<double> score(n, 0.0), residual(n, 1.0 - damping), next(n, 0.0);
  for (int it = 0; it < max_iters; ++it) {
    double total = 0.0;
    for (VertexId v = 0; v < n; ++v) total += residual[v];
    if (total < eps) break;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const double x = residual[v];
      if (x <= 0.0) continue;
      score[v] += x;
      const uint64_t deg = g.OutDegree(v);
      if (deg == 0) continue;
      const double share = damping * x / static_cast<double>(deg);
      for (const Arc& a : g.OutEdges(v)) next[a.dst] += share;
    }
    residual.swap(next);
  }
  return score;
}

std::vector<int64_t> BfsLevels(const Graph& g, VertexId src) {
  std::vector<int64_t> level(g.num_vertices(), -1);
  std::queue<VertexId> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    for (const Arc& a : g.OutEdges(v)) {
      if (level[a.dst] < 0) {
        level[a.dst] = level[v] + 1;
        q.push(a.dst);
      }
    }
  }
  return level;
}

}  // namespace seq
}  // namespace grape
