#include "graph/store/gcsr_store.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define GRAPEPLUS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace grape {

using store::Fnv1a;
using store::GcsrHeader;
using store::kGcsrMagic;
using store::kGcsrVersion;
using store::kNumSections;
using store::kSecArcs;
using store::kSecLabels;
using store::kSecLeft;
using store::kSecOffsets;

namespace {

constexpr uint64_t kAlign = 8;
constexpr size_t kArcRecordBytes = 16;

uint64_t AlignUp(uint64_t x) { return (x + kAlign - 1) & ~(kAlign - 1); }

/// Computes the section table for a graph of the given shape. Returns total
/// file size.
uint64_t LayoutSections(uint64_t n, uint64_t num_arcs, bool has_labels,
                        bool has_left, GcsrHeader* h) {
  h->section_bytes[kSecOffsets] = (n + 1) * sizeof(uint64_t);
  h->section_bytes[kSecArcs] = num_arcs * kArcRecordBytes;
  h->section_bytes[kSecLabels] = has_labels ? n * sizeof(int64_t) : 0;
  h->section_bytes[kSecLeft] = has_left ? n : 0;
  uint64_t pos = sizeof(GcsrHeader);
  for (uint32_t s = 0; s < kNumSections; ++s) {
    pos = AlignUp(pos);
    h->section_offset[s] = pos;
    pos += h->section_bytes[s];
  }
  return AlignUp(pos);
}

uint64_t HeaderChecksum(GcsrHeader h) {
  h.header_checksum = 0;
  return Fnv1a(&h, sizeof(h));
}

uint64_t InAdjHeaderChecksum(store::GcsrInAdjHeader h) {
  h.header_checksum = 0;
  return Fnv1a(&h, sizeof(h));
}

/// Computes the in-adjacency extension layout starting at `ext_off` (the
/// aligned end of the base sections). Returns total file size.
uint64_t LayoutInAdj(uint64_t n, uint64_t num_arcs, uint64_t ext_off,
                     store::GcsrInAdjHeader* h) {
  h->section_bytes[store::kInSecOffsets] = (n + 1) * sizeof(uint64_t);
  h->section_bytes[store::kInSecArcs] = num_arcs * kArcRecordBytes;
  uint64_t pos = ext_off + sizeof(store::GcsrInAdjHeader);
  for (uint32_t s = 0; s < store::kNumInAdjSections; ++s) {
    pos = AlignUp(pos);
    h->section_offset[s] = pos;
    pos += h->section_bytes[s];
  }
  return AlignUp(pos);
}

class FileWriter {
 public:
  explicit FileWriter(FILE* f) : f_(f) {}

  bool WriteSection(const void* data, uint64_t bytes, uint64_t offset,
                    uint64_t* checksum) {
    if (!Pad(offset)) return false;
    *checksum = Fnv1a(data, bytes);
    return bytes == 0 ||
           std::fwrite(data, 1, bytes, f_) == bytes;
  }

  /// Seeks forward to `offset` writing zero fill (sections are aligned).
  bool Pad(uint64_t offset) {
    GRAPE_CHECK(offset >= pos_);
    static const char kZeros[kAlign] = {};
    while (pos_ < offset) {
      const uint64_t take =
          std::min<uint64_t>(offset - pos_, sizeof(kZeros));
      if (std::fwrite(kZeros, 1, take, f_) != take) return false;
      pos_ += take;
    }
    return true;
  }

  void Advance(uint64_t bytes) { pos_ += bytes; }

 private:
  FILE* f_;
  uint64_t pos_ = 0;
};

/// Writes `arcs` as 16-byte on-disk records through a zeroed staging buffer
/// so the in-memory Arc's padding bytes never reach disk and file checksums
/// are reproducible. Assumes the caller seeks/pads to `offset` first.
bool WriteArcRecords(FILE* f, FileWriter& w, std::span<const Arc> arcs,
                     uint64_t offset, uint64_t* checksum) {
  if (!w.Pad(offset)) return false;
  constexpr size_t kChunkArcs = 1 << 15;
  std::vector<unsigned char> buf(kChunkArcs * kArcRecordBytes);
  uint64_t sum = 0xCBF29CE484222325ULL;
  for (uint64_t base = 0; base < arcs.size(); base += kChunkArcs) {
    const size_t count = std::min<uint64_t>(kChunkArcs, arcs.size() - base);
    std::memset(buf.data(), 0, count * kArcRecordBytes);
    for (size_t i = 0; i < count; ++i) {
      unsigned char* rec = buf.data() + i * kArcRecordBytes;
      std::memcpy(rec, &arcs[base + i].dst, sizeof(VertexId));
      std::memcpy(rec + 8, &arcs[base + i].weight, sizeof(double));
    }
    sum = Fnv1a(buf.data(), count * kArcRecordBytes, sum);
    if (std::fwrite(buf.data(), kArcRecordBytes, count, f) != count) {
      return false;
    }
  }
  *checksum = sum;
  w.Advance(arcs.size() * kArcRecordBytes);
  return true;
}

}  // namespace

Status SaveBinary(const GraphView& g, const std::string& path,
                  const SaveOptions& opts) {
  const uint64_t n = g.num_vertices();
  GcsrHeader h;
  h.flags = (g.directed() ? uint32_t{store::kGcsrDirected} : 0u) |
            (g.has_vertex_labels() ? uint32_t{store::kGcsrHasLabels} : 0u) |
            (g.is_bipartite() ? uint32_t{store::kGcsrHasLeftSide} : 0u) |
            (opts.include_in_adjacency ? uint32_t{store::kGcsrHasInAdjacency}
                                       : 0u);
  h.num_vertices = n;
  h.num_arcs = g.num_arcs();
  const uint64_t base_end = LayoutSections(n, h.num_arcs,
                                           g.has_vertex_labels(),
                                           g.is_bipartite(), &h);

  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  const auto fail = [&](const std::string& what) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError(what + " " + tmp);
  };

  FileWriter w(f);
  // Header placeholder; rewritten with checksums at the end.
  if (std::fwrite(&h, sizeof(h), 1, f) != 1) return fail("cannot write");
  w.Advance(sizeof(h));

  if (!w.WriteSection(g.offsets().data(), h.section_bytes[kSecOffsets],
                      h.section_offset[kSecOffsets],
                      &h.section_checksum[kSecOffsets])) {
    return fail("cannot write");
  }
  w.Advance(h.section_bytes[kSecOffsets]);

  // Arc records: {u32 dst, u32 zero, f64 weight}.
  if (!WriteArcRecords(f, w, g.arcs(), h.section_offset[kSecArcs],
                       &h.section_checksum[kSecArcs])) {
    return fail("cannot write");
  }

  if (!w.WriteSection(g.vertex_labels().data(), h.section_bytes[kSecLabels],
                      h.section_offset[kSecLabels],
                      &h.section_checksum[kSecLabels])) {
    return fail("cannot write");
  }
  w.Advance(h.section_bytes[kSecLabels]);
  if (!w.WriteSection(g.left_side().data(), h.section_bytes[kSecLeft],
                      h.section_offset[kSecLeft],
                      &h.section_checksum[kSecLeft])) {
    return fail("cannot write");
  }
  w.Advance(h.section_bytes[kSecLeft]);

  // Trailing in-adjacency extension: the reverse CSR comes from
  // TransposeGraph — the one deterministic counting scatter shared with
  // pull-mode consumers, so TransposeGraph(g).View() and a reader's
  // TransposeView() are arc-for-arc identical by construction, and
  // identical graphs always produce byte-identical extensions. Note this
  // materialises the transpose (|E| x 16 bytes transient) — saving is an
  // ingest-side operation; an external bucketed scatter for strictly
  // larger-than-RAM saves is a ROADMAP open item.
  if (opts.include_in_adjacency) {
    const Graph transpose = TransposeGraph(g);
    const GraphView tv = transpose.View();
    store::GcsrInAdjHeader ih;
    LayoutInAdj(n, h.num_arcs, base_end, &ih);
    if (!w.Pad(base_end)) return fail("cannot write");
    if (std::fwrite(&ih, sizeof(ih), 1, f) != 1) return fail("cannot write");
    w.Advance(sizeof(ih));
    if (!w.WriteSection(tv.offsets().data(),
                        ih.section_bytes[store::kInSecOffsets],
                        ih.section_offset[store::kInSecOffsets],
                        &ih.section_checksum[store::kInSecOffsets])) {
      return fail("cannot write");
    }
    w.Advance(ih.section_bytes[store::kInSecOffsets]);
    if (!WriteArcRecords(f, w, tv.arcs(),
                         ih.section_offset[store::kInSecArcs],
                         &ih.section_checksum[store::kInSecArcs])) {
      return fail("cannot write");
    }
    ih.header_checksum = InAdjHeaderChecksum(ih);
    if (std::fseek(f, static_cast<long>(base_end), SEEK_SET) != 0 ||
        std::fwrite(&ih, sizeof(ih), 1, f) != 1) {
      return fail("cannot write");
    }
  }

  h.header_checksum = HeaderChecksum(h);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(&h, sizeof(h), 1, f) != 1) {
    return fail("cannot write");
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot flush " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

namespace {

/// Shared header validation for both read paths. `file_bytes` is the total
/// file size for bounds checks.
Status ValidateHeader(const GcsrHeader& h, uint64_t file_bytes) {
  if (h.magic != kGcsrMagic) {
    return Status::InvalidArgument("not a .gcsr file (bad magic)");
  }
  if (h.version != kGcsrVersion) {
    return Status::InvalidArgument(".gcsr version " +
                                   std::to_string(h.version) +
                                   " unsupported (want " +
                                   std::to_string(kGcsrVersion) + ")");
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    return Status::InvalidArgument(".gcsr header checksum mismatch");
  }
  // Caps keep the recomputed layout below free of uint64 wraparound (which
  // would let absurd counts slip past the bounds checks and turn into giant
  // allocations): ids must fit VertexId, and 2^48 arcs is far beyond any
  // real file.
  if (h.num_vertices > std::numeric_limits<VertexId>::max() ||
      h.num_arcs > (uint64_t{1} << 48)) {
    return Status::InvalidArgument(".gcsr vertex/arc counts out of range");
  }
  const uint64_t n = h.num_vertices;
  GcsrHeader expect;
  LayoutSections(n, h.num_arcs, (h.flags & store::kGcsrHasLabels) != 0,
                 (h.flags & store::kGcsrHasLeftSide) != 0, &expect);
  for (uint32_t s = 0; s < kNumSections; ++s) {
    if (h.section_offset[s] != expect.section_offset[s] ||
        h.section_bytes[s] != expect.section_bytes[s]) {
      return Status::InvalidArgument(".gcsr section table inconsistent");
    }
    if (h.section_offset[s] + h.section_bytes[s] > file_bytes) {
      return Status::InvalidArgument(".gcsr truncated (section " +
                                     std::to_string(s) + " out of bounds)");
    }
  }
  return Status::OK();
}

Status VerifySection(const GcsrHeader& h, uint32_t s, const void* data) {
  if (Fnv1a(data, h.section_bytes[s]) != h.section_checksum[s]) {
    return Status::InvalidArgument(".gcsr section " + std::to_string(s) +
                                   " checksum mismatch");
  }
  return Status::OK();
}

/// Structural CSR invariants over the raw sections — the zero-copy path's
/// equivalent of Graph::FromCsr's validation, since checksums only prove the
/// file is what its writer produced, not that the writer was sane. Checking
/// arc targets faults the whole arc section in, so it is tied to
/// Verify::kFull (which already does).
Status ValidateStructure(const GcsrHeader& h, const uint64_t* offsets,
                         const Arc* arcs, bool check_arcs) {
  const uint64_t n = h.num_vertices;
  if (offsets[0] != 0 || offsets[n] != h.num_arcs) {
    return Status::InvalidArgument(".gcsr offsets malformed");
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(".gcsr offsets not monotone");
    }
  }
  if (check_arcs) {
    for (uint64_t i = 0; i < h.num_arcs; ++i) {
      if (arcs[i].dst >= n) {
        return Status::InvalidArgument(".gcsr arc target out of range");
      }
    }
  }
  return Status::OK();
}

/// Aligned end of the base v1 layout — where the in-adjacency extension
/// starts when present.
uint64_t BaseLayoutEnd(const GcsrHeader& h) {
  GcsrHeader tmp;
  return LayoutSections(h.num_vertices, h.num_arcs,
                        (h.flags & store::kGcsrHasLabels) != 0,
                        (h.flags & store::kGcsrHasLeftSide) != 0, &tmp);
}

/// Validates the in-adjacency extension header: magic, checksum, section
/// table recomputed from the base counts, bounds against the file size.
Status ValidateInAdjHeader(const GcsrHeader& base,
                           const store::GcsrInAdjHeader& ih, uint64_t ext_off,
                           uint64_t file_bytes) {
  if (ih.magic != store::kGcsrInAdjMagic) {
    return Status::InvalidArgument(".gcsr in-adjacency extension bad magic");
  }
  if (ih.header_checksum != InAdjHeaderChecksum(ih)) {
    return Status::InvalidArgument(
        ".gcsr in-adjacency header checksum mismatch");
  }
  store::GcsrInAdjHeader expect;
  LayoutInAdj(base.num_vertices, base.num_arcs, ext_off, &expect);
  for (uint32_t s = 0; s < store::kNumInAdjSections; ++s) {
    if (ih.section_offset[s] != expect.section_offset[s] ||
        ih.section_bytes[s] != expect.section_bytes[s]) {
      return Status::InvalidArgument(
          ".gcsr in-adjacency section table inconsistent");
    }
    if (ih.section_offset[s] + ih.section_bytes[s] > file_bytes) {
      return Status::InvalidArgument(
          ".gcsr in-adjacency extension truncated");
    }
  }
  return Status::OK();
}

Status VerifyInAdjSection(const store::GcsrInAdjHeader& ih, uint32_t s,
                          const void* data) {
  if (Fnv1a(data, ih.section_bytes[s]) != ih.section_checksum[s]) {
    return Status::InvalidArgument(".gcsr in-adjacency section " +
                                   std::to_string(s) + " checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Graph> LoadBinary(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  struct Closer {
    FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek " + path);
  }
  const long sz = std::ftell(f);
  if (sz < 0 || static_cast<uint64_t>(sz) < sizeof(GcsrHeader)) {
    return Status::InvalidArgument("not a .gcsr file (too small): " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(sz);
  std::rewind(f);

  GcsrHeader h;
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    return Status::IoError("cannot read header of " + path);
  }
  GRAPE_RETURN_NOT_OK(ValidateHeader(h, file_bytes));

  const auto read_section = [&](uint32_t s, void* out) -> Status {
    if (h.section_bytes[s] == 0) return Status::OK();
    if (std::fseek(f, static_cast<long>(h.section_offset[s]), SEEK_SET) != 0 ||
        std::fread(out, 1, h.section_bytes[s], f) != h.section_bytes[s]) {
      return Status::IoError("cannot read section " + std::to_string(s) +
                             " of " + path);
    }
    return VerifySection(h, s, out);
  };

  const uint64_t n = h.num_vertices;
  std::vector<uint64_t> offsets(n + 1);
  GRAPE_RETURN_NOT_OK(read_section(kSecOffsets, offsets.data()));
  std::vector<Arc> arcs(h.num_arcs);
  static_assert(sizeof(Arc) == kArcRecordBytes);
  GRAPE_RETURN_NOT_OK(read_section(kSecArcs, arcs.data()));
  std::vector<int64_t> labels(
      (h.flags & store::kGcsrHasLabels) != 0 ? n : 0);
  GRAPE_RETURN_NOT_OK(read_section(kSecLabels, labels.data()));
  std::vector<uint8_t> left((h.flags & store::kGcsrHasLeftSide) != 0 ? n : 0);
  GRAPE_RETURN_NOT_OK(read_section(kSecLeft, left.data()));

  // The in-adjacency extension is fully verified (LoadBinary's contract)
  // but not carried into the owning Graph, which stores the out-CSR only —
  // a later save recomputes the identical transpose deterministically.
  // Zero-copy consumers use MmapGraph::TransposeView instead. Verification
  // streams through a fixed buffer: the extension is |E|-sized, and
  // materialising it just to hash it would defeat the out-of-core sizing
  // this loader is meant to respect.
  if ((h.flags & store::kGcsrHasInAdjacency) != 0) {
    const uint64_t ext_off = BaseLayoutEnd(h);
    store::GcsrInAdjHeader ih;
    if (ext_off + sizeof(ih) > file_bytes ||
        std::fseek(f, static_cast<long>(ext_off), SEEK_SET) != 0 ||
        std::fread(&ih, sizeof(ih), 1, f) != 1) {
      return Status::InvalidArgument(".gcsr in-adjacency extension truncated");
    }
    GRAPE_RETURN_NOT_OK(ValidateInAdjHeader(h, ih, ext_off, file_bytes));
    std::vector<uint64_t> in_off(n + 1);
    const auto read_in_offsets = [&]() -> Status {
      if (std::fseek(f,
                     static_cast<long>(ih.section_offset[store::kInSecOffsets]),
                     SEEK_SET) != 0 ||
          std::fread(in_off.data(), 1,
                     ih.section_bytes[store::kInSecOffsets], f) !=
              ih.section_bytes[store::kInSecOffsets]) {
        return Status::IoError("cannot read in-adjacency offsets of " + path);
      }
      return VerifyInAdjSection(ih, store::kInSecOffsets, in_off.data());
    };
    GRAPE_RETURN_NOT_OK(read_in_offsets());
    GRAPE_RETURN_NOT_OK(ValidateStructure(h, in_off.data(), nullptr,
                                          /*check_arcs=*/false));
    // In-arcs: chunked hash + per-record source bounds check.
    if (std::fseek(f, static_cast<long>(ih.section_offset[store::kInSecArcs]),
                   SEEK_SET) != 0) {
      return Status::IoError("cannot read in-adjacency arcs of " + path);
    }
    constexpr size_t kChunkArcs = 1 << 15;
    std::vector<Arc> buf(kChunkArcs);
    static_assert(sizeof(Arc) == kArcRecordBytes);
    uint64_t hash = 0xCBF29CE484222325ULL;
    for (uint64_t base = 0; base < h.num_arcs; base += kChunkArcs) {
      const size_t count = std::min<uint64_t>(kChunkArcs, h.num_arcs - base);
      if (std::fread(buf.data(), kArcRecordBytes, count, f) != count) {
        return Status::IoError("cannot read in-adjacency arcs of " + path);
      }
      hash = Fnv1a(buf.data(), count * kArcRecordBytes, hash);
      for (size_t i = 0; i < count; ++i) {
        if (buf[i].dst >= n) {
          return Status::InvalidArgument(
              ".gcsr in-adjacency arc source out of range");
        }
      }
    }
    if (hash != ih.section_checksum[store::kInSecArcs]) {
      return Status::InvalidArgument(
          ".gcsr in-adjacency section 1 checksum mismatch");
    }
  }

  return Graph::FromCsr((h.flags & store::kGcsrDirected) != 0,
                        std::move(offsets), std::move(arcs),
                        std::move(labels), std::move(left));
}

MmapGraph& MmapGraph::operator=(MmapGraph&& other) noexcept {
  if (this != &other) {
#if GRAPEPLUS_HAVE_MMAP
    if (base_ != nullptr) {
      ::munmap(const_cast<void*>(base_), bytes_);
    }
#endif
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    header_ = other.header_;
    has_in_adj_ = other.has_in_adj_;
    in_adj_ = other.in_adj_;
    path_ = std::move(other.path_);
  }
  return *this;
}

MmapGraph::~MmapGraph() {
#if GRAPEPLUS_HAVE_MMAP
  if (base_ != nullptr) {
    ::munmap(const_cast<void*>(base_), bytes_);
  }
#endif
}

StatusOr<MmapGraph> MmapGraph::Open(const std::string& path, Verify verify) {
#if !GRAPEPLUS_HAVE_MMAP
  (void)verify;
  return Status::Internal("mmap unsupported on this platform; use LoadBinary");
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const uint64_t bytes = static_cast<uint64_t>(st.st_size);
  if (bytes < sizeof(GcsrHeader)) {
    ::close(fd);
    return Status::InvalidArgument("not a .gcsr file (too small): " + path);
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return Status::IoError("cannot mmap " + path);
  }

  MmapGraph g;
  g.base_ = base;
  g.bytes_ = bytes;
  g.path_ = path;
  std::memcpy(&g.header_, base, sizeof(GcsrHeader));
  Status st_hdr = ValidateHeader(g.header_, bytes);
  const auto* bytes_base = static_cast<const unsigned char*>(base);
  if (st_hdr.ok() && verify == Verify::kFull) {
    for (uint32_t s = 0; s < kNumSections && st_hdr.ok(); ++s) {
      st_hdr = VerifySection(g.header_, s,
                             bytes_base + g.header_.section_offset[s]);
    }
  }
  if (st_hdr.ok()) {
    st_hdr = ValidateStructure(
        g.header_,
        reinterpret_cast<const uint64_t*>(
            bytes_base + g.header_.section_offset[kSecOffsets]),
        reinterpret_cast<const Arc*>(bytes_base +
                                     g.header_.section_offset[kSecArcs]),
        /*check_arcs=*/verify == Verify::kFull);
  }
  // Optional trailing in-adjacency extension (same verification ladder as
  // the base sections: header always, payload hashing under kFull).
  if (st_hdr.ok() &&
      (g.header_.flags & store::kGcsrHasInAdjacency) != 0) {
    const uint64_t ext_off = BaseLayoutEnd(g.header_);
    if (ext_off + sizeof(store::GcsrInAdjHeader) > bytes) {
      st_hdr =
          Status::InvalidArgument(".gcsr in-adjacency extension truncated");
    } else {
      std::memcpy(&g.in_adj_, bytes_base + ext_off, sizeof(g.in_adj_));
      st_hdr = ValidateInAdjHeader(g.header_, g.in_adj_, ext_off, bytes);
      if (st_hdr.ok() && verify == Verify::kFull) {
        for (uint32_t s = 0; s < store::kNumInAdjSections && st_hdr.ok();
             ++s) {
          st_hdr = VerifyInAdjSection(
              g.in_adj_, s, bytes_base + g.in_adj_.section_offset[s]);
        }
      }
      if (st_hdr.ok()) {
        st_hdr = ValidateStructure(
            g.header_,
            reinterpret_cast<const uint64_t*>(
                bytes_base + g.in_adj_.section_offset[store::kInSecOffsets]),
            reinterpret_cast<const Arc*>(
                bytes_base + g.in_adj_.section_offset[store::kInSecArcs]),
            /*check_arcs=*/verify == Verify::kFull);
      }
      if (st_hdr.ok()) g.has_in_adj_ = true;
    }
  }
  if (!st_hdr.ok()) return st_hdr;  // g's destructor unmaps
  return g;
#endif
}

GraphView MmapGraph::View() const {
  GRAPE_CHECK(base_ != nullptr) << "MmapGraph is closed";
  const auto* bytes_base = static_cast<const unsigned char*>(base_);
  const uint64_t n = header_.num_vertices;
  // The arc section is 8-byte aligned and its records are byte-compatible
  // with Arc (asserted in gcsr_format.h), so the mapping is exposed
  // directly — the zero-copy read path.
  const auto* offsets = reinterpret_cast<const uint64_t*>(
      bytes_base + header_.section_offset[kSecOffsets]);
  const auto* arcs = reinterpret_cast<const Arc*>(
      bytes_base + header_.section_offset[kSecArcs]);
  const auto* labels = reinterpret_cast<const int64_t*>(
      bytes_base + header_.section_offset[kSecLabels]);
  const auto* left = reinterpret_cast<const uint8_t*>(
      bytes_base + header_.section_offset[kSecLeft]);
  const bool has_labels = (header_.flags & store::kGcsrHasLabels) != 0;
  const bool has_left = (header_.flags & store::kGcsrHasLeftSide) != 0;
  return GraphView(
      (header_.flags & store::kGcsrDirected) != 0,
      {offsets, static_cast<size_t>(n + 1)},
      {arcs, static_cast<size_t>(header_.num_arcs)},
      {labels, has_labels ? static_cast<size_t>(n) : 0},
      {left, has_left ? static_cast<size_t>(n) : 0});
}

GraphView MmapGraph::TransposeView() const {
  GRAPE_CHECK(base_ != nullptr) << "MmapGraph is closed";
  GRAPE_CHECK(has_in_adj_)
      << path_ << " has no in-adjacency section (save with "
      << "SaveOptions::include_in_adjacency)";
  const auto* bytes_base = static_cast<const unsigned char*>(base_);
  const uint64_t n = header_.num_vertices;
  const auto* in_offsets = reinterpret_cast<const uint64_t*>(
      bytes_base + in_adj_.section_offset[store::kInSecOffsets]);
  const auto* in_arcs = reinterpret_cast<const Arc*>(
      bytes_base + in_adj_.section_offset[store::kInSecArcs]);
  const auto* labels = reinterpret_cast<const int64_t*>(
      bytes_base + header_.section_offset[kSecLabels]);
  const auto* left = reinterpret_cast<const uint8_t*>(
      bytes_base + header_.section_offset[kSecLeft]);
  const bool has_labels = (header_.flags & store::kGcsrHasLabels) != 0;
  const bool has_left = (header_.flags & store::kGcsrHasLeftSide) != 0;
  return GraphView(
      (header_.flags & store::kGcsrDirected) != 0,
      {in_offsets, static_cast<size_t>(n + 1)},
      {in_arcs, static_cast<size_t>(header_.num_arcs)},
      {labels, has_labels ? static_cast<size_t>(n) : 0},
      {left, has_left ? static_cast<size_t>(n) : 0});
}

}  // namespace grape
