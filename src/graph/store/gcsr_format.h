// Copyright 2026 The GRAPE+ Reproduction Authors.
// On-disk layout of the `.gcsr` versioned binary CSR format. See
// src/graph/store/README.md for the full specification and versioning
// rules. All integers are little-endian; sections are 8-byte aligned.
#ifndef GRAPEPLUS_GRAPH_STORE_GCSR_FORMAT_H_
#define GRAPEPLUS_GRAPH_STORE_GCSR_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph_view.h"

namespace grape {
namespace store {

/// "GCSR" followed by a format epoch byte; bumping the epoch invalidates all
/// older files (incompatible layout), while `kGcsrVersion` tracks
/// backward-compatible revisions within an epoch.
inline constexpr uint64_t kGcsrMagic = 0x0100525343471B67ULL;
inline constexpr uint32_t kGcsrVersion = 1;

enum GcsrFlags : uint32_t {
  kGcsrDirected = 1u << 0,
  kGcsrHasLabels = 1u << 1,
  kGcsrHasLeftSide = 1u << 2,
  /// The file carries the trailing in-adjacency extension (reverse CSR)
  /// after the base sections. Epoch-compatible: the base layout is
  /// untouched, and readers ignore flag bits and trailing bytes they do not
  /// understand, so pre-extension readers load such files as plain v1.
  kGcsrHasInAdjacency = 1u << 3,
};

/// Section order in the file (all offsets relative to file start).
enum GcsrSection : uint32_t {
  kSecOffsets = 0,  // (n + 1) x uint64      — CSR offsets
  kSecArcs = 1,     // num_arcs x 16 bytes   — {u32 dst, u32 zero, f64 weight}
  kSecLabels = 2,   // n x int64 or empty    — vertex labels L(v)
  kSecLeft = 3,     // n x uint8 or empty    — bipartite left-side bitmap
  kNumSections = 4,
};

/// Fixed-size file header. `header_checksum` is the FNV-1a of the header
/// bytes with the checksum field itself zeroed; each section carries its own
/// FNV-1a so loaders can verify integrity before trusting the payload.
struct GcsrHeader {
  uint64_t magic = kGcsrMagic;
  uint32_t version = kGcsrVersion;
  uint32_t flags = 0;
  uint64_t num_vertices = 0;
  uint64_t num_arcs = 0;
  uint64_t section_offset[kNumSections] = {};
  uint64_t section_bytes[kNumSections] = {};
  uint64_t section_checksum[kNumSections] = {};
  uint64_t header_checksum = 0;
};
static_assert(sizeof(GcsrHeader) == 8 + 4 + 4 + 8 + 8 + 3 * 4 * 8 + 8,
              "GcsrHeader must be packed (no implicit padding)");

/// The in-adjacency extension: an optional block appended after the last
/// base section (at the 8-byte-aligned end of the v1 layout), announced by
/// kGcsrHasInAdjacency. It stores the transpose as its own CSR — in-offsets
/// plus in-arc records whose dst field holds the *source* vertex of each
/// arc — so reverse-edge algorithms stream straight off the mapping with no
/// load-time transpose. Self-describing and self-checksummed, mirroring the
/// base header's scheme.
inline constexpr uint64_t kGcsrInAdjMagic = 0x0144414E49524347ULL;  // "GCRINAD" + 0x01

enum GcsrInAdjSection : uint32_t {
  kInSecOffsets = 0,  // (n + 1) x uint64    — reverse-CSR offsets
  kInSecArcs = 1,     // num_arcs x 16 bytes — {u32 src, u32 zero, f64 weight}
  kNumInAdjSections = 2,
};

struct GcsrInAdjHeader {
  uint64_t magic = kGcsrInAdjMagic;
  uint64_t section_offset[kNumInAdjSections] = {};  // from file start
  uint64_t section_bytes[kNumInAdjSections] = {};
  uint64_t section_checksum[kNumInAdjSections] = {};
  uint64_t header_checksum = 0;  // FNV-1a with this field zeroed
};
static_assert(sizeof(GcsrInAdjHeader) == 8 + 3 * 2 * 8 + 8,
              "GcsrInAdjHeader must be packed (no implicit padding)");

/// The on-disk arc record must be byte-compatible with the in-memory Arc so
/// the mmap read path can expose the arc section as a `span<const Arc>`
/// without copying. The 4 padding bytes are written as zero so files hash
/// identically across runs.
static_assert(sizeof(Arc) == 16, "Arc must be 16 bytes (dst, pad, weight)");
static_assert(offsetof(Arc, dst) == 0 && offsetof(Arc, weight) == 8,
              "Arc layout must match the .gcsr arc record");

/// FNV-1a 64-bit over a byte range.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t hash = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace store
}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_STORE_GCSR_FORMAT_H_
