// Copyright 2026 The GRAPE+ Reproduction Authors.
// Binary graph store: save/load of the versioned `.gcsr` CSR format and an
// mmap-backed zero-copy read path. Three ways to consume a graph:
//
//   SaveBinary(view, path)      — serialise any GraphView (in-memory Graph
//                                 or another mmap store) with checksums.
//   LoadBinary(path)            — read + verify into an owning Graph.
//   MmapGraph::Open(path)       — map the file and expose a GraphView over
//                                 the mapping; no payload copies, pages are
//                                 faulted in on demand. The MmapGraph must
//                                 outlive every view derived from it.
#ifndef GRAPEPLUS_GRAPH_STORE_GCSR_STORE_H_
#define GRAPEPLUS_GRAPH_STORE_GCSR_STORE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/store/gcsr_format.h"
#include "util/status.h"

namespace grape {

struct SaveOptions {
  /// Also write the trailing in-adjacency extension (reverse CSR), computed
  /// once at save time by a deterministic counting scatter, so readers get
  /// the transpose with zero load-time work. The base layout is unchanged:
  /// pre-extension readers load such files as plain v1 and ignore the
  /// trailer.
  bool include_in_adjacency = false;
};

/// Writes `g` to `path` in the `.gcsr` format (atomically overwriting any
/// existing file contents).
Status SaveBinary(const GraphView& g, const std::string& path,
                  const SaveOptions& opts = {});

/// Reads a `.gcsr` file into an owning Graph, verifying the header and all
/// section checksums.
StatusOr<Graph> LoadBinary(const std::string& path);

/// A read-only memory-mapped `.gcsr` file satisfying GraphView. Move-only;
/// unmaps on destruction.
class MmapGraph {
 public:
  /// Verification level at open time. The header (magic, version, section
  /// table, header checksum) is always validated; kFull additionally hashes
  /// every section, which faults the whole file in once.
  enum class Verify { kHeaderOnly, kFull };

  static StatusOr<MmapGraph> Open(const std::string& path,
                                  Verify verify = Verify::kFull);

  MmapGraph(MmapGraph&& other) noexcept { *this = std::move(other); }
  MmapGraph& operator=(MmapGraph&& other) noexcept;
  ~MmapGraph();
  MmapGraph(const MmapGraph&) = delete;
  MmapGraph& operator=(const MmapGraph&) = delete;

  /// Zero-copy view over the mapping; valid while this object is alive.
  GraphView View() const;
  operator GraphView() const { return View(); }  // NOLINT

  /// True when the file carries the trailing in-adjacency extension.
  bool has_in_adjacency() const { return has_in_adj_; }

  /// Zero-copy view of the transpose (in-arcs exposed as the out-CSR of the
  /// reverse graph; labels and left-side pass through). Requires
  /// has_in_adjacency(). Valid while this object is alive.
  GraphView TransposeView() const;

  uint64_t file_bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  MmapGraph() = default;

  const void* base_ = nullptr;  // nullptr = moved-from / closed
  uint64_t bytes_ = 0;
  store::GcsrHeader header_;
  bool has_in_adj_ = false;
  store::GcsrInAdjHeader in_adj_;
  std::string path_;
};

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_STORE_GCSR_STORE_H_
