#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace grape {

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  VertexId n = 0;
  bool directed = true;
  bool have_header = false;
  GraphBuilder* builder = nullptr;
  GraphBuilder storage(0, true);
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string mode;
      if (!(ls >> n >> mode)) {
        return Status::InvalidArgument("bad header at line " +
                                       std::to_string(line_no));
      }
      if (mode == "directed") {
        directed = true;
      } else if (mode == "undirected") {
        directed = false;
      } else {
        return Status::InvalidArgument("unknown mode '" + mode + "'");
      }
      storage = GraphBuilder(n, directed);
      builder = &storage;
      have_header = true;
      continue;
    }
    VertexId s, d;
    double w = 1.0;
    if (!(ls >> s >> d)) {
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_no));
    }
    ls >> w;  // optional
    if (s >= n || d >= n) {
      return Status::OutOfRange("vertex id out of range at line " +
                                std::to_string(line_no));
    }
    builder->AddEdge(s, d, w);
  }
  if (!have_header) return Status::InvalidArgument("missing header");
  return std::move(storage).Build();
}

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return ParseEdgeList(buf.str());
}

std::string ToEdgeListText(const Graph& g) {
  std::ostringstream os;
  os << g.num_vertices() << " " << (g.directed() ? "directed" : "undirected")
     << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.OutEdges(v)) {
      // Undirected graphs store both arcs; emit each logical edge once.
      if (!g.directed() && a.dst < v) continue;
      os << v << " " << a.dst << " " << a.weight << "\n";
    }
  }
  return os.str();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToEdgeListText(g);
  return Status::OK();
}

}  // namespace grape
