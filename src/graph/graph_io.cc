#include "graph/graph_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/parallel.h"

namespace grape {

namespace {

inline const char* SkipBlanks(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

inline const char* LineEnd(const char* p, const char* end) {
  const void* nl = std::memchr(p, '\n', static_cast<size_t>(end - p));
  return nl == nullptr ? end : static_cast<const char*>(nl);
}

/// One chunk's parse outcome. Errors carry the chunk-local 1-based line
/// index; the caller turns that into an absolute line number.
struct ChunkResult {
  std::vector<Edge> edges;
  uint64_t lines = 0;       // total lines in the chunk (for error offsets)
  uint64_t error_line = 0;  // chunk-local, 1-based; 0 = no error
  enum class Error { kNone, kBadEdge, kOutOfRange } error = Error::kNone;
};

/// Parses one chunk of edge lines [begin, end). Chunks start at a line
/// boundary; only the final chunk may end without a trailing newline.
ChunkResult ParseChunk(const char* begin, const char* end, VertexId n) {
  ChunkResult r;
  // Count every line up front so absolute line numbers of later chunks stay
  // correct even when this chunk stops early on an error.
  for (const char* p = begin; p < end;) {
    const char* nl = LineEnd(p, end);
    ++r.lines;
    p = nl + 1;
  }
  uint64_t line = 0;
  for (const char* p = begin; p < end;) {
    const char* nl = LineEnd(p, end);
    ++line;
    const char* q = SkipBlanks(p, nl);
    p = nl + 1;
    if (q == nl || *q == '#') continue;
    VertexId s = 0, d = 0;
    auto sr = std::from_chars(q, nl, s);
    if (sr.ec != std::errc()) {
      r.error = ChunkResult::Error::kBadEdge;
      r.error_line = line;
      return r;
    }
    q = SkipBlanks(sr.ptr, nl);
    auto dr = std::from_chars(q, nl, d);
    if (dr.ec != std::errc()) {
      r.error = ChunkResult::Error::kBadEdge;
      r.error_line = line;
      return r;
    }
    double w = 1.0;
    q = SkipBlanks(dr.ptr, nl);
    if (q < nl && *q != '#') {
      auto wr = std::from_chars(q, nl, w);
      if (wr.ec != std::errc()) w = 1.0;  // trailing junk: ignore, like the
                                          // stream parser's failed >> w
    }
    if (s >= n || d >= n) {
      r.error = ChunkResult::Error::kOutOfRange;
      r.error_line = line;
      return r;
    }
    r.edges.push_back({s, d, w});
  }
  return r;
}

}  // namespace

StatusOr<Graph> ParseEdgeList(std::string_view text, WorkerPool* pool) {
  const char* p = text.data();
  const char* const end = text.data() + text.size();

  // ---- header: first non-blank, non-comment line: "n directed|undirected".
  uint64_t line_no = 0;
  VertexId n = 0;
  bool directed = true;
  bool have_header = false;
  while (p < end && !have_header) {
    const char* nl = LineEnd(p, end);
    ++line_no;
    const char* q = SkipBlanks(p, nl);
    if (q == nl || *q == '#') {
      p = nl + 1;
      continue;
    }
    auto nr = std::from_chars(q, nl, n);
    if (nr.ec != std::errc()) {
      return Status::InvalidArgument("bad header at line " +
                                     std::to_string(line_no));
    }
    q = SkipBlanks(nr.ptr, nl);
    const char* tok = q;
    while (q < nl && *q != ' ' && *q != '\t' && *q != '\r') ++q;
    const std::string_view mode(tok, static_cast<size_t>(q - tok));
    if (mode == "directed") {
      directed = true;
    } else if (mode == "undirected") {
      directed = false;
    } else if (mode.empty()) {
      return Status::InvalidArgument("bad header at line " +
                                     std::to_string(line_no));
    } else {
      return Status::InvalidArgument("unknown mode '" + std::string(mode) +
                                     "'");
    }
    have_header = true;
    p = nl + 1;
  }
  if (!have_header) return Status::InvalidArgument("missing header");

  // ---- edge region: split into newline-aligned chunks, parse concurrently.
  const uint64_t bytes = static_cast<uint64_t>(end - p);
  const uint32_t chunks = ParallelChunks(pool, bytes, /*min_grain=*/1 << 16);
  std::vector<const char*> starts(chunks + 1);
  starts[0] = p;
  starts[chunks] = end;
  const uint64_t per = chunks > 0 ? bytes / chunks : 0;
  for (uint32_t c = 1; c < chunks; ++c) {
    const char* cut = p + per * c;
    cut = LineEnd(cut, end);
    starts[c] = cut < end ? cut + 1 : end;
  }
  for (uint32_t c = 1; c < chunks; ++c) {
    starts[c] = std::max(starts[c], starts[c - 1]);
  }

  std::vector<ChunkResult> results(chunks);
  ParallelForChunks(pool, chunks, chunks, [&](uint64_t b, uint64_t e) {
    for (uint64_t c = b; c < e; ++c) {
      results[c] = ParseChunk(starts[c], starts[c + 1], n);
    }
  });

  uint64_t total_edges = 0;
  uint64_t lines_before = line_no;
  for (const ChunkResult& r : results) {
    if (r.error != ChunkResult::Error::kNone) {
      const uint64_t abs_line = lines_before + r.error_line;
      if (r.error == ChunkResult::Error::kBadEdge) {
        return Status::InvalidArgument("bad edge at line " +
                                       std::to_string(abs_line));
      }
      return Status::OutOfRange("vertex id out of range at line " +
                                std::to_string(abs_line));
    }
    lines_before += r.lines;
    total_edges += r.edges.size();
  }

  GraphBuilder builder(n, directed);
  builder.ReserveEdges(total_edges);
  for (const ChunkResult& r : results) builder.AddEdges(r.edges);
  return std::move(builder).Build(pool);
}

StatusOr<Graph> LoadEdgeList(const std::string& path, WorkerPool* pool) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return Status::IoError("cannot open " + path);
  // Read into one pre-sized string; the stringstream detour would hold two
  // copies of the text at peak, which matters at ingestion scale.
  const std::streamoff size = f.tellg();
  std::string text(static_cast<size_t>(std::max<std::streamoff>(size, 0)),
                   '\0');
  f.seekg(0);
  if (!text.empty() &&
      !f.read(text.data(), static_cast<std::streamsize>(text.size()))) {
    return Status::IoError("cannot read " + path);
  }
  return ParseEdgeList(text, pool);
}

std::string ToEdgeListText(const GraphView& g) {
  std::ostringstream os;
  os << g.num_vertices() << " " << (g.directed() ? "directed" : "undirected")
     << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.OutEdges(v)) {
      // Undirected graphs store both arcs; emit each logical edge once.
      if (!g.directed() && a.dst < v) continue;
      os << v << " " << a.dst << " " << a.weight << "\n";
    }
  }
  return os.str();
}

Status SaveEdgeList(const GraphView& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToEdgeListText(g);
  return Status::OK();
}

}  // namespace grape
