// Copyright 2026 The GRAPE+ Reproduction Authors.
// Edge-list text I/O. Format: header "n directed|undirected" then one
// "src dst [weight]" per line; '#' comments allowed.
//
// Parsing is chunked: with a WorkerPool the input is split at newline
// boundaries and chunks are parsed concurrently into per-chunk edge shards,
// which are concatenated in order — the parsed graph is identical to the
// serial parse. For the binary format see graph/store/gcsr_store.h.
#ifndef GRAPEPLUS_GRAPH_GRAPH_IO_H_
#define GRAPEPLUS_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace grape {

class WorkerPool;

/// Parses a graph from edge-list text (see header format above). With a
/// pool, chunks are parsed in parallel; the result is deterministic.
StatusOr<Graph> ParseEdgeList(std::string_view text,
                              WorkerPool* pool = nullptr);

/// Loads a graph from an edge-list file.
StatusOr<Graph> LoadEdgeList(const std::string& path,
                             WorkerPool* pool = nullptr);

/// Serialises a graph to edge-list text (round-trippable via ParseEdgeList).
std::string ToEdgeListText(const GraphView& g);

/// Writes a graph to a file.
Status SaveEdgeList(const GraphView& g, const std::string& path);

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GRAPH_IO_H_
