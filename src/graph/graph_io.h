// Copyright 2026 The GRAPE+ Reproduction Authors.
// Edge-list text I/O. Format: header "n directed|undirected" then one
// "src dst [weight]" per line; '#' comments allowed.
#ifndef GRAPEPLUS_GRAPH_GRAPH_IO_H_
#define GRAPEPLUS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace grape {

/// Parses a graph from edge-list text (see header format above).
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Loads a graph from an edge-list file.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Serialises a graph to edge-list text (round-trippable via ParseEdgeList).
std::string ToEdgeListText(const Graph& g);

/// Writes a graph to a file.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GRAPH_IO_H_
