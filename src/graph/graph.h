// Copyright 2026 The GRAPE+ Reproduction Authors.
// In-memory CSR graph used as the global input G = (V, E, L) of Section 2.
// Directed graphs store out-adjacency (and optionally in-adjacency);
// undirected graphs store each edge as two arcs.
//
// `Graph` owns its storage; read-only consumers should accept a `GraphView`
// (graph/graph_view.h), which a Graph converts to implicitly and which the
// mmap-backed `.gcsr` store (graph/store/) also produces.
#ifndef GRAPEPLUS_GRAPH_GRAPH_H_
#define GRAPEPLUS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/common.h"
#include "util/logging.h"
#include "util/status.h"

namespace grape {

class WorkerPool;

/// A raw edge triple, the unit of bulk ingestion (parsers and generators
/// accumulate shards of these and feed them to GraphBuilder::AddEdges).
struct Edge {
  VertexId src;
  VertexId dst;
  double weight;
};

/// Immutable CSR graph. Build via GraphBuilder or Graph::FromCsr.
class Graph {
 public:
  Graph() = default;

  bool directed() const { return directed_; }
  VertexId num_vertices() const { return static_cast<VertexId>(offsets_.size() - 1); }
  uint64_t num_arcs() const { return arcs_.size(); }
  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  uint64_t num_edges() const { return directed_ ? num_arcs() : num_arcs() / 2; }

  /// Out-neighbourhood of v.
  std::span<const Arc> OutEdges(VertexId v) const {
    GRAPE_DCHECK(v < num_vertices());
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  uint64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Vertex labels (the paper's L(v)); empty if unlabelled.
  bool has_vertex_labels() const { return !vertex_labels_.empty(); }
  int64_t VertexLabel(VertexId v) const {
    return has_vertex_labels() ? vertex_labels_[v] : 0;
  }

  /// Bipartite tagging for CF: true iff v is a "user" node (left side).
  bool is_bipartite() const { return !left_side_.empty(); }
  bool IsLeft(VertexId v) const {
    GRAPE_DCHECK(is_bipartite());
    return left_side_[v] != 0;
  }

  /// Non-owning view of this graph; valid while the Graph is alive and
  /// unmoved. Graph converts implicitly so GraphView-taking APIs accept it.
  GraphView View() const {
    return GraphView(directed_, offsets_, arcs_, vertex_labels_, left_side_);
  }
  operator GraphView() const { return View(); }  // NOLINT

  /// Adopts already-built CSR sections (the binary loader's entry point).
  /// Validates structural invariants: offsets start at 0, are monotone and
  /// end at arcs.size(); labels/left sides are empty or n-sized; arc targets
  /// are in range.
  static StatusOr<Graph> FromCsr(bool directed, std::vector<uint64_t> offsets,
                                 std::vector<Arc> arcs,
                                 std::vector<int64_t> vertex_labels,
                                 std::vector<uint8_t> left_side);

 private:
  friend class GraphBuilder;
  bool directed_ = true;
  std::vector<uint64_t> offsets_{0};
  std::vector<Arc> arcs_;
  std::vector<int64_t> vertex_labels_;
  std::vector<uint8_t> left_side_;
};

/// Accumulates edges then produces a CSR Graph. For undirected graphs, each
/// added edge materialises both arcs.
class GraphBuilder {
 public:
  /// `n` is the number of vertices [0, n); `directed` selects arc semantics.
  GraphBuilder(VertexId n, bool directed);

  /// Pre-sizes the edge buffer for `n` AddEdge calls (2n arc slots when the
  /// graph is undirected). Generators and parsers know their edge counts up
  /// front; reserving stops the repeated realloc-and-copy churn that
  /// dominated large ingests.
  void ReserveEdges(uint64_t n);

  /// Adds edge (src, dst) with weight. For undirected graphs the reverse arc
  /// is added automatically.
  void AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Bulk-appends a shard of edges (reverse arcs added for undirected
  /// graphs), equivalent to AddEdge per element in order. Parallel parsers
  /// and generators produce per-shard vectors and concatenate them here.
  void AddEdges(std::span<const Edge> edges);

  /// Optional per-vertex labels.
  void SetVertexLabel(VertexId v, int64_t label);

  /// Marks v as belonging to the left (user) side of a bipartite graph.
  void MarkLeft(VertexId v);

  VertexId num_vertices() const { return n_; }
  uint64_t num_added_edges() const { return edges_.size(); }

  /// Finalises into CSR. The builder is consumed. With a pool, the
  /// count->prefix->scatter construction runs chunked across its workers;
  /// the result is bit-identical to the serial build (stable scatter).
  /// Adjacency lists come out sorted by target (ties keep insertion order).
  Graph Build(WorkerPool* pool = nullptr) &&;

 private:
  VertexId n_;
  bool directed_;
  std::vector<Edge> edges_;
  std::vector<int64_t> labels_;
  std::vector<uint8_t> left_;
};

/// Deterministic transpose of `g`: the in-arcs exposed as the out-CSR of the
/// reverse graph, in the same target-major / source-stable order the `.gcsr`
/// in-adjacency extension stores (a counting scatter over ascending sources),
/// so TransposeGraph(g).View() and MmapGraph::TransposeView() agree arc for
/// arc. Labels and the bipartite left side pass through. This is the
/// in-memory supplier of PartitionOptions::in_adjacency for pull-mode
/// programs when no extended `.gcsr` store is at hand.
Graph TransposeGraph(const GraphView& g);

/// Ground-truth single-machine algorithms used by tests & benches to validate
/// the distributed engines (the paper's "single-thread" baselines in Exp-1).
/// They take GraphView so they run unchanged on mmap-backed binary graphs.
namespace seq {

/// Dijkstra from src. Unreachable = +inf. Weights must be non-negative.
std::vector<double> Sssp(const GraphView& g, VertexId src);

/// Connected components by union-find over undirected edges; returns the
/// minimum vertex id in each vertex's component (the paper's cid fixpoint).
std::vector<VertexId> ConnectedComponents(const GraphView& g);

/// PageRank by the paper's accumulative formulation: P_v converges to
/// (1-d) * sum over paths. `eps` is the total residual threshold.
std::vector<double> PageRank(const GraphView& g, double damping, double eps,
                             int max_iters = 10000);

/// Breadth-first level (hop distance), unreachable = -1.
std::vector<int64_t> BfsLevels(const GraphView& g, VertexId src);

}  // namespace seq
}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GRAPH_H_
