// Copyright 2026 The GRAPE+ Reproduction Authors.
// In-memory CSR graph used as the global input G = (V, E, L) of Section 2.
// Directed graphs store out-adjacency (and optionally in-adjacency);
// undirected graphs store each edge as two arcs.
#ifndef GRAPEPLUS_GRAPH_GRAPH_H_
#define GRAPEPLUS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/logging.h"

namespace grape {

/// A weighted arc (target + label). The paper's L(e) is a positive number for
/// SSSP and a rating for CF; we store a double.
struct Arc {
  VertexId dst;
  double weight;
};

/// Immutable CSR graph. Build via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  bool directed() const { return directed_; }
  VertexId num_vertices() const { return static_cast<VertexId>(offsets_.size() - 1); }
  uint64_t num_arcs() const { return arcs_.size(); }
  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  uint64_t num_edges() const { return directed_ ? num_arcs() : num_arcs() / 2; }

  /// Out-neighbourhood of v.
  std::span<const Arc> OutEdges(VertexId v) const {
    GRAPE_DCHECK(v < num_vertices());
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  uint64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Vertex labels (the paper's L(v)); empty if unlabelled.
  bool has_vertex_labels() const { return !vertex_labels_.empty(); }
  int64_t VertexLabel(VertexId v) const {
    return has_vertex_labels() ? vertex_labels_[v] : 0;
  }

  /// Bipartite tagging for CF: true iff v is a "user" node (left side).
  bool is_bipartite() const { return !left_side_.empty(); }
  bool IsLeft(VertexId v) const {
    GRAPE_DCHECK(is_bipartite());
    return left_side_[v] != 0;
  }

 private:
  friend class GraphBuilder;
  bool directed_ = true;
  std::vector<uint64_t> offsets_{0};
  std::vector<Arc> arcs_;
  std::vector<int64_t> vertex_labels_;
  std::vector<uint8_t> left_side_;
};

/// Accumulates edges then produces a CSR Graph. For undirected graphs, each
/// added edge materialises both arcs.
class GraphBuilder {
 public:
  /// `n` is the number of vertices [0, n); `directed` selects arc semantics.
  GraphBuilder(VertexId n, bool directed);

  /// Adds edge (src, dst) with weight. For undirected graphs the reverse arc
  /// is added automatically.
  void AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Optional per-vertex labels.
  void SetVertexLabel(VertexId v, int64_t label);

  /// Marks v as belonging to the left (user) side of a bipartite graph.
  void MarkLeft(VertexId v);

  VertexId num_vertices() const { return n_; }
  uint64_t num_added_edges() const { return edges_.size(); }

  /// Finalises into CSR. The builder is consumed.
  Graph Build() &&;

 private:
  struct TempEdge {
    VertexId src, dst;
    double weight;
  };
  VertexId n_;
  bool directed_;
  std::vector<TempEdge> edges_;
  std::vector<int64_t> labels_;
  std::vector<uint8_t> left_;
};

/// Ground-truth single-machine algorithms used by tests & benches to validate
/// the distributed engines (the paper's "single-thread" baselines in Exp-1).
namespace seq {

/// Dijkstra from src. Unreachable = +inf. Weights must be non-negative.
std::vector<double> Sssp(const Graph& g, VertexId src);

/// Connected components by union-find over undirected edges; returns the
/// minimum vertex id in each vertex's component (the paper's cid fixpoint).
std::vector<VertexId> ConnectedComponents(const Graph& g);

/// PageRank by the paper's accumulative formulation: P_v converges to
/// (1-d) * sum over paths. `eps` is the total residual threshold.
std::vector<double> PageRank(const Graph& g, double damping, double eps,
                             int max_iters = 10000);

/// Breadth-first level (hop distance), unreachable = -1.
std::vector<int64_t> BfsLevels(const Graph& g, VertexId src);

}  // namespace seq
}  // namespace grape

#endif  // GRAPEPLUS_GRAPH_GRAPH_H_
