#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace grape {
namespace mr {

namespace {

uint64_t KeyHash(const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Groups pairs by key (sorted for determinism) and applies the reducer.
std::vector<Pair> ReducePairs(const Reducer& reduce,
                              std::vector<Pair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  std::vector<Pair> out;
  size_t i = 0;
  while (i < pairs.size()) {
    size_t j = i;
    std::vector<std::string> values;
    while (j < pairs.size() && pairs[j].key == pairs[i].key) {
      values.push_back(pairs[j].value);
      ++j;
    }
    reduce(pairs[i].key, values, &out);
    i = j;
  }
  return out;
}

}  // namespace

std::vector<Pair> RunSequential(const std::vector<Pair>& input,
                                const std::vector<Subroutine>& rounds) {
  std::vector<Pair> current = input;
  for (const Subroutine& b : rounds) {
    std::vector<Pair> mapped;
    for (const Pair& p : current) b.map(p, &mapped);
    current = ReducePairs(b.reduce, std::move(mapped));
  }
  std::sort(current.begin(), current.end());
  return current;
}

Graph MakeWorkerClique(uint32_t n) {
  GraphBuilder builder(n, /*directed=*/false);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) builder.AddEdge(i, j);
  }
  return std::move(builder).Build();
}

MrOnAapProgram::State MrOnAapProgram::Init(const Fragment&) const {
  return State{};
}

double MrOnAapProgram::Shuffle(const Fragment& f, std::vector<Pair> pairs,
                               uint32_t next_round, State& st,
                               Emitter<Value>* out) const {
  const uint32_t n = static_cast<uint32_t>(inputs_.size());
  // One outgoing tuple vector per peer worker node of the clique G_W. Every
  // peer gets a (possibly empty) message so that all workers advance in the
  // same wave — the superstep structure of the Theorem 4 simulation.
  std::map<VertexId, Value> per_target;
  for (VertexId t = 0; t < n; ++t) {
    if (t != f.id()) per_target[t];  // materialise empty shuffles
  }
  double work = 0;
  for (Pair& p : pairs) {
    ++work;
    const VertexId target = static_cast<VertexId>(KeyHash(p.key) % n);
    Tuple t{next_round, std::move(p)};
    if (target == f.id()) {
      // Self-addressed: stays in the local status variable.
      st.staged.push_back(std::move(t));
    } else {
      per_target[target].push_back(std::move(t));
    }
  }
  for (auto& [target, tuples] : per_target) {
    // The clique G_W makes every peer an outer copy of this fragment.
    out->Emit(f.LocalId(target), target, std::move(tuples));
  }
  return work;
}

std::vector<Pair> MrOnAapProgram::Reduce(uint32_t r, State& st) const {
  std::vector<Pair> mine;
  std::vector<Tuple> keep;
  for (Tuple& t : st.staged) {
    if (t.round == r) {
      mine.push_back(std::move(t.pair));
    } else {
      keep.push_back(std::move(t));
    }
  }
  st.staged = std::move(keep);
  return ReducePairs(rounds_[r - 1].reduce, std::move(mine));
}

double MrOnAapProgram::PEval(const Fragment& f, State& st,
                             Emitter<Value>* out) const {
  // PEval = mapper µ1 over this worker's input share (Theorem 4 proof).
  const FragmentId me = f.id();
  GRAPE_CHECK(me < inputs_.size());
  std::vector<Pair> mapped;
  for (const Pair& p : inputs_[me]) rounds_[0].map(p, &mapped);
  return 1.0 + Shuffle(f, std::move(mapped), 1, st, out);
}

double MrOnAapProgram::IncEval(const Fragment& f, State& st,
                               std::span<const UpdateEntry<Value>> updates,
                               Emitter<Value>* out) const {
  double work = 0;
  uint32_t max_round = 0;
  for (const auto& u : updates) {
    for (const Tuple& t : u.value) {
      ++work;
      max_round = std::max(max_round, t.round);
      st.staged.push_back(t);
    }
  }
  for (const Tuple& t : st.staged) max_round = std::max(max_round, t.round);
  if (max_round == 0) return work;

  // Program branch selection by round tag r: reducer ρ_r, then (if r < k)
  // mapper µ_{r+1} and another shuffle; the final reducer's output stays.
  const uint32_t r = max_round;
  std::vector<Pair> reduced = Reduce(r, st);
  work += static_cast<double>(reduced.size());
  if (r < rounds_.size()) {
    std::vector<Pair> mapped;
    for (const Pair& p : reduced) rounds_[r].map(p, &mapped);
    work += Shuffle(f, std::move(mapped), r + 1, st, out);
    // Tuples staged for round r+1 at this worker trigger no message to
    // self; they are reduced when peers' tuples arrive or — if none come —
    // remain to be folded in Assemble via a final local reduce.
  } else {
    for (Pair& p : reduced) st.final_output.push_back(std::move(p));
  }
  return std::max(work, 1.0);
}

MrOnAapProgram::Value MrOnAapProgram::Combine(const Value& a,
                                              const Value& b) const {
  Value merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

MrOnAapProgram::ResultT MrOnAapProgram::Assemble(
    const Partition&, const std::vector<State>& states) const {
  std::vector<Pair> out;
  for (const State& st : states) {
    for (const Pair& p : st.final_output) out.push_back(p);
    // Fold any still-staged tuples through the remaining subroutines
    // locally (workers that received no further peer traffic).
    State residue = st;
    residue.final_output.clear();
    for (uint32_t r = 1; r <= rounds_.size(); ++r) {
      State scratch;
      scratch.staged = residue.staged;
      // Reduce round-r tuples.
      std::vector<Pair> mine;
      std::vector<Tuple> keep;
      for (Tuple& t : scratch.staged) {
        if (t.round == r) {
          mine.push_back(std::move(t.pair));
        } else {
          keep.push_back(std::move(t));
        }
      }
      if (mine.empty()) {
        residue.staged = std::move(keep);
        continue;
      }
      std::vector<Pair> reduced = ReducePairs(rounds_[r - 1].reduce,
                                              std::move(mine));
      if (r < rounds_.size()) {
        std::vector<Pair> mapped;
        for (const Pair& p : reduced) rounds_[r].map(p, &mapped);
        for (Pair& p : mapped) keep.push_back(Tuple{r + 1, std::move(p)});
      } else {
        for (Pair& p : reduced) out.push_back(std::move(p));
      }
      residue.staged = std::move(keep);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Subroutine WordCountJob() {
  Subroutine s;
  s.map = [](const Pair& in, std::vector<Pair>* out) {
    std::istringstream words(in.value);
    std::string w;
    while (words >> w) out->push_back(Pair{w, "1"});
  };
  s.reduce = [](const std::string& key, const std::vector<std::string>& vals,
                std::vector<Pair>* out) {
    uint64_t total = 0;
    for (const std::string& v : vals) total += std::stoull(v);
    out->push_back(Pair{key, std::to_string(total)});
  };
  return s;
}

Subroutine InvertedIndexJob() {
  Subroutine s;
  s.map = [](const Pair& in, std::vector<Pair>* out) {
    std::istringstream words(in.value);
    std::string w;
    while (words >> w) out->push_back(Pair{w, in.key});  // word -> doc id
  };
  s.reduce = [](const std::string& key, const std::vector<std::string>& vals,
                std::vector<Pair>* out) {
    std::vector<std::string> docs = vals;
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    std::string posting;
    for (const std::string& d : docs) {
      if (!posting.empty()) posting += ",";
      posting += d;
    }
    out->push_back(Pair{key, posting});
  };
  return s;
}

}  // namespace mr
}  // namespace grape
