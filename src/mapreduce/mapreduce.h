// Copyright 2026 The GRAPE+ Reproduction Authors.
// MapReduce substrate + the Theorem 4 compilation of MapReduce onto AAP.
//
// A MapReduce algorithm A = (B_1 .. B_k), each B_r a mapper µ_r and reducer
// ρ_r. The reference implementation runs A sequentially. MrOnAapProgram is
// the PIE program of the Theorem 4 proof: n workers joined by a clique G_W,
// tuples (r, key, value) carried in border status variables, subroutines
// selected as IncEval program branches via the round tag r. Run it under
// ModeConfig::Bsp() (the simulation maps each B_r to one superstep wave);
// it incurs O(T) time and O(C) communication of the original algorithm.
#ifndef GRAPEPLUS_MAPREDUCE_MAPREDUCE_H_
#define GRAPEPLUS_MAPREDUCE_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/pie.h"
#include "graph/graph.h"
#include "partition/fragment.h"
#include "runtime/message.h"

namespace grape {
namespace mr {

struct Pair {
  std::string key;
  std::string value;
  bool operator==(const Pair&) const = default;
  auto operator<=>(const Pair&) const = default;
};

/// Mapper: pair -> pairs. Reducer: (key, values) -> pairs.
using Mapper = std::function<void(const Pair&, std::vector<Pair>*)>;
using Reducer = std::function<void(const std::string&,
                                   const std::vector<std::string>&,
                                   std::vector<Pair>*)>;

struct Subroutine {
  Mapper map;
  Reducer reduce;
};

/// Sequential reference MapReduce (ground truth for the Theorem 4 tests).
std::vector<Pair> RunSequential(const std::vector<Pair>& input,
                                const std::vector<Subroutine>& rounds);

/// A tuple (r, key, value) as shipped between workers (Theorem 4 proof).
struct Tuple {
  uint32_t round;
  Pair pair;
};

/// The clique G_W over n worker nodes.
Graph MakeWorkerClique(uint32_t n);

/// The PIE program simulating A on AAP/GRAPE with designated messages only.
class MrOnAapProgram {
 public:
  using Value = std::vector<Tuple>;  // border status variable content
  using ResultT = std::vector<Pair>;
  static constexpr bool kOwnerBroadcast = false;

  /// `inputs[i]` is the share of the input initially placed at worker i.
  MrOnAapProgram(std::vector<Subroutine> rounds,
                 std::vector<std::vector<Pair>> inputs)
      : rounds_(std::move(rounds)), inputs_(std::move(inputs)) {}

  struct State {
    /// Tuples awaiting this worker's next reducer, grouped later by key.
    std::vector<Tuple> staged;
    std::vector<Pair> final_output;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const;
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

 private:
  /// Routes mapper output: tuples tagged `next_round` partitioned by
  /// hash(key) across the n workers; self-addressed tuples stage locally.
  double Shuffle(const Fragment& f, std::vector<Pair> pairs,
                 uint32_t next_round, State& st, Emitter<Value>* out) const;
  /// Runs reducer ρ_r on staged round-r tuples; returns its output.
  std::vector<Pair> Reduce(uint32_t r, State& st) const;

  std::vector<Subroutine> rounds_;
  std::vector<std::vector<Pair>> inputs_;
};

/// Canned jobs used by tests, benches and the docs.
Subroutine WordCountJob();
Subroutine InvertedIndexJob();

}  // namespace mr

/// Byte accounting for tuple-vector messages.
template <>
struct ValueTraits<mr::Tuple> {
  static size_t Bytes(const mr::Tuple& t) {
    return sizeof(uint32_t) + t.pair.key.size() + t.pair.value.size();
  }
};
template <>
struct ValueTraits<std::vector<mr::Tuple>> {
  static size_t Bytes(const std::vector<mr::Tuple>& v) {
    size_t b = 0;
    for (const auto& t : v) b += ValueTraits<mr::Tuple>::Bytes(t);
    return b;
  }
};

}  // namespace grape

#endif  // GRAPEPLUS_MAPREDUCE_MAPREDUCE_H_
