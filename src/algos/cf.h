// Copyright 2026 The GRAPE+ Reproduction Authors.
// PIE program for collaborative filtering (Section 5.2): matrix
// factorisation trained by mini-batched SGD.
//
// Users and products carry latent factor vectors; each fragment trains on the
// rating edges of its inner users and shares product factors through the
// border (C_i = F_i.O ∪ F_i.I, owner re-broadcasts). Status variables are
// (v.f, t) pairs; faggr keeps the newest timestamp (averaging ties), as in
// the paper's max-timestamp aggregation. CF is the one workload that needs
// bounded staleness (run with ModeConfig::bounded_staleness or SSP).
//
// Training reaches adjacency through the mode-independent
// Fragment::SweepInnerAdjacency, so CF runs bit-identically over
// materialised and out-of-core streaming fragments (and, via the GraphView
// constructor, over mmapped `.gcsr` stores).
#ifndef GRAPEPLUS_ALGOS_CF_H_
#define GRAPEPLUS_ALGOS_CF_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

/// Latent-factor dimensionality (fixed at compile time; the paper uses small
/// ranks as well).
inline constexpr uint32_t kCfRank = 8;

/// The status variable of Section 5.2: factor vector + update timestamp.
struct CfFactor {
  std::array<float, kCfRank> f{};
  uint32_t version = 0;
};

/// Assembled model + quality metrics.
struct CfModel {
  std::vector<std::array<float, kCfRank>> factors;  // per global vertex
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  uint64_t total_epochs = 0;
};

class CfProgram {
 public:
  using Value = CfFactor;
  using ResultT = CfModel;
  static constexpr bool kOwnerBroadcast = true;

  struct Options {
    double learning_rate = 0.05;
    double lr_decay = 0.05;     // lr_e = lr / (1 + e * decay)
    double lambda = 0.05;       // L2 regularisation
    uint32_t max_epochs = 30;   // local SGD epochs per worker
    double rel_tol = 1e-4;      // stop when loss improvement falls below
    uint32_t train_percent = 90;  // |E_T| = 90%|E| in the paper's Exp-1
    uint64_t seed = 17;
  };

  /// `g` is the rating graph's view (in-memory Graph or mmapped store; used
  /// to identify user vertices). Its backing storage must outlive the
  /// program; fragments reference the same graph.
  explicit CfProgram(const GraphView& g) : graph_(g) {}
  CfProgram(const GraphView& g, const Options& opts)
      : graph_(g), opts_(opts) {}

  struct State {
    std::vector<std::array<float, kCfRank>> factors;  // per local vertex
    std::vector<uint32_t> version;                    // per local vertex
    std::vector<uint32_t> last_emitted;               // per local vertex
    uint32_t epoch = 0;
    double last_loss = 0.0;
    bool converged = false;
    /// Reused epoch scratch: vertices touched by this epoch's SGD (sized on
    /// first use, reassigned — not reallocated — every epoch) and the
    /// streaming-fragment translation buffer (bounded by the arc source's
    /// effective chunk budget; unused on materialised fragments).
    std::vector<uint8_t> touched;
    std::vector<LocalArc> arc_scratch;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const;
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

  /// CF workers keep training until their epoch budget / plateau, even
  /// without fresh messages (parameter-server style).
  bool HasLocalWork(const State& st) const {
    return !st.converged && st.epoch < opts_.max_epochs;
  }

  /// Deterministic train/test split: an edge (u, p) is training iff
  /// hash(u, p) % 100 < train_percent.
  bool IsTrainEdge(VertexId u, VertexId p) const;

  const Options& options() const { return opts_; }

 private:
  /// One mini-batched SGD epoch over the training edges of inner users.
  double RunEpoch(const Fragment& f, State& st) const;
  void EmitBorder(const Fragment& f, State& st, Emitter<Value>* out) const;

  GraphView graph_;
  Options opts_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_CF_H_
