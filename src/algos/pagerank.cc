#include "algos/pagerank.h"



namespace grape {

PageRankProgram::State PageRankProgram::Init(const Fragment& f) const {
  State st;
  st.score.assign(f.num_inner(), 0.0);
  st.residual.assign(f.num_inner(), 0.0);
  st.out_acc.assign(f.num_outer(), 0.0);
  return st;
}

double PageRankProgram::Propagate(const Fragment& f, State& st,
                                  Emitter<Value>* out) const {
  // Local sweeps: each sweep settles every vertex with pending residual
  // >= tol at most once (so a hub's edge list is scanned once per sweep,
  // not once per incoming contribution); sweeps repeat until the local
  // residual mass is exhausted. Mass pushed to outer copies accumulates
  // in out_acc and ships once per round.
  double work = 0;
  bool again = true;
  // A couple of sweeps per round: pushing further would rescan hub edge
  // lists for ever-smaller quanta (undirected back edges re-arm settled
  // vertices); the remainder parks in `residual` for the next round.
  constexpr int kMaxSweeps = 2;
  for (int sweep = 0; sweep < kMaxSweeps && again; ++sweep) {
    again = false;
    // Chunked sweep: identical visit order in materialised and streaming
    // mode, and settled vertices (residual < tol) never touch their arcs —
    // streaming fragments pay translation only for vertices that push.
    f.SweepInnerAdjacency(st.arc_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
      const double x = st.residual[l];
      if (x < tol_) return;
      st.residual[l] = 0.0;
      st.score[l] += x;
      ++work;
      const uint64_t deg = f.OutDegree(l);
      if (deg == 0) return;
      const double share = damping_ * x / static_cast<double>(deg);
      for (const LocalArc& a : arcs_of()) {
        ++work;
        if (f.IsInner(a.dst)) {
          st.residual[a.dst] += share;
          // Back edges re-arm earlier vertices: another sweep needed.
          if (a.dst <= l && st.residual[a.dst] >= tol_) again = true;
        } else {
          st.out_acc[a.dst - f.num_inner()] += share;
        }
      }
    });
  }
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    double& acc = st.out_acc[o - f.num_inner()];
    if (acc >= tol_) {
      out->Emit(o, f.GlobalId(o), acc);
      acc = 0.0;
    }
  }
  st.has_pending = false;
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    if (st.residual[l] >= tol_) {
      st.has_pending = true;
      break;
    }
  }
  return work;
}

double PageRankProgram::PEval(const Fragment& f, State& st,
                              Emitter<Value>* out) const {
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    st.residual[l] = 1.0 - damping_;
  }
  return Propagate(f, st, out);
}

double PageRankProgram::IncEval(const Fragment& f, State& st,
                                std::span<const UpdateEntry<Value>> updates,
                                Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal || !f.IsInner(l)) continue;
    st.residual[l] += u.value;  // faggr = sum, accumulative
  }
  return work + Propagate(f, st, out);
}

PageRankProgram::ResultT PageRankProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> score(p.graph.num_vertices(), 0.0);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      score[f.GlobalId(l)] = states[i].score[l];
    }
  }
  return score;
}

}  // namespace grape
