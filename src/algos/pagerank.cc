#include "algos/pagerank.h"

#include <algorithm>

#include "util/simd.h"

namespace grape {

PageRankProgram::State PageRankProgram::Init(const Fragment& f) const {
  State st;
  st.score.assign(f.num_inner(), 0.0);
  st.residual.assign(f.num_inner(), 0.0);
  st.out_acc.assign(f.num_outer(), 0.0);
  return st;
}

double PageRankProgram::Propagate(const Fragment& f, State& st,
                                  Emitter<Value>* out) const {
  // Local sweeps: each sweep settles every vertex with pending residual
  // >= tol at most once (so a hub's edge list is scanned once per sweep,
  // not once per incoming contribution); sweeps repeat until the local
  // residual mass is exhausted. Mass pushed to outer copies accumulates
  // in out_acc and ships once per round.
  double work = 0;
  bool again = true;
  // A couple of sweeps per round: pushing further would rescan hub edge
  // lists for ever-smaller quanta (undirected back edges re-arm settled
  // vertices); the remainder parks in `residual` for the next round.
  constexpr int kMaxSweeps = 2;
  for (int sweep = 0; sweep < kMaxSweeps && again; ++sweep) {
    again = false;
    work += static_cast<double>(f.num_inner());  // per-sweep visit cost
    // Chunked sweep: identical visit order in materialised and streaming
    // mode, and settled vertices (residual < tol) never touch their arcs —
    // streaming fragments pay translation only for vertices that push.
    f.SweepInnerAdjacency(st.arc_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
      const double x = st.residual[l];
      if (x < tol_) return;
      st.residual[l] = 0.0;
      st.score[l] += x;
      ++work;
      const uint64_t deg = f.OutDegree(l);
      if (deg == 0) return;
      const double share = damping_ * x / static_cast<double>(deg);
      for (const LocalArc& a : arcs_of()) {
        ++work;
        if (f.IsInner(a.dst)) {
          st.residual[a.dst] += share;
          // Back edges re-arm earlier vertices: another sweep needed.
          if (a.dst <= l && st.residual[a.dst] >= tol_) again = true;
        } else {
          st.out_acc[a.dst - f.num_inner()] += share;
        }
      }
    });
  }
  FlushOutAcc(f, st, out);
  return work;
}

void PageRankProgram::FlushOutAcc(const Fragment& f, State& st,
                                  Emitter<Value>* out) const {
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    double& acc = st.out_acc[o - f.num_inner()];
    if (acc >= tol_) {
      out->Emit(o, f.GlobalId(o), acc);
      acc = 0.0;
    }
  }
  st.has_pending = false;
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    if (st.residual[l] >= tol_) {
      st.has_pending = true;
      break;
    }
  }
}

double PageRankProgram::PropagatePull(const Fragment& f, State& st,
                                      Emitter<Value>* out) const {
  GRAPE_CHECK(f.has_in_adjacency())
      << "PageRank pull kernel needs a pull-enabled partition";
  st.cut.Ensure(f, st.arc_scratch);
  const LocalVertex ni = f.num_inner();
  double work = 0;
  const LocalVertex nl = f.num_local();
  // Up to two Jacobi hops per round (mirroring the push kernel's local
  // consolidation sweeps); the second hop runs only while the frontier
  // stays dense — a sparse hop pays the gather's O(|E_in|) floor for
  // marginal progress and is better left to a push round.
  constexpr int kMaxHops = 2;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    work += static_cast<double>(ni);
    // Shares as of hop start, indexed by source local id: active inner
    // sources hold d*x/N, everything else (settled, dangling, outer
    // copies — remote mass arrives as messages) holds 0.0. Sources
    // without out-arcs retire their mass into the score but share nothing
    // (dangling, same as push).
    st.share.assign(nl, 0.0);
    uint64_t active = 0;
    for (LocalVertex l = 0; l < ni; ++l) {
      if (st.residual[l] < tol_) continue;
      ++active;
      const uint64_t deg = f.OutDegree(l);
      if (deg > 0) {
        st.share[l] = damping_ * st.residual[l] / static_cast<double>(deg);
      }
    }
    if (active == 0) break;
    const bool dense = 2 * active >= ni;
    if (hop == 1 && !dense) break;  // leave a sparse remainder to push
    // Gather one hop of every active source's mass. The gather lands in a
    // separate accumulator — the shares are a snapshot, so the sweep
    // order cannot change the result. Dense hops read the in-CSR
    // unfiltered (adding an exact 0.0 for settled sources costs less than
    // filtering them out and leaves the partial sums bit-identical);
    // sparse hops use the frontier-masked sweep so settled sources never
    // reach the kernel. Either way every local in-arc is walked once:
    // count that honest O(|E_in|) cost, or the direction controller's
    // measured-cost rule would overuse the gather kernel.
    work += static_cast<double>(f.num_in_arcs());
    st.gathered.assign(ni, 0.0);
    // Both gather paths route through util/simd.h GatherSum — the 4-lane
    // unrolled kernel whose summation order is fixed by contract (see the
    // header), so the result is bit-identical across engines, backends and
    // the scalar reference regardless of how the compiler vectorises it.
    const auto share_of = [](const LocalArc& a) { return a.dst; };
    if (dense) {
      f.SweepInnerInAdjacency(
          st.arc_scratch, [&](LocalVertex l, const auto& arcs_of) {
            double sum = 0.0;
            if (f.InDegree(l) > 0) {
              const auto arcs = arcs_of();
              sum = GatherSum(arcs.data(), arcs.size(), st.share.data(),
                              share_of);
            }
            st.gathered[l] = sum;
          });
    } else {
      st.mask.assign(nl, 0);
      for (LocalVertex l = 0; l < ni; ++l) {
        if (st.share[l] > 0.0) st.mask[l] = 1;
      }
      f.SweepInnerInAdjacency(
          st.arc_scratch, st.mask_scratch, st.mask,
          [&](LocalVertex l, const auto& arcs_of) {
            const auto arcs = arcs_of();
            work += static_cast<double>(arcs.size());
            st.gathered[l] =
                GatherSum(arcs.data(), arcs.size(), st.share.data(), share_of);
          });
    }
    // Consume the actives: retire mass into the score and enforce their
    // cut out-arcs source-side — the in-sweep covers only fragment-local
    // arcs, while remote mass still travels as summed deltas.
    for (LocalVertex l = 0; l < ni; ++l) {
      const double x = st.residual[l];
      if (x < tol_) continue;
      st.score[l] += x;
      st.residual[l] = 0.0;
      ++work;
      const double sh = st.share[l];
      if (sh > 0.0) {
        for (uint64_t k = st.cut.offsets[l]; k < st.cut.offsets[l + 1];
             ++k) {
          st.out_acc[st.cut.targets[k] - ni] += sh;
          ++work;
        }
      }
    }
    for (LocalVertex l = 0; l < ni; ++l) st.residual[l] += st.gathered[l];
  }
  FlushOutAcc(f, st, out);
  return std::max(work, 1.0);
}

double PageRankProgram::PEval(const Fragment& f, State& st,
                              Emitter<Value>* out) const {
  return PEval(f, st, out, SweepDirection::kPush);
}

double PageRankProgram::PEval(const Fragment& f, State& st,
                              Emitter<Value>* out, SweepDirection dir) const {
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    st.residual[l] = 1.0 - damping_;
  }
  return dir == SweepDirection::kPush ? Propagate(f, st, out)
                                      : PropagatePull(f, st, out);
}

double PageRankProgram::IncEval(const Fragment& f, State& st,
                                std::span<const UpdateEntry<Value>> updates,
                                Emitter<Value>* out) const {
  return IncEval(f, st, updates, out, SweepDirection::kPush);
}

double PageRankProgram::IncEval(const Fragment& f, State& st,
                                std::span<const UpdateEntry<Value>> updates,
                                Emitter<Value>* out,
                                SweepDirection dir) const {
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal || !f.IsInner(l)) continue;
    st.residual[l] += u.value;  // faggr = sum, accumulative
  }
  return work + (dir == SweepDirection::kPush ? Propagate(f, st, out)
                                              : PropagatePull(f, st, out));
}

PageRankProgram::ResultT PageRankProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> score(p.graph.num_vertices(), 0.0);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      score[f.GlobalId(l)] = states[i].score[l];
    }
  }
  return score;
}

}  // namespace grape
