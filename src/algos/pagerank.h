// Copyright 2026 The GRAPE+ Reproduction Authors.
// PIE program for PageRank (Section 5.3) in the delta-accumulative
// formulation of Maiter: every vertex v keeps a score P_v and a pending
// update x_v (initially 1−d). A round adds x_v to P_v and pushes d·x_v/N_v to
// out-neighbours; cross-fragment pushes accumulate on border copies and ship
// as deltas with faggr = sum. Since each path contribution is added exactly
// once, bounded staleness is unnecessary (Section 5.3 Remark) and the
// computation has the Church–Rosser property up to the drop threshold.
#ifndef GRAPEPLUS_ALGOS_PAGERANK_H_
#define GRAPEPLUS_ALGOS_PAGERANK_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

class PageRankProgram {
 public:
  using Value = double;  // a delta to x_v
  using ResultT = std::vector<double>;  // P_v per global vertex
  static constexpr bool kOwnerBroadcast = false;

  /// `damping` is d; residuals below `tol` are retired (finite-domain
  /// condition T1 — guarantees termination at the tol-fixpoint).
  explicit PageRankProgram(double damping = 0.85, double tol = 1e-9)
      : damping_(damping), tol_(tol) {}

  struct State {
    std::vector<double> score;     // P_v, inner vertices
    std::vector<double> residual;  // x_v, inner vertices
    std::vector<double> out_acc;   // accumulated deltas per outer copy
    bool has_pending = false;      // residual >= tol parked for next round
    /// Streaming-fragment translation buffer (bounded by the arc source's
    /// effective chunk budget); unused on materialised fragments.
    std::vector<LocalArc> arc_scratch;
  };

  /// Residual mass parked by the per-round sweep cap still needs rounds
  /// even if no further messages arrive.
  bool HasLocalWork(const State& st) const { return st.has_pending; }

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const { return a + b; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

  double damping() const { return damping_; }
  double tol() const { return tol_; }

 private:
  /// Pushes local residual mass until all inner residuals are < tol;
  /// cross-fragment mass lands in out_acc and is emitted.
  double Propagate(const Fragment& f, State& st, Emitter<Value>* out) const;

  double damping_;
  double tol_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_PAGERANK_H_
