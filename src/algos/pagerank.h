// Copyright 2026 The GRAPE+ Reproduction Authors.
// Dual-mode PIE program for PageRank (Section 5.3) in the delta-accumulative
// formulation of Maiter: every vertex v keeps a score P_v and a pending
// update x_v (initially 1−d). A round adds x_v to P_v and moves d·x_v/N_v to
// out-neighbours; cross-fragment mass accumulates on border copies and ships
// as deltas with faggr = sum. Since each path contribution is added exactly
// once, bounded staleness is unnecessary (Section 5.3 Remark) and the
// computation has the Church–Rosser property up to the drop threshold.
//
// The program exposes both traversal kernels behind this one protocol
// (core/direction.h DualModeProgram):
//   push — sweep the active residuals' out-adjacency and scatter shares
//          (sparse frontiers touch only their own arcs);
//   pull — one Jacobi hop over the frontier-masked in-adjacency: every
//          inner vertex gathers the shares of its *active* in-neighbours
//          (dense frontiers read the in-CSR sequentially and settled
//          sources are filtered out by the mask), while cut out-arcs of the
//          consumed actives are enforced source-side, so remote mass still
//          travels as the same summed deltas.
// Messages are identical in kind, value and aggregate either way, so the
// engine may pick the direction per round (--direction=auto) and any
// mixture converges to the same tol-fixpoint; a fixed direction is
// bit-identical across materialised / streaming / mmapped backends.
//
// SIMD bit-identity contract: the pull kernel's Jacobi gather accumulates
// through util/simd.h GatherSum, whose 4-lane summation order is part of its
// interface (GatherSumScalar reproduces it exactly). The gather therefore
// produces the same bits on every engine, backend and optimisation level —
// the differential harness compares runs bit-for-bit and relies on this.
// Do not replace the kernel with a plain sequential loop (different
// rounding order) without updating GatherSumScalar and the simd test.
#ifndef GRAPEPLUS_ALGOS_PAGERANK_H_
#define GRAPEPLUS_ALGOS_PAGERANK_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"
#include "runtime/topology.h"

namespace grape {

class PageRankProgram {
 public:
  using Value = double;  // a delta to x_v
  using ResultT = std::vector<double>;  // P_v per global vertex
  static constexpr bool kOwnerBroadcast = false;

  /// `damping` is d; residuals below `tol` are retired (finite-domain
  /// condition T1 — guarantees termination at the tol-fixpoint).
  explicit PageRankProgram(double damping = 0.85, double tol = 1e-9)
      : damping_(damping), tol_(tol) {}

  struct State {
    std::vector<double> score;     // P_v, inner vertices
    std::vector<double> residual;  // x_v, inner vertices
    std::vector<double> out_acc;   // accumulated deltas per outer copy
    bool has_pending = false;      // residual >= tol parked for next round
    /// Streaming-fragment translation buffer (bounded by the arc source's
    /// effective chunk budget); unused on materialised fragments.
    std::vector<LocalArc> arc_scratch;
    // --- gather-kernel state (built on the first pull round; a pure-push
    // run never allocates any of it) ---
    /// Cut out-arcs the pull kernel enforces source-side while the
    /// in-sweep covers the fragment-local arcs.
    CutArcIndex cut;
    std::vector<double> share;       // d * x_v / N_v of active sources
    std::vector<double> gathered;    // Jacobi gather accumulator
    std::vector<uint8_t> mask;       // active-source frontier mask
    std::vector<LocalArc> mask_scratch;  // masked-sweep filter buffer
  };

  /// Residual mass parked by the per-round sweep cap still needs rounds
  /// even if no further messages arrive.
  bool HasLocalWork(const State& st) const { return st.has_pending; }

  /// Best-effort NUMA placement of the per-fragment state arrays on `node`
  /// (runtime/topology.h) — the threaded engine calls this once thread
  /// placement is known. Pure locality hint; never changes results. The
  /// lazily-built gather arrays are bound too when already allocated (empty
  /// vectors no-op and get first-touched on the pinned thread otherwise).
  void BindStateMemory(State& st, int node) const {
    numa::BindVectorToNode(st.score, node);
    numa::BindVectorToNode(st.residual, node);
    numa::BindVectorToNode(st.out_acc, node);
    numa::BindVectorToNode(st.share, node);
    numa::BindVectorToNode(st.gathered, node);
    numa::BindVectorToNode(st.mask, node);
  }

  State Init(const Fragment& f) const;
  /// Single-kernel surface: identical to the directed overloads with
  /// SweepDirection::kPush (kept so existing push runs stay bit-identical).
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  /// Dual-mode surface: the engine picks the kernel per round. kPull needs
  /// a pull-enabled partition (Fragment::has_in_adjacency()).
  double PEval(const Fragment& f, State& st, Emitter<Value>* out,
               SweepDirection dir) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out, SweepDirection dir) const;
  Value Combine(const Value& a, const Value& b) const { return a + b; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

  double damping() const { return damping_; }
  double tol() const { return tol_; }

 private:
  /// Pushes local residual mass until all inner residuals are < tol;
  /// cross-fragment mass lands in out_acc and is emitted.
  double Propagate(const Fragment& f, State& st, Emitter<Value>* out) const;
  /// One Jacobi gather hop of the active residual mass over the
  /// frontier-masked in-adjacency; cut out-arcs enforced source-side.
  double PropagatePull(const Fragment& f, State& st, Emitter<Value>* out) const;
  /// Ships accumulated border deltas and recomputes has_pending — the
  /// shared round epilogue of both kernels.
  void FlushOutAcc(const Fragment& f, State& st, Emitter<Value>* out) const;

  double damping_;
  double tol_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_PAGERANK_H_
