#include "algos/cc_pull.h"

#include <algorithm>

namespace grape {

CcPullProgram::State CcPullProgram::Init(const Fragment& f) const {
  State st;
  const LocalVertex nl = f.num_local();
  st.label.resize(nl);
  st.last_emitted.resize(nl);
  for (LocalVertex l = 0; l < nl; ++l) {
    st.label[l] = f.GlobalId(l);
    st.last_emitted[l] = st.label[l];
  }
  st.changed.assign(nl, 1);  // everything is frontier at PEval
  st.newly.assign(f.num_inner(), 0);
  return st;
}

double CcPullProgram::KernelPush(const Fragment& f, State& st) const {
  const LocalVertex ni = f.num_inner();
  double work = 0;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool any = false;
    for (LocalVertex l = 0; l < ni && !any; ++l) any = st.changed[l] != 0;
    if (!any) break;
    work += static_cast<double>(ni);  // the sweep visits every inner vertex
    // Scatter the frontier's out-adjacency (local + cut arcs in one CSR).
    // Relaxing a later vertex re-arms it within this sweep; an earlier one
    // waits for the next sweep — deterministic either way.
    f.SweepInnerAdjacency(st.arc_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
      if (!st.changed[l]) return;
      st.changed[l] = 0;
      const VertexId lbl = st.label[l];
      ++work;
      if (f.OutDegree(l) == 0) return;
      for (const LocalArc& a : arcs_of()) {
        ++work;
        if (lbl < st.label[a.dst]) {
          st.label[a.dst] = lbl;
          st.changed[a.dst] = 1;
        }
      }
    });
  }
  // Broadcast-changed outer copies were accelerator-only input for gathers;
  // the push kernel cannot scatter them (their arcs live with their owner,
  // which enforces them), so their marks are consumed here.
  for (LocalVertex o = ni; o < f.num_local(); ++o) st.changed[o] = 0;
  return std::max(work, 1.0);
}

double CcPullProgram::KernelPull(const Fragment& f, State& st) const {
  GRAPE_CHECK(f.has_in_adjacency())
      << "CcPull gather kernel needs a pull-enabled partition";
  st.cut.Ensure(f, st.arc_scratch);
  const LocalVertex ni = f.num_inner();
  const LocalVertex nl = f.num_local();
  double work = ni;
  // Gather: every inner vertex takes the min over its in-neighbour labels.
  // Dense frontiers read the in-CSR unfiltered (a full min-gather is
  // strictly tighter than the masked one and skips the filter copy);
  // sparse frontiers gather only from changed sources through the masked
  // sweep, whose mask is stable during the sweep (newly-decreased vertices
  // are recorded aside), so the filtered arc sets are deterministic.
  // Either way every local in-arc is walked once — count that honest
  // O(|E_in|) cost so the direction controller's measured-cost rule sees
  // it.
  work += static_cast<double>(f.num_in_arcs());
  std::fill(st.newly.begin(), st.newly.end(), 0);
  uint64_t marked = 0;
  for (LocalVertex l = 0; l < nl; ++l) marked += st.changed[l] ? 1 : 0;
  const auto relax = [&](LocalVertex l, VertexId best) {
    if (best < st.label[l]) {
      st.label[l] = best;
      st.newly[l] = 1;
    }
  };
  if (2 * marked >= nl) {
    f.SweepInnerInAdjacency(
        st.arc_scratch, [&](LocalVertex l, const auto& arcs_of) {
          VertexId best = st.label[l];
          if (f.InDegree(l) > 0) {
            for (const LocalArc& a : arcs_of()) {
              best = std::min(best, st.label[a.dst]);
            }
          }
          relax(l, best);
        });
  } else {
    f.SweepInnerInAdjacency(
        st.arc_scratch, st.mask_scratch, st.changed,
        [&](LocalVertex l, const auto& arcs_of) {
          VertexId best = st.label[l];
          for (const LocalArc& a : arcs_of()) {
            best = std::min(best, st.label[a.dst]);
            ++work;
          }
          relax(l, best);
        });
  }
  // The gather consumed every outer-copy mark (their only local influence
  // is the in-arcs just read); the cut pass below may re-mark outer copies
  // it relaxes, which the next round's gather then reads.
  for (LocalVertex o = ni; o < nl; ++o) st.changed[o] = 0;
  // Source-side cut-arc pass: the gather above covers only fragment-local
  // arcs, so the consumed frontier's cut arcs are enforced here (relaxed
  // outer copies ship to their owner through the ordinary emission).
  for (LocalVertex u = 0; u < ni; ++u) {
    if (!st.changed[u] && !st.newly[u]) continue;
    const VertexId lbl = st.label[u];
    for (uint64_t k = st.cut.offsets[u]; k < st.cut.offsets[u + 1]; ++k) {
      const LocalVertex o = st.cut.targets[k];
      ++work;
      if (lbl < st.label[o]) {
        st.label[o] = lbl;
        st.changed[o] = 1;  // fresh gather source for the next round
      }
    }
  }
  // Consume the inner frontier the round read; this round's decreases are
  // the next round's frontier.
  for (LocalVertex l = 0; l < ni; ++l) st.changed[l] = st.newly[l];
  return work;
}

double CcPullProgram::EmitDecreases(const Fragment& f, State& st,
                                    Emitter<Value>* out) const {
  const LocalVertex nl = f.num_local();
  double work = 0;
  for (LocalVertex l = 0; l < nl; ++l) {
    if (st.label[l] < st.last_emitted[l]) {
      st.last_emitted[l] = st.label[l];
      out->Emit(l, f.GlobalId(l), st.label[l]);
      ++work;
    }
  }
  st.active = false;
  for (LocalVertex l = 0; l < nl; ++l) {
    if (st.changed[l]) {
      st.active = true;
      break;
    }
  }
  return work;
}

double CcPullProgram::PEval(const Fragment& f, State& st,
                            Emitter<Value>* out) const {
  return PEval(f, st, out, SweepDirection::kPush);
}

double CcPullProgram::PEval(const Fragment& f, State& st, Emitter<Value>* out,
                            SweepDirection dir) const {
  const double work = dir == SweepDirection::kPush ? KernelPush(f, st)
                                                   : KernelPull(f, st);
  return work + EmitDecreases(f, st, out);
}

double CcPullProgram::IncEval(const Fragment& f, State& st,
                              std::span<const UpdateEntry<Value>> updates,
                              Emitter<Value>* out) const {
  return IncEval(f, st, updates, out, SweepDirection::kPush);
}

double CcPullProgram::IncEval(const Fragment& f, State& st,
                              std::span<const UpdateEntry<Value>> updates,
                              Emitter<Value>* out, SweepDirection dir) const {
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    if (u.value < st.label[l]) {  // faggr = min
      st.label[l] = u.value;
      st.changed[l] = 1;
    }
  }
  work += dir == SweepDirection::kPush ? KernelPush(f, st)
                                       : KernelPull(f, st);
  return work + EmitDecreases(f, st, out);
}

CcPullProgram::ResultT CcPullProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<VertexId> label(p.graph.num_vertices(), kInvalidVertex);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      label[f.GlobalId(l)] = states[i].label[l];
    }
  }
  return label;
}

}  // namespace grape
