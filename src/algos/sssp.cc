#include "algos/sssp.h"

#include <queue>
#include <utility>

namespace grape {

SsspProgram::State SsspProgram::Init(const Fragment& f) const {
  State st;
  st.dist.assign(f.num_local(), kInfinity);
  st.last_sent.assign(f.num_outer(), kInfinity);
  return st;
}

double SsspProgram::Relax(const Fragment& f, State& st,
                          std::vector<LocalVertex> frontier,
                          Emitter<Value>* out) const {
  using Item = std::pair<double, LocalVertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  double work = 0;
  for (LocalVertex l : frontier) pq.push({st.dist[l], l});
  while (!pq.empty()) {
    auto [d, l] = pq.top();
    pq.pop();
    ++work;
    if (d > st.dist[l]) continue;  // stale heap entry
    if (!f.IsInner(l)) continue;   // outer copies carry no local edges
    // Point adjacency: materialised span, or a streaming translation into
    // the state's scratch (Dijkstra's settle order is distance-driven, so
    // the lookup order — and thus the result — is identical in both modes).
    for (const LocalArc& a : f.Adjacency(l, st.arc_scratch)) {
      ++work;
      const double nd = d + a.weight;
      if (nd < st.dist[a.dst]) {
        st.dist[a.dst] = nd;
        pq.push({nd, a.dst});
      }
    }
  }
  // Ship decreased border-copy distances (the update parameters C_i.x̄).
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    double& sent = st.last_sent[o - f.num_inner()];
    if (st.dist[o] < sent) {
      sent = st.dist[o];
      out->Emit(o, f.GlobalId(o), st.dist[o]);
    }
  }
  return work;
}

double SsspProgram::PEval(const Fragment& f, State& st,
                          Emitter<Value>* out) const {
  const LocalVertex src = f.LocalId(source_);
  if (src == Fragment::kInvalidLocal || !f.IsInner(src)) {
    return static_cast<double>(f.num_inner()) * 0.01;  // init-only cost
  }
  st.dist[src] = 0.0;
  return Relax(f, st, {src}, out);
}

double SsspProgram::IncEval(const Fragment& f, State& st,
                            std::span<const UpdateEntry<Value>> updates,
                            Emitter<Value>* out) const {
  std::vector<LocalVertex> frontier;
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    if (u.value < st.dist[l]) {
      st.dist[l] = u.value;
      frontier.push_back(l);
    }
  }
  if (frontier.empty()) return work;
  return work + Relax(f, st, std::move(frontier), out);
}

SsspProgram::ResultT SsspProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> dist(p.graph.num_vertices(), kInfinity);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      dist[f.GlobalId(l)] = states[i].dist[l];
    }
  }
  return dist;
}

}  // namespace grape
