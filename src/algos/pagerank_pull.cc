#include "algos/pagerank_pull.h"

#include "util/simd.h"

namespace grape {

PageRankPullProgram::State PageRankPullProgram::Init(const Fragment& f) const {
  State st;
  st.score.assign(f.num_inner(), 0.0);
  st.contrib.assign(f.num_local(), 0.0);
  st.last_emitted.assign(f.num_inner(), 0.0);
  st.active = true;  // the first gather installs the (1-d) base mass
  return st;
}

double PageRankPullProgram::Round(const Fragment& f, State& st,
                                  Emitter<Value>* out) const {
  const double base = 1.0 - damping_;
  double work = 0.0;
  bool moved = false;
  // Jacobi gather: recompute every inner score from the in-neighbours'
  // contributions as of the start of the round (contributions are refreshed
  // in a second pass, so the sweep order cannot change the result). The
  // chunk-windowed in-sweep serves identical arcs in identical order on
  // materialised and streaming fragments — pull execution is bit-identical
  // across modes.
  f.SweepInnerInAdjacency(st.arc_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
    double sum = base;
    if (f.InDegree(l) > 0) {
      // util/simd.h GatherSum: summation order is fixed by contract, so the
      // gather stays bit-identical across engines/backends and the scalar
      // reference kernel.
      const auto arcs = arcs_of();
      sum += GatherSum(arcs.data(), arcs.size(), st.contrib.data(),
                       [](const LocalArc& a) { return a.dst; });
      work += static_cast<double>(arcs.size());
    }
    ++work;
    if (sum - st.score[l] >= tol_) moved = true;
    st.score[l] = sum;
  });
  // Refresh contributions from the new scores; the score pass above never
  // reads an inner contribution written here, keeping the round Jacobi.
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    const uint64_t deg = f.OutDegree(l);
    if (deg == 0) continue;  // dangling: contributes nothing (same as push)
    st.contrib[l] = damping_ * st.score[l] / static_cast<double>(deg);
  }
  // Ship changed border contributions. Remote readers of v are exactly the
  // fragments v has a forward cut arc into (they hold v in their widened
  // outer set), so the exit set F.O' is the emission candidate set; the
  // engine broadcasts through the owner routing.
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    if (!f.InExitSet(l)) continue;
    if (st.contrib[l] - st.last_emitted[l] >= tol_) {
      st.last_emitted[l] = st.contrib[l];
      out->Emit(l, f.GlobalId(l), st.contrib[l]);
    }
  }
  st.active = moved;
  return std::max(work, 1.0);
}

double PageRankPullProgram::PEval(const Fragment& f, State& st,
                                  Emitter<Value>* out) const {
  return Round(f, st, out);
}

double PageRankPullProgram::IncEval(const Fragment& f, State& st,
                                    std::span<const UpdateEntry<Value>> updates,
                                    Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    // faggr = max: contributions grow monotonically, so the largest value
    // seen is the freshest one.
    if (u.value > st.contrib[l]) st.contrib[l] = u.value;
  }
  return work + Round(f, st, out);
}

PageRankPullProgram::ResultT PageRankPullProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<double> score(p.graph.num_vertices(), 0.0);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      score[f.GlobalId(l)] = states[i].score[l];
    }
  }
  return score;
}

}  // namespace grape
