#include "algos/cc.h"

#include <algorithm>

namespace grape {

namespace {
LocalVertex FindCompress(std::vector<LocalVertex>& parent, LocalVertex x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

CcProgram::State CcProgram::Init(const Fragment& f) const {
  State st;
  st.parent.resize(f.num_local());
  for (LocalVertex l = 0; l < f.num_local(); ++l) st.parent[l] = l;
  return st;
}

double CcProgram::PEval(const Fragment& f, State& st,
                        Emitter<Value>* out) const {
  // Local connected components over all local arcs (inner -> inner/outer),
  // swept chunk-by-chunk so streaming fragments keep only one arc window
  // resident. The union order matches the materialised sweep exactly.
  double work = static_cast<double>(f.num_local());
  f.SweepInnerAdjacency(st.arc_scratch, [&](LocalVertex l,
                                            const auto& arcs_of) {
    for (const LocalArc& a : arcs_of()) {
      ++work;
      LocalVertex r1 = FindCompress(st.parent, l);
      LocalVertex r2 = FindCompress(st.parent, a.dst);
      if (r1 != r2) st.parent[std::max(r1, r2)] = std::min(r1, r2);
    }
  });
  // Root cids = min global id in the component (the "root node" of Fig. 2).
  st.comp_cid.assign(f.num_local(), kInvalidVertex);
  for (LocalVertex l = 0; l < f.num_local(); ++l) {
    const LocalVertex r = FindCompress(st.parent, l);
    st.comp_cid[r] = std::min(st.comp_cid[r], f.GlobalId(l));
  }
  // Group outer copies per root and ship their cids (message segment).
  st.root_outer_members.assign(f.num_local(), {});
  st.last_sent.assign(f.num_outer(), kInvalidVertex);
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    const LocalVertex r = st.Find(o);
    st.root_outer_members[r].push_back(o);
    const VertexId cid = st.comp_cid[r];
    st.last_sent[o - f.num_inner()] = cid;
    out->Emit(o, f.GlobalId(o), cid);
  }
  return work;
}

double CcProgram::IncEval(const Fragment& f, State& st,
                          std::span<const UpdateEntry<Value>> updates,
                          Emitter<Value>* out) const {
  double work = 0;
  // Merge incoming cids into component roots (faggr = min), Fig. 3 lines 2-6.
  std::vector<LocalVertex> changed_roots;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    const LocalVertex r = st.Find(l);
    if (u.value < st.comp_cid[r]) {
      st.comp_cid[r] = u.value;
      changed_roots.push_back(r);
    }
  }
  // Propagate decreased root cids to the outer copies linked to those roots
  // (Fig. 3 lines 7-9); ship only values that decreased.
  for (const LocalVertex r : changed_roots) {
    const VertexId cid = st.comp_cid[r];
    for (const LocalVertex o : st.root_outer_members[r]) {
      ++work;
      VertexId& sent = st.last_sent[o - f.num_inner()];
      if (cid < sent) {
        sent = cid;
        out->Emit(o, f.GlobalId(o), cid);
      }
    }
  }
  return work;
}

CcProgram::ResultT CcProgram::Assemble(const Partition& p,
                                       const std::vector<State>& states) const {
  std::vector<VertexId> cid(p.graph.num_vertices(), kInvalidVertex);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    const State& st = states[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      cid[f.GlobalId(l)] = st.comp_cid[st.Find(l)];
    }
  }
  return cid;
}

}  // namespace grape
