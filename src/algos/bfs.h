// Copyright 2026 The GRAPE+ Reproduction Authors.
// PIE program for BFS hop levels — a second traversal workload showing that
// graph-traversal PIE programs are a pattern, not a one-off (Section 5.1's
// family). faggr = min over levels; IncEval is incremental frontier
// expansion from improved border vertices.
#ifndef GRAPEPLUS_ALGOS_BFS_H_
#define GRAPEPLUS_ALGOS_BFS_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

class BfsProgram {
 public:
  using Value = int64_t;  // hop level; kUnreached if not reached
  using ResultT = std::vector<int64_t>;
  static constexpr bool kOwnerBroadcast = false;
  static constexpr int64_t kUnreached = -1;

  explicit BfsProgram(VertexId source) : source_(source) {}

  struct State {
    std::vector<int64_t> level;      // per local vertex; INT64_MAX = infinity
    std::vector<int64_t> last_sent;  // per outer copy
    /// Streaming-fragment translation buffer; unused when materialised.
    std::vector<LocalArc> arc_scratch;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const {
    return a < b ? a : b;
  }
  /// Delta-stepping key for the async engine's bucketed worklist
  /// (PrioritizedProgram): expand lower hop levels first.
  double UpdatePriority(const Value& v) const { return static_cast<double>(v); }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

 private:
  double Expand(const Fragment& f, State& st,
                std::vector<LocalVertex> frontier, Emitter<Value>* out) const;
  VertexId source_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_BFS_H_
