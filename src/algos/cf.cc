#include "algos/cf.h"

#include <algorithm>
#include <cmath>

namespace grape {

namespace {

uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic per-vertex factor init — identical across fragments so that
/// copies of the same product start in agreement.
std::array<float, kCfRank> InitFactor(VertexId v, uint64_t seed) {
  std::array<float, kCfRank> f;
  uint64_t h = Mix(static_cast<uint64_t>(v) * 0x100000001B3ULL + seed);
  for (uint32_t k = 0; k < kCfRank; ++k) {
    h = Mix(h);
    // Uniform in (0, 1/sqrt(rank)); keeps initial predictions ~O(1).
    f[k] = static_cast<float>((static_cast<double>(h >> 11) /
                               9007199254740992.0) /
                              std::sqrt(static_cast<double>(kCfRank)));
  }
  return f;
}

float Dot(const std::array<float, kCfRank>& a,
          const std::array<float, kCfRank>& b) {
  float s = 0.f;
  for (uint32_t k = 0; k < kCfRank; ++k) s += a[k] * b[k];
  return s;
}

}  // namespace

bool CfProgram::IsTrainEdge(VertexId u, VertexId p) const {
  const uint64_t h =
      Mix(static_cast<uint64_t>(u) * 2654435761ULL + p * 40503ULL + opts_.seed);
  return h % 100 < opts_.train_percent;
}

CfProgram::State CfProgram::Init(const Fragment& f) const {
  State st;
  st.factors.resize(f.num_local());
  st.version.assign(f.num_local(), 0);
  st.last_emitted.assign(f.num_local(), 0);
  for (LocalVertex l = 0; l < f.num_local(); ++l) {
    st.factors[l] = InitFactor(f.GlobalId(l), opts_.seed);
  }
  return st;
}

double CfProgram::RunEpoch(const Fragment& f, State& st) const {
  if (st.converged || st.epoch >= opts_.max_epochs) return 0.0;
  const double lr =
      opts_.learning_rate / (1.0 + static_cast<double>(st.epoch) * opts_.lr_decay);
  const float flr = static_cast<float>(lr);
  const float flambda = static_cast<float>(opts_.lambda);
  double se = 0.0;
  uint64_t n = 0;
  double work = 0.0;
  // Epoch scratch lives in the state so its capacity is reused across
  // epochs instead of reallocated per RunEpoch call.
  std::vector<uint8_t>& touched = st.touched;
  touched.assign(f.num_local(), 0);
  // Mode-independent adjacency: the chunk-windowed sweep serves the same
  // arcs in the same order on materialised and streaming fragments, so
  // streaming CF is bit-identical to the in-memory run. arcs_of is lazy at
  // window granularity: chunks holding only skipped (item-side) vertices
  // are never acquired or translated; within a touched window the lid
  // cache resolves every target once and amortises it across epochs.
  f.SweepInnerAdjacency(st.arc_scratch, [&](LocalVertex l,
                                            const auto& arcs_of) {
    const VertexId gu = f.GlobalId(l);
    if (!graph_.IsLeft(gu)) return;  // train from user side only
    auto& uf = st.factors[l];
    for (const LocalArc& a : arcs_of()) {
      const VertexId gp = f.GlobalId(a.dst);
      if (!IsTrainEdge(gu, gp)) continue;
      auto& pf = st.factors[a.dst];
      const float err = static_cast<float>(a.weight) - Dot(uf, pf);
      se += static_cast<double>(err) * err;
      ++n;
      work += kCfRank;
      for (uint32_t k = 0; k < kCfRank; ++k) {
        const float u_k = uf[k];
        uf[k] += flr * (err * pf[k] - flambda * u_k);
        pf[k] += flr * (err * u_k - flambda * pf[k]);
        // Keep factors bounded (ratings are small; runaway SGD would poison
        // copies on other workers).
        uf[k] = std::clamp(uf[k], -10.f, 10.f);
        pf[k] = std::clamp(pf[k], -10.f, 10.f);
      }
      touched[a.dst] = 1;
      touched[l] = 1;
    }
  });
  ++st.epoch;
  for (LocalVertex l = 0; l < f.num_local(); ++l) {
    if (touched[l]) st.version[l] = st.epoch;
  }
  const double loss = n ? se / static_cast<double>(n) : 0.0;
  if (st.epoch > 1 && st.last_loss > 0.0 &&
      std::abs(st.last_loss - loss) / st.last_loss < opts_.rel_tol) {
    st.converged = true;
  }
  st.last_loss = loss;
  return std::max(work, 1.0);
}

double CfProgram::PEval(const Fragment& f, State& st,
                        Emitter<Value>* out) const {
  const double work = RunEpoch(f, st);
  EmitBorder(f, st, out);
  return work;
}

double CfProgram::IncEval(const Fragment& f, State& st,
                          std::span<const UpdateEntry<Value>> updates,
                          Emitter<Value>* out) const {
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    // Max-timestamp aggregation: adopt strictly newer factors; average ties
    // (conflicting same-age updates from different workers).
    if (u.value.version > st.version[l]) {
      st.factors[l] = u.value.f;
      st.version[l] = u.value.version;
    } else if (u.value.version == st.version[l]) {
      for (uint32_t k = 0; k < kCfRank; ++k) {
        st.factors[l][k] = 0.5f * (st.factors[l][k] + u.value.f[k]);
      }
    }
  }
  work += RunEpoch(f, st);
  EmitBorder(f, st, out);
  return work;
}

CfProgram::Value CfProgram::Combine(const Value& a, const Value& b) const {
  if (a.version > b.version) return a;
  if (b.version > a.version) return b;
  Value avg = a;
  for (uint32_t k = 0; k < kCfRank; ++k) avg.f[k] = 0.5f * (a.f[k] + b.f[k]);
  return avg;
}

void CfProgram::EmitBorder(const Fragment& f, State& st,
                           Emitter<Value>* out) const {
  // C_i = F_i.O ∪ F_i.I: ship outer copies to owners and inner border values
  // back out to copy holders (the engine routes via kOwnerBroadcast). Only
  // values that changed since the last shipment go out, so quiescence follows
  // once every worker stops training.
  auto emit_if_changed = [&](LocalVertex l) {
    if (st.version[l] > st.last_emitted[l]) {
      st.last_emitted[l] = st.version[l];
      out->Emit(l, f.GlobalId(l), Value{st.factors[l], st.version[l]});
    }
  };
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) emit_if_changed(o);
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    if (f.InEntrySet(l) || f.InExitSet(l)) emit_if_changed(l);
  }
}

CfModel CfProgram::Assemble(const Partition& p,
                            const std::vector<State>& states) const {
  CfModel model;
  model.factors.resize(p.graph.num_vertices());
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      model.factors[f.GlobalId(l)] = states[i].factors[l];
    }
    model.total_epochs += states[i].epoch;
  }
  // Quality over the global rating graph with the assembled model.
  const GraphView& g = p.graph;
  double train_se = 0, test_se = 0;
  uint64_t train_n = 0, test_n = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (!g.is_bipartite() || !g.IsLeft(u)) continue;
    for (const Arc& a : g.OutEdges(u)) {
      const double pred = Dot(model.factors[u], model.factors[a.dst]);
      const double err = a.weight - pred;
      if (IsTrainEdge(u, a.dst)) {
        train_se += err * err;
        ++train_n;
      } else {
        test_se += err * err;
        ++test_n;
      }
    }
  }
  model.train_rmse = train_n ? std::sqrt(train_se / train_n) : 0.0;
  model.test_rmse = test_n ? std::sqrt(test_se / test_n) : 0.0;
  return model;
}

}  // namespace grape
