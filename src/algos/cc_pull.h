// Copyright 2026 The GRAPE+ Reproduction Authors.
// Dual-mode PIE program for connectivity by monotone-min label propagation —
// the pull-capable counterpart of the union-find CcProgram (algos/cc.h).
//
// Every local vertex (inner + outer copy) carries a label, initially its
// own global id; labels only decrease, faggr = min. Two kernels behind one
// protocol (core/direction.h DualModeProgram):
//   push — scatter: sweep the changed inner vertices' out-adjacency and
//          relax their targets (sparse frontiers touch only their arcs);
//   pull — gather: every inner vertex takes the min over its *changed*
//          in-neighbours through the frontier-masked in-sweep, plus a
//          source-side pass over the changed vertices' cut out-arcs.
// Each fragment enforces the arcs of its own inner vertices in both
// kernels (scatter directly; gather via all destinations + the cut pass),
// so any per-round direction mixture reaches the unique least fixpoint:
// label(v) = min over vertices with a directed path to v. With
// kOwnerBroadcast the owner also re-broadcasts decreased border labels to
// every copy holder, which keeps remote gather sources fresh (an
// accelerator — correctness never depends on it).
//
// On symmetric (undirected) graphs the fixpoint is exactly
// seq::ConnectedComponents; on directed graphs it is min-over-ancestors,
// identical across push/pull/auto but not a connectivity relation.
#ifndef GRAPEPLUS_ALGOS_CC_PULL_H_
#define GRAPEPLUS_ALGOS_CC_PULL_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

class CcPullProgram {
 public:
  using Value = VertexId;                 // a component label
  using ResultT = std::vector<VertexId>;  // label per global vertex
  static constexpr bool kOwnerBroadcast = true;

  struct State {
    std::vector<VertexId> label;     // per local vertex (inner + outer)
    /// Frontier mask: l's label decreased and its out-influence has not yet
    /// been consumed by a kernel. Gather sources / scatter sources.
    std::vector<uint8_t> changed;
    std::vector<uint8_t> newly;         // inner decreases of the running round
    std::vector<VertexId> last_emitted;  // per local vertex, ship decreases once
    bool active = false;  // un-consumed frontier left after the last round
    /// Cut-arc index, built on the first pull round — the push kernel
    /// reaches cut arcs through the ordinary out-sweep.
    CutArcIndex cut;
    std::vector<LocalArc> arc_scratch;   // streaming translation buffer
    std::vector<LocalArc> mask_scratch;  // masked-sweep filter buffer
  };

  /// A capped push round or a gather round may leave frontier unconsumed.
  bool HasLocalWork(const State& st) const { return st.active; }

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out,
               SweepDirection dir) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out, SweepDirection dir) const;
  Value Combine(const Value& a, const Value& b) const {
    return a < b ? a : b;  // faggr = min
  }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

 private:
  /// Scatter sweeps over the changed inner frontier, up to kMaxSweeps per
  /// round (a long intra-fragment chain continues via HasLocalWork).
  double KernelPush(const Fragment& f, State& st) const;
  /// One gather pass over the frontier-masked in-adjacency plus the
  /// source-side cut-arc pass; consumes the frontier it read.
  double KernelPull(const Fragment& f, State& st) const;
  /// Ships every label that decreased since it was last emitted and
  /// recomputes `active` — the shared round epilogue.
  double EmitDecreases(const Fragment& f, State& st, Emitter<Value>* out) const;

  static constexpr int kMaxSweeps = 4;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_CC_PULL_H_
