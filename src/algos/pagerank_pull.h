// Copyright 2026 The GRAPE+ Reproduction Authors.
// Pull-mode PageRank: the reverse-edge (gather) PIE program over
// Fragment::SweepInnerInAdjacency, proving the transpose streaming path
// (MmapGraph::TransposeView -> ChunkedArcSource -> pull-enabled partition)
// end-to-end.
//
// Formulation (Jacobi / power-style, same fixpoint as the push program and
// seq::PageRank): every vertex keeps a contribution c_v = d * P_v / N_v; a
// round recomputes each inner score as P_v = (1-d) + sum of the in-
// neighbours' contributions, then refreshes c_v. Contributions only grow
// (scores start at 0 and the iteration is monotone), so faggr = max and the
// computation terminates at the tol-fixpoint regardless of message
// interleaving.
//
// Messaging: the partition must be built pull-enabled
// (PartitionOptions::in_adjacency / in_arc_source), which widens each
// fragment's outer-copy set with its remote in-edge sources F_i.I'. Owners
// then broadcast changed contributions to every reader through the ordinary
// kOwnerBroadcast routing, and a fragment's gather reads only local state.
//
// SIMD bit-identity contract: the gather accumulates through util/simd.h
// GatherSum, whose 4-lane summation order is part of its interface
// (GatherSumScalar reproduces it exactly), so rounds are bit-identical
// across engines, backends and optimisation levels — the differential
// harness relies on this. Do not swap in a sequential loop (different
// rounding order) without updating GatherSumScalar and the simd test.
#ifndef GRAPEPLUS_ALGOS_PAGERANK_PULL_H_
#define GRAPEPLUS_ALGOS_PAGERANK_PULL_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"
#include "runtime/topology.h"

namespace grape {

class PageRankPullProgram {
 public:
  using Value = double;                 // a contribution c_v = d * P_v / N_v
  using ResultT = std::vector<double>;  // P_v per global vertex
  static constexpr bool kOwnerBroadcast = true;

  /// `damping` is d; a round whose largest score increase stays below `tol`
  /// stops the local iteration (finite-domain condition T1: scores grow
  /// monotonically and are bounded, so the tol-fixpoint is reached).
  explicit PageRankPullProgram(double damping = 0.85, double tol = 1e-9)
      : damping_(damping), tol_(tol) {}

  struct State {
    std::vector<double> score;    // P_v, inner vertices
    std::vector<double> contrib;  // c_x per local vertex (inner computed,
                                  // outer copies received from owners)
    std::vector<double> last_emitted;  // per inner vertex
    bool active = false;  // last round still moved some score by >= tol
    /// Streaming translation buffer (bounded by the in-source's effective
    /// chunk budget); unused when in-arcs are materialised.
    std::vector<LocalArc> arc_scratch;
  };

  /// Gather rounds continue while local scores are still moving, even
  /// without fresh messages.
  bool HasLocalWork(const State& st) const { return st.active; }

  /// Best-effort NUMA placement of the per-fragment state arrays on `node`
  /// (runtime/topology.h) — the threaded engine calls this once thread
  /// placement is known. Pure locality hint; never changes results.
  void BindStateMemory(State& st, int node) const {
    numa::BindVectorToNode(st.score, node);
    numa::BindVectorToNode(st.contrib, node);
    numa::BindVectorToNode(st.last_emitted, node);
  }

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  /// Contributions grow monotonically; the freshest value is the largest.
  Value Combine(const Value& a, const Value& b) const {
    return a > b ? a : b;
  }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

  double damping() const { return damping_; }
  double tol() const { return tol_; }

 private:
  /// One Jacobi gather round over the in-adjacency; emits changed border
  /// contributions.
  double Round(const Fragment& f, State& st, Emitter<Value>* out) const;

  double damping_;
  double tol_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_PAGERANK_PULL_H_
