// Copyright 2026 The GRAPE+ Reproduction Authors.
// PIE program for graph connectivity (CC), Figures 2–3 of the paper.
//
// PEval finds local connected components (one DFS/union-find pass), gives
// every component a root carrying the minimum vertex id as cid, and ships the
// cids of border copies. IncEval merges incoming smaller cids with faggr=min
// and propagates root changes back out through the fragment's border — a
// bounded incremental algorithm. Assemble groups vertices by cid.
#ifndef GRAPEPLUS_ALGOS_CC_H_
#define GRAPEPLUS_ALGOS_CC_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"

namespace grape {

class CcProgram {
 public:
  using Value = VertexId;  // v.cid
  using ResultT = std::vector<VertexId>;  // cid per global vertex
  static constexpr bool kOwnerBroadcast = false;

  struct State {
    /// Local union-find forest over [0, num_local): static after PEval.
    std::vector<LocalVertex> parent;
    /// Component cid, indexed by local root.
    std::vector<VertexId> comp_cid;
    /// Outer copies grouped by their local root (built once in PEval).
    std::vector<std::vector<LocalVertex>> root_outer_members;
    /// Last cid shipped per outer copy; ship only decreases (Fig. 3).
    std::vector<VertexId> last_sent;
    /// Streaming-fragment translation buffer; unused when materialised.
    std::vector<LocalArc> arc_scratch;

    LocalVertex Find(LocalVertex x) const {
      while (parent[x] != x) x = parent[x];
      return x;
    }
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const {
    return a < b ? a : b;  // faggr = min
  }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_CC_H_
