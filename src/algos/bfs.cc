#include "algos/bfs.h"

#include <limits>
#include <queue>

namespace grape {

namespace {
constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
}

BfsProgram::State BfsProgram::Init(const Fragment& f) const {
  State st;
  st.level.assign(f.num_local(), kInf);
  st.last_sent.assign(f.num_outer(), kInf);
  return st;
}

double BfsProgram::Expand(const Fragment& f, State& st,
                          std::vector<LocalVertex> frontier,
                          Emitter<Value>* out) const {
  // Dial-style expansion: levels only grow by 1, so a FIFO ordered by level
  // suffices (min-heap not needed as inputs are already minimal levels).
  using Item = std::pair<int64_t, LocalVertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (LocalVertex l : frontier) pq.push({st.level[l], l});
  double work = 0;
  while (!pq.empty()) {
    auto [d, l] = pq.top();
    pq.pop();
    ++work;
    if (d > st.level[l]) continue;
    if (!f.IsInner(l)) continue;
    for (const LocalArc& a : f.Adjacency(l, st.arc_scratch)) {
      ++work;
      if (d + 1 < st.level[a.dst]) {
        st.level[a.dst] = d + 1;
        pq.push({d + 1, a.dst});
      }
    }
  }
  for (LocalVertex o = f.num_inner(); o < f.num_local(); ++o) {
    int64_t& sent = st.last_sent[o - f.num_inner()];
    if (st.level[o] < sent) {
      sent = st.level[o];
      out->Emit(o, f.GlobalId(o), st.level[o]);
    }
  }
  return work;
}

double BfsProgram::PEval(const Fragment& f, State& st,
                         Emitter<Value>* out) const {
  const LocalVertex src = f.LocalId(source_);
  if (src == Fragment::kInvalidLocal || !f.IsInner(src)) return 1.0;
  st.level[src] = 0;
  return Expand(f, st, {src}, out);
}

double BfsProgram::IncEval(const Fragment& f, State& st,
                           std::span<const UpdateEntry<Value>> updates,
                           Emitter<Value>* out) const {
  std::vector<LocalVertex> frontier;
  double work = 0;
  for (const auto& u : updates) {
    ++work;
    const LocalVertex l = ResolveLocal(f, u);
    if (l == Fragment::kInvalidLocal) continue;
    if (u.value < st.level[l]) {
      st.level[l] = u.value;
      frontier.push_back(l);
    }
  }
  if (frontier.empty()) return work;
  return work + Expand(f, st, std::move(frontier), out);
}

BfsProgram::ResultT BfsProgram::Assemble(
    const Partition& p, const std::vector<State>& states) const {
  std::vector<int64_t> level(p.graph.num_vertices(), kUnreached);
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      const int64_t v = states[i].level[l];
      level[f.GlobalId(l)] = v == kInf ? kUnreached : v;
    }
  }
  return level;
}

}  // namespace grape
