// Copyright 2026 The GRAPE+ Reproduction Authors.
// PIE program for single-source shortest paths (Section 5.1).
//
// PEval is Dijkstra's algorithm over the local fragment (priority queue —
// the sequential optimisation the paper notes is "beyond the capacity of
// vertex-centric systems"). IncEval is the incremental algorithm of
// Ramalingam–Reps: re-run Dijkstra seeded with the border vertices whose
// distance decreased. faggr = min; Assemble unions partial results.
#ifndef GRAPEPLUS_ALGOS_SSSP_H_
#define GRAPEPLUS_ALGOS_SSSP_H_

#include <span>
#include <vector>

#include "core/pie.h"
#include "partition/fragment.h"
#include "util/common.h"

namespace grape {

class SsspProgram {
 public:
  using Value = double;  // dist(s, v)
  using ResultT = std::vector<double>;  // distance per global vertex
  static constexpr bool kOwnerBroadcast = false;

  explicit SsspProgram(VertexId source) : source_(source) {}

  struct State {
    std::vector<double> dist;       // per local vertex, +inf if unreached
    std::vector<double> last_sent;  // per outer copy
    /// Streaming-fragment translation buffer; unused when materialised.
    std::vector<LocalArc> arc_scratch;
  };

  State Init(const Fragment& f) const;
  double PEval(const Fragment& f, State& st, Emitter<Value>* out) const;
  double IncEval(const Fragment& f, State& st,
                 std::span<const UpdateEntry<Value>> updates,
                 Emitter<Value>* out) const;
  Value Combine(const Value& a, const Value& b) const {
    return a < b ? a : b;  // faggr = min
  }
  /// Delta-stepping key for the async engine's bucketed worklist
  /// (PrioritizedProgram): relax shorter tentative distances first.
  double UpdatePriority(const Value& v) const { return v; }
  ResultT Assemble(const Partition& p, const std::vector<State>& states) const;

  VertexId source() const { return source_; }

 private:
  /// Dijkstra seeded with `frontier` (locals whose dist just improved);
  /// returns work units and emits improved outer-copy distances.
  double Relax(const Fragment& f, State& st,
               std::vector<LocalVertex> frontier, Emitter<Value>* out) const;

  VertexId source_;
};

}  // namespace grape

#endif  // GRAPEPLUS_ALGOS_SSSP_H_
