// Tests for the adaptive push/pull direction layer: the
// DirectionController's thresholds + hysteresis (no A-B-A flap on a
// near-threshold signal), the UpdateBuffer's incremental frontier-degree
// accounting, the frontier-masked pull sweep, the DualModeProgram surface
// of PageRank / label-propagation CC, and the engine-level guarantee that
// a star-plus-chain run under --direction=auto records *both* directions
// in the per-round telemetry while landing on the push fixpoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algos/cc.h"
#include "algos/cc_pull.h"
#include "algos/pagerank.h"
#include "algos/pagerank_pull.h"
#include "core/direction.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "runtime/message.h"

namespace grape {
namespace {

// The dual-mode surface is a compile-time contract: the engines must see
// exactly the intended programs as dual.
static_assert(DualModeProgram<PageRankProgram>);
static_assert(DualModeProgram<CcPullProgram>);
static_assert(!DualModeProgram<CcProgram>);
static_assert(!DualModeProgram<PageRankPullProgram>);

/// Auto config pinned to the density regime: exploration pushed out of
/// reach and no NoteRound feeding, so the Ligra-style threshold/hysteresis
/// logic is observable in isolation. (Engine-level tests run the real
/// defaults, measured-cost rule included.)
DirectionConfig AutoCfg(double dense = 0.05, double sparse = 0.02) {
  DirectionConfig cfg;
  cfg.mode = DirectionConfig::Mode::kAuto;
  cfg.dense_frac = dense;
  cfg.sparse_frac = sparse;
  cfg.explore_after = 1 << 20;
  return cfg;
}

TEST(DirectionController, ForcedModesIgnoreDensity) {
  DirectionConfig push_cfg;  // default kPush
  DirectionController push_ctl(push_cfg, 1000, /*pull_available=*/true);
  EXPECT_EQ(push_ctl.Decide(true, 0, 0, 0), SweepDirection::kPush);
  EXPECT_EQ(push_ctl.Decide(false, 1, 1000, 100000), SweepDirection::kPush);

  DirectionConfig pull_cfg;
  pull_cfg.mode = DirectionConfig::Mode::kPull;
  DirectionController pull_ctl(pull_cfg, 1000, /*pull_available=*/true);
  EXPECT_EQ(pull_ctl.Decide(true, 0, 0, 0), SweepDirection::kPull);
  EXPECT_EQ(pull_ctl.Decide(false, 1, 0, 0), SweepDirection::kPull);
  EXPECT_EQ(pull_ctl.switches(), 0u);
}

TEST(DirectionController, PullUnavailableDegradesToPush) {
  for (const auto mode : {DirectionConfig::Mode::kPull,
                          DirectionConfig::Mode::kAuto}) {
    DirectionConfig cfg;
    cfg.mode = mode;
    DirectionController ctl(cfg, 1000, /*pull_available=*/false);
    EXPECT_EQ(ctl.Decide(true, 0, 0, 0), SweepDirection::kPush);
    EXPECT_EQ(ctl.Decide(false, 1, 1000, 100000), SweepDirection::kPush);
    EXPECT_EQ(ctl.pull_rounds(), 0u);
  }
}

TEST(DirectionController, AutoTreatsPEvalAsDenseAndTracksDensity) {
  // |E_i| = 2000 -> dense at 100, sparse below 40.
  DirectionController ctl(AutoCfg(), 2000, /*pull_available=*/true);
  EXPECT_EQ(ctl.Decide(true, 0, 0, 0), SweepDirection::kPull);  // PEval
  // Sparse frontier after the collapse: back to push...
  EXPECT_EQ(ctl.Decide(false, 1, 5, 20), SweepDirection::kPush);  // 25 < 40
  // ... and a dense wave re-engages the gather kernel.
  EXPECT_EQ(ctl.Decide(false, 2, 50, 80), SweepDirection::kPull);  // 130>=100
  EXPECT_EQ(ctl.push_rounds(), 1u);
  EXPECT_EQ(ctl.pull_rounds(), 2u);
}

TEST(DirectionController, HysteresisPreventsABAFlap) {
  // dense at 100, sparse at 40: the band [40, 100) keeps the current
  // direction. A signal oscillating just around the dense threshold —
  // which would flap a single-threshold controller every round — must
  // switch exactly once.
  DirectionController ctl(AutoCfg(), 2000, /*pull_available=*/true);
  EXPECT_EQ(ctl.Decide(false, 1, 0, 30), SweepDirection::kPush);   // 30
  EXPECT_EQ(ctl.Decide(false, 2, 5, 100), SweepDirection::kPull);  // 105: up
  EXPECT_EQ(ctl.Decide(false, 3, 5, 90), SweepDirection::kPull);   // 95: band
  EXPECT_EQ(ctl.Decide(false, 4, 5, 100), SweepDirection::kPull);  // 105
  EXPECT_EQ(ctl.Decide(false, 5, 5, 90), SweepDirection::kPull);   // 95: band
  EXPECT_EQ(ctl.Decide(false, 6, 5, 36), SweepDirection::kPull);   // 41: band
  EXPECT_EQ(ctl.switches(), 1u) << "near-threshold signal flapped";
  // Only a clear drop below the sparse threshold releases the direction.
  EXPECT_EQ(ctl.Decide(false, 7, 5, 30), SweepDirection::kPush);  // 35 < 40
  EXPECT_EQ(ctl.switches(), 2u);
  // The telemetry log mirrors the decisions round for round.
  ASSERT_EQ(ctl.log().size(), 7u);
  EXPECT_FALSE(ctl.log()[2].switched);
  EXPECT_TRUE(ctl.log()[6].switched);
  EXPECT_EQ(ctl.log()[1].frontier_degree, 100u);
}

TEST(DirectionController, MeasuredCostRuleGovernsAfterSampling) {
  DirectionConfig cfg = AutoCfg();  // dense at 100, sparse at 40
  cfg.cost_margin = 0.25;
  DirectionController ctl(cfg, 2000, /*pull_available=*/true);
  // PEval samples the gather kernel: a full-graph round of ~2000 units.
  EXPECT_EQ(ctl.Decide(true, 0, 0, 0), SweepDirection::kPull);
  ctl.NoteRound(2000.0);
  // Sparse round exits pull via the density rule and samples push at
  // ~1 unit per frontier-signal unit.
  EXPECT_EQ(ctl.Decide(false, 1, 10, 20), SweepDirection::kPush);  // s=30<40
  ctl.NoteRound(30.0);
  // From here the measured costs govern. Push predicted 1900 vs the pull
  // entry bar of 2000 * 1.25 margin * 2.0 entry bias = 5000: push holds
  // even though the density rule (dense at 100) would long have switched.
  EXPECT_EQ(ctl.Decide(false, 2, 100, 1800), SweepDirection::kPush);
  ctl.NoteRound(1900.0);
  // A frontier predicting decisively past the entry bar flips to gather...
  EXPECT_EQ(ctl.Decide(false, 3, 400, 5200), SweepDirection::kPull);
  ctl.NoteRound(2000.0);
  // ... and near-parity signals stay pull (margin again, both ways).
  EXPECT_EQ(ctl.Decide(false, 4, 200, 2000), SweepDirection::kPull);
  ctl.NoteRound(2000.0);
  // Only a clearly cheaper push round wins the direction back.
  EXPECT_EQ(ctl.Decide(false, 5, 20, 80), SweepDirection::kPush);
}

TEST(DirectionController, ColdStartExploresPushAfterPullStreak) {
  DirectionConfig cfg = AutoCfg();
  cfg.explore_after = 2;
  DirectionController ctl(cfg, 2000, /*pull_available=*/true);
  EXPECT_EQ(ctl.Decide(true, 0, 0, 0), SweepDirection::kPull);  // streak 1
  ctl.NoteRound(2000.0);
  // Persistently dense signal: density hysteresis alone would hold pull
  // forever and the scatter kernel would never be priced.
  EXPECT_EQ(ctl.Decide(false, 1, 100, 1900), SweepDirection::kPull);
  ctl.NoteRound(2000.0);
  EXPECT_EQ(ctl.Decide(false, 2, 100, 1900), SweepDirection::kPush)
      << "streak must force a push sample";
}

TEST(UpdateBuffer, TracksFrontierOutDegreeIncrementally) {
  // Degrees: l0=3, l1=7, l2=0, l3=4.
  const std::vector<uint64_t> offsets = {0, 3, 10, 10, 14};
  UpdateBuffer<double> buf(4);
  buf.SetDegreeOffsets(offsets);
  const auto sum = [](const double& a, const double& b) { return a + b; };
  const auto append = [&](LocalVertex lid, VertexId vid) {
    const UpdateEntry<double> e{vid, 1.0, 0, lid};
    buf.AppendEntries(0, std::span<const UpdateEntry<double>>(&e, 1), sum);
  };
  EXPECT_EQ(buf.FrontierOutDegree(), 0u);
  append(0, 100);
  EXPECT_EQ(buf.FrontierOutDegree(), 3u);
  append(1, 101);
  EXPECT_EQ(buf.FrontierOutDegree(), 10u);
  append(1, 101);  // combine into an already-dirty slot: no double count
  EXPECT_EQ(buf.FrontierOutDegree(), 10u);
  EXPECT_EQ(buf.NumPendingVertices(), 2u);
  append(7, 107);  // beyond the offsets span (e.g. an outer lid): degree 0
  EXPECT_EQ(buf.FrontierOutDegree(), 10u);
  (void)buf.Drain();
  EXPECT_EQ(buf.FrontierOutDegree(), 0u);
  append(3, 103);
  EXPECT_EQ(buf.FrontierOutDegree(), 4u);
  // Late registration rebuilds the tally from the dirty list.
  UpdateBuffer<double> late(4);
  const UpdateEntry<double> e0{100, 1.0, 0, 0};
  const UpdateEntry<double> e3{103, 1.0, 0, 3};
  late.AppendEntries(0, std::span<const UpdateEntry<double>>(&e0, 1), sum);
  late.AppendEntries(0, std::span<const UpdateEntry<double>>(&e3, 1), sum);
  EXPECT_EQ(late.FrontierOutDegree(), 0u);
  late.SetDegreeOffsets(offsets);
  EXPECT_EQ(late.FrontierOutDegree(), 7u);
}

Graph StarPlusChain(VertexId spokes, VertexId chain) {
  // Hub 0 fans out to `spokes` leaves (the dense wave), with a long chain
  // hanging off the hub (the sparse tail whose frontier is 1-2 vertices).
  GraphBuilder b(1 + spokes + chain, /*directed=*/false);
  for (VertexId s = 1; s <= spokes; ++s) b.AddEdge(0, s, 1.0);
  VertexId prev = 0;
  for (VertexId c = 0; c < chain; ++c) {
    const VertexId v = 1 + spokes + c;
    b.AddEdge(prev, v, 1.0);
    prev = v;
  }
  return std::move(b).Build();
}

/// Pull-enabled materialised partition over `g` (in-memory transpose kept
/// alive by the caller-owned Graph).
Partition PullPartition(const GraphView& g, const Graph& transpose,
                        FragmentId m) {
  auto placement = HashPartitioner().Assign(g, m);
  GraphView tv = transpose.View();
  PartitionOptions opts;
  opts.in_adjacency = &tv;
  return BuildPartition(g, placement, m, nullptr, opts);
}

TEST(AutoDirection, StarPlusChainRecordsBothDirections) {
  Graph g = StarPlusChain(300, 40);
  Graph t = TransposeGraph(g);
  GraphView tv = t.View();
  auto placement = HashPartitioner().Assign(g, 3);
  PartitionOptions opts;
  opts.in_adjacency = &tv;
  Partition p = BuildPartition(g, placement, 3, nullptr, opts);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.direction.mode = DirectionConfig::Mode::kAuto;
  SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-10), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);

  // The dense PEval wave must have run pull somewhere, and the collapsed
  // chain frontier must have run push somewhere — both directions appear
  // in the telemetry, with every switch accounted.
  EXPECT_GT(r.stats.total_pull_rounds(), 0u);
  EXPECT_GT(r.stats.total_push_rounds(), 0u);
  EXPECT_GT(r.stats.total_direction_switches(), 0u);
  bool log_has_pull = false, log_has_push = false;
  for (FragmentId w = 0; w < p.num_fragments(); ++w) {
    for (const DirectionSample& s : engine.direction_controller(w).log()) {
      (s.dir == SweepDirection::kPull ? log_has_pull : log_has_push) = true;
    }
  }
  EXPECT_TRUE(log_has_pull);
  EXPECT_TRUE(log_has_push);

  // Auto lands on the push fixpoint and the ground truth.
  EngineConfig push_cfg = cfg;
  push_cfg.direction.mode = DirectionConfig::Mode::kPush;
  auto push = SimEngine<PageRankProgram>(p, PageRankProgram(0.85, 1e-10),
                                         push_cfg)
                  .Run();
  const auto truth = seq::PageRank(g, 0.85, 1e-12);
  ASSERT_EQ(r.result.size(), truth.size());
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(r.result[v], truth[v], 1e-6) << "v=" << v;
    EXPECT_NEAR(r.result[v], push.result[v], 1e-6) << "v=" << v;
  }
}

TEST(DualPageRank, AllDirectionsReachTheGroundTruthFixpoint) {
  RmatOptions o;
  o.num_vertices = 800;
  o.num_edges = 5000;
  o.directed = true;
  o.weighted = true;
  o.seed = 9;
  Graph g = MakeRmat(o);
  Graph t = TransposeGraph(g);
  Partition p = PullPartition(g, t, 4);
  const auto truth = seq::PageRank(g, 0.85, 1e-12);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  for (const auto mode : {DirectionConfig::Mode::kPush,
                          DirectionConfig::Mode::kPull,
                          DirectionConfig::Mode::kAuto}) {
    cfg.direction.mode = mode;
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-11), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    for (size_t v = 0; v < truth.size(); ++v) {
      ASSERT_NEAR(r.result[v], truth[v], 1e-6)
          << "mode=" << static_cast<int>(mode) << " v=" << v;
    }
  }
}

TEST(DualCc, LabelPropagationMatchesUnionFindOnUndirectedGraphs) {
  RmatOptions o;
  o.num_vertices = 1200;
  o.num_edges = 4000;  // sparse enough to leave several components
  o.directed = false;
  o.seed = 5;
  Graph g = MakeRmat(o);
  Graph t = TransposeGraph(g);
  Partition p = PullPartition(g, t, 4);
  const auto truth = seq::ConnectedComponents(g);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  for (const auto mode : {DirectionConfig::Mode::kPush,
                          DirectionConfig::Mode::kPull,
                          DirectionConfig::Mode::kAuto}) {
    cfg.direction.mode = mode;
    SimEngine<CcPullProgram> engine(p, CcPullProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.result, truth) << "mode=" << static_cast<int>(mode);
  }
}

TEST(DualCc, ThreadedAutoMatchesGroundTruth) {
  RmatOptions o;
  o.num_vertices = 1000;
  o.num_edges = 5000;
  o.directed = false;
  o.seed = 17;
  Graph g = MakeRmat(o);
  Graph t = TransposeGraph(g);
  Partition p = PullPartition(g, t, 5);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.direction.mode = DirectionConfig::Mode::kAuto;
  cfg.num_threads = 3;
  ThreadedEngine<CcPullProgram> engine(p, CcPullProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
  EXPECT_GT(r.stats.total_pull_rounds(), 0u);  // PEval gathers under auto
}

TEST(MaskedInSweep, FiltersSettledSourcesInSweepOrder) {
  RmatOptions o;
  o.num_vertices = 600;
  o.num_edges = 3600;
  o.directed = true;
  o.seed = 21;
  Graph g = MakeRmat(o);
  Graph t = TransposeGraph(g);
  Partition p = PullPartition(g, t, 3);

  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    std::vector<uint8_t> mask(f.num_local());
    for (LocalVertex l = 0; l < f.num_local(); ++l) mask[l] = l % 2;
    std::vector<LocalArc> scratch, masked_scratch, ref_scratch;
    std::vector<std::vector<LocalArc>> expect(f.num_inner());
    f.SweepInnerInAdjacency(ref_scratch, [&](LocalVertex l,
                                             const auto& arcs_of) {
      for (const LocalArc& a : arcs_of()) {
        if (mask[a.dst]) expect[l].push_back(a);
      }
    });
    LocalVertex visited = 0;
    f.SweepInnerInAdjacency(
        scratch, masked_scratch, mask,
        [&](LocalVertex l, const auto& arcs_of) {
          ASSERT_EQ(l, visited++);
          const auto arcs = arcs_of();
          ASSERT_EQ(arcs.size(), expect[l].size());
          for (size_t k = 0; k < arcs.size(); ++k) {
            ASSERT_EQ(arcs[k].dst, expect[l][k].dst);
            ASSERT_EQ(arcs[k].weight, expect[l][k].weight);
          }
        });
    EXPECT_EQ(visited, f.num_inner());
  }
}

}  // namespace
}  // namespace grape
