// Pull-mode (reverse-edge) execution tests: pull-enabled partitions widen
// the outer-copy set with remote in-edge sources, PageRankPullProgram
// reaches the push program's fixed point, and pull execution is
// bit-identical between materialised in-arcs and streaming off the
// transpose — both the in-memory transpose and the mmapped `.gcsr`
// in-adjacency extension (MmapGraph::TransposeView) — across chunk budgets
// and in both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/pagerank_pull.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/store/gcsr_store.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

Graph TestGraph() {
  RmatOptions o;
  o.num_vertices = 1500;
  o.num_edges = 9000;
  o.directed = true;
  o.weighted = true;
  o.seed = 42;
  return MakeRmat(o);
}

template <typename Program>
typename Program::ResultT RunSim(const Partition& p, Program prog) {
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<Program> engine(p, std::move(prog), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  return std::move(r.result);
}

TEST(PullPartition, OuterSetGainsRemoteInSources) {
  Graph g = TestGraph();
  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);
  Partition push = BuildPartition(g, placement, m);
  Graph t = TransposeGraph(g);
  GraphView tv = t.View();
  PartitionOptions opts;
  opts.in_adjacency = &tv;
  Partition pull = BuildPartition(g, placement, m, nullptr, opts);

  for (FragmentId i = 0; i < m; ++i) {
    const Fragment& fp = pull.fragments[i];
    ASSERT_TRUE(fp.has_in_adjacency());
    // Every remote in-source is now an outer copy (readable locally) …
    for (VertexId u : fp.remote_sources()) {
      const LocalVertex l = fp.LocalId(u);
      ASSERT_NE(l, Fragment::kInvalidLocal) << "I' vertex " << u;
      EXPECT_FALSE(fp.IsInner(l));
    }
    // … and the widened set is a superset of the push partition's outer.
    const auto& push_outer = push.fragments[i].outer_vertices();
    EXPECT_TRUE(std::includes(fp.outer_vertices().begin(),
                              fp.outer_vertices().end(), push_outer.begin(),
                              push_outer.end()));
    // In-degrees match the transpose.
    uint64_t in_arcs = 0;
    for (LocalVertex l = 0; l < fp.num_inner(); ++l) {
      EXPECT_EQ(fp.InDegree(l), tv.OutDegree(fp.GlobalId(l)));
      in_arcs += fp.InDegree(l);
    }
    EXPECT_EQ(in_arcs, fp.num_in_arcs());
  }
}

TEST(PullPageRank, MatchesPushFixedPointAndGroundTruth) {
  Graph g = TestGraph();
  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);
  Graph t = TransposeGraph(g);
  GraphView tv = t.View();
  PartitionOptions opts;
  opts.in_adjacency = &tv;
  Partition pull = BuildPartition(g, placement, m, nullptr, opts);
  Partition push = BuildPartition(g, placement, m);

  const auto pull_scores = RunSim(pull, PageRankPullProgram(0.85, 1e-10));
  const auto push_scores = RunSim(push, PageRankProgram(0.85, 1e-12));
  const auto truth = seq::PageRank(g, 0.85, 1e-12);
  ASSERT_EQ(pull_scores.size(), truth.size());
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(pull_scores[v], truth[v], 1e-5) << "v=" << v;
    EXPECT_NEAR(pull_scores[v], push_scores[v], 1e-5) << "v=" << v;
  }
}

class PullStreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PullStreamingEquivalence, BitIdenticalAcrossModesAndBackends) {
  const uint64_t budget = GetParam();
  Graph g = TestGraph();
  const std::string path = TmpPath("pull_eq.gcsr");
  ASSERT_TRUE(
      SaveBinary(g, path, SaveOptions{.include_in_adjacency = true}).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped.value().has_in_adjacency());

  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);

  // Reference: materialised in-arcs from the in-memory transpose.
  Graph t = TransposeGraph(g);
  GraphView tv = t.View();
  PartitionOptions mem_opts;
  mem_opts.in_adjacency = &tv;
  Partition pull_mem = BuildPartition(g, placement, m, nullptr, mem_opts);

  // Streaming over the in-memory transpose.
  ChunkedArcSource mem_in_src(tv, budget);
  PartitionOptions stream_mem_opts;
  stream_mem_opts.in_arc_source = &mem_in_src;
  Partition pull_stream_mem =
      BuildPartition(g, placement, m, nullptr, stream_mem_opts);

  // Fully out-of-core: forward arcs and in-arcs stream off the store; the
  // in-arcs come from the zero-copy TransposeView.
  const GraphView rview = mapped.value().View();
  ChunkedArcSource fwd_src(mapped.value(), budget);
  ChunkedArcSource map_in_src(mapped.value().TransposeView(), budget,
                              ChunkedArcSource::Backend::kMapped);
  PartitionOptions stream_map_opts;
  stream_map_opts.arc_source = &fwd_src;
  stream_map_opts.in_arc_source = &map_in_src;
  Partition pull_stream_map =
      BuildPartition(rview, placement, m, nullptr, stream_map_opts);

  const PageRankPullProgram prog(0.85, 1e-8);
  const auto ref = RunSim(pull_mem, prog);
  EXPECT_EQ(ref, RunSim(pull_stream_mem, prog));
  EXPECT_EQ(ref, RunSim(pull_stream_map, prog));

  // One in-window at a time per fragment in the sim engine.
  EXPECT_LE(map_in_src.peak_resident_arcs(), map_in_src.effective_budget());
  EXPECT_EQ(map_in_src.resident_arcs(), 0u);
  EXPECT_EQ(fwd_src.resident_arcs(), 0u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ChunkBudgets, PullStreamingEquivalence,
                         ::testing::Values(uint64_t{1}, uint64_t{113},
                                           uint64_t{1} << 30));

TEST(PullThreaded, StreamingPullMatchesGroundTruth) {
  Graph g = TestGraph();
  const FragmentId m = 6;
  auto placement = HashPartitioner().Assign(g, m);
  Graph t = TransposeGraph(g);
  ChunkedArcSource in_src(t.View(), 97);
  PartitionOptions opts;
  opts.in_arc_source = &in_src;
  Partition p = BuildPartition(g, placement, m, nullptr, opts);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.num_threads = 3;  // virtual workers > physical threads
  ThreadedEngine<PageRankPullProgram> engine(
      p, PageRankPullProgram(0.85, 1e-10), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  const auto truth = seq::PageRank(g, 0.85, 1e-12);
  for (size_t v = 0; v < truth.size(); ++v) {
    ASSERT_NEAR(r.result[v], truth[v], 1e-5) << "v=" << v;
  }
  EXPECT_EQ(in_src.resident_arcs(), 0u);
}

}  // namespace
}  // namespace grape
