// Unit tests for src/partition: assignment strategies, fragment border sets
// (F.I / F.O / F.I' / F.O'), the routing index, skew injection and metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "partition/skew.h"

namespace grape {
namespace {

Graph TestGraph() {
  // 0->1->2->3->4->5 chain plus 0->3 shortcut, directed.
  GraphBuilder b(6, true);
  for (VertexId v = 0; v + 1 < 6; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(0, 3);
  return std::move(b).Build();
}

TEST(Partitioners, CoverAllVerticesWithValidIds) {
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 2000;
  Graph g = MakeRmat(o);
  for (const char* name : {"hash", "range", "ldg"}) {
    auto part = MakePartitioner(name);
    auto placement = part->Assign(g, 8);
    ASSERT_EQ(placement.size(), g.num_vertices()) << name;
    for (FragmentId f : placement) EXPECT_LT(f, 8u) << name;
  }
}

TEST(Partitioners, RangeIsContiguous) {
  RmatOptions o;
  o.num_vertices = 100;
  o.num_edges = 100;
  Graph g = MakeRmat(o);
  RangePartitioner rp;
  auto placement = rp.Assign(g, 4);
  for (size_t v = 1; v < placement.size(); ++v) {
    EXPECT_GE(placement[v], placement[v - 1]);
  }
}

TEST(Partitioners, LdgRoughlyBalanced) {
  RmatOptions o;
  o.num_vertices = 2048;
  o.num_edges = 8000;
  Graph g = MakeRmat(o);
  LdgPartitioner ldg;
  auto placement = ldg.Assign(g, 8);
  std::vector<uint64_t> counts(8, 0);
  for (FragmentId f : placement) ++counts[f];
  const uint64_t maxc = *std::max_element(counts.begin(), counts.end());
  const uint64_t minc = *std::min_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(maxc),
            1.8 * static_cast<double>(std::max<uint64_t>(minc, 1)));
}

TEST(Partitioners, LdgCutsFewerEdgesThanHashOnGrid) {
  GridOptions o;
  o.rows = 32;
  o.cols = 32;
  o.shortcut_fraction = 0.0;
  Graph g = MakeRoadGrid(o);
  auto hash_m = ComputeMetrics(HashPartitioner().Partition_(g, 8));
  auto ldg_m = ComputeMetrics(LdgPartitioner().Partition_(g, 8));
  EXPECT_LT(ldg_m.edge_cut_fraction, hash_m.edge_cut_fraction);
}

TEST(Fragment, InnerOuterAndLocalIds) {
  Graph g = TestGraph();
  // Fragments: {0,1,2} and {3,4,5}.
  std::vector<FragmentId> placement = {0, 0, 0, 1, 1, 1};
  Partition p = BuildPartition(g, placement, 2);
  const Fragment& f0 = p.fragments[0];
  EXPECT_EQ(f0.num_inner(), 3u);
  // Cut edges from F0: 2->3 and 0->3, both target 3 => one outer copy.
  EXPECT_EQ(f0.num_outer(), 1u);
  EXPECT_EQ(f0.GlobalId(f0.LocalId(3)), 3u);
  EXPECT_FALSE(f0.IsInner(f0.LocalId(3)));
  // Inner vertices keep their arcs; outer copies carry none.
  EXPECT_EQ(f0.OutDegree(f0.LocalId(0)), 2u);
  EXPECT_EQ(f0.OutDegree(f0.LocalId(3)), 0u);
}

TEST(Fragment, BorderSetsMatchPaperDefinitions) {
  Graph g = TestGraph();
  std::vector<FragmentId> placement = {0, 0, 0, 1, 1, 1};
  Partition p = BuildPartition(g, placement, 2);
  const Fragment& f0 = p.fragments[0];
  const Fragment& f1 = p.fragments[1];
  // F0.O' = {0, 2} (sources of cut edges), F0.I = {} (no incoming cuts).
  EXPECT_TRUE(f0.InExitSet(f0.LocalId(0)));
  EXPECT_TRUE(f0.InExitSet(f0.LocalId(2)));
  EXPECT_FALSE(f0.InExitSet(f0.LocalId(1)));
  EXPECT_FALSE(f0.InEntrySet(f0.LocalId(0)));
  // F1.I = {3}; F1.I' = {0, 2}; F1.O empty (no outgoing cuts).
  EXPECT_TRUE(f1.InEntrySet(f1.LocalId(3)));
  EXPECT_FALSE(f1.InEntrySet(f1.LocalId(4)));
  EXPECT_EQ(f1.num_outer(), 0u);
  std::vector<VertexId> iprime(f1.remote_sources().begin(),
                               f1.remote_sources().end());
  EXPECT_EQ(iprime, (std::vector<VertexId>{0, 2}));
}

TEST(Fragment, UndirectedCutCreatesCopiesBothSides) {
  GraphBuilder b(4, false);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 0, 1, 1}, 2);
  // Cut edge (1,2): F0 holds copy of 2, F1 holds copy of 1.
  EXPECT_NE(p.fragments[0].LocalId(2), Fragment::kInvalidLocal);
  EXPECT_NE(p.fragments[1].LocalId(1), Fragment::kInvalidLocal);
  EXPECT_TRUE(p.fragments[0].InEntrySet(p.fragments[0].LocalId(1)));
  EXPECT_TRUE(p.fragments[1].InEntrySet(p.fragments[1].LocalId(2)));
}

TEST(Partition, RecipientsRouteToOwner) {
  Graph g = TestGraph();
  Partition p = BuildPartition(g, {0, 0, 0, 1, 1, 1}, 2);
  std::vector<FragmentId> out;
  p.Recipients(3, /*from=*/0, /*to_copies=*/false, &out);
  EXPECT_EQ(out, (std::vector<FragmentId>{1}));
  // Owner emitting its own vertex with no copies elsewhere: no recipients.
  p.Recipients(4, /*from=*/1, /*to_copies=*/false, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Partition, RecipientsBroadcastToCopyHolders) {
  // Star: 0 in F0; 1,2 in F1/F2 both pointing at 0 => copies of 0 in both.
  GraphBuilder b(3, true);
  b.AddEdge(1, 0);
  b.AddEdge(2, 0);
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 1, 2}, 3);
  std::vector<FragmentId> out;
  p.Recipients(0, /*from=*/0, /*to_copies=*/true, &out);
  // Owner fragment 0 broadcasts to both copy holders.
  std::set<FragmentId> got(out.begin(), out.end());
  EXPECT_EQ(got, (std::set<FragmentId>{1, 2}));
  // From a copy holder: owner plus the other holder.
  p.Recipients(0, /*from=*/1, /*to_copies=*/true, &out);
  got = std::set<FragmentId>(out.begin(), out.end());
  EXPECT_EQ(got, (std::set<FragmentId>{0, 2}));
}

TEST(Partition, FragmentsPartitionTheVertexSet) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1500;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 5);
  std::vector<int> seen(g.num_vertices(), 0);
  for (const Fragment& f : p.fragments) {
    for (VertexId v : f.inner_vertices()) ++seen[v];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(seen[v], 1);
}

TEST(Partition, ArcsArePreserved) {
  RmatOptions o;
  o.num_vertices = 128;
  o.num_edges = 700;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  uint64_t arcs = 0;
  for (const Fragment& f : p.fragments) arcs += f.num_arcs();
  EXPECT_EQ(arcs, g.num_arcs());
}

TEST(Metrics, BalancedHashSkewNearOne) {
  RmatOptions o;
  o.num_vertices = 4096;
  o.num_edges = 16000;
  Graph g = MakeRmat(o);
  auto m = ComputeMetrics(HashPartitioner().Partition_(g, 8));
  EXPECT_LT(m.skew, 1.6);
  EXPECT_GT(m.edge_cut_fraction, 0.0);
  EXPECT_LE(m.edge_cut_fraction, 1.0);
}

TEST(Skew, InjectionReachesTargetRatio) {
  RmatOptions o;
  o.num_vertices = 4096;
  o.num_edges = 16000;
  Graph g = MakeRmat(o);
  auto placement = HashPartitioner().Assign(g, 8);
  for (double target : {2.0, 4.0, 8.0}) {
    auto skewed = InjectSkew(g, placement, 8, target, 1);
    std::vector<uint64_t> counts(8, 0);
    for (FragmentId f : skewed) ++counts[f];
    std::vector<uint64_t> sorted = counts;
    std::sort(sorted.begin(), sorted.end());
    const double r = static_cast<double>(sorted.back()) /
                     static_cast<double>(sorted[sorted.size() / 2]);
    EXPECT_NEAR(r, target, 0.5 * target) << "target " << target;
  }
}

TEST(Skew, TargetOneIsNoop) {
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 1000;
  Graph g = MakeRmat(o);
  auto placement = HashPartitioner().Assign(g, 4);
  auto same = InjectSkew(g, placement, 4, 1.0, 0);
  // Sizes stay (roughly) unchanged: nothing should move for target 1.0.
  std::vector<uint64_t> before(4, 0), after(4, 0);
  for (FragmentId f : placement) ++before[f];
  for (FragmentId f : same) ++after[f];
  EXPECT_EQ(before, after);
}

TEST(ExplicitPartitioner, UsesGivenPlacement) {
  Graph g = TestGraph();
  ExplicitPartitioner ep({1, 1, 0, 0, 1, 0});
  auto placement = ep.Assign(g, 2);
  EXPECT_EQ(placement[0], 1u);
  EXPECT_EQ(placement[2], 0u);
}

}  // namespace
}  // namespace grape
