// Tests for the machine-topology layer (runtime/topology.h): enumeration
// invariants, respect for a restricted affinity mask (the container/CI
// case), round-robin thread placement, advisory pinning, and the defined
// no-op paths of the NUMA binder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "runtime/topology.h"

namespace grape {
namespace {

TEST(CpuTopology, DetectInvariants) {
  const CpuTopology topo = CpuTopology::Detect();
  ASSERT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_packages, 1);
  EXPECT_GE(topo.num_nodes, 1);
  // Sorted by (node, package, id) — compact placement depends on it.
  for (size_t i = 1; i < topo.cpus.size(); ++i) {
    const auto& a = topo.cpus[i - 1];
    const auto& b = topo.cpus[i];
    const auto key = [](const CpuTopology::Cpu& c) {
      return std::tuple<int, int, int>(c.node, c.package, c.id);
    };
    EXPECT_LT(key(a), key(b)) << "cpus not sorted at index " << i;
  }
  // No duplicate kernel cpu ids.
  std::vector<int> ids;
  for (const auto& c : topo.cpus) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(CpuTopology, RoundRobinPlacement) {
  const CpuTopology topo = CpuTopology::Detect();
  const uint32_t n = topo.num_cpus();
  for (uint32_t t = 0; t < 3 * n; ++t) {
    EXPECT_EQ(topo.CpuForThread(t), topo.cpus[t % n].id);
    EXPECT_EQ(topo.PackageForThread(t), topo.cpus[t % n].package);
    EXPECT_EQ(topo.NodeForThread(t), topo.cpus[t % n].node);
  }
  // The empty topology (never produced by Detect) still answers sanely.
  const CpuTopology empty;
  EXPECT_EQ(empty.CpuForThread(0), -1);
  EXPECT_EQ(empty.PackageForThread(7), 0);
  EXPECT_EQ(empty.NodeForThread(7), 0);
}

#if defined(__linux__)
/// Restores the entry affinity mask however the test exits.
class AffinityGuard {
 public:
  AffinityGuard() { ok_ = sched_getaffinity(0, sizeof(saved_), &saved_) == 0; }
  ~AffinityGuard() {
    if (ok_) sched_setaffinity(0, sizeof(saved_), &saved_);
  }
  bool ok() const { return ok_; }
  const cpu_set_t& mask() const { return saved_; }

 private:
  cpu_set_t saved_;
  bool ok_ = false;
};

TEST(CpuTopology, RespectsRestrictedAffinityMask) {
  AffinityGuard guard;
  ASSERT_TRUE(guard.ok());
  // Pick the first allowed cpu and restrict the process to it alone —
  // exactly what a cpuset-limited container does. Works on any box,
  // including single-cpu runners (the restriction is then a no-op, but the
  // enumeration must still report precisely that one cpu).
  int first = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &guard.mask())) {
      first = c;
      break;
    }
  }
  ASSERT_GE(first, 0);
  cpu_set_t only;
  CPU_ZERO(&only);
  CPU_SET(first, &only);
  ASSERT_EQ(sched_setaffinity(0, sizeof(only), &only), 0);
  const CpuTopology topo = CpuTopology::Detect();
  ASSERT_EQ(topo.num_cpus(), 1u);
  EXPECT_EQ(topo.cpus[0].id, first);
  EXPECT_EQ(topo.num_packages, 1);
  EXPECT_EQ(topo.num_nodes, 1);
}

TEST(PinCurrentThread, PinsToEnumeratedCpuAndRefusesGarbage) {
  AffinityGuard guard;
  ASSERT_TRUE(guard.ok());
  const CpuTopology topo = CpuTopology::Detect();
  ASSERT_GE(topo.num_cpus(), 1u);
  EXPECT_TRUE(PinCurrentThreadToCpu(topo.cpus[0].id));
  // The pin must actually narrow the mask to the requested cpu.
  cpu_set_t now;
  ASSERT_EQ(sched_getaffinity(0, sizeof(now), &now), 0);
  EXPECT_EQ(CPU_COUNT(&now), 1);
  EXPECT_TRUE(CPU_ISSET(topo.cpus[0].id, &now));
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
}
#endif  // defined(__linux__)

TEST(NumaBinding, DefinedNoOpPaths) {
  EXPECT_GE(numa::NumMemoryNodes(), 1);
  std::vector<double> v(1 << 16, 1.0);
  // node < 0 is the explicit "don't place" value.
  EXPECT_TRUE(numa::BindVectorToNode(v, -1));
  // Sub-page spans are skipped successfully.
  std::vector<double> tiny(4, 1.0);
  EXPECT_TRUE(numa::BindVectorToNode(tiny, 0));
  // Empty vectors never touch the syscall.
  std::vector<double> empty;
  EXPECT_TRUE(numa::BindVectorToNode(empty, 0));
  // Binding to node 0: a successful no-op on single-node boxes; on real
  // multi-node hardware the syscall may or may not be permitted in the
  // sandbox, so only the single-node contract is asserted.
  if (numa::NumMemoryNodes() == 1) {
    EXPECT_TRUE(numa::BindVectorToNode(v, 0));
  } else {
    numa::BindVectorToNode(v, 0);  // must not crash; return value advisory
  }
  // The memory stays usable whatever the kernel said.
  for (double x : v) ASSERT_EQ(x, 1.0);
}

}  // namespace
}  // namespace grape
