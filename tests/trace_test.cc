// Tests for the wall-clock tracer and its exporters (src/obs/trace):
// ring-buffer semantics (overwrite-oldest, drop accounting), multithread
// recording, Chrome trace-event export proven well-formed by re-parsing
// (span nesting within tracks, monotone timestamps), the shared ASCII Gantt
// renderer's edge cases, and a threaded-engine end-to-end smoke whose trace
// must survive the full record -> collect -> export -> parse pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "core/trace.h"
#include "graph/generators.h"
#include "mini_json.h"
#include "obs/trace.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

using obs::TraceEvent;
using obs::TraceKind;
using obs::Tracer;

/// Every tracer test arms the global tracer; disarm on scope exit so the
/// remaining tests (and the rest of the binary) run with the guard off.
struct TracerGuard {
  explicit TracerGuard(size_t capacity = Tracer::kDefaultCapacity) {
    Tracer::Global().Enable(capacity);
  }
  ~TracerGuard() { Tracer::Global().Disable(); }
};

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer::Global().Enable(64);
  Tracer::Global().Disable();
  ASSERT_FALSE(Tracer::enabled());
  Tracer::Global().RecordInstant(TraceKind::kPhase, 0, 1, 2);
  { obs::TraceSpanScope scope(TraceKind::kPEval, 0); }
  EXPECT_TRUE(Tracer::Global().Collect().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST(Trace, CollectIsSortedAcrossThreads) {
  TracerGuard guard(4096);
  constexpr int kThreads = 3;
  constexpr int kEvents = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kEvents; ++i) {
        const int64_t start = Tracer::Global().NowNs();
        Tracer::Global().RecordSpan(TraceKind::kIncEval,
                                    static_cast<uint32_t>(t), start,
                                    static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kEvents));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TracerGuard guard(16);  // Enable() clamps capacity to >= 16
  for (uint64_t i = 0; i < 30; ++i) {
    Tracer::Global().RecordInstant(TraceKind::kPhase, 0, i);
  }
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(Tracer::Global().dropped(), 14u);
  // Overwrite-oldest: the survivors are exactly the newest 16.
  std::set<uint64_t> args;
  for (const TraceEvent& e : events) args.insert(e.arg0);
  for (uint64_t i = 14; i < 30; ++i) EXPECT_EQ(args.count(i), 1u) << i;
}

TEST(Trace, SpanScopeRecordsDurationAndArgs) {
  TracerGuard guard(64);
  {
    obs::TraceSpanScope scope(TraceKind::kBufferDrain, 5);
    scope.set_args(123, 456);
  }
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kBufferDrain);
  EXPECT_EQ(events[0].track, 5u);
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].arg0, 123u);
  EXPECT_EQ(events[0].arg1, 456u);
}

TEST(Trace, ReenableResetsEpochAndRings) {
  Tracer::Global().Enable(64);
  Tracer::Global().RecordInstant(TraceKind::kPhase, 0, 1);
  ASSERT_EQ(Tracer::Global().Collect().size(), 1u);
  Tracer::Global().Enable(64);  // new session: prior rings dropped
  EXPECT_TRUE(Tracer::Global().Collect().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
  Tracer::Global().Disable();
}

/// Re-parses a Chrome trace export and checks the structural invariants the
/// ISSUE pins: well-formed JSON, a traceEvents array of M/X/i events with
/// the required keys, per-track monotone non-decreasing timestamps, and
/// X-event intervals nested-or-disjoint within each track.
void CheckChromeTrace(const std::string& json, size_t expected_events) {
  minijson::Value doc;
  std::string err;
  ASSERT_TRUE(minijson::Parse(json, &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("displayTimeUnit")->str, "ms");
  const minijson::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t data_events = 0;
  std::map<double, double> last_ts;           // tid -> last seen ts
  std::map<double, std::vector<double>> open; // tid -> stack of span ends
  for (const minijson::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const minijson::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("name"), nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    if (ph->str == "M") {
      EXPECT_EQ(e.Find("name")->str, "thread_name");
      ASSERT_NE(e.Find("args")->Find("name"), nullptr);
      continue;
    }
    ++data_events;
    ASSERT_TRUE(ph->str == "X" || ph->str == "i") << ph->str;
    const double tid = e.Find("tid")->number;
    ASSERT_NE(e.Find("ts"), nullptr);
    const double ts = e.Find("ts")->number;
    EXPECT_GE(ts, 0.0);
    if (last_ts.count(tid)) EXPECT_GE(ts, last_ts[tid]);
    last_ts[tid] = ts;
    if (ph->str == "X") {
      ASSERT_NE(e.Find("dur"), nullptr);
      const double dur = e.Find("dur")->number;
      EXPECT_GE(dur, 0.0);
      // Nesting: within a track, spans sorted by start must be disjoint
      // from or nested inside any still-open enclosing span.
      auto& stack = open[tid];
      while (!stack.empty() && ts >= stack.back()) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(ts + dur, stack.back() + 1e-6)
            << "span on tid " << tid << " straddles its enclosing span";
      }
      stack.push_back(ts + dur);
    } else {
      EXPECT_EQ(e.Find("s")->str, "t");  // instant scope
    }
  }
  EXPECT_EQ(data_events, expected_events);
}

TEST(Trace, ChromeExportParsesBack) {
  TracerGuard guard(256);
  Tracer& tr = Tracer::Global();
  // Spans and instants across the lane scheme: virtual worker 0, a physical
  // thread, the IO lane and the master lane.
  tr.RecordSpan(TraceKind::kPEval, 0, 0, /*round=*/0, /*pull=*/0);
  tr.RecordSpan(TraceKind::kIncEval, 0, tr.NowNs(), 1, 1);
  tr.RecordSpan(TraceKind::kBarrierWait, Tracer::kThreadLaneBase + 1,
                tr.NowNs());
  tr.RecordInstant(TraceKind::kChunkAcquire, Tracer::kIoLane, 3, 4096);
  tr.RecordInstant(TraceKind::kDirectionDecide, 0, 1, 77);
  tr.RecordSpan(TraceKind::kSuperstep, Tracer::kMasterLane, 0, 0);
  const std::vector<TraceEvent> events = tr.Collect();
  ASSERT_EQ(events.size(), 6u);
  std::ostringstream os;
  obs::WriteChromeTrace(events, /*to_us=*/1e-3, os);
  CheckChromeTrace(os.str(), 6);
}

TEST(Trace, ChromeExportFileRoundTrip) {
  TracerGuard guard(64);
  Tracer::Global().RecordSpan(TraceKind::kPhase, Tracer::kMasterLane, 0);
  const auto path =
      (std::filesystem::temp_directory_path() / "grape_trace_test.json")
          .string();
  const Status st = obs::WriteChromeTraceFile(Tracer::Global().Collect(),
                                              1e-3, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  CheckChromeTrace(buf.str(), 1);
  std::filesystem::remove(path);
}

TEST(Gantt, FromEventsRendersGlyphsAndZeroDurationSpans) {
  std::vector<TraceEvent> events;
  TraceEvent peval;
  peval.start_ns = 0;
  peval.dur_ns = 1000;
  peval.track = 0;
  peval.kind = TraceKind::kPEval;
  events.push_back(peval);
  TraceEvent round1 = peval;
  round1.start_ns = 1000;
  round1.kind = TraceKind::kIncEval;
  round1.arg0 = 1;
  events.push_back(round1);
  TraceEvent zero = peval;
  zero.start_ns = 500;
  zero.dur_ns = 0;  // zero-duration: still gets one glyph cell
  zero.track = 1;
  zero.kind = TraceKind::kIncEval;
  zero.arg0 = 2;
  events.push_back(zero);
  TraceEvent instant = peval;  // instants and foreign lanes are filtered
  instant.dur_ns = -1;
  events.push_back(instant);
  TraceEvent foreign = peval;
  foreign.track = Tracer::kIoLane;
  events.push_back(foreign);

  const std::string chart = obs::GanttFromEvents(events, 2, 40);
  ASSERT_NE(chart.find("P0"), std::string::npos);
  ASSERT_NE(chart.find("P1"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('1'), std::string::npos);
  EXPECT_NE(chart.find('2'), std::string::npos);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 2);
}

TEST(Gantt, EmptyTraceRendersIdleRows) {
  const std::string chart = obs::GanttFromEvents({}, 3, 20);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("...."), std::string::npos);
  EXPECT_EQ(obs::GanttFromEvents({}, 0, 20), "");
}

TEST(Gantt, SingleWorkerWidthOne) {
  // width rounding floor: a single lane at the minimum width still renders.
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.start_ns = 0;
  e.dur_ns = 10;
  e.track = 0;
  e.kind = TraceKind::kPEval;
  events.push_back(e);
  const std::string chart = obs::GanttFromEvents(events, 1, 1);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(RunTraceCompat, EmptyAndZeroDurationTraces) {
  RunTrace empty;
  const std::string chart = empty.ToGantt(4, 10);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);
  RunTrace zero;
  zero.Add(0, 0, 1.0, 1.0, SpanKind::kPEval);  // zero virtual duration
  EXPECT_NE(zero.ToGantt(1, 10).find('#'), std::string::npos);
}

TEST(RunTraceCompat, SimTraceExportsChromeJson) {
  ErdosRenyiOptions o;
  o.num_vertices = 400;
  o.num_edges = 1500;
  o.seed = 11;
  Graph g = MakeErdosRenyi(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  ASSERT_FALSE(r.trace.spans().empty());
  std::ostringstream os;
  r.trace.ToChromeTrace(os);
  CheckChromeTrace(os.str(), r.trace.spans().size());
  // The unified span stream matches the legacy spans one-to-one.
  EXPECT_EQ(r.trace.ToEvents().size(), r.trace.spans().size());
}

TEST(ThreadedEngineTrace, EndToEndExportLoadsAndNests) {
  // The acceptance-criteria smoke: a threaded BSP run with the tracer on
  // must produce a span stream whose Chrome export re-parses cleanly, with
  // PEval/IncEval spans on worker tracks, supersteps on the master lane,
  // and a Gantt rendered from the same stream.
  ErdosRenyiOptions o;
  o.num_vertices = 400;
  o.num_edges = 1500;
  o.seed = 13;
  Graph g = MakeErdosRenyi(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  TracerGuard guard;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  cfg.num_threads = 2;
  ThreadedEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);

  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_FALSE(events.empty());
  size_t pevals = 0, supersteps = 0, worker_spans = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::kPEval) ++pevals;
    if (e.kind == TraceKind::kSuperstep) {
      ++supersteps;
      EXPECT_EQ(e.track, Tracer::kMasterLane);
    }
    if ((e.kind == TraceKind::kPEval || e.kind == TraceKind::kIncEval)) {
      EXPECT_LT(e.track, 4u);  // worker lanes
      EXPECT_GE(e.dur_ns, 0);
      ++worker_spans;
    }
  }
  EXPECT_EQ(pevals, 4u);  // one PEval span per virtual worker
  EXPECT_EQ(supersteps, r.stats.total_supersteps());
  EXPECT_EQ(worker_spans,
            r.stats.total_rounds() + 4u);  // IncEvals + one PEval each

  std::ostringstream os;
  obs::WriteChromeTrace(events, 1e-3, os);
  CheckChromeTrace(os.str(), events.size());

  const std::string chart = obs::GanttFromEvents(events, 4, 80);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

}  // namespace
}  // namespace grape
