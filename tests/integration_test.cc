// End-to-end integration tests across modules: file I/O -> partition ->
// engine pipelines, sim-vs-threaded engine agreement, PIE-vs-Pregel
// agreement, cross-algorithm identities (BFS == unit-weight SSSP), mass
// conservation in PageRank, and trace/Gantt consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "baselines/pregel.h"
#include "baselines/vertex_algos.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

Graph SocialGraph(uint64_t seed = 97) {
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 2500;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 4.0;
  o.seed = seed;
  return MakeRmat(o);
}

TEST(Integration, SaveLoadPartitionRunPipeline) {
  // The full user journey: generate -> save -> load -> partition -> run.
  Graph g = SocialGraph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "grape_it_graph.txt").string();
  GRAPE_CHECK_OK(SaveEdgeList(g, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& h = loaded.value();
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_arcs(), g.num_arcs());

  Partition p = LdgPartitioner().Partition_(h, 6);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(h));
  std::filesystem::remove(path);
}

TEST(Integration, SimAndThreadedEnginesAgree) {
  Graph g = SocialGraph(101);
  Partition p = HashPartitioner().Partition_(g, 5);
  EngineConfig sim_cfg;
  sim_cfg.mode = ModeConfig::Aap();
  SimEngine<SsspProgram> sim(p, SsspProgram(0), sim_cfg);
  auto sim_r = sim.Run();

  EngineConfig thr_cfg;
  thr_cfg.mode = ModeConfig::Aap();
  thr_cfg.num_threads = 2;
  ThreadedEngine<SsspProgram> thr(p, SsspProgram(0), thr_cfg);
  auto thr_r = thr.Run();

  ASSERT_TRUE(sim_r.converged && thr_r.converged);
  for (size_t v = 0; v < sim_r.result.size(); ++v) {
    EXPECT_DOUBLE_EQ(sim_r.result[v], thr_r.result[v]) << "v=" << v;
  }
}

TEST(Integration, PieAndPregelAgreeOnAllThreeAlgorithms) {
  Graph g = SocialGraph(103);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();

  {
    SimEngine<SsspProgram> pie(p, SsspProgram(1), cfg);
    pregel::Engine<pregel::SsspVertexProgram> vc(
        g, pregel::SsspVertexProgram{.source = 1});
    auto a = pie.Run();
    auto b = vc.Run();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_DOUBLE_EQ(a.result[v], b.values[v]);
    }
  }
  {
    SimEngine<CcProgram> pie(p, CcProgram{}, cfg);
    pregel::Engine<pregel::CcVertexProgram> vc(g, {});
    auto a = pie.Run();
    auto b = vc.Run();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(a.result[v], b.values[v]);
    }
  }
  {
    SimEngine<PageRankProgram> pie(p, PageRankProgram(0.85, 1e-9), cfg);
    pregel::Engine<pregel::PageRankVertexProgram> vc(
        g, pregel::PageRankVertexProgram{.damping = 0.85, .tol = 1e-9});
    auto a = pie.Run();
    auto b = vc.Run();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_NEAR(a.result[v], b.values[v].score, 1e-4);
    }
  }
}

TEST(Integration, BfsEqualsUnitWeightSssp) {
  // Identity: hop levels == shortest distances when all weights are 1.
  ErdosRenyiOptions o;
  o.num_vertices = 300;
  o.num_edges = 900;
  o.directed = true;
  o.weighted = false;  // weight 1.0
  o.seed = 107;
  Graph g = MakeErdosRenyi(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<BfsProgram> bfs(p, BfsProgram(0), cfg);
  SimEngine<SsspProgram> sssp(p, SsspProgram(0), cfg);
  auto lb = bfs.Run();
  auto ld = sssp.Run();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (lb.result[v] < 0) {
      EXPECT_EQ(ld.result[v], kInfinity);
    } else {
      EXPECT_DOUBLE_EQ(static_cast<double>(lb.result[v]), ld.result[v]);
    }
  }
}

TEST(Integration, PageRankMassIsConserved) {
  // The delta-accumulative formulation conserves mass: total score converges
  // towards (1-d) * n / (1-d·(1-dangling share)) from below; with no
  // dangling vertices the settled score equals the injected mass times the
  // geometric series, so total score <= n and >= (1-d) * n.
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 3000;
  o.seed = 109;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-9), cfg);
  auto r = engine.Run();
  double total = 0;
  for (double s : r.result) total += s;
  EXPECT_GE(total, 0.15 * g.num_vertices());
  EXPECT_LE(total, 1.0 * g.num_vertices() + 1e-6);
}

TEST(Integration, TraceMatchesStats) {
  Graph g = SocialGraph(113);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  // One PEval span per worker; IncEval spans match the round counters.
  uint64_t pevals = 0;
  for (const auto& s : r.trace.spans()) {
    if (s.kind == SpanKind::kPEval) ++pevals;
  }
  EXPECT_EQ(pevals, 4u);
  for (FragmentId w = 0; w < 4; ++w) {
    EXPECT_EQ(r.trace.RoundsOf(w), r.stats.workers[w].rounds);
  }
  const std::string gantt = r.trace.ToGantt(4, 80);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(Integration, ModesProduceIdenticalFixpointsDifferentSchedules) {
  // The figure-level claim behind Fig 6: same answers, different timing.
  Graph g = SocialGraph(127);
  Partition p = LdgPartitioner().Partition_(g, 6);
  std::vector<double> times;
  std::vector<CcProgram::ResultT> results;
  for (const ModeConfig& mode :
       {ModeConfig::Bsp(), ModeConfig::Ap(), ModeConfig::Ssp(2),
        ModeConfig::Aap(), ModeConfig::Hsync()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.speed_factors = {1.0, 3.0, 1.0, 1.0, 2.0, 1.0};
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    times.push_back(r.stats.makespan);
    results.push_back(r.result);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
  // Schedules genuinely differ (makespans are not all identical).
  bool any_diff = false;
  for (size_t i = 1; i < times.size(); ++i) {
    any_diff |= std::abs(times[i] - times[0]) > 1e-9;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Integration, LargeWorkerCountSmallGraph) {
  // More workers than useful: many fragments own a handful of vertices;
  // everything still terminates and agrees.
  Graph g = SocialGraph(131);
  Partition p = HashPartitioner().Partition_(g, 64);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
}

TEST(Integration, EmptyGraphAndSingletonGraph) {
  {
    GraphBuilder b(1, false);
    Graph g = std::move(b).Build();
    Partition p = BuildPartition(g, {0}, 1);
    EngineConfig cfg;
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    auto r = engine.Run();
    EXPECT_EQ(r.result, (std::vector<VertexId>{0}));
  }
  {
    GraphBuilder b(4, false);  // 4 isolated vertices over 2 fragments
    Graph g = std::move(b).Build();
    Partition p = BuildPartition(g, {0, 1, 0, 1}, 2);
    EngineConfig cfg;
    cfg.mode = ModeConfig::Aap();
    SimEngine<SsspProgram> engine(p, SsspProgram(2), cfg);
    auto r = engine.Run();
    EXPECT_DOUBLE_EQ(r.result[2], 0.0);
    EXPECT_EQ(r.result[0], kInfinity);
  }
}

}  // namespace
}  // namespace grape
