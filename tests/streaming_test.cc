// Tests for the out-of-core execution path: ChunkedArcSource chunk plans
// and residency accounting, bit-identical streaming-vs-materialised PIE
// execution (CC / PageRank / SSSP / BFS / CF) across chunk budgets —
// including budget 1 and larger-than-graph — on both the in-memory and the
// mmap-backed source, the threaded engine over streaming fragments, the
// memoised outer-lid cache's hit accounting, and the Release-mode guarantee
// that unknown global ids translate to kInvalidLocal instead of garbage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/cf.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/store/gcsr_store.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

Graph TestGraph() {
  RmatOptions o;
  o.num_vertices = 1500;
  o.num_edges = 9000;
  o.directed = true;
  o.weighted = true;
  o.seed = 42;
  return MakeRmat(o);
}

TEST(ChunkedArcSource, PlanCoversAllArcsWithinBudget) {
  Graph g = TestGraph();
  for (const uint64_t budget : {uint64_t{1}, uint64_t{7}, uint64_t{256},
                                g.num_arcs() + 1000}) {
    ChunkedArcSource src(g.View(), budget);
    ASSERT_GE(src.num_chunks(), 1u);
    VertexId expect_begin = 0;
    uint64_t covered = 0;
    src.ForEachChunk([&](const ChunkedArcSource::Chunk& c,
                         std::span<const Arc> arcs) {
      EXPECT_EQ(c.begin, expect_begin);
      EXPECT_LT(c.begin, c.end);
      EXPECT_LE(c.arc_count, src.effective_budget());
      EXPECT_EQ(arcs.size(), c.arc_count);
      // The chunk's arcs are exactly the concatenated adjacency lists.
      uint64_t off = 0;
      for (VertexId v = c.begin; v < c.end; ++v) {
        const auto edges = g.OutEdges(v);
        for (size_t i = 0; i < edges.size(); ++i) {
          EXPECT_EQ(arcs[off + i].dst, edges[i].dst);
          EXPECT_EQ(arcs[off + i].weight, edges[i].weight);
        }
        off += edges.size();
        EXPECT_EQ(src.ChunkOf(v), c.index);
      }
      EXPECT_EQ(off, c.arc_count);
      expect_begin = c.end;
      covered += c.arc_count;
      EXPECT_EQ(src.resident_arcs(), c.arc_count);  // one window at a time
    });
    EXPECT_EQ(expect_begin, g.num_vertices());
    EXPECT_EQ(covered, g.num_arcs());
    EXPECT_EQ(src.resident_arcs(), 0u);
    EXPECT_LE(src.peak_resident_arcs(), src.effective_budget());
  }
}

TEST(ChunkedArcSource, BudgetOneIsolatesVertices) {
  Graph g = TestGraph();
  ChunkedArcSource src(g.View(), 1);
  // With a 1-arc budget no chunk holds more than one vertex that actually
  // has arcs (zero-degree vertices coalesce into neighbouring chunks for
  // free — they contribute no residency).
  for (size_t k = 0; k < src.num_chunks(); ++k) {
    const auto c = src.chunk(k);
    uint32_t with_arcs = 0;
    for (VertexId v = c.begin; v < c.end; ++v) {
      with_arcs += g.OutDegree(v) > 0 ? 1 : 0;
    }
    EXPECT_LE(with_arcs, 1u) << "chunk " << k;
  }
  // And the effective budget is the max out-degree.
  uint64_t max_deg = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max<uint64_t>(max_deg, g.OutDegree(v));
  }
  EXPECT_EQ(src.effective_budget(), max_deg);
}

TEST(ChunkedArcSource, EmptyGraph) {
  Graph g;
  ChunkedArcSource src(g.View(), 16);
  EXPECT_EQ(src.num_chunks(), 0u);
  src.ForEachChunk([&](const ChunkedArcSource::Chunk&, std::span<const Arc>) {
    FAIL() << "no chunks expected";
  });
}

/// Runs `program` through the sim engine over `p` and returns the result.
template <typename Program>
typename Program::ResultT RunSim(const Partition& p, Program prog) {
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<Program> engine(p, std::move(prog), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  return std::move(r.result);
}

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, BitIdenticalAcrossModesAndBackends) {
  const uint64_t budget = GetParam();
  Graph g = TestGraph();
  const std::string path = TmpPath("streaming_eq.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);
  Partition mem = BuildPartition(g, placement, m);

  // Two streaming sources: in-memory backend over the Graph, mapped backend
  // over the store. Results must match the materialised run bit for bit.
  ChunkedArcSource mem_src(g.View(), budget);
  ChunkedArcSource map_src(mapped.value(), budget);
  PartitionOptions mem_opts{.arc_source = &mem_src};
  PartitionOptions map_opts{.arc_source = &map_src};
  Partition stream_mem = BuildPartition(g, placement, m, nullptr, mem_opts);
  Partition stream_map =
      BuildPartition(mapped.value().View(), placement, m, nullptr, map_opts);

  const auto cc = RunSim(mem, CcProgram{});
  EXPECT_EQ(cc, RunSim(stream_mem, CcProgram{}));
  EXPECT_EQ(cc, RunSim(stream_map, CcProgram{}));

  const PageRankProgram pr(0.85, 1e-6);
  const auto pr_ref = RunSim(mem, pr);
  EXPECT_EQ(pr_ref, RunSim(stream_mem, pr));
  EXPECT_EQ(pr_ref, RunSim(stream_map, pr));

  const SsspProgram sssp(0);
  const auto sssp_ref = RunSim(mem, sssp);
  EXPECT_EQ(sssp_ref, RunSim(stream_mem, sssp));
  EXPECT_EQ(sssp_ref, RunSim(stream_map, sssp));

  const BfsProgram bfs(0);
  const auto bfs_ref = RunSim(mem, bfs);
  EXPECT_EQ(bfs_ref, RunSim(stream_mem, bfs));
  EXPECT_EQ(bfs_ref, RunSim(stream_map, bfs));

  // The sim engine runs one round at a time, so sweeps hold one window;
  // SSSP/BFS point lookups additionally pin up to point_lru_windows()
  // windows on the mapped backend (released with the run — see
  // ChunkedArcSource::NotePointLookup).
  EXPECT_LE(map_src.peak_resident_arcs(),
            (1 + map_src.point_lru_windows()) * map_src.effective_budget());
  EXPECT_EQ(map_src.resident_arcs(), 0u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ChunkBudgets, StreamingEquivalence,
                         ::testing::Values(uint64_t{1}, uint64_t{113},
                                           uint64_t{1} << 30));

TEST_P(StreamingEquivalence, CfTrainsBitIdenticallyAcrossModesAndBackends) {
  // CF reaches adjacency through the same mode-independent sweep now: SGD
  // over streaming fragments must visit the identical training edges in the
  // identical order and land on bit-identical factors.
  const uint64_t budget = GetParam();
  BipartiteOptions o;
  o.num_users = 300;
  o.num_items = 40;
  o.num_ratings = 6000;
  o.seed = 31;
  Graph g = MakeBipartiteRatings(o);
  const std::string path = TmpPath("streaming_cf.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped.value().View().is_bipartite());

  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);
  Partition mem = BuildPartition(g, placement, m);
  ChunkedArcSource mem_src(g.View(), budget);
  ChunkedArcSource map_src(mapped.value(), budget);
  PartitionOptions mem_opts{.arc_source = &mem_src};
  PartitionOptions map_opts{.arc_source = &map_src};
  Partition stream_mem = BuildPartition(g, placement, m, nullptr, mem_opts);
  Partition stream_map =
      BuildPartition(mapped.value().View(), placement, m, nullptr, map_opts);

  CfProgram::Options opts;
  opts.max_epochs = 8;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.mode.bounded_staleness = true;
  cfg.mode.staleness_bound = 3;
  const auto run = [&](const Partition& p, const GraphView& view) {
    SimEngine<CfProgram> engine(p, CfProgram(view, opts), cfg);
    auto r = engine.Run();
    EXPECT_TRUE(r.converged);
    return std::move(r.result);
  };
  const CfModel ref = run(mem, g);
  const CfModel from_stream = run(stream_mem, g);
  const CfModel from_map = run(stream_map, mapped.value().View());
  EXPECT_GT(ref.total_epochs, 0u);
  EXPECT_EQ(ref.factors, from_stream.factors);
  EXPECT_EQ(ref.factors, from_map.factors);
  EXPECT_EQ(ref.train_rmse, from_stream.train_rmse);
  EXPECT_EQ(ref.train_rmse, from_map.train_rmse);
  EXPECT_EQ(ref.test_rmse, from_map.test_rmse);
  EXPECT_LE(map_src.peak_resident_arcs(), map_src.effective_budget());
  EXPECT_EQ(map_src.resident_arcs(), 0u);
  std::remove(path.c_str());
}

TEST(OuterLidCache, HitAccountingAcrossSweeps) {
  Graph g = TestGraph();
  const FragmentId m = 3;
  auto placement = HashPartitioner().Assign(g, m);
  ChunkedArcSource src(g.View(), 97);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(g, placement, m, nullptr, opts);
  Partition mem = BuildPartition(g, placement, m);

  std::vector<LocalArc> scratch;
  for (FragmentId i = 0; i < m; ++i) {
    const Fragment& f = p.fragments[i];
    const auto sweep = [&] {
      uint64_t arcs = 0;
      f.SweepInnerAdjacency(scratch, [&](LocalVertex, const auto& arcs_of) {
        arcs += arcs_of().size();
      });
      return arcs;
    };
    // First sweep resolves every window once: all misses, nothing served
    // from a pre-built entry yet.
    const uint64_t arcs = sweep();
    EXPECT_EQ(arcs, f.num_arcs());
    const LidCacheStats s1 = f.lid_cache_stats();
    EXPECT_EQ(s1.misses, f.num_arcs());
    EXPECT_EQ(s1.hits, 0u);
    EXPECT_EQ(s1.cached_lids, f.num_arcs());
    // Repeat sweeps are pure cache hits — no re-translation.
    EXPECT_EQ(sweep(), f.num_arcs());
    EXPECT_EQ(sweep(), f.num_arcs());
    const LidCacheStats s3 = f.lid_cache_stats();
    EXPECT_EQ(s3.misses, f.num_arcs());
    EXPECT_EQ(s3.hits, 2 * f.num_arcs());
    EXPECT_EQ(s3.cached_lids, f.num_arcs());

    // Cached sweeps keep serving the materialised build's exact arcs.
    const Fragment& fm = mem.fragments[i];
    LocalVertex expect_l = 0;
    f.SweepInnerAdjacency(scratch, [&](LocalVertex l, const auto& arcs_of) {
      ASSERT_EQ(l, expect_l++);
      const auto got = arcs_of();
      const auto expect = fm.OutEdges(l);
      ASSERT_EQ(got.size(), expect.size());
      for (size_t k = 0; k < got.size(); ++k) {
        ASSERT_EQ(got[k].dst, expect[k].dst);
        ASSERT_EQ(got[k].weight, expect[k].weight);
      }
    });
  }
}

TEST(OuterLidCache, BudgetZeroDisablesAndCapsHold) {
  Graph g = TestGraph();
  const FragmentId m = 3;
  auto placement = HashPartitioner().Assign(g, m);
  ChunkedArcSource src(g.View(), 97);

  PartitionOptions off{.arc_source = &src, .lid_cache_arcs = 0};
  Partition p_off = BuildPartition(g, placement, m, nullptr, off);
  std::vector<LocalArc> scratch;
  const Fragment& f0 = p_off.fragments[0];
  for (int s = 0; s < 2; ++s) {
    f0.SweepInnerAdjacency(scratch, [&](LocalVertex, const auto& arcs_of) {
      (void)arcs_of();
    });
  }
  const LidCacheStats off_stats = f0.lid_cache_stats();
  EXPECT_EQ(off_stats.hits, 0u);
  EXPECT_EQ(off_stats.cached_lids, 0u);
  EXPECT_EQ(off_stats.misses, 2 * f0.num_arcs());

  // A partial budget caches a prefix of chunks and leaves the rest on the
  // translate path: memoised lids never exceed the cap, repeat sweeps still
  // hit on the cached prefix.
  PartitionOptions capped{.arc_source = &src,
                          .lid_cache_arcs = p_off.fragments[0].num_arcs() / 2};
  Partition p_cap = BuildPartition(g, placement, m, nullptr, capped);
  const Fragment& fc = p_cap.fragments[0];
  for (int s = 0; s < 2; ++s) {
    fc.SweepInnerAdjacency(scratch, [&](LocalVertex, const auto& arcs_of) {
      (void)arcs_of();
    });
  }
  const LidCacheStats cap_stats = fc.lid_cache_stats();
  EXPECT_LE(cap_stats.cached_lids, capped.lid_cache_arcs);
  EXPECT_GT(cap_stats.cached_lids, 0u);
  EXPECT_GE(cap_stats.hits, cap_stats.cached_lids);  // ≥ one full reuse
  EXPECT_GT(cap_stats.misses, fc.num_arcs());        // uncached tail re-pays
}

TEST(StreamingFragment, UnknownGlobalIdsTranslateToInvalid) {
  // Release-mode regression: LocalTarget used to guard unknown ids with a
  // debug-only check and computed a garbage local id when it compiled out
  // (out-of-bounds state writes downstream). Unknown ids — remote vertices
  // that are not outer copies, or ids past the vertex range — must map to
  // kInvalidLocal in every build mode.
  GraphBuilder b(4, true);
  b.AddEdge(0, 1, 1.0);  // internal to fragment 0
  b.AddEdge(2, 3, 1.0);  // internal to fragment 1
  Graph g = std::move(b).Build();
  ChunkedArcSource src(g.View(), 2);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(g, {0, 0, 1, 1}, 2, nullptr, opts);

  const Fragment& f0 = p.fragments[0];
  ASSERT_EQ(f0.num_outer(), 0u);  // no cut edges: nothing to resolve to
  EXPECT_EQ(f0.LocalTarget(2), Fragment::kInvalidLocal);  // remote, not outer
  EXPECT_EQ(f0.LocalTarget(3), Fragment::kInvalidLocal);
  EXPECT_EQ(f0.LocalTarget(1000), Fragment::kInvalidLocal);  // out of range
  EXPECT_EQ(f0.LocalTarget(0), 0u);  // sanity: known ids still resolve
  EXPECT_EQ(f0.LocalId(1000), Fragment::kInvalidLocal);

  // Valid graphs never produce unknown targets: translation drops nothing.
  std::vector<LocalArc> scratch;
  EXPECT_EQ(f0.Adjacency(0, scratch).size(), 1u);
}

TEST(PointLookupLru, BoundsMappedResidencyAndReleases) {
  // The point-lookup path used to never issue MADV_DONTNEED: an
  // out-of-core SSSP/BFS run grew clean-page residency without bound. The
  // source-level LRU must (a) account point windows in resident_arcs, (b)
  // cap them at point_lru_windows() windows, and (c) drop them when the
  // engine finishes / ReleasePointWindows is called.
  Graph g = TestGraph();
  const std::string path = TmpPath("point_lru.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const FragmentId m = 3;
  auto placement = HashPartitioner().Assign(g, m);
  ChunkedArcSource src(mapped.value(), 113);
  ASSERT_GT(src.point_lru_windows(), 0u);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(mapped.value().View(), placement, m, nullptr,
                               opts);

  // Engine run: frontier-driven relaxation hammers the point path. The
  // residency stays within (1 sweep + LRU) windows and returns to zero
  // when the run ends.
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  auto r = SimEngine<SsspProgram>(p, SsspProgram(0), cfg).Run();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::Sssp(g, 0));
  EXPECT_GT(src.peak_resident_arcs(), 0u);
  EXPECT_LE(src.peak_resident_arcs(),
            (1 + src.point_lru_windows()) * src.effective_budget());
  EXPECT_EQ(src.resident_arcs(), 0u) << "engine must release point windows";

  // Direct point lookups: windows accumulate up to the LRU capacity, no
  // further, and release on demand (idempotently).
  src.ResetStats();
  std::vector<LocalArc> scratch;
  const Fragment& f = p.fragments[0];
  for (LocalVertex l = 0; l < f.num_inner(); ++l) {
    (void)f.Adjacency(l, scratch);
    EXPECT_LE(src.resident_arcs(),
              src.point_lru_windows() * src.effective_budget());
  }
  if (src.num_chunks() >= src.point_lru_windows()) {
    EXPECT_GT(src.resident_arcs(), 0u);
  }
  src.ReleasePointWindows();
  EXPECT_EQ(src.resident_arcs(), 0u);
  src.ReleasePointWindows();
  EXPECT_EQ(src.resident_arcs(), 0u);
  std::remove(path.c_str());
}

TEST(PointLookupLru, ResetStatsPreservesHeldWindowAccounting) {
  // Regression: ResetStats used to zero resident_arcs while the point LRU
  // still held windows; the eventual ReleasePointWindows then decremented
  // the unsigned count below zero and residency wrapped to ~2^64.
  Graph g = TestGraph();
  const std::string path = TmpPath("point_reset.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  ChunkedArcSource src(mapped.value(), 113);
  auto placement = HashPartitioner().Assign(mapped.value().View(), 2);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(mapped.value().View(), placement, 2, nullptr,
                               opts);
  // Populate the LRU with held windows via point lookups.
  std::vector<LocalArc> scratch;
  const Fragment& f = p.fragments[0];
  for (LocalVertex l = 0; l < f.num_inner() && l < 200; ++l) {
    (void)f.Adjacency(l, scratch);
  }
  const uint64_t held = src.resident_arcs();
  ASSERT_GT(held, 0u) << "test needs held point windows to be meaningful";

  src.ResetStats();
  // Live accounting survives the reset; peaks restart from it.
  EXPECT_EQ(src.resident_arcs(), held);
  EXPECT_EQ(src.peak_resident_arcs(), held);
  src.ReleasePointWindows();
  EXPECT_EQ(src.resident_arcs(), 0u) << "residency wrapped below zero";
  std::remove(path.c_str());
}

TEST(PointLookupLru, TeardownDuringConcurrentSweepStaysBalanced) {
  // Regression: ReleasePointWindows racing sweeps / lookups / a second
  // teardown must release each held window exactly once (no
  // double-decrement of a chunk's holder refcount) and never let the
  // residency counter wrap. Also pins the policy that the teardown's
  // madvise calls run outside the LRU spinlock.
  Graph g = TestGraph();
  const std::string path = TmpPath("point_teardown.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  ChunkedArcSource src(mapped.value(), 113);
  const uint64_t kWrapGuard = uint64_t{1} << 60;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Two sweepers exercise Acquire/Release chunk refcounting in parallel.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        src.ForEachChunk([&](const ChunkedArcSource::Chunk&,
                             std::span<const Arc>) {
          EXPECT_LT(src.resident_arcs(), kWrapGuard);
        });
      }
    });
  }
  // Two lookup threads keep the point LRU churning (insert + evict).
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const VertexId n = mapped.value().View().num_vertices();
      VertexId v = static_cast<VertexId>(t);
      while (!stop.load()) {
        src.NotePointLookup(v % n);
        v += 7;
      }
    });
  }
  // Mid-flight teardowns: each may only release windows it swapped out.
  for (int i = 0; i < 200; ++i) {
    src.ReleasePointWindows();
    EXPECT_LT(src.resident_arcs(), kWrapGuard) << "iteration " << i;
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  src.ReleasePointWindows();
  EXPECT_EQ(src.resident_arcs(), 0u)
      << "unbalanced release: refcount/residency accounting broke";
  std::remove(path.c_str());
}

TEST(StreamingThreaded, CcMatchesSequentialGroundTruth) {
  // CC is the paper's undirected workload (cid flows copy -> owner, which
  // needs the symmetric back arc to close cycles), so this ground-truth
  // comparison uses an undirected graph.
  RmatOptions o;
  o.num_vertices = 1500;
  o.num_edges = 9000;
  o.directed = false;
  o.weighted = true;
  o.seed = 42;
  Graph g = MakeRmat(o);
  const FragmentId m = 6;
  auto placement = HashPartitioner().Assign(g, m);
  ChunkedArcSource src(g.View(), 97);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(g, placement, m, nullptr, opts);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.num_threads = 3;  // virtual workers > physical threads
  ThreadedEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
  EXPECT_EQ(src.resident_arcs(), 0u);
}

TEST(StreamingFragment, TranslationMatchesMaterialisedArcs) {
  Graph g = TestGraph();
  const FragmentId m = 3;
  auto placement = HashPartitioner().Assign(g, m);
  Partition mem = BuildPartition(g, placement, m);
  ChunkedArcSource src(g.View(), 64);
  PartitionOptions opts{.arc_source = &src};
  Partition stream = BuildPartition(g, placement, m, nullptr, opts);

  std::vector<LocalArc> scratch;
  for (FragmentId i = 0; i < m; ++i) {
    const Fragment& fm = mem.fragments[i];
    const Fragment& fs = stream.fragments[i];
    ASSERT_TRUE(fs.streaming());
    ASSERT_FALSE(fm.streaming());
    ASSERT_EQ(fm.num_arcs(), fs.num_arcs());
    for (LocalVertex l = 0; l < fm.num_inner(); ++l) {
      const auto expect = fm.OutEdges(l);
      const auto got = fs.Adjacency(l, scratch);
      ASSERT_EQ(expect.size(), got.size());
      for (size_t k = 0; k < expect.size(); ++k) {
        ASSERT_EQ(expect[k].dst, got[k].dst);
        ASSERT_EQ(expect[k].weight, got[k].weight);
      }
      ASSERT_EQ(fs.OutDegree(l), expect.size());
    }
    // The sweep visits the same vertices with the same arcs.
    std::vector<LocalArc> sweep_scratch;
    LocalVertex expect_l = 0;
    fs.SweepInnerAdjacency(sweep_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
      ASSERT_EQ(l, expect_l++);
      const auto arcs = arcs_of();
      const auto expect = fm.OutEdges(l);
      ASSERT_EQ(arcs.size(), expect.size());
      for (size_t k = 0; k < arcs.size(); ++k) {
        ASSERT_EQ(arcs[k].dst, expect[k].dst);
      }
    });
    EXPECT_EQ(expect_l, fm.num_inner());
  }
}

}  // namespace
}  // namespace grape
