// Tests for the out-of-core execution path: ChunkedArcSource chunk plans
// and residency accounting, bit-identical streaming-vs-materialised PIE
// execution (CC / PageRank / SSSP / BFS) across chunk budgets — including
// budget 1 and larger-than-graph — on both the in-memory and the
// mmap-backed source, and the threaded engine over streaming fragments.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/store/gcsr_store.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

Graph TestGraph() {
  RmatOptions o;
  o.num_vertices = 1500;
  o.num_edges = 9000;
  o.directed = true;
  o.weighted = true;
  o.seed = 42;
  return MakeRmat(o);
}

TEST(ChunkedArcSource, PlanCoversAllArcsWithinBudget) {
  Graph g = TestGraph();
  for (const uint64_t budget : {uint64_t{1}, uint64_t{7}, uint64_t{256},
                                g.num_arcs() + 1000}) {
    ChunkedArcSource src(g.View(), budget);
    ASSERT_GE(src.num_chunks(), 1u);
    VertexId expect_begin = 0;
    uint64_t covered = 0;
    src.ForEachChunk([&](const ChunkedArcSource::Chunk& c,
                         std::span<const Arc> arcs) {
      EXPECT_EQ(c.begin, expect_begin);
      EXPECT_LT(c.begin, c.end);
      EXPECT_LE(c.arc_count, src.effective_budget());
      EXPECT_EQ(arcs.size(), c.arc_count);
      // The chunk's arcs are exactly the concatenated adjacency lists.
      uint64_t off = 0;
      for (VertexId v = c.begin; v < c.end; ++v) {
        const auto edges = g.OutEdges(v);
        for (size_t i = 0; i < edges.size(); ++i) {
          EXPECT_EQ(arcs[off + i].dst, edges[i].dst);
          EXPECT_EQ(arcs[off + i].weight, edges[i].weight);
        }
        off += edges.size();
        EXPECT_EQ(src.ChunkOf(v), c.index);
      }
      EXPECT_EQ(off, c.arc_count);
      expect_begin = c.end;
      covered += c.arc_count;
      EXPECT_EQ(src.resident_arcs(), c.arc_count);  // one window at a time
    });
    EXPECT_EQ(expect_begin, g.num_vertices());
    EXPECT_EQ(covered, g.num_arcs());
    EXPECT_EQ(src.resident_arcs(), 0u);
    EXPECT_LE(src.peak_resident_arcs(), src.effective_budget());
  }
}

TEST(ChunkedArcSource, BudgetOneIsolatesVertices) {
  Graph g = TestGraph();
  ChunkedArcSource src(g.View(), 1);
  // With a 1-arc budget no chunk holds more than one vertex that actually
  // has arcs (zero-degree vertices coalesce into neighbouring chunks for
  // free — they contribute no residency).
  for (size_t k = 0; k < src.num_chunks(); ++k) {
    const auto c = src.chunk(k);
    uint32_t with_arcs = 0;
    for (VertexId v = c.begin; v < c.end; ++v) {
      with_arcs += g.OutDegree(v) > 0 ? 1 : 0;
    }
    EXPECT_LE(with_arcs, 1u) << "chunk " << k;
  }
  // And the effective budget is the max out-degree.
  uint64_t max_deg = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max<uint64_t>(max_deg, g.OutDegree(v));
  }
  EXPECT_EQ(src.effective_budget(), max_deg);
}

TEST(ChunkedArcSource, EmptyGraph) {
  Graph g;
  ChunkedArcSource src(g.View(), 16);
  EXPECT_EQ(src.num_chunks(), 0u);
  src.ForEachChunk([&](const ChunkedArcSource::Chunk&, std::span<const Arc>) {
    FAIL() << "no chunks expected";
  });
}

/// Runs `program` through the sim engine over `p` and returns the result.
template <typename Program>
typename Program::ResultT RunSim(const Partition& p, Program prog) {
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<Program> engine(p, std::move(prog), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  return std::move(r.result);
}

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, BitIdenticalAcrossModesAndBackends) {
  const uint64_t budget = GetParam();
  Graph g = TestGraph();
  const std::string path = TmpPath("streaming_eq.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const FragmentId m = 4;
  auto placement = HashPartitioner().Assign(g, m);
  Partition mem = BuildPartition(g, placement, m);

  // Two streaming sources: in-memory backend over the Graph, mapped backend
  // over the store. Results must match the materialised run bit for bit.
  ChunkedArcSource mem_src(g.View(), budget);
  ChunkedArcSource map_src(mapped.value(), budget);
  PartitionOptions mem_opts{.arc_source = &mem_src};
  PartitionOptions map_opts{.arc_source = &map_src};
  Partition stream_mem = BuildPartition(g, placement, m, nullptr, mem_opts);
  Partition stream_map =
      BuildPartition(mapped.value().View(), placement, m, nullptr, map_opts);

  const auto cc = RunSim(mem, CcProgram{});
  EXPECT_EQ(cc, RunSim(stream_mem, CcProgram{}));
  EXPECT_EQ(cc, RunSim(stream_map, CcProgram{}));

  const PageRankProgram pr(0.85, 1e-6);
  const auto pr_ref = RunSim(mem, pr);
  EXPECT_EQ(pr_ref, RunSim(stream_mem, pr));
  EXPECT_EQ(pr_ref, RunSim(stream_map, pr));

  const SsspProgram sssp(0);
  const auto sssp_ref = RunSim(mem, sssp);
  EXPECT_EQ(sssp_ref, RunSim(stream_mem, sssp));
  EXPECT_EQ(sssp_ref, RunSim(stream_map, sssp));

  const BfsProgram bfs(0);
  const auto bfs_ref = RunSim(mem, bfs);
  EXPECT_EQ(bfs_ref, RunSim(stream_mem, bfs));
  EXPECT_EQ(bfs_ref, RunSim(stream_map, bfs));

  // The sim engine runs one round at a time, so the acquired window never
  // exceeds one chunk (point lookups bound only their heap translation —
  // see ChunkedArcSource::OutEdges(v)).
  EXPECT_LE(map_src.peak_resident_arcs(), map_src.effective_budget());
  EXPECT_EQ(map_src.resident_arcs(), 0u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ChunkBudgets, StreamingEquivalence,
                         ::testing::Values(uint64_t{1}, uint64_t{113},
                                           uint64_t{1} << 30));

TEST(StreamingThreaded, CcMatchesSequentialGroundTruth) {
  // CC is the paper's undirected workload (cid flows copy -> owner, which
  // needs the symmetric back arc to close cycles), so this ground-truth
  // comparison uses an undirected graph.
  RmatOptions o;
  o.num_vertices = 1500;
  o.num_edges = 9000;
  o.directed = false;
  o.weighted = true;
  o.seed = 42;
  Graph g = MakeRmat(o);
  const FragmentId m = 6;
  auto placement = HashPartitioner().Assign(g, m);
  ChunkedArcSource src(g.View(), 97);
  PartitionOptions opts{.arc_source = &src};
  Partition p = BuildPartition(g, placement, m, nullptr, opts);

  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.num_threads = 3;  // virtual workers > physical threads
  ThreadedEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
  EXPECT_EQ(src.resident_arcs(), 0u);
}

TEST(StreamingFragment, TranslationMatchesMaterialisedArcs) {
  Graph g = TestGraph();
  const FragmentId m = 3;
  auto placement = HashPartitioner().Assign(g, m);
  Partition mem = BuildPartition(g, placement, m);
  ChunkedArcSource src(g.View(), 64);
  PartitionOptions opts{.arc_source = &src};
  Partition stream = BuildPartition(g, placement, m, nullptr, opts);

  std::vector<LocalArc> scratch;
  for (FragmentId i = 0; i < m; ++i) {
    const Fragment& fm = mem.fragments[i];
    const Fragment& fs = stream.fragments[i];
    ASSERT_TRUE(fs.streaming());
    ASSERT_FALSE(fm.streaming());
    ASSERT_EQ(fm.num_arcs(), fs.num_arcs());
    for (LocalVertex l = 0; l < fm.num_inner(); ++l) {
      const auto expect = fm.OutEdges(l);
      const auto got = fs.Adjacency(l, scratch);
      ASSERT_EQ(expect.size(), got.size());
      for (size_t k = 0; k < expect.size(); ++k) {
        ASSERT_EQ(expect[k].dst, got[k].dst);
        ASSERT_EQ(expect[k].weight, got[k].weight);
      }
      ASSERT_EQ(fs.OutDegree(l), expect.size());
    }
    // The sweep visits the same vertices with the same arcs.
    std::vector<LocalArc> sweep_scratch;
    LocalVertex expect_l = 0;
    fs.SweepInnerAdjacency(sweep_scratch, [&](LocalVertex l,
                                              const auto& arcs_of) {
      ASSERT_EQ(l, expect_l++);
      const auto arcs = arcs_of();
      const auto expect = fm.OutEdges(l);
      ASSERT_EQ(arcs.size(), expect.size());
      for (size_t k = 0; k < arcs.size(); ++k) {
        ASSERT_EQ(arcs[k].dst, expect[k].dst);
      }
    });
    EXPECT_EQ(expect_l, fm.num_inner());
  }
}

}  // namespace
}  // namespace grape
