// Unit tests for the observability layer (src/obs): metrics-registry shard
// aggregation under multithread churn (run under TSan in CI), histogram
// bucket/percentile math against exact references, snapshot JSON
// well-formedness (re-parsed with the standalone mini parser), RunReport
// structure, and the perf-counter no-op path.
//
// Registry lifetime rule under test discipline: a non-global MetricsRegistry
// must only be *updated* from threads joined before it dies (thread exit
// retires cells into the registry), so every Add/Observe on a local registry
// below happens on a spawned thread. The leaked Global() registry has no
// such restriction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "runtime/stats_collector.h"

namespace grape {
namespace {

using obs::HistogramData;
using obs::JsonWriter;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(Metrics, CounterAggregatesAcrossThreadsWithChurn) {
  // Two waves of threads: wave 1's cells must survive thread exit (folded
  // into the retired sum) and combine with wave 2's live blocks. A snapshot
  // races the second wave on purpose — TSan in CI proves the sharding is
  // clean; the final total proves nothing is lost or double-counted.
  MetricsRegistry reg;
  obs::Counter* ops = reg.GetCounter("test.ops");
  obs::Histogram* lat = reg.GetHistogram("test.latency");
  constexpr int kThreads = 4;
  constexpr uint64_t kAddsPerThread = 20000;
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (uint64_t i = 0; i < kAddsPerThread; ++i) {
          ops->Add(1);
          lat->Observe(static_cast<uint64_t>(t) * 1000 + (i % 7));
        }
      });
    }
    // Concurrent snapshot: any value it reads is a valid partial total.
    MetricsSnapshot racing = reg.Snapshot();
    EXPECT_LE(racing.counters["test.ops"],
              2 * kThreads * kAddsPerThread);
    for (auto& th : threads) th.join();
  }
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters["test.ops"], 2 * kThreads * kAddsPerThread);
  EXPECT_EQ(snap.histograms["test.latency"].count,
            2 * kThreads * kAddsPerThread);
}

TEST(Metrics, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("a"), reg.GetCounter("a"));
  EXPECT_NE(reg.GetCounter("a"), reg.GetCounter("b"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
}

TEST(Metrics, HistogramBucketBounds) {
  // Bucket b holds values of bit_width b: {0}, {1}, [2,3], [4,7], ...
  EXPECT_EQ(HistogramData::BucketLo(0), 0u);
  EXPECT_EQ(HistogramData::BucketHi(0), 0u);
  EXPECT_EQ(HistogramData::BucketLo(1), 1u);
  EXPECT_EQ(HistogramData::BucketHi(1), 1u);
  EXPECT_EQ(HistogramData::BucketLo(2), 2u);
  EXPECT_EQ(HistogramData::BucketHi(2), 3u);
  EXPECT_EQ(HistogramData::BucketLo(11), 1024u);
  EXPECT_EQ(HistogramData::BucketHi(11), 2047u);
  // Every uint64 lands in exactly one bucket and the bounds tile the range.
  for (size_t b = 2; b < HistogramData::kNumBuckets; ++b) {
    EXPECT_EQ(HistogramData::BucketLo(b), HistogramData::BucketHi(b - 1) + 1);
  }
}

TEST(Metrics, HistogramBucketAssignment) {
  MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("assign");
  std::thread t([&] {
    for (const uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1023ull, 1024ull}) {
      h->Observe(v);
    }
  });
  t.join();
  const HistogramData d = reg.Snapshot().histograms["assign"];
  EXPECT_EQ(d.count, 7u);
  EXPECT_EQ(d.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(d.buckets[0], 1u);   // {0}
  EXPECT_EQ(d.buckets[1], 1u);   // {1}
  EXPECT_EQ(d.buckets[2], 2u);   // {2, 3}
  EXPECT_EQ(d.buckets[3], 1u);   // {4}
  EXPECT_EQ(d.buckets[10], 1u);  // 1023 = [512, 1023]
  EXPECT_EQ(d.buckets[11], 1u);  // 1024 = [1024, 2047]
}

TEST(Metrics, HistogramQuantilesTrackExactReferences) {
  // Deterministic skewed samples; the log-bucketed estimate must stay
  // within the bucket's factor-of-two bounds of the exact nearest-rank
  // percentile, and the mean must be exact (sums are exact integers).
  MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("q");
  std::vector<uint64_t> samples;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x % 1000000 + 1);
  }
  std::thread t([&] {
    for (const uint64_t v : samples) h->Observe(v);
  });
  t.join();
  const HistogramData d = reg.Snapshot().histograms["q"];
  ASSERT_EQ(d.count, samples.size());
  uint64_t exact_sum = 0;
  for (const uint64_t v : samples) exact_sum += v;
  EXPECT_DOUBLE_EQ(d.Mean(), static_cast<double>(exact_sum) /
                                 static_cast<double>(samples.size()));
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::max<double>(0.0, std::ceil(q * samples.size()) - 1));
    const double exact = static_cast<double>(samples[rank]);
    const double est = d.Quantile(q);
    EXPECT_GE(est, exact / 2.01) << "q=" << q;
    EXPECT_LE(est, exact * 2.01) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), d.Quantile(-1.0));  // clamped
  EXPECT_GE(d.Quantile(1.0), d.Quantile(0.99));
}

TEST(Metrics, EmptyHistogramIsZero) {
  HistogramData d;
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 0.0);
}

TEST(Metrics, DisabledSwitchSuppressesUpdates) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("gated");
  std::thread t([&] {
    c->Add(5);
    obs::SetMetricsEnabled(false);
    c->Add(7);  // dropped
    obs::SetMetricsEnabled(true);
    c->Add(2);
  });
  t.join();
  EXPECT_EQ(reg.Snapshot().counters["gated"], 7u);
}

TEST(Metrics, GaugesAndCallbacks) {
  MetricsRegistry reg;
  reg.SetGauge("g.x", 1.0);
  reg.SetGauge("g.x", 3.5);  // last write wins
  const uint64_t handle = reg.AddCallback([](MetricsSnapshot* snap) {
    snap->counters["cb.count"] += 11;
    snap->gauges["cb.gauge"] = 2.0;
  });
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges["g.x"], 3.5);
  EXPECT_EQ(snap.counters["cb.count"], 11u);
  EXPECT_DOUBLE_EQ(snap.gauges["cb.gauge"], 2.0);
  reg.RemoveCallback(handle);
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.count("cb.count"), 0u);
}

TEST(Metrics, ResetValuesZeroesCellsAndGauges) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("r");
  std::thread t([&] { c->Add(9); });
  t.join();
  reg.SetGauge("r.g", 4.0);
  reg.ResetValues();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters["r"], 0u);  // name survives, value zeroed
  EXPECT_EQ(snap.gauges.count("r.g"), 0u);
}

TEST(Metrics, SnapshotJsonParsesBack) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("json.counter");
  obs::Histogram* h = reg.GetHistogram("json.hist");
  std::thread t([&] {
    c->Add(42);
    for (uint64_t v = 1; v <= 100; ++v) h->Observe(v);
  });
  t.join();
  reg.SetGauge("json.gauge", 0.25);
  const std::string json = reg.Snapshot().ToJson();
  minijson::Value doc;
  std::string err;
  ASSERT_TRUE(minijson::Parse(json, &doc, &err)) << err << "\n" << json;
  const minijson::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("json.counter"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("json.counter")->number, 42.0);
  const minijson::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("json.gauge")->number, 0.25);
  const minijson::Value* hist = doc.Find("histograms")->Find("json.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 100.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 5050.0);
  ASSERT_NE(hist->Find("buckets"), nullptr);
  EXPECT_TRUE(hist->Find("buckets")->is_array());
  // [lo, count] pairs over non-empty buckets must cover every sample.
  double bucket_total = 0;
  for (const auto& pair : hist->Find("buckets")->array) {
    ASSERT_EQ(pair.array.size(), 2u);
    bucket_total += pair.array[1].number;
  }
  EXPECT_DOUBLE_EQ(bucket_total, 100.0);
}

TEST(JsonWriterTest, EscapingRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird \"key\"\n");
  w.String("tab\tbackslash\\quote\"newline\ncontrol\x01end");
  w.Key("nums");
  w.BeginArray();
  w.Uint(18446744073709551615ull);
  w.Int(-7);
  w.Double(1.5);
  w.Double(std::nan(""));  // exported as null
  w.Bool(true);
  w.EndArray();
  w.EndObject();
  minijson::Value doc;
  std::string err;
  ASSERT_TRUE(minijson::Parse(w.str(), &doc, &err)) << err << "\n" << w.str();
  const minijson::Value* s = doc.Find("weird \"key\"\n");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "tab\tbackslash\\quote\"newline\ncontrol\x01end");
  const minijson::Value* nums = doc.Find("nums");
  ASSERT_EQ(nums->array.size(), 5u);
  EXPECT_TRUE(nums->array[3].is_null());
  EXPECT_TRUE(nums->array[4].boolean);
}

TEST(RunReportTest, JsonStructureParsesBack) {
  obs::RunReport report;
  report.SetGraph(1000, 5000, 4);
  RunStats stats;
  stats.makespan = 12.5;
  stats.workers.resize(4);
  stats.workers[0].rounds = 3;
  stats.workers[0].msgs_sent = 17;
  stats.spurious_wakeups = 2;
  report.AddRun("pagerank", "sim", stats, /*converged=*/true,
                /*wall_seconds=*/0.75);
  const std::string json = report.ToJson();
  minijson::Value doc;
  std::string err;
  ASSERT_TRUE(minijson::Parse(json, &doc, &err)) << err << "\n" << json;
  EXPECT_EQ(doc.Find("schema")->str, obs::kRunReportSchema);
  const minijson::Value* graph = doc.Find("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_DOUBLE_EQ(graph->Find("vertices")->number, 1000.0);
  EXPECT_DOUBLE_EQ(graph->Find("arcs")->number, 5000.0);
  const minijson::Value* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const minijson::Value& run = runs->array[0];
  EXPECT_EQ(run.Find("name")->str, "pagerank");
  EXPECT_EQ(run.Find("engine")->str, "sim");
  EXPECT_TRUE(run.Find("converged")->boolean);
  EXPECT_DOUBLE_EQ(run.Find("wall_seconds")->number, 0.75);
  EXPECT_DOUBLE_EQ(run.Find("spurious_wakeups")->number, 2.0);
  // The report embeds a full metrics snapshot.
  const minijson::Value* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
  EXPECT_NE(metrics->Find("gauges"), nullptr);
}

TEST(PerfCounters, NoOpPathIsSafe) {
  // Works whether or not perf_event_open is permitted here: an unavailable
  // system must construct, begin, end and destruct without side effects,
  // and readings must be gated on `valid`, not zeros.
  const bool available = obs::PerfAvailable();
  obs::PerfCounterGroup group;
  EXPECT_EQ(group.valid(), available);
  group.Begin();
  const obs::PerfReading r = group.End();
  if (!available) {
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.cycles, 0u);
  }
  { obs::PerfPhaseScope scope("test_phase"); }
  obs::PerfReading zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);              // no division by zero
  EXPECT_DOUBLE_EQ(zero.cache_miss_rate(), 0.0);  // ditto
}

}  // namespace
}  // namespace grape
