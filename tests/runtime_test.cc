// Unit tests for src/runtime: sim clock ordering & cancellation, update
// buffers (aggregate-on-append), in-flight accounting, the master/worker
// termination protocol and the checkpoint token coordinator.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/channel.h"
#include "runtime/message.h"
#include "runtime/sim_clock.h"
#include "runtime/snapshot.h"
#include "runtime/stats_collector.h"
#include "runtime/termination.h"

namespace grape {
namespace {

TEST(SimClock, ProcessesInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(3.0, [&] { order.push_back(3); });
  clock.Schedule(1.0, [&] { order.push_back(1); });
  clock.Schedule(2.0, [&] { order.push_back(2); });
  clock.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.Now(), 3.0);
}

TEST(SimClock, StableOrderForEqualTimes) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(1.0, [&] { order.push_back(1); });
  clock.Schedule(1.0, [&] { order.push_back(2); });
  clock.Schedule(1.0, [&] { order.push_back(3); });
  clock.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClock, NestedScheduling) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(1.0, [&] {
    order.push_back(1);
    clock.Schedule(clock.Now() + 1.0, [&] { order.push_back(2); });
  });
  clock.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(clock.Now(), 2.0);
}

TEST(SimClock, CancelPreventsExecution) {
  SimClock clock;
  bool ran = false;
  auto id = clock.Schedule(1.0, [&] { ran = true; });
  clock.Cancel(id);
  clock.Run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(clock.Empty());
}

TEST(SimClock, DropPendingClearsQueue) {
  SimClock clock;
  int runs = 0;
  clock.Schedule(1.0, [&] { ++runs; });
  clock.Schedule(2.0, [&] { ++runs; });
  clock.Step();
  clock.DropPending();
  EXPECT_TRUE(clock.Empty());
  clock.Run();
  EXPECT_EQ(runs, 1);
}

TEST(UpdateBuffer, AggregatesPerVertexWithCombine) {
  UpdateBuffer<double> buf;
  auto min_combine = [](const double& a, const double& b) {
    return a < b ? a : b;
  };
  Message<double> m1{0, 2, 1, {{5, 3.0, 1}, {7, 9.0, 1}}, 0};
  Message<double> m2{1, 2, 1, {{5, 1.0, 1}}, 0};
  buf.Append(m1, min_combine);
  buf.Append(m2, min_combine);
  EXPECT_EQ(buf.NumMessages(), 2u);
  EXPECT_EQ(buf.NumDistinctSenders(), 2u);
  EXPECT_EQ(buf.NumPendingVertices(), 2u);
  auto drained = buf.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].vid, 5u);
  EXPECT_DOUBLE_EQ(drained[0].value, 1.0);  // min(3, 1)
  EXPECT_DOUBLE_EQ(drained[1].value, 9.0);
  EXPECT_TRUE(buf.Empty());
  EXPECT_EQ(buf.NumMessages(), 0u);
}

TEST(UpdateBuffer, SnapshotDoesNotClear) {
  UpdateBuffer<int> buf;
  auto sum = [](const int& a, const int& b) { return a + b; };
  buf.Append(Message<int>{0, 1, 0, {{1, 10, 0}}, 0}, sum);
  auto snap = buf.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 10);
  EXPECT_FALSE(buf.Empty());
}

TEST(UpdateBuffer, ResetRestoresEntries) {
  UpdateBuffer<int> buf;
  auto sum = [](const int& a, const int& b) { return a + b; };
  std::vector<UpdateEntry<int>> entries = {{3, 7, 1}, {4, 8, 1}};
  buf.Reset(entries, sum);
  EXPECT_EQ(buf.NumPendingVertices(), 2u);
  auto drained = buf.Drain();
  EXPECT_EQ(drained[0].value, 7);
}

TEST(MessageBytes, CountsEntryPayloads) {
  Message<double> m{0, 1, 0, {{1, 1.0, 0}, {2, 2.0, 0}}, 0};
  EXPECT_EQ(MessageBytes(m),
            2 * (sizeof(VertexId) + sizeof(Round) + sizeof(double)));
}

TEST(InFlight, TracksQuiescence) {
  InFlightCounter c;
  EXPECT_TRUE(c.Quiescent());
  c.OnSend(3);
  EXPECT_FALSE(c.Quiescent());
  c.OnDeliver(2);
  EXPECT_EQ(c.count(), 1u);
  c.OnDeliver();
  EXPECT_TRUE(c.Quiescent());
}

TEST(Termination, ProbeFailsWhileAnyWorkerActive) {
  TerminationDetector term(3);
  InFlightCounter inflight;
  term.SetInactive(0);
  term.SetInactive(1);
  EXPECT_FALSE(term.TryTerminate(inflight));  // worker 2 never reported
  term.SetInactive(2);
  EXPECT_TRUE(term.TryTerminate(inflight));
  EXPECT_TRUE(term.ShouldStop());
}

TEST(Termination, ProbeFailsWithInFlightMessages) {
  TerminationDetector term(2);
  InFlightCounter inflight;
  term.SetInactive(0);
  term.SetInactive(1);
  inflight.OnSend();
  EXPECT_FALSE(term.TryTerminate(inflight));
  inflight.OnDeliver();
  EXPECT_TRUE(term.TryTerminate(inflight));
}

TEST(Termination, ReactivationAnswersWait) {
  TerminationDetector term(2);
  InFlightCounter inflight;
  term.SetInactive(0);
  term.SetInactive(1);
  term.SetActive(1);  // a message re-activated worker 1: it answers `wait`
  EXPECT_FALSE(term.TryTerminate(inflight));
  EXPECT_FALSE(term.ShouldStop());
}

TEST(Checkpoint, TokenLifecycle) {
  CheckpointCoordinator ckpt(3);
  EXPECT_EQ(ckpt.current_token(), 0u);
  const uint64_t t = ckpt.StartCheckpoint();
  EXPECT_GT(t, 0u);
  // First observation snapshots; repeats are ignored (already held token).
  EXPECT_TRUE(ckpt.ShouldSnapshot(0, t));
  EXPECT_FALSE(ckpt.ShouldSnapshot(0, t));
  EXPECT_FALSE(ckpt.Complete(t));
  EXPECT_TRUE(ckpt.ShouldSnapshot(1, t));
  EXPECT_TRUE(ckpt.ShouldSnapshot(2, t));
  EXPECT_TRUE(ckpt.Complete(t));
}

TEST(Checkpoint, LateMessageAccounting) {
  CheckpointCoordinator ckpt(2);
  const uint64_t t = ckpt.StartCheckpoint();
  ckpt.ShouldSnapshot(0, t);
  ckpt.NoteLateMessage(0, t);
  ckpt.NoteLateMessage(0, t);
  EXPECT_EQ(ckpt.late_messages(t), 2u);
}

TEST(RunStats, Aggregations) {
  RunStats s;
  s.workers.resize(2);
  s.workers[0].rounds = 3;
  s.workers[0].busy_time = 10.0;
  s.workers[1].rounds = 5;
  s.workers[1].busy_time = 2.0;
  s.workers[0].msgs_sent = 7;
  s.workers[1].bytes_sent = 100;
  EXPECT_EQ(s.total_rounds(), 8u);
  EXPECT_EQ(s.max_rounds(), 5u);
  EXPECT_EQ(s.total_msgs(), 7u);
  EXPECT_EQ(s.total_bytes(), 100u);
  // Straggler = max busy time => worker 0 with 3 rounds.
  EXPECT_EQ(s.straggler_rounds(), 3u);
}

}  // namespace
}  // namespace grape
