// Per-algorithm tests: PIE program internals (PEval / IncEval behaviour,
// incremental-equals-batch), CF training quality, and parameterized sweeps
// over partitioners x fragment counts x graph families (the property
// Theorem 2 guarantees: every configuration reaches the sequential answer).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/cf.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "partition/skew.h"

namespace grape {
namespace {

Graph WeightedGraph(uint64_t seed) {
  ErdosRenyiOptions o;
  o.num_vertices = 300;
  o.num_edges = 1200;
  o.directed = true;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 7.0;
  o.seed = seed;
  return MakeErdosRenyi(o);
}

// ---------------------------------------------------------------- sweeps ---

/// (partitioner, fragments, graph seed) sweep: CC and SSSP must equal the
/// sequential ground truth on every configuration.
class AlgoSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(AlgoSweep, CcMatchesGroundTruth) {
  const auto [pname, m, seed] = GetParam();
  GridOptions go;
  go.rows = 20;
  go.cols = 20;
  go.seed = static_cast<uint64_t>(seed);
  Graph g = MakeRoadGrid(go);
  Partition p = MakePartitioner(pname)->Partition_(g, static_cast<FragmentId>(m));
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
}

TEST_P(AlgoSweep, SsspMatchesGroundTruth) {
  const auto [pname, m, seed] = GetParam();
  Graph g = WeightedGraph(static_cast<uint64_t>(seed));
  Partition p = MakePartitioner(pname)->Partition_(g, static_cast<FragmentId>(m));
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<SsspProgram> engine(p, SsspProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  const auto truth = seq::Sssp(g, 0);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST_P(AlgoSweep, BfsMatchesGroundTruth) {
  const auto [pname, m, seed] = GetParam();
  Graph g = WeightedGraph(static_cast<uint64_t>(seed) + 100);
  Partition p = MakePartitioner(pname)->Partition_(g, static_cast<FragmentId>(m));
  EngineConfig cfg;
  SimEngine<BfsProgram> engine(p, BfsProgram(2), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  const auto truth = seq::BfsLevels(g, 2);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PartitionerByFragments, AlgoSweep,
    ::testing::Combine(::testing::Values("hash", "range", "ldg"),
                       ::testing::Values(2, 5, 9),
                       ::testing::Values(1, 2)),
    [](const auto& p) {
      return std::string(std::get<0>(p.param)) + "_m" +
             std::to_string(std::get<1>(p.param)) + "_s" +
             std::to_string(std::get<2>(p.param));
    });

// ------------------------------------------------------------------- CC ---

TEST(CcProgramUnit, PEvalFindsLocalComponents) {
  // Two local components in one fragment; no cut edges.
  GraphBuilder b(5, false);
  b.AddEdge(0, 1);
  b.AddEdge(3, 4);
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 0, 0, 0, 0}, 1);
  CcProgram prog;
  auto st = prog.Init(p.fragments[0]);
  Emitter<VertexId> em;
  prog.PEval(p.fragments[0], st, &em);
  EXPECT_TRUE(em.entries().empty());  // no border => no messages
  auto cids = prog.Assemble(p, {st});
  EXPECT_EQ(cids, (std::vector<VertexId>{0, 0, 2, 3, 3}));
}

TEST(CcProgramUnit, IncEvalShipsOnlyDecreases) {
  // Fragment 1 owns {2,3}; a copy of 2 lives at fragment 0 via edge (1,2).
  GraphBuilder b(4, false);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 0, 1, 1}, 2);
  CcProgram prog;
  auto st = prog.Init(p.fragments[1]);
  Emitter<VertexId> em;
  prog.PEval(p.fragments[1], st, &em);
  // First IncEval: a smaller cid arrives for 2 -> propagates to copies.
  em.Clear();
  std::vector<UpdateEntry<VertexId>> up = {{2, 0, 1}};
  prog.IncEval(p.fragments[1], st,
               std::span<const UpdateEntry<VertexId>>(up), &em);
  EXPECT_FALSE(em.entries().empty());
  // Same (non-improving) update again: nothing new to ship.
  em.Clear();
  prog.IncEval(p.fragments[1], st,
               std::span<const UpdateEntry<VertexId>>(up), &em);
  EXPECT_TRUE(em.entries().empty());
}

// ----------------------------------------------------------------- SSSP ---

TEST(SsspProgramUnit, IncEvalEqualsBatchRecomputation) {
  // Q(F ⊕ M) = Q(F) ⊕ ΔO: feeding border updates incrementally must land on
  // the same distances as computing with full knowledge.
  Graph g = WeightedGraph(9);
  Partition p = HashPartitioner().Partition_(g, 3);
  const auto truth = seq::Sssp(g, 0);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  SimEngine<SsspProgram> engine(p, SsspProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]);
  }
}

TEST(SsspProgramUnit, UnreachableVerticesStayInfinite) {
  GraphBuilder b(4, true);
  b.AddEdge(0, 1, 1.0);
  // 2, 3 unreachable.
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 1, 0, 1}, 2);
  EngineConfig cfg;
  SimEngine<SsspProgram> engine(p, SsspProgram(0), cfg);
  auto r = engine.Run();
  EXPECT_DOUBLE_EQ(r.result[1], 1.0);
  EXPECT_EQ(r.result[2], kInfinity);
  EXPECT_EQ(r.result[3], kInfinity);
}

TEST(SsspProgramUnit, SourceOutsideEveryFragmentButOne) {
  Graph g = WeightedGraph(11);
  Partition p = HashPartitioner().Partition_(g, 4);
  // PEval only does real work at the fragment owning the source.
  SsspProgram prog(5);
  for (const Fragment& f : p.fragments) {
    auto st = prog.Init(f);
    Emitter<double> em;
    prog.PEval(f, st, &em);
    const LocalVertex l = f.LocalId(5);
    const bool owns = l != Fragment::kInvalidLocal && f.IsInner(l);
    if (!owns) {
      EXPECT_TRUE(em.entries().empty());
    }
  }
}

// ------------------------------------------------------------- PageRank ---

TEST(PageRankUnit, ScoresMatchAcrossSkewAndModes) {
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 3000;
  o.seed = 21;
  Graph g = MakeRmat(o);
  auto placement = HashPartitioner().Assign(g, 6);
  placement = InjectSkew(g, placement, 6, 4.0, 7);
  Partition p = BuildPartition(g, placement, 6);
  const auto truth = seq::PageRank(g, 0.85, 1e-10);
  for (const ModeConfig& mode :
       {ModeConfig::Bsp(), ModeConfig::Ap(), ModeConfig::Aap()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-8), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    for (size_t v = 0; v < truth.size(); ++v) {
      EXPECT_NEAR(r.result[v], truth[v], 2e-3);
    }
  }
}

TEST(PageRankUnit, DanglingVerticesKeepBaseScore) {
  GraphBuilder b(3, true);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  Graph g = std::move(b).Build();
  Partition p = BuildPartition(g, {0, 1, 1}, 2);
  EngineConfig cfg;
  SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-10), cfg);
  auto r = engine.Run();
  // 1 and 2 are dangling: score = (1-d) + d*(1-d)/2.
  EXPECT_NEAR(r.result[0], 0.15, 1e-6);
  EXPECT_NEAR(r.result[1], 0.15 + 0.85 * 0.15 / 2, 1e-6);
  EXPECT_NEAR(r.result[2], r.result[1], 1e-9);
}

// ------------------------------------------------------------------- CF ---

struct CfSetup {
  Graph graph;
  Partition partition;
};

CfSetup MakeCfSetup(FragmentId m) {
  CfSetup s;
  BipartiteOptions o;
  o.num_users = 300;
  o.num_items = 40;
  o.num_ratings = 6000;
  o.seed = 31;
  s.graph = MakeBipartiteRatings(o);
  s.partition = HashPartitioner().Partition_(s.graph, m);
  return s;
}

double InitialRmse(const Graph& g, const CfProgram& prog) {
  // RMSE of the untrained (deterministic-init) model on training edges.
  CfProgram::State st;  // unused; compute via a 1-fragment partition
  Partition p = BuildPartition(g, std::vector<FragmentId>(g.num_vertices(), 0), 1);
  auto state = prog.Init(p.fragments[0]);
  // Assemble with untouched factors measures the untrained error.
  auto model = prog.Assemble(p, {state});
  return model.train_rmse;
}

TEST(CfUnit, TrainingReducesRmse) {
  CfSetup s = MakeCfSetup(4);
  CfProgram::Options opts;
  opts.max_epochs = 25;
  CfProgram prog(s.graph, opts);
  const double untrained = InitialRmse(s.graph, prog);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.mode.bounded_staleness = true;
  cfg.mode.staleness_bound = 3;
  SimEngine<CfProgram> engine(s.partition, CfProgram(s.graph, opts), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.result.train_rmse, 0.5 * untrained);
  EXPECT_LT(r.result.test_rmse, untrained);
  EXPECT_GT(r.result.total_epochs, 0u);
}

TEST(CfUnit, BoundedStalenessKeepsWorkersClose) {
  CfSetup s = MakeCfSetup(4);
  CfProgram::Options opts;
  opts.max_epochs = 20;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ssp(2);
  cfg.speed_factors = {1.0, 1.0, 1.0, 5.0};  // one slow worker
  SimEngine<CfProgram> engine(s.partition, CfProgram(s.graph, opts), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  // Under SSP(c=2) epochs of any two workers differ by at most c+1 at any
  // time; at termination everyone reaches their budget or plateau.
  uint64_t min_r = UINT64_MAX, max_r = 0;
  for (const auto& w : r.stats.workers) {
    min_r = std::min(min_r, w.rounds);
    max_r = std::max(max_r, w.rounds);
  }
  EXPECT_LE(max_r - min_r, opts.max_epochs);
  EXPECT_LT(r.result.train_rmse, 1.5);
}

TEST(CfUnit, TrainTestSplitIsStable) {
  CfSetup s = MakeCfSetup(2);
  CfProgram prog(s.graph);
  uint64_t train = 0, total = 0;
  for (VertexId u = 0; u < s.graph.num_vertices(); ++u) {
    if (!s.graph.IsLeft(u)) continue;
    for (const Arc& a : s.graph.OutEdges(u)) {
      ++total;
      train += prog.IsTrainEdge(u, a.dst);
      // Determinism.
      EXPECT_EQ(prog.IsTrainEdge(u, a.dst), prog.IsTrainEdge(u, a.dst));
    }
  }
  const double frac = static_cast<double>(train) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.9, 0.03);  // |E_T| = 90%|E|
}

TEST(CfUnit, CopiesConvergeToOwnerFactors) {
  CfSetup s = MakeCfSetup(3);
  CfProgram::Options opts;
  opts.max_epochs = 10;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<CfProgram> engine(s.partition, CfProgram(s.graph, opts), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  // The assembled model has one factor per vertex (owners win); training
  // must have touched item factors (non-init values).
  EXPECT_EQ(r.result.factors.size(), s.graph.num_vertices());
}

}  // namespace
}  // namespace grape
