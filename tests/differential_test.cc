// Seeded randomized differential-testing harness across the full execution
// matrix. With four storage/direction modes multiplying against the
// program set and two engines, hand-written equivalence tests no longer
// cover the space; this harness generates small random graphs and runs
//
//   every program x {push, pull, auto} x {materialised, streaming}
//                 x {SimEngine, ThreadedEngine} x {hash, ldg} partitioners
//
// asserting that every run matches the seq:: ground truth, that fixed
// direction modes are bit-identical across storage backends (SimEngine is
// deterministic), and that cross-direction results agree (exactly for the
// monotone-min label CC, to fixpoint tolerance for PageRank).
//
// Seeds: GRAPEPLUS_DIFF_SEEDS selects how many seeds to run (default 6 —
// CI budget; the nightly workflow_dispatch variant raises it) and
// GRAPEPLUS_DIFF_BASE the first seed. Every assertion carries the active
// seed via SCOPED_TRACE, so a failure prints the exact replay recipe:
//   GRAPEPLUS_DIFF_BASE=<seed> GRAPEPLUS_DIFF_SEEDS=1 ./differential_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/cc_pull.h"
#include "algos/pagerank.h"
#include "algos/pagerank_pull.h"
#include "algos/sssp.h"
#include "core/async_engine.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : def;
}

/// One seed's random instance: the graph plus everything derived from it.
Graph MakeInstance(uint64_t seed) {
  // Alternate generator families; sizes vary with the seed so the matrix
  // sees different shapes (component counts, degree skew, hub sizes).
  const VertexId n = 96 + static_cast<VertexId>((seed * 37) % 160);
  const uint64_t m = 3 * n + (seed * 53) % (2 * n);
  if (seed % 2 == 0) {
    ErdosRenyiOptions o;
    o.num_vertices = n;
    o.num_edges = m;
    o.directed = false;  // symmetric: label CC == union-find CC
    o.weighted = true;
    o.seed = seed;
    return MakeErdosRenyi(o);
  }
  RmatOptions o;
  o.num_vertices = n;
  o.num_edges = m;
  o.directed = false;
  o.weighted = true;
  o.seed = seed;
  return MakeRmat(o);
}

struct Truths {
  std::vector<VertexId> cc;
  std::vector<double> pagerank;
  std::vector<double> sssp;
  std::vector<int64_t> bfs;
};

template <typename Program>
typename Program::ResultT RunOne(const Partition& p, Program prog,
                                 bool threaded, DirectionConfig::Mode dir) {
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.direction.mode = dir;
  if (threaded) {
    cfg.num_threads = 2;
    ThreadedEngine<Program> engine(p, std::move(prog), cfg);
    auto r = engine.Run();
    EXPECT_TRUE(r.converged);
    return std::move(r.result);
  }
  SimEngine<Program> engine(p, std::move(prog), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  return std::move(r.result);
}

void ExpectNear(const std::vector<double>& got,
                const std::vector<double>& want, double eps,
                const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(got[v], want[v], eps) << what << " v=" << v;
  }
}

constexpr DirectionConfig::Mode kModes[] = {DirectionConfig::Mode::kPush,
                                            DirectionConfig::Mode::kPull,
                                            DirectionConfig::Mode::kAuto};

const char* ModeTag(DirectionConfig::Mode m) {
  switch (m) {
    case DirectionConfig::Mode::kPush: return "push";
    case DirectionConfig::Mode::kPull: return "pull";
    default: return "auto";
  }
}

/// Runs the whole matrix for one (graph, partitioner) pair. `mat` and
/// `stream` are pull-enabled partitions of the same placement —
/// materialised in-arcs vs fully chunk-streamed arcs.
void RunMatrix(const Graph& g, const Truths& truth, const Partition& mat,
               const Partition& stream) {
  // --- single-kernel programs: storage x engine, vs ground truth, and
  // bit-identical across storage in the deterministic engine ---
  for (const bool threaded : {false, true}) {
    SCOPED_TRACE(threaded ? "engine=threaded" : "engine=sim");
    const auto cc_mat = RunOne(mat, CcProgram{}, threaded,
                               DirectionConfig::Mode::kPush);
    const auto cc_stream = RunOne(stream, CcProgram{}, threaded,
                                  DirectionConfig::Mode::kPush);
    ASSERT_EQ(cc_mat, truth.cc) << "cc materialised";
    ASSERT_EQ(cc_stream, truth.cc) << "cc streaming";

    const auto sssp_mat = RunOne(mat, SsspProgram(0), threaded,
                                 DirectionConfig::Mode::kPush);
    const auto sssp_stream = RunOne(stream, SsspProgram(0), threaded,
                                    DirectionConfig::Mode::kPush);
    ASSERT_EQ(sssp_mat, truth.sssp) << "sssp materialised";
    ASSERT_EQ(sssp_stream, truth.sssp) << "sssp streaming";

    const auto bfs_mat = RunOne(mat, BfsProgram(0), threaded,
                                DirectionConfig::Mode::kPush);
    const auto bfs_stream = RunOne(stream, BfsProgram(0), threaded,
                                   DirectionConfig::Mode::kPush);
    ASSERT_EQ(bfs_mat, truth.bfs) << "bfs materialised";
    ASSERT_EQ(bfs_stream, truth.bfs) << "bfs streaming";

    const PageRankPullProgram prp(0.85, 1e-10);
    const auto prp_mat = RunOne(mat, prp, threaded,
                                DirectionConfig::Mode::kPush);
    const auto prp_stream = RunOne(stream, prp, threaded,
                                   DirectionConfig::Mode::kPush);
    ExpectNear(prp_mat, truth.pagerank, 1e-5, "pagerank-pull materialised");
    ExpectNear(prp_stream, truth.pagerank, 1e-5, "pagerank-pull streaming");
    if (!threaded) {  // the sim engine is deterministic: exact across storage
      ASSERT_EQ(prp_mat, prp_stream) << "pagerank-pull storage divergence";
    }
  }

  // --- dual-mode programs: direction x storage x engine ---
  std::vector<std::vector<VertexId>> cc_by_mode;
  for (const auto mode : kModes) {
    SCOPED_TRACE(std::string("direction=") + ModeTag(mode));
    for (const bool threaded : {false, true}) {
      SCOPED_TRACE(threaded ? "engine=threaded" : "engine=sim");
      const PageRankProgram pr(0.85, 1e-11);
      const auto pr_mat = RunOne(mat, pr, threaded, mode);
      const auto pr_stream = RunOne(stream, pr, threaded, mode);
      ExpectNear(pr_mat, truth.pagerank, 1e-6, "dual pagerank materialised");
      ExpectNear(pr_stream, truth.pagerank, 1e-6, "dual pagerank streaming");

      const auto cc_mat = RunOne(mat, CcPullProgram{}, threaded, mode);
      const auto cc_stream = RunOne(stream, CcPullProgram{}, threaded, mode);
      ASSERT_EQ(cc_mat, truth.cc) << "label cc materialised";
      ASSERT_EQ(cc_stream, truth.cc) << "label cc streaming";
      if (!threaded) {
        ASSERT_EQ(pr_mat, pr_stream) << "dual pagerank storage divergence";
        ASSERT_EQ(cc_mat, cc_stream) << "label cc storage divergence";
        cc_by_mode.push_back(cc_mat);
      }
    }
  }
  // Cross-direction: the monotone-min fixpoint is unique, so every
  // direction mode must land on identical labels.
  for (size_t i = 1; i < cc_by_mode.size(); ++i) {
    ASSERT_EQ(cc_by_mode[i], cc_by_mode[0]) << "cross-direction cc mismatch";
  }

  // --- the barrier-free async engine: monotone-min programs land on the
  // exact sequential fixpoint under any interleaving; PageRank's
  // sum-aggregate fixpoint is tolerance-close ---
  for (const Partition* part : {&mat, &stream}) {
    SCOPED_TRACE(part == &mat ? "async storage=materialised"
                              : "async storage=streaming");
    EngineConfig acfg;
    acfg.num_threads = 2;
    {
      AsyncEngine<CcProgram> engine(*part, CcProgram{}, acfg);
      auto r = engine.Run();
      ASSERT_TRUE(r.converged);
      ASSERT_EQ(r.result, truth.cc) << "async cc";
    }
    {
      AsyncEngine<SsspProgram> engine(*part, SsspProgram(0), acfg);
      auto r = engine.Run();
      ASSERT_TRUE(r.converged);
      ASSERT_EQ(r.result, truth.sssp) << "async sssp";
    }
    {
      AsyncEngine<BfsProgram> engine(*part, BfsProgram(0), acfg);
      auto r = engine.Run();
      ASSERT_TRUE(r.converged);
      ASSERT_EQ(r.result, truth.bfs) << "async bfs";
    }
    {
      AsyncEngine<PageRankProgram> engine(*part, PageRankProgram(0.85, 1e-11),
                                          acfg);
      auto r = engine.Run();
      ASSERT_TRUE(r.converged);
      ExpectNear(r.result, truth.pagerank, 1e-3, "async pagerank");
    }
  }

  // --- engine re-run: a second Run() on the same instance must be
  // bit-identical to the first across {push, pull, auto} x {materialised,
  // streaming} — per-run state (buffers, controllers, termination,
  // worklists) must not leak between runs. Label CC's fixpoint is unique,
  // so even the nondeterministic engines must reproduce it exactly ---
  for (const auto mode : kModes) {
    SCOPED_TRACE(std::string("rerun direction=") + ModeTag(mode));
    for (const Partition* part : {&mat, &stream}) {
      SCOPED_TRACE(part == &mat ? "rerun storage=materialised"
                                : "rerun storage=streaming");
      EngineConfig cfg;
      cfg.mode = ModeConfig::Aap();
      cfg.direction.mode = mode;
      {
        SimEngine<CcPullProgram> engine(*part, CcPullProgram{}, cfg);
        const auto r1 = engine.Run();
        const auto r2 = engine.Run();
        ASSERT_TRUE(r1.converged && r2.converged);
        ASSERT_EQ(r1.result, truth.cc) << "sim rerun first";
        ASSERT_EQ(r2.result, r1.result) << "sim rerun divergence";
      }
      {
        cfg.num_threads = 2;
        ThreadedEngine<CcPullProgram> engine(*part, CcPullProgram{}, cfg);
        const auto r1 = engine.Run();
        const auto r2 = engine.Run();
        ASSERT_TRUE(r1.converged && r2.converged);
        ASSERT_EQ(r1.result, truth.cc) << "threaded rerun first";
        ASSERT_EQ(r2.result, r1.result) << "threaded rerun divergence";
      }
    }
  }
  {
    // Push-only async engine: same rerun contract on both storages.
    EngineConfig acfg;
    acfg.num_threads = 2;
    for (const Partition* part : {&mat, &stream}) {
      AsyncEngine<SsspProgram> engine(*part, SsspProgram(0), acfg);
      const auto r1 = engine.Run();
      const auto r2 = engine.Run();
      ASSERT_TRUE(r1.converged && r2.converged);
      ASSERT_EQ(r1.result, truth.sssp) << "async rerun first";
      ASSERT_EQ(r2.result, r1.result) << "async rerun divergence";
    }
  }
  (void)g;
}

TEST(Differential, RandomGraphsAcrossTheFullMatrix) {
  const uint64_t base = EnvU64("GRAPEPLUS_DIFF_BASE", 1);
  const uint64_t count = EnvU64("GRAPEPLUS_DIFF_SEEDS", 6);
  // A zero budget would iterate nothing and report PASSED — a fuzz run
  // that verified nothing. Catches non-numeric env values too (strtoull
  // parses those to 0); skipping the harness is done by not running the
  // binary, never by a zero seed count.
  ASSERT_GT(count, 0u)
      << "GRAPEPLUS_DIFF_SEEDS must be a positive integer, got '"
      << std::getenv("GRAPEPLUS_DIFF_SEEDS") << "'";
  const char* kPartitioners[] = {"hash", "ldg"};
  for (uint64_t seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 "  (replay: GRAPEPLUS_DIFF_BASE=" + std::to_string(seed) +
                 " GRAPEPLUS_DIFF_SEEDS=1 ./differential_test)");
    const Graph g = MakeInstance(seed);
    Truths truth;
    truth.cc = seq::ConnectedComponents(g);
    truth.pagerank = seq::PageRank(g, 0.85, 1e-12);
    truth.sssp = seq::Sssp(g, 0);
    truth.bfs = seq::BfsLevels(g, 0);
    const Graph transpose = TransposeGraph(g);
    const GraphView tv = transpose.View();

    for (const char* pname : kPartitioners) {
      SCOPED_TRACE(std::string("partitioner=") + pname);
      auto partitioner = MakePartitioner(pname);
      const FragmentId frags = 3 + static_cast<FragmentId>(seed % 2);
      auto placement = partitioner->Assign(g, frags);

      PartitionOptions mat_opts;
      mat_opts.in_adjacency = &tv;
      const Partition mat =
          BuildPartition(g, placement, frags, nullptr, mat_opts);

      // Streaming: both directions chunked, budget varying with the seed
      // (including the degenerate 1-arc plan every few seeds).
      const uint64_t budget = seed % 5 == 0 ? 1 : 32 + (seed * 29) % 200;
      ChunkedArcSource fwd_src(g.View(), budget);
      ChunkedArcSource in_src(tv, budget);
      PartitionOptions stream_opts;
      stream_opts.arc_source = &fwd_src;
      stream_opts.in_arc_source = &in_src;
      const Partition stream =
          BuildPartition(g, placement, frags, nullptr, stream_opts);

      RunMatrix(g, truth, mat, stream);
    }
  }
}

}  // namespace
}  // namespace grape
