// Tests for the hot-path overhaul: dense update-buffer semantics (combine
// algebra, round-max, distinct senders, snapshot/reset round-trips, safe
// moves, concurrent append/drain), the precomputed routing index against the
// reference Recipients(), the persistent worker pool, and engine
// re-runnability.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "algos/cc.h"
#include "algos/pagerank.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/message.h"
#include "runtime/worker_pool.h"
#include "util/random.h"

namespace grape {
namespace {

// ------------------------------------------------------- dense buffer ---

TEST(DenseBuffer, CombineIsAppliedPerSlotAndRoundIsMax) {
  UpdateBuffer<int> buf(/*num_slots=*/8);
  auto sum = [](const int& a, const int& b) { return a + b; };
  // Entries keyed by destination local id (lid), as the dispatcher stamps.
  Message<int> m1{0, 1, 0, {{100, 5, 1, 3}, {101, 7, 2, 4}}, 0};
  Message<int> m2{2, 1, 0, {{100, 11, 5, 3}}, 0};
  buf.Append(m1, sum);
  buf.Append(m2, sum);
  EXPECT_EQ(buf.NumPendingVertices(), 2u);
  auto out = buf.Drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vid, 100u);
  EXPECT_EQ(out[0].value, 16);   // 5 + 11
  EXPECT_EQ(out[0].round, 5);    // max(1, 5)
  EXPECT_EQ(out[0].lid, 3u);
  EXPECT_EQ(out[1].value, 7);
  EXPECT_TRUE(buf.Empty());
}

TEST(DenseBuffer, CombineFoldOrderInsensitiveForAssociativeFaggr) {
  // min is associative+commutative: any interleaving of the same entry
  // multiset folds to the same per-slot value.
  Rng rng(7);
  auto combine = [](const double& a, const double& b) {
    return a < b ? a : b;
  };
  for (int trial = 0; trial < 10; ++trial) {
    UpdateBuffer<double> a(32), b(32);
    std::vector<UpdateEntry<double>> entries;
    for (int i = 0; i < 60; ++i) {
      const LocalVertex lid = static_cast<LocalVertex>(rng.Uniform(32));
      entries.push_back({lid + 1000, rng.UniformDouble(0, 10), 0, lid});
    }
    // a: one message; b: many single-entry messages in reverse order.
    a.AppendEntries(0, std::span<const UpdateEntry<double>>(entries),
                    combine);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      b.AppendEntries(0, std::span<const UpdateEntry<double>>(&*it, 1),
                      combine);
    }
    auto da = a.Drain();
    auto db = b.Drain();
    std::map<LocalVertex, double> ma, mb;
    for (const auto& e : da) ma[e.lid] = e.value;
    for (const auto& e : db) mb[e.lid] = e.value;
    EXPECT_EQ(ma, mb);
  }
}

TEST(DenseBuffer, DistinctSenderCounting) {
  UpdateBuffer<int> buf(4);
  auto sum = [](const int& a, const int& b) { return a + b; };
  buf.Append(Message<int>{3, 0, 0, {{0, 1, 0, 0}}, 0}, sum);
  buf.Append(Message<int>{5, 0, 0, {{1, 1, 0, 1}}, 0}, sum);
  buf.Append(Message<int>{3, 0, 0, {{2, 1, 0, 2}}, 0}, sum);
  EXPECT_EQ(buf.NumMessages(), 3u);
  EXPECT_EQ(buf.NumDistinctSenders(), 2u);  // {3, 5}
  buf.Drain();
  EXPECT_EQ(buf.NumDistinctSenders(), 0u);
  buf.Append(Message<int>{9, 0, 0, {{0, 1, 0, 0}}, 0}, sum);
  EXPECT_EQ(buf.NumDistinctSenders(), 1u);
}

TEST(DenseBuffer, SnapshotResetRoundTripPreservesEntries) {
  UpdateBuffer<int> buf(16);
  auto sum = [](const int& a, const int& b) { return a + b; };
  buf.Append(Message<int>{0, 1, 0, {{7, 10, 2, 7}, {3, 4, 1, 3}}, 0}, sum);
  auto snap = buf.Snapshot();
  EXPECT_FALSE(buf.Empty());
  ASSERT_EQ(snap.size(), 2u);

  UpdateBuffer<int> restored(16);
  restored.Reset(snap, sum);
  auto a = buf.Drain();
  auto b = restored.Drain();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vid, b[i].vid);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].lid, b[i].lid);
  }
}

TEST(DenseBuffer, MovedFromAndMovedToBuffersAreUsable) {
  auto sum = [](const int& a, const int& b) { return a + b; };
  UpdateBuffer<int> a(4);
  a.Append(Message<int>{0, 1, 0, {{2, 9, 0, 2}}, 0}, sum);
  UpdateBuffer<int> b(std::move(a));
  EXPECT_EQ(b.NumPendingVertices(), 1u);
  // The seed's defaulted move left a null mutex behind: any method on the
  // moved-from buffer crashed. The dense buffer must stay fully usable.
  EXPECT_TRUE(a.Empty());
  a.Append(Message<int>{1, 1, 0, {{0, 1, 0, 0}}, 0}, sum);
  EXPECT_EQ(a.NumPendingVertices(), 1u);
  a = std::move(b);
  EXPECT_EQ(a.Drain().size(), 1u);
  EXPECT_TRUE(b.Empty());
  b.Append(Message<int>{2, 1, 0, {{5, 2, 0, 5}}, 0}, sum);
  EXPECT_EQ(b.NumMessages(), 1u);
}

TEST(DenseBuffer, GrowsOnDemandWithoutPresizing) {
  UpdateBuffer<int> buf;  // default: no capacity hint
  auto sum = [](const int& a, const int& b) { return a + b; };
  buf.Append(Message<int>{0, 1, 0, {{5000, 1, 0}}, 0}, sum);  // keyed by vid
  buf.Append(Message<int>{0, 1, 0, {{2, 1, 0}}, 0}, sum);
  auto out = buf.Drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vid, 5000u);
}

TEST(DenseBuffer, ConcurrentAppendDrainConservesSum) {
  // faggr = sum is conservative: whatever interleaving of appends and
  // drains happens, the total drained value must equal the total appended.
  UpdateBuffer<long> buf(64);
  auto sum = [](const long& a, const long& b) { return a + b; };
  constexpr int kThreads = 4;
  constexpr int kMsgsPerThread = 2000;
  std::atomic<long> drained_total{0};
  std::atomic<bool> stop{false};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& e : buf.Drain()) {
        drained_total.fetch_add(e.value, std::memory_order_relaxed);
      }
    }
    for (const auto& e : buf.Drain()) {
      drained_total.fetch_add(e.value, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> appenders;
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kMsgsPerThread; ++i) {
        const LocalVertex lid = static_cast<LocalVertex>(rng.Uniform(64));
        UpdateEntry<long> e{lid, 1, 0, lid};
        buf.AppendEntries(static_cast<FragmentId>(t),
                          std::span<const UpdateEntry<long>>(&e, 1), sum);
      }
    });
  }
  for (auto& t : appenders) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  EXPECT_EQ(drained_total.load(), static_cast<long>(kThreads) *
                                      kMsgsPerThread);
  EXPECT_TRUE(buf.Empty());
}

// ------------------------------------------------------ routing index ---

class RoutingIndexProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoutingIndexProperty, MatchesReferenceRecipientsOnRandomPartitions) {
  const auto [seed, m] = GetParam();
  ErdosRenyiOptions o;
  o.num_vertices = 180;
  o.num_edges = 700;
  o.directed = (seed % 2 == 0);
  o.seed = static_cast<uint64_t>(seed) + 900;
  Graph g = MakeErdosRenyi(o);
  Partition p =
      HashPartitioner(static_cast<uint64_t>(seed)).Partition_(g, m);
  ASSERT_EQ(p.routing.size(), p.fragments.size());

  std::vector<FragmentId> expect;
  for (FragmentId i = 0; i < p.num_fragments(); ++i) {
    const Fragment& f = p.fragments[i];
    const FragmentRouting& r = p.routing[i];
    ASSERT_EQ(r.owner.size(), f.num_local());
    ASSERT_EQ(r.copy_offsets.size(), f.num_local() + 1u);
    for (LocalVertex l = 0; l < f.num_local(); ++l) {
      const VertexId v = f.GlobalId(l);

      // Copy->owner flow (to_copies = false).
      p.Recipients(v, i, /*to_copies=*/false, &expect);
      if (r.owner[l].frag == kInvalidFragment) {
        EXPECT_TRUE(expect.empty()) << "v=" << v;
      } else {
        ASSERT_EQ(expect.size(), 1u);
        EXPECT_EQ(r.owner[l].frag, expect[0]);
        // The stamped destination lid resolves to the same vertex.
        EXPECT_EQ(p.fragments[r.owner[l].frag].GlobalId(r.owner[l].lid), v);
      }

      // Owner-broadcast flow (to_copies = true): union of owner + copies.
      p.Recipients(v, i, /*to_copies=*/true, &expect);
      std::set<FragmentId> want(expect.begin(), expect.end());
      std::set<FragmentId> got;
      if (r.owner[l].frag != kInvalidFragment) got.insert(r.owner[l].frag);
      for (const RouteTarget& c : r.Copies(l)) {
        got.insert(c.frag);
        EXPECT_EQ(p.fragments[c.frag].GlobalId(c.lid), v);
      }
      ASSERT_EQ(got, want) << "fragment " << i << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RoutingIndexProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 5, 9)),
                         [](const auto& p) {
                           return "seed" +
                                  std::to_string(std::get<0>(p.param)) +
                                  "_m" +
                                  std::to_string(std::get<1>(p.param));
                         });

// -------------------------------------------------------- worker pool ---

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.Run(257, [&](uint32_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.Run(64, [&](uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(WorkerPool, SingleThreadPoolCompletes) {
  WorkerPool pool(1);
  int count = 0;
  pool.Run(10, [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(WorkerPool, SmallJobsWakeFewThreads) {
  // Regression for the thundering herd: Launch used to notify_all() every
  // idle thread for every job, so a 1-index job on a wide pool woke 7
  // threads that found the index space already spent (a "spurious wakeup"
  // in the pool's accounting). Launch now wakes min(n, threads) threads;
  // late-arriving stragglers from a *previous* job can still occasionally
  // drain nothing, so the assertion bounds the count rather than demanding
  // zero — under the old notify_all scheme this workload measured in the
  // thousands.
  WorkerPool pool(8);
  constexpr int kJobs = 500;
  for (int job = 0; job < kJobs; ++job) {
    std::atomic<int> ran{0};
    pool.Run(1, [&](uint32_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 1);
  }
  // Every job wakes exactly 1 of 8 threads; allow a generous margin for
  // threads that were between jobs (already awake, re-checking the epoch).
  EXPECT_LT(pool.spurious_wakeups(), kJobs / 2)
      << "thundering herd is back: " << pool.spurious_wakeups()
      << " wasted wakeups across " << kJobs << " 1-index jobs";
}

TEST(WorkerPool, PinnedPoolStillRunsEverything) {
  // Pinning is advisory; whatever the sandbox allows, the pool must stay
  // correct and report a sane placement for every thread.
  WorkerPoolOptions opts;
  opts.pin_threads = true;
  WorkerPool pool(4, opts);
  std::vector<std::atomic<int>> hits(101);
  pool.Run(101, [&](uint32_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_LE(pool.pinned_threads(), pool.num_threads());
  for (uint32_t t = 0; t < pool.num_threads(); ++t) {
    EXPECT_GE(pool.thread_node(t), 0);
  }
}

// ------------------------------------------------- engine re-run support ---

TEST(SimEngineRerun, SecondRunMatchesFirst) {
  RmatOptions o;
  o.num_vertices = 300;
  o.num_edges = 1400;
  o.directed = false;
  o.seed = 77;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 6);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.compute_jitter = 0.3;
  cfg.seed = 5;
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto a = engine.Run();
  auto b = engine.Run();  // the seed silently corrupted results here
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.result, b.result);
  EXPECT_DOUBLE_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.total_msgs(), b.stats.total_msgs());
  EXPECT_EQ(a.supersteps, b.supersteps);
}

TEST(SimEngineRerun, PageRankRerunInAllModes) {
  RmatOptions o;
  o.num_vertices = 200;
  o.num_edges = 900;
  o.seed = 21;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  for (const ModeConfig& mode :
       {ModeConfig::Bsp(), ModeConfig::Ap(), ModeConfig::Aap()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-7), cfg);
    auto a = engine.Run();
    auto b = engine.Run();
    ASSERT_TRUE(a.converged && b.converged) << ModeName(mode.mode);
    ASSERT_EQ(a.result.size(), b.result.size());
    for (size_t v = 0; v < a.result.size(); ++v) {
      EXPECT_DOUBLE_EQ(a.result[v], b.result[v]) << ModeName(mode.mode);
    }
  }
}

TEST(ThreadedEngineRerun, SecondRunMatchesFirst) {
  ErdosRenyiOptions o;
  o.num_vertices = 250;
  o.num_edges = 1000;
  o.directed = false;
  o.seed = 13;
  Graph g = MakeErdosRenyi(o);
  Partition p = HashPartitioner().Partition_(g, 5);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.num_threads = 3;
  ThreadedEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto a = engine.Run();
  auto b = engine.Run();
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(b.result, seq::ConnectedComponents(g));
}

}  // namespace
}  // namespace grape
