// Property-based sweeps over randomized inputs: structural invariants of
// partitioning (border-set definitions hold for every cut edge), buffer
// algebra (drain == fold of appends under faggr), sim-clock ordering under
// random schedules, and engine idempotence across repeated runs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "runtime/message.h"
#include "runtime/sim_clock.h"
#include "util/random.h"

namespace grape {
namespace {

// ------------------------------------------------- partition invariants ---

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionProperty, BorderSetsConsistentWithEveryCutEdge) {
  const auto [seed, m] = GetParam();
  ErdosRenyiOptions o;
  o.num_vertices = 200;
  o.num_edges = 800;
  o.directed = true;
  o.seed = static_cast<uint64_t>(seed);
  Graph g = MakeErdosRenyi(o);
  Partition p =
      HashPartitioner(static_cast<uint64_t>(seed)).Partition_(g, m);

  // For every arc (u -> v): if it crosses fragments i -> j then
  //   u ∈ F_i.O' (exit set), v ∈ F_i.O (outer copy at i),
  //   v ∈ F_j.I (entry set),  u ∈ F_j.I' (remote source at j).
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const FragmentId fi = p.Owner(u);
    for (const Arc& a : g.OutEdges(u)) {
      const FragmentId fj = p.Owner(a.dst);
      if (fi == fj) continue;
      const Fragment& Fi = p.fragments[fi];
      const Fragment& Fj = p.fragments[fj];
      EXPECT_TRUE(Fi.InExitSet(Fi.LocalId(u)));
      const LocalVertex copy = Fi.LocalId(a.dst);
      ASSERT_NE(copy, Fragment::kInvalidLocal);
      EXPECT_FALSE(Fi.IsInner(copy));
      EXPECT_TRUE(Fj.InEntrySet(Fj.LocalId(a.dst)));
      const auto& ip = Fj.remote_sources();
      EXPECT_TRUE(std::binary_search(ip.begin(), ip.end(), u));
    }
  }
  // Conversely: every outer copy is the target of at least one local arc.
  for (const Fragment& f : p.fragments) {
    std::set<LocalVertex> targeted;
    for (LocalVertex l = 0; l < f.num_inner(); ++l) {
      for (const LocalArc& a : f.OutEdges(l)) {
        if (!f.IsInner(a.dst)) targeted.insert(a.dst);
      }
    }
    EXPECT_EQ(targeted.size(), f.num_outer());
  }
}

TEST_P(PartitionProperty, RoutingIndexMatchesCopyLocations) {
  const auto [seed, m] = GetParam();
  ErdosRenyiOptions o;
  o.num_vertices = 150;
  o.num_edges = 600;
  o.seed = static_cast<uint64_t>(seed) + 50;
  Graph g = MakeErdosRenyi(o);
  Partition p = LdgPartitioner().Partition_(g, m);
  std::vector<FragmentId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    p.Recipients(v, p.Owner(v), /*to_copies=*/true, &out);
    // The owner's broadcast list == exactly the fragments holding a copy.
    std::set<FragmentId> got(out.begin(), out.end());
    std::set<FragmentId> expect;
    for (const Fragment& f : p.fragments) {
      if (f.id() != p.Owner(v) &&
          f.LocalId(v) != Fragment::kInvalidLocal) {
        expect.insert(f.id());
      }
    }
    ASSERT_EQ(got, expect) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PartitionProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 7)),
                         [](const auto& p) {
                           return "seed" +
                                  std::to_string(std::get<0>(p.param)) +
                                  "_m" +
                                  std::to_string(std::get<1>(p.param));
                         });

// ------------------------------------------------------- buffer algebra ---

TEST(BufferProperty, DrainEqualsFoldOfAppends) {
  // For an associative commutative faggr (min), draining after any sequence
  // of appends must equal the per-vertex fold of all appended values.
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    UpdateBuffer<double> buf;
    std::map<VertexId, double> expect;
    auto combine = [](const double& a, const double& b) {
      return a < b ? a : b;
    };
    const int msgs = 1 + static_cast<int>(rng.Uniform(30));
    for (int k = 0; k < msgs; ++k) {
      Message<double> msg{static_cast<FragmentId>(rng.Uniform(5)), 0, 0, {},
                          0};
      const int entries = 1 + static_cast<int>(rng.Uniform(10));
      for (int e = 0; e < entries; ++e) {
        const VertexId vid = static_cast<VertexId>(rng.Uniform(20));
        const double val = rng.UniformDouble(0, 100);
        msg.entries.push_back({vid, val, 0});
        auto [it, inserted] = expect.try_emplace(vid, val);
        if (!inserted) it->second = std::min(it->second, val);
      }
      buf.Append(msg, combine);
    }
    auto drained = buf.Drain();
    ASSERT_EQ(drained.size(), expect.size());
    for (const auto& e : drained) {
      ASSERT_DOUBLE_EQ(e.value, expect.at(e.vid)) << "vid=" << e.vid;
    }
    EXPECT_TRUE(buf.Empty());
  }
}

TEST(BufferProperty, SnapshotIsDrainWithoutClearing) {
  Rng rng(99);
  UpdateBuffer<int> buf;
  auto sum = [](const int& a, const int& b) { return a + b; };
  for (int k = 0; k < 10; ++k) {
    Message<int> msg{0, 0, 0, {{static_cast<VertexId>(k % 4), k, 0}}, 0};
    buf.Append(msg, sum);
  }
  auto snap = buf.Snapshot();
  auto drained = buf.Drain();
  ASSERT_EQ(snap.size(), drained.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].vid, drained[i].vid);
    EXPECT_EQ(snap[i].value, drained[i].value);
  }
}

// ------------------------------------------------------ clock invariants ---

TEST(ClockProperty, RandomSchedulesProcessInNondecreasingTime) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    SimClock clock;
    std::vector<double> seen;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
      const double t = rng.UniformDouble(0, 100);
      clock.Schedule(t, [&seen, &clock] { seen.push_back(clock.Now()); });
    }
    clock.Run();
    ASSERT_EQ(seen.size(), static_cast<size_t>(n));
    for (size_t i = 1; i < seen.size(); ++i) {
      ASSERT_GE(seen[i], seen[i - 1]);
    }
  }
}

TEST(ClockProperty, CancellationNeverFiresAndOthersDo) {
  Rng rng(555);
  SimClock clock;
  int fired = 0;
  std::vector<SimClock::EventId> cancelled;
  for (int i = 0; i < 60; ++i) {
    const double t = rng.UniformDouble(0, 10);
    auto id = clock.Schedule(t, [&fired] { ++fired; });
    if (i % 3 == 0) cancelled.push_back(id);
  }
  for (auto id : cancelled) clock.Cancel(id);
  clock.Run();
  EXPECT_EQ(fired, 40);
}

// --------------------------------------------------- engine idempotence ---

TEST(EngineProperty, SameSeedSameEverything) {
  // Determinism: identical config => identical fixpoint, stats and trace.
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1200;
  o.directed = false;
  o.seed = 31;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 5);
  auto run = [&] {
    EngineConfig cfg;
    cfg.mode = ModeConfig::Aap();
    cfg.compute_jitter = 0.4;
    cfg.seed = 9;
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    return engine.Run();
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.result, b.result);
  EXPECT_DOUBLE_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.total_msgs(), b.stats.total_msgs());
  EXPECT_EQ(a.trace.spans().size(), b.trace.spans().size());
}

}  // namespace
}  // namespace grape
