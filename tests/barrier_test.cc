// Tests for the superstep rendezvous barriers (runtime/barrier.h): MCS and
// topology-tree correctness over many back-to-back rounds (the
// sense-reversing generation counters must survive immediate re-entry),
// the full-synchronisation guarantee of Arrive (plain writes made before
// the barrier are readable by every thread after it — TSan enforces the
// happens-before edges in the sanitizer CI jobs), and the
// MakeTopoAwareBarrier selection rule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/barrier.h"
#include "runtime/topology.h"

namespace grape {
namespace {

/// Synthetic multi-package, multi-node topology (sysfs-independent so the
/// tests behave identically on any box): `cpus_per_package` cpus in each of
/// `packages` packages, one NUMA node per package.
CpuTopology FakeTopology(int packages, int cpus_per_package) {
  CpuTopology topo;
  for (int p = 0; p < packages; ++p) {
    for (int c = 0; c < cpus_per_package; ++c) {
      topo.cpus.push_back({p * cpus_per_package + c, p, p});
    }
  }
  topo.num_packages = packages;
  topo.num_nodes = packages;
  topo.from_sysfs = true;
  return topo;
}

/// Drives `barrier` with its full thread complement for `rounds`
/// back-to-back rounds. Each round every thread bumps a shared arrival
/// counter *before* arriving and asserts the full count *after* — if any
/// thread could leak through the rendezvous early, it would observe a
/// partial count. `scratch[tid]` is written plain (non-atomic) pre-arrive
/// and cross-read post-arrive, so a missing synchronisation edge is a data
/// race the TSan job reports even when the count happens to pass.
void ExerciseBarrier(ThreadBarrier* barrier, uint32_t rounds) {
  const uint32_t n = barrier->num_threads();
  std::atomic<uint64_t> arrivals{0};
  std::vector<uint64_t> scratch(n, 0);
  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (uint32_t tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      for (uint32_t r = 0; r < rounds; ++r) {
        scratch[tid] = static_cast<uint64_t>(r) + 1;
        arrivals.fetch_add(1, std::memory_order_relaxed);
        barrier->Arrive(tid);
        // Everyone has arrived: the round's full count must be visible...
        const uint64_t seen = arrivals.load(std::memory_order_relaxed);
        if (seen < static_cast<uint64_t>(n) * (r + 1)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // ...and so must every thread's plain pre-arrive write.
        const uint32_t peer = (tid + 1) % n;
        if (scratch[peer] < static_cast<uint64_t>(r) + 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Second rendezvous: nobody may race ahead into round r+1 and
        // overwrite scratch while a straggler is still checking round r.
        barrier->Arrive(tid);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u) << barrier->name() << " n=" << n;
  EXPECT_EQ(arrivals.load(), static_cast<uint64_t>(n) * rounds);
}

TEST(McsBarrier, RendezvousAcrossThreadCounts) {
  // Covers: trivial (1), no-children root (2), partial arity (3), exactly
  // one full level (5), multi-level trees (8, 13).
  for (const uint32_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    McsBarrier barrier(n);
    ExerciseBarrier(&barrier, 50);
  }
}

TEST(McsBarrier, ManyBackToBackRoundsStress) {
  // Sense-reversal stress: enough rounds that any generation-counter reuse
  // bug (a thread released by a stale generation) has room to fire. Runs
  // under TSan in CI.
  McsBarrier barrier(8);
  ExerciseBarrier(&barrier, 2000);
}

TEST(TopoBarrier, GroupsFollowPackages) {
  const CpuTopology topo = FakeTopology(/*packages=*/2, /*cpus_per_package=*/2);
  // 8 threads round-robin over 4 cpus: tids {0,1,4,5} -> package 0,
  // {2,3,6,7} -> package 1.
  TopoBarrier barrier(topo, 8);
  EXPECT_EQ(barrier.num_groups(), 2u);
  ExerciseBarrier(&barrier, 200);
}

TEST(TopoBarrier, SinglePackageDegeneratesToOneGroup) {
  const CpuTopology topo = FakeTopology(1, 4);
  TopoBarrier barrier(topo, 6);
  EXPECT_EQ(barrier.num_groups(), 1u);
  ExerciseBarrier(&barrier, 100);
}

TEST(TopoBarrier, MorePackagesThanThreads) {
  // Only 2 of the 4 packages ever get a thread; groups must form from the
  // threads that exist, not the packages that do.
  const CpuTopology topo = FakeTopology(4, 1);
  TopoBarrier barrier(topo, 2);
  EXPECT_EQ(barrier.num_groups(), 2u);
  ExerciseBarrier(&barrier, 100);
}

TEST(TopoBarrier, ManyBackToBackRoundsStress) {
  const CpuTopology topo = FakeTopology(2, 2);
  TopoBarrier barrier(topo, 8);
  ExerciseBarrier(&barrier, 2000);
}

TEST(MakeTopoAwareBarrier, SelectsByPackageSpan) {
  const CpuTopology one = FakeTopology(1, 4);
  const CpuTopology two = FakeTopology(2, 2);
  // Single package -> flat MCS tree regardless of thread count.
  EXPECT_STREQ(MakeTopoAwareBarrier(one, 8)->name(), "mcs");
  // Multi-package with enough threads -> topology tree.
  EXPECT_STREQ(MakeTopoAwareBarrier(two, 8)->name(), "topo");
  // Fewer threads than packages -> the grouping adds nothing, flat MCS.
  EXPECT_STREQ(MakeTopoAwareBarrier(two, 1)->name(), "mcs");
  // Whatever the choice, the barrier must actually work.
  auto barrier = MakeTopoAwareBarrier(CpuTopology::Cached(), 4);
  ExerciseBarrier(barrier.get(), 100);
}

}  // namespace
}  // namespace grape
