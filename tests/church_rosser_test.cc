// The Church–Rosser property (Theorem 2): all asynchronous runs of a PIE
// program satisfying T1/T2/T3 converge to the same result. We randomise the
// schedule aggressively — per-round compute jitter, different worker speeds,
// message latencies and modes — and require bit-identical fixpoints for
// CC / SSSP / BFS and tolerance-identical scores for PageRank.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

struct World {
  Graph graph;
  Partition partition;
};

World MakeWorld() {
  RmatOptions o;
  o.num_vertices = 512;
  o.num_edges = 2600;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 5.0;
  o.seed = 77;
  World w;
  w.graph = MakeRmat(o);
  w.partition = LdgPartitioner().Partition_(w.graph, 7);
  return w;
}

EngineConfig RandomisedConfig(Mode mode, uint64_t seed) {
  EngineConfig cfg;
  switch (mode) {
    case Mode::kBsp: cfg.mode = ModeConfig::Bsp(); break;
    case Mode::kAp: cfg.mode = ModeConfig::Ap(); break;
    case Mode::kSsp: cfg.mode = ModeConfig::Ssp(1 + seed % 4); break;
    case Mode::kAap: cfg.mode = ModeConfig::Aap(seed % 3); break;
    case Mode::kHsync: cfg.mode = ModeConfig::Hsync(); break;
  }
  cfg.seed = seed;
  cfg.compute_jitter = 0.6;
  Rng rng(seed * 1331);
  cfg.speed_factors.resize(7);
  for (double& s : cfg.speed_factors) s = rng.UniformDouble(0.5, 6.0);
  cfg.msg_latency = rng.UniformDouble(0.1, 3.0);
  return cfg;
}

class ChurchRosser
    : public ::testing::TestWithParam<std::tuple<Mode, uint64_t>> {};

TEST_P(ChurchRosser, CcAllSchedulesSameFixpoint) {
  const auto [mode, seed] = GetParam();
  static const World w = MakeWorld();
  static const auto truth = seq::ConnectedComponents(w.graph);
  SimEngine<CcProgram> engine(w.partition, CcProgram{},
                              RandomisedConfig(mode, seed));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
}

TEST_P(ChurchRosser, SsspAllSchedulesSameFixpoint) {
  const auto [mode, seed] = GetParam();
  static const World w = MakeWorld();
  static const auto truth = seq::Sssp(w.graph, 3);
  SimEngine<SsspProgram> engine(w.partition, SsspProgram(3),
                                RandomisedConfig(mode, seed));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    ASSERT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST_P(ChurchRosser, BfsAllSchedulesSameFixpoint) {
  const auto [mode, seed] = GetParam();
  static const World w = MakeWorld();
  static const auto truth = seq::BfsLevels(w.graph, 0);
  SimEngine<BfsProgram> engine(w.partition, BfsProgram(0),
                               RandomisedConfig(mode, seed));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    ASSERT_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST_P(ChurchRosser, PageRankSchedulesAgreeWithinTolerance) {
  const auto [mode, seed] = GetParam();
  static const World w = MakeWorld();
  static const auto truth = seq::PageRank(w.graph, 0.85, 1e-10);
  SimEngine<PageRankProgram> engine(w.partition,
                                    PageRankProgram(0.85, 1e-8),
                                    RandomisedConfig(mode, seed));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    ASSERT_NEAR(r.result[v], truth[v], 5e-3) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesByMode, ChurchRosser,
    ::testing::Combine(::testing::Values(Mode::kBsp, Mode::kAp, Mode::kSsp,
                                         Mode::kAap, Mode::kHsync),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& p) {
      return ModeName(std::get<0>(p.param)) + "_seed" +
             std::to_string(std::get<1>(p.param));
    });

}  // namespace
}  // namespace grape
