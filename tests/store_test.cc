// Tests for the ingestion subsystem: .gcsr binary save/load/mmap round
// trips (vs ParseEdgeList ground truth), parallel-vs-serial determinism of
// Build / BuildPartition / ParseEdgeList / generators, corrupted-file
// rejection, and GraphBuilder bulk APIs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/store/gcsr_format.h"
#include "graph/store/gcsr_store.h"
#include "partition/partitioner.h"
#include "runtime/worker_pool.h"
#include "util/parallel.h"

namespace grape {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Round-trips `g` through save -> LoadBinary and save -> mmap, expecting
/// bit-identical graph data on both paths.
void ExpectRoundTrip(const Graph& g, const char* file) {
  const std::string path = TmpPath(file);
  ASSERT_TRUE(SaveBinary(g, path).ok());

  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(GraphDataEqual(g, loaded.value()));

  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(GraphDataEqual(g, mapped.value().View()));
  std::remove(path.c_str());
}

TEST(GcsrStore, RoundTripDirectedWeighted) {
  GraphBuilder b(5, /*directed=*/true);
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(0, 4, 0.25);
  b.AddEdge(3, 2, -7.0);
  ExpectRoundTrip(std::move(b).Build(), "rt_directed.gcsr");
}

TEST(GcsrStore, RoundTripUndirected) {
  GraphBuilder b(4, /*directed=*/false);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 3.5);
  Graph g = std::move(b).Build();
  ASSERT_FALSE(g.directed());
  ExpectRoundTrip(g, "rt_undirected.gcsr");
}

TEST(GcsrStore, RoundTripLabelsAndBipartite) {
  GraphBuilder b(3, /*directed=*/false);
  b.SetVertexLabel(1, 42);
  b.SetVertexLabel(2, -9);
  b.MarkLeft(0);
  b.AddEdge(0, 2, 4.0);
  Graph g = std::move(b).Build();
  const std::string path = TmpPath("rt_labels.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto m = MmapGraph::Open(path);
  ASSERT_TRUE(m.ok());
  GraphView v = m.value().View();
  EXPECT_TRUE(v.has_vertex_labels());
  EXPECT_EQ(v.VertexLabel(1), 42);
  EXPECT_EQ(v.VertexLabel(2), -9);
  EXPECT_TRUE(v.is_bipartite());
  EXPECT_TRUE(v.IsLeft(0));
  EXPECT_FALSE(v.IsLeft(2));
  EXPECT_TRUE(GraphDataEqual(g, v));
  std::remove(path.c_str());
}

TEST(GcsrStore, RoundTripEmptyAndSingleVertex) {
  ExpectRoundTrip(Graph(), "rt_empty.gcsr");
  GraphBuilder one(1, /*directed=*/true);
  ExpectRoundTrip(std::move(one).Build(), "rt_one.gcsr");
}

TEST(GcsrStore, MmapMatchesParseEdgeList) {
  const std::string text =
      "6 directed\n"
      "# a comment\n"
      "0 1 2.0\n"
      "1 2\n"
      "5 0 0.5\n"
      "2 2 1.25\n";
  auto parsed = ParseEdgeList(text);
  ASSERT_TRUE(parsed.ok());
  const std::string path = TmpPath("vs_parse.gcsr");
  ASSERT_TRUE(SaveBinary(parsed.value(), path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(GraphDataEqual(parsed.value(), mapped.value().View()));
  // And algorithms agree across the two representations.
  EXPECT_EQ(seq::ConnectedComponents(parsed.value()),
            seq::ConnectedComponents(mapped.value().View()));
  std::remove(path.c_str());
}

TEST(GcsrStore, RejectsCorruptedHeader) {
  GraphBuilder b(3, true);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build();
  const std::string path = TmpPath("corrupt.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  const auto corrupt_at = [&](long off, char byte) {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(off);
    f.write(&byte, 1);
  };

  // Bad magic.
  corrupt_at(0, 'X');
  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path).ok());

  // Restore, then corrupt the version field (offset 8).
  ASSERT_TRUE(SaveBinary(g, path).ok());
  corrupt_at(8, 99);
  EXPECT_FALSE(LoadBinary(path).ok());

  // Restore, then flip a count: header checksum must catch it.
  ASSERT_TRUE(SaveBinary(g, path).ok());
  corrupt_at(16, 77);  // num_vertices low byte
  auto r = LoadBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(MmapGraph::Open(path).ok());
  std::remove(path.c_str());
}

TEST(GcsrStore, RejectsStructurallyInvalidButChecksumValidFile) {
  // A buggy or hostile writer can produce a file whose checksums match its
  // (garbage) contents; both read paths must still reject malformed CSR
  // structure rather than hand out views with out-of-bounds offsets.
  GraphBuilder b(4, true);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  const std::string path = TmpPath("bad_structure.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  store::GcsrHeader h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  // Corrupt offsets[1] to a huge value, then recompute the section and
  // header checksums so all integrity checks pass.
  const uint64_t huge = 1ull << 40;
  f.seekp(static_cast<std::streamoff>(
      h.section_offset[store::kSecOffsets] + sizeof(uint64_t)));
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.seekg(static_cast<std::streamoff>(h.section_offset[store::kSecOffsets]));
  std::vector<char> sec(h.section_bytes[store::kSecOffsets]);
  f.read(sec.data(), static_cast<std::streamsize>(sec.size()));
  h.section_checksum[store::kSecOffsets] =
      store::Fnv1a(sec.data(), sec.size());
  h.header_checksum = 0;
  h.header_checksum = store::Fnv1a(&h, sizeof(h));
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.close();

  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path, MmapGraph::Verify::kFull).ok());
  EXPECT_FALSE(MmapGraph::Open(path, MmapGraph::Verify::kHeaderOnly).ok());
  std::remove(path.c_str());
}

TEST(GcsrStore, RejectsCorruptedPayloadAndTruncation) {
  GraphBuilder b(8, true);
  for (VertexId v = 0; v + 1 < 8; ++v) b.AddEdge(v, v + 1, 1.0 + v);
  Graph g = std::move(b).Build();
  const std::string path = TmpPath("corrupt_payload.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  {
    // Flip one payload byte in the arcs section.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    char x = 0x5A;
    f.write(&x, 1);
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path, MmapGraph::Verify::kFull).ok());

  // Truncated file: section table points past EOF.
  ASSERT_TRUE(SaveBinary(g, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path).ok());

  EXPECT_FALSE(LoadBinary(TmpPath("does_not_exist.gcsr")).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The trailing in-adjacency extension (reverse CSR).

/// The transpose of `g` built the straightforward way (reversed edges; the
/// builder's stable by-target sort reproduces the extension's source-major
/// scatter order).
Graph ExpectedTranspose(const Graph& g) {
  GraphBuilder b(g.num_vertices(), /*directed=*/true);
  b.ReserveEdges(g.num_arcs());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.OutEdges(u)) b.AddEdge(a.dst, u, a.weight);
  }
  return std::move(b).Build();
}

Graph InAdjTestGraph() {
  RmatOptions o;
  o.num_vertices = 600;
  o.num_edges = 4000;
  o.directed = true;
  o.weighted = true;
  o.seed = 77;
  return MakeRmat(o);
}

TEST(GcsrInAdjacency, RoundTripAndTransposeView) {
  Graph g = InAdjTestGraph();
  const std::string path = TmpPath("inadj.gcsr");
  ASSERT_TRUE(
      SaveBinary(g, path, SaveOptions{.include_in_adjacency = true}).ok());

  auto mapped = MmapGraph::Open(path, MmapGraph::Verify::kFull);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().has_in_adjacency());
  EXPECT_TRUE(GraphDataEqual(g, mapped.value().View()));
  // The mapped transpose equals a load-time transpose, with zero work done
  // at open.
  EXPECT_TRUE(
      GraphDataEqual(ExpectedTranspose(g), mapped.value().TransposeView()));

  // The owning load verifies the extension and yields the base graph; a
  // re-save recomputes a byte-identical extension (deterministic scatter).
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(GraphDataEqual(g, loaded.value()));
  const std::string path2 = TmpPath("inadj_resave.gcsr");
  ASSERT_TRUE(SaveBinary(loaded.value(), path2,
                         SaveOptions{.include_in_adjacency = true})
                  .ok());
  std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(GcsrInAdjacency, FilesWithoutExtensionCrossLoad) {
  Graph g = InAdjTestGraph();
  const std::string plain = TmpPath("inadj_plain.gcsr");
  ASSERT_TRUE(SaveBinary(g, plain).ok());
  auto mapped = MmapGraph::Open(plain);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(mapped.value().has_in_adjacency());
  EXPECT_TRUE(GraphDataEqual(g, mapped.value().View()));
  std::remove(plain.c_str());
}

TEST(GcsrInAdjacency, OldReaderIgnoresTrailingExtension) {
  // Emulate a pre-extension reader on a file that carries the extension:
  // clear the flag bit (what an old writer would have stamped) and fix the
  // header checksum. The result is a valid v1 file with trailing bytes —
  // both read paths must load it and ignore the trailer, which is exactly
  // the guarantee that makes the extension epoch-compatible (old readers
  // never looked at unknown flag bits, and bounds checks only require
  // sections to fit *within* the file).
  Graph g = InAdjTestGraph();
  const std::string path = TmpPath("inadj_oldreader.gcsr");
  ASSERT_TRUE(
      SaveBinary(g, path, SaveOptions{.include_in_adjacency = true}).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    store::GcsrHeader h;
    f.read(reinterpret_cast<char*>(&h), sizeof(h));
    ASSERT_NE(h.flags & store::kGcsrHasInAdjacency, 0u);
    h.flags &= ~uint32_t{store::kGcsrHasInAdjacency};
    h.header_checksum = 0;
    h.header_checksum = store::Fnv1a(&h, sizeof(h));
    f.seekp(0);
    f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  }
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(GraphDataEqual(g, loaded.value()));
  auto mapped = MmapGraph::Open(path, MmapGraph::Verify::kFull);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE(mapped.value().has_in_adjacency());
  EXPECT_TRUE(GraphDataEqual(g, mapped.value().View()));
  std::remove(path.c_str());
}

TEST(GcsrInAdjacency, CorruptExtensionRejected) {
  Graph g = InAdjTestGraph();
  const std::string path = TmpPath("inadj_corrupt.gcsr");
  ASSERT_TRUE(
      SaveBinary(g, path, SaveOptions{.include_in_adjacency = true}).ok());
  {
    // Flip a byte near the end of the file (inside the in-arcs section).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    char x = 0x3C;
    f.write(&x, 1);
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path, MmapGraph::Verify::kFull).ok());

  // Truncating the extension must be caught even header-only.
  ASSERT_TRUE(
      SaveBinary(g, path, SaveOptions{.include_in_adjacency = true}).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - bytes.size() / 4);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  EXPECT_FALSE(MmapGraph::Open(path, MmapGraph::Verify::kHeaderOnly).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial determinism of the ingestion paths.

TEST(ParallelIngest, BuildMatchesSerial) {
  // Duplicate (src,dst) pairs with distinct weights stress tie handling.
  std::vector<Edge> edges;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.Uniform(512)),
                     static_cast<VertexId>(rng.Uniform(512)),
                     static_cast<double>(rng.Uniform(4))});
  }
  GraphBuilder serial(512, /*directed=*/true);
  serial.AddEdges(edges);
  Graph gs = std::move(serial).Build();

  WorkerPool pool(4);
  GraphBuilder parallel(512, /*directed=*/true);
  parallel.ReserveEdges(edges.size());
  parallel.AddEdges(edges);
  Graph gp = std::move(parallel).Build(&pool);
  EXPECT_TRUE(GraphDataEqual(gs, gp));
}

TEST(ParallelIngest, ParseEdgeListMatchesSerial) {
  RmatOptions o;
  o.num_vertices = 1 << 10;
  o.num_edges = 1 << 15;  // large enough text to split into chunks
  o.weighted = true;
  o.seed = 3;
  const std::string text = ToEdgeListText(MakeRmat(o));
  auto serial = ParseEdgeList(text);
  ASSERT_TRUE(serial.ok());
  WorkerPool pool(4);
  auto parallel = ParseEdgeList(text, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(GraphDataEqual(serial.value(), parallel.value()));
}

TEST(ParallelIngest, ParallelParseReportsErrorsWithLineNumbers) {
  WorkerPool pool(4);
  EXPECT_FALSE(ParseEdgeList("", &pool).ok());
  EXPECT_FALSE(ParseEdgeList("abc", &pool).ok());
  EXPECT_FALSE(ParseEdgeList("3 sideways\n0 1\n", &pool).ok());
  auto oor = ParseEdgeList("2 directed\n0 1\n0 5\n", &pool);
  EXPECT_FALSE(oor.ok());
  EXPECT_NE(oor.status().message().find("line 3"), std::string::npos)
      << oor.status().ToString();
}

TEST(ParallelIngest, GeneratorsDeterministicWithAndWithoutPool) {
  WorkerPool pool(3);
  RmatOptions r;
  r.num_vertices = 1 << 12;
  r.num_edges = 1 << 17;  // multiple generation shards
  r.weighted = true;
  r.seed = 11;
  EXPECT_TRUE(GraphDataEqual(MakeRmat(r), MakeRmat(r, &pool)));

  ErdosRenyiOptions e;
  e.num_vertices = 4096;
  e.num_edges = 1 << 17;
  e.seed = 13;
  EXPECT_TRUE(GraphDataEqual(MakeErdosRenyi(e), MakeErdosRenyi(e, &pool)));
}

/// Deep equality of two partitions (fragments, border sets, routing).
void ExpectSamePartition(const Partition& a, const Partition& b) {
  ASSERT_EQ(a.num_fragments(), b.num_fragments());
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.owner_lid, b.owner_lid);
  EXPECT_EQ(a.copy_offsets, b.copy_offsets);
  EXPECT_EQ(a.copy_frags, b.copy_frags);
  for (FragmentId i = 0; i < a.num_fragments(); ++i) {
    const Fragment& fa = a.fragments[i];
    const Fragment& fb = b.fragments[i];
    ASSERT_EQ(fa.num_inner(), fb.num_inner());
    ASSERT_EQ(fa.num_outer(), fb.num_outer());
    ASSERT_EQ(fa.num_arcs(), fb.num_arcs());
    for (uint32_t l = 0; l < fa.num_local(); ++l) {
      ASSERT_EQ(fa.GlobalId(l), fb.GlobalId(l));
    }
    for (uint32_t l = 0; l < fa.num_inner(); ++l) {
      ASSERT_EQ(fa.InEntrySet(l), fb.InEntrySet(l));
      ASSERT_EQ(fa.InExitSet(l), fb.InExitSet(l));
      auto ea = fa.OutEdges(l), eb = fb.OutEdges(l);
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t k = 0; k < ea.size(); ++k) {
        ASSERT_EQ(ea[k].dst, eb[k].dst);
        ASSERT_EQ(ea[k].weight, eb[k].weight);
      }
    }
    ASSERT_TRUE(std::equal(fa.remote_sources().begin(),
                           fa.remote_sources().end(),
                           fb.remote_sources().begin(),
                           fb.remote_sources().end()));
    const FragmentRouting& ra = a.routing[i];
    const FragmentRouting& rb = b.routing[i];
    EXPECT_EQ(ra.owner, rb.owner);
    EXPECT_EQ(ra.copy_offsets, rb.copy_offsets);
    EXPECT_EQ(ra.copy_targets, rb.copy_targets);
  }
}

TEST(ParallelIngest, BuildPartitionMatchesSerial) {
  RmatOptions o;
  o.num_vertices = 1 << 12;
  o.num_edges = 60000;
  o.directed = false;
  o.seed = 5;
  Graph g = MakeRmat(o);
  WorkerPool pool(4);
  for (FragmentId m : {1u, 3u, 8u}) {
    auto placement = HashPartitioner().Assign(g, m);
    Partition serial = BuildPartition(g, placement, m);
    Partition parallel = BuildPartition(g, placement, m, &pool);
    ExpectSamePartition(serial, parallel);
  }
}

TEST(ParallelIngest, PartitionFromMmapViewMatchesInMemory) {
  RmatOptions o;
  o.num_vertices = 1 << 10;
  o.num_edges = 20000;
  o.directed = false;
  o.seed = 9;
  Graph g = MakeRmat(o);
  const std::string path = TmpPath("partition_src.gcsr");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto mapped = MmapGraph::Open(path);
  ASSERT_TRUE(mapped.ok());
  auto placement = HashPartitioner().Assign(mapped.value().View(), 4);
  Partition from_mem = BuildPartition(g, placement, 4);
  Partition from_map = BuildPartition(mapped.value().View(), placement, 4);
  ExpectSamePartition(from_mem, from_map);
  std::remove(path.c_str());
}

TEST(ParallelIngest, StableScatterMatchesSerialBucketing) {
  std::vector<uint32_t> items(50000);
  Rng rng(21);
  for (auto& x : items) x = static_cast<uint32_t>(rng.Uniform(97));
  const auto key = [](uint32_t x) { return x % 97; };
  std::vector<std::vector<uint32_t>> expect(97);
  for (uint32_t x : items) expect[key(x)].push_back(x);

  WorkerPool pool(4);
  std::vector<uint32_t> out(items.size());
  std::vector<uint64_t> offsets;
  StableScatterByKey(&pool, items.data(), items.size(), 97, key, out.data(),
                     &offsets);
  ASSERT_EQ(offsets.size(), 98u);
  size_t pos = 0;
  for (uint32_t k = 0; k < 97; ++k) {
    ASSERT_EQ(offsets[k], pos);
    for (uint32_t x : expect[k]) ASSERT_EQ(out[pos++], x);
  }
  ASSERT_EQ(offsets[97], pos);
}

TEST(GraphBuilderBulk, ReserveAndAddEdgesEquivalentToAddEdge) {
  std::vector<Edge> edges = {{0, 1, 2.0}, {2, 0, 1.5}, {1, 2, 4.0}};
  GraphBuilder a(3, /*directed=*/false);
  for (const Edge& e : edges) a.AddEdge(e.src, e.dst, e.weight);
  GraphBuilder b(3, /*directed=*/false);
  b.ReserveEdges(edges.size());
  b.AddEdges(edges);
  EXPECT_EQ(b.num_added_edges(), 6u);  // undirected: both arcs
  EXPECT_TRUE(GraphDataEqual(std::move(a).Build(), std::move(b).Build()));
}

}  // namespace
}  // namespace grape
