// Copyright 2026 The GRAPE+ Reproduction Authors.
// Negative-compile fixture for the thread-safety gate: this translation
// unit is VALID C++ but violates the GUARDED_BY contract on purpose, so it
// must FAIL to compile under Clang with -Werror=thread-safety-analysis and
// compile cleanly without it (the positive control proving the gate is the
// analysis, not a stray syntax error). Driven by cmake/thread_safety_neg.cmake
// as the `thread_safety_neg` ctest on Clang toolchains; NOT part of the
// normal test glob (excluded in CMakeLists.txt).
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    grape::MutexLock lock(mu_);
    balance_ += amount;
  }

  // BAD on purpose: reads a GUARDED_BY(mu_) field without holding mu_.
  // Clang: "reading variable 'balance_' requires holding mutex 'mu_'".
  int UnsafePeek() const { return balance_; }

 private:
  mutable grape::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return a.UnsafePeek() == 1 ? 0 : 1;
}
