// Theorem 4 tests: MapReduce algorithms compiled onto AAP/GRAPE with
// designated messages only must produce exactly the sequential MapReduce
// output, across single- and multi-round jobs and worker counts.
#include <gtest/gtest.h>

#include "core/sim_engine.h"
#include "mapreduce/mapreduce.h"
#include "partition/fragment.h"

namespace grape {
namespace {

using mr::Pair;

std::vector<Pair> Docs() {
  return {
      {"d1", "the quick brown fox"},
      {"d2", "the lazy dog"},
      {"d3", "the quick dog jumps over the lazy fox"},
      {"d4", "graph systems process the quick graph"},
  };
}

/// Splits the input across n workers round-robin.
std::vector<std::vector<Pair>> Split(const std::vector<Pair>& input,
                                     uint32_t n) {
  std::vector<std::vector<Pair>> shares(n);
  for (size_t i = 0; i < input.size(); ++i) {
    shares[i % n].push_back(input[i]);
  }
  return shares;
}

std::vector<Pair> RunOnAap(const std::vector<mr::Subroutine>& rounds,
                           const std::vector<Pair>& input, uint32_t n) {
  Graph gw = mr::MakeWorkerClique(n);
  std::vector<FragmentId> placement(n);
  for (uint32_t i = 0; i < n; ++i) placement[i] = i;
  Partition p = BuildPartition(gw, placement, n);
  mr::MrOnAapProgram prog(rounds, Split(input, n));
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();  // the Theorem 4 simulation is superstep'd
  SimEngine<mr::MrOnAapProgram> engine(p, std::move(prog), cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  return r.result;
}

TEST(MakeWorkerClique, IsComplete) {
  Graph gw = mr::MakeWorkerClique(5);
  EXPECT_EQ(gw.num_vertices(), 5u);
  EXPECT_EQ(gw.num_edges(), 10u);  // 5 choose 2
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(gw.OutDegree(v), 4u);
}

TEST(SequentialMr, WordCount) {
  auto out = mr::RunSequential(Docs(), {mr::WordCountJob()});
  // "the" appears 5 times across documents.
  bool found = false;
  for (const Pair& p : out) {
    if (p.key == "the") {
      EXPECT_EQ(p.value, "5");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MrOnAap, WordCountMatchesSequential) {
  for (uint32_t n : {2u, 3u, 5u}) {
    auto aap = RunOnAap({mr::WordCountJob()}, Docs(), n);
    auto ref = mr::RunSequential(Docs(), {mr::WordCountJob()});
    EXPECT_EQ(aap, ref) << "n=" << n;
  }
}

TEST(MrOnAap, InvertedIndexMatchesSequential) {
  auto aap = RunOnAap({mr::InvertedIndexJob()}, Docs(), 3);
  auto ref = mr::RunSequential(Docs(), {mr::InvertedIndexJob()});
  EXPECT_EQ(aap, ref);
}

TEST(MrOnAap, TwoRoundChainMatchesSequential) {
  // Round 1: word count. Round 2: bucket words by their count ("histogram
  // of histogram"), exercising the r-tag branch selection of IncEval.
  mr::Subroutine histogram;
  histogram.map = [](const Pair& in, std::vector<Pair>* out) {
    out->push_back(Pair{in.value, in.key});  // count -> word
  };
  histogram.reduce = [](const std::string& key,
                        const std::vector<std::string>& vals,
                        std::vector<Pair>* out) {
    out->push_back(Pair{key, std::to_string(vals.size())});
  };
  const std::vector<mr::Subroutine> chain = {mr::WordCountJob(), histogram};
  auto ref = mr::RunSequential(Docs(), chain);
  for (uint32_t n : {2u, 4u}) {
    auto aap = RunOnAap(chain, Docs(), n);
    EXPECT_EQ(aap, ref) << "n=" << n;
  }
}

TEST(MrOnAap, SingleWorkerDegenerates) {
  auto aap = RunOnAap({mr::WordCountJob()}, Docs(), 1);
  auto ref = mr::RunSequential(Docs(), {mr::WordCountJob()});
  EXPECT_EQ(aap, ref);
}

TEST(MrOnAap, EmptyInput) {
  auto aap = RunOnAap({mr::WordCountJob()}, {}, 3);
  EXPECT_TRUE(aap.empty());
}

}  // namespace
}  // namespace grape
