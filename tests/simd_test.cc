// Tests for the deterministic gather-sum kernel (util/simd.h). The lane
// assignment (element k -> lane k % 4, combined ((s0+s1)+(s2+s3))+tail) is
// part of the kernel's *contract*: the differential harness asserts
// bit-identical PageRank results across engines and storage backends, which
// holds only if every gather site rounds identically. These tests pin the
// contract down: GatherSum must be bit-equal to the naive reference
// GatherSumScalar on every length and on adversarial value mixes where a
// different summation order visibly changes the rounding.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/simd.h"

#include <cmath>

namespace grape {
namespace {

struct FakeArc {
  uint32_t dst;
};

constexpr auto kDst = [](const FakeArc& a) { return a.dst; };

TEST(GatherSum, BitEqualToScalarReferenceOnAllSmallLengths) {
  Rng rng(42);
  std::vector<double> vals(512);
  for (double& v : vals) v = rng.UniformDouble(-1e6, 1e6);
  for (size_t n = 0; n <= 64; ++n) {
    std::vector<FakeArc> arcs;
    arcs.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      arcs.push_back({static_cast<uint32_t>(rng.Uniform(512))});
    }
    const double unrolled = GatherSum(arcs.data(), n, vals.data(), kDst);
    const double scalar = GatherSumScalar(arcs.data(), n, vals.data(), kDst);
    // Bit equality, not tolerance: the two must round identically.
    EXPECT_EQ(unrolled, scalar) << "n=" << n;
  }
}

TEST(GatherSum, BitEqualOnMagnitudeAdversarialValues) {
  // Values spanning ~30 orders of magnitude make the sum's rounding depend
  // on the exact accumulation order — any drift between the kernels
  // produces different bits here with near certainty.
  Rng rng(7);
  std::vector<double> vals;
  for (int e = -15; e <= 15; ++e) {
    vals.push_back((rng.UniformDouble(0, 1) - 0.5) * std::pow(10.0, e));
  }
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.Uniform(97);
    std::vector<FakeArc> arcs;
    for (size_t k = 0; k < n; ++k) {
      arcs.push_back({static_cast<uint32_t>(rng.Uniform(vals.size()))});
    }
    const double unrolled = GatherSum(arcs.data(), n, vals.data(), kDst);
    const double scalar = GatherSumScalar(arcs.data(), n, vals.data(), kDst);
    EXPECT_EQ(unrolled, scalar) << "trial=" << trial << " n=" << n;
  }
}

TEST(GatherSum, LaneOrderIsObservable) {
  // Sanity that the contract is non-trivial: a plain left-to-right sum of
  // the same gather differs in bits from the lane-combined sum for these
  // values, so "bit-equal to the reference" genuinely constrains the
  // implementation (if it never differed, the test above would be vacuous).
  const std::vector<double> vals = {1e16, 1.0, -1e16, 1.0, 3.0, 7.0,
                                    1e-3, 2e8};
  std::vector<FakeArc> arcs;
  for (uint32_t k = 0; k < vals.size(); ++k) arcs.push_back({k});
  double sequential = 0.0;
  for (const FakeArc& a : arcs) sequential += vals[a.dst];
  const double laned =
      GatherSum(arcs.data(), arcs.size(), vals.data(), kDst);
  EXPECT_NE(sequential, laned);
  // And the lane sum is the hand-computed one: lanes fold k%4, so
  // s0 = 1e16 + 3, s1 = 1 + 7, s2 = -1e16 + 1e-3, s3 = 1 + 2e8.
  const double expect =
      (((1e16 + 3.0) + (1.0 + 7.0)) + ((-1e16 + 1e-3) + (1.0 + 2e8)));
  EXPECT_EQ(laned, expect);
}

TEST(GatherSum, EmptyAndTinyRuns) {
  const std::vector<double> vals = {2.5, -1.25, 0.5};
  const std::vector<FakeArc> arcs = {{0}, {2}, {1}};
  EXPECT_EQ(GatherSum(arcs.data(), 0, vals.data(), kDst), 0.0);
  EXPECT_EQ(GatherSum(arcs.data(), 1, vals.data(), kDst), 2.5);
  EXPECT_EQ(GatherSum(arcs.data(), 3, vals.data(), kDst),
            GatherSumScalar(arcs.data(), 3, vals.data(), kDst));
}

}  // namespace
}  // namespace grape
