// Unit tests for src/graph: CSR construction, generators' structural
// properties, edge-list I/O round-trips and the sequential ground-truth
// algorithms used to validate the distributed engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"

namespace grape {
namespace {

TEST(GraphBuilder, DirectedCsr) {
  GraphBuilder b(4, /*directed=*/true);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 2, 3.0);
  b.AddEdge(3, 0, 1.0);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.OutEdges(0)[0].dst, 1u);
  EXPECT_EQ(g.OutEdges(0)[1].dst, 2u);
  EXPECT_DOUBLE_EQ(g.OutEdges(3)[0].weight, 1.0);
}

TEST(GraphBuilder, UndirectedStoresBothArcs) {
  GraphBuilder b(3, /*directed=*/false);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(1), 2u);
}

TEST(GraphBuilder, AdjacencySorted) {
  GraphBuilder b(5, true);
  b.AddEdge(0, 4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 3);
  Graph g = std::move(b).Build();
  auto edges = g.OutEdges(0);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end(),
                             [](const Arc& x, const Arc& y) {
                               return x.dst < y.dst;
                             }));
}

TEST(GraphBuilder, LabelsAndBipartite) {
  GraphBuilder b(3, false);
  b.SetVertexLabel(1, 42);
  b.MarkLeft(0);
  b.AddEdge(0, 2);
  Graph g = std::move(b).Build();
  EXPECT_TRUE(g.has_vertex_labels());
  EXPECT_EQ(g.VertexLabel(1), 42);
  EXPECT_TRUE(g.is_bipartite());
  EXPECT_TRUE(g.IsLeft(0));
  EXPECT_FALSE(g.IsLeft(2));
}

TEST(Rmat, ProducesRequestedShape) {
  RmatOptions o;
  o.num_vertices = 1000;  // rounded up to 1024
  o.num_edges = 5000;
  Graph g = MakeRmat(o);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_arcs(), 5000u);
  EXPECT_TRUE(g.directed());
}

TEST(Rmat, DeterministicAcrossCalls) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1000;
  o.seed = 99;
  Graph a = MakeRmat(o), b = MakeRmat(o);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

TEST(Rmat, PowerLawSkew) {
  RmatOptions o;
  o.num_vertices = 4096;
  o.num_edges = 40000;
  Graph g = MakeRmat(o);
  uint64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  const double avg =
      static_cast<double>(g.num_arcs()) / g.num_vertices();
  // Hubs should be far above average degree (power-law signature).
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(RoadGrid, GridStructureAndConnectivity) {
  GridOptions o;
  o.rows = 16;
  o.cols = 16;
  o.shortcut_fraction = 0.0;
  Graph g = MakeRoadGrid(o);
  EXPECT_EQ(g.num_vertices(), 256u);
  // 2*16*15 grid edges, stored as arcs both ways.
  EXPECT_EQ(g.num_edges(), 480u);
  auto cc = seq::ConnectedComponents(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(cc[v], 0u);
}

TEST(SmallWorld, RingDegreeAndConnectivity) {
  SmallWorldOptions o;
  o.num_vertices = 500;
  o.k = 6;
  o.rewire_p = 0.1;
  Graph g = MakeSmallWorld(o);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_EQ(g.num_edges(), 500u * 3);
  auto cc = seq::ConnectedComponents(g);
  EXPECT_EQ(*std::max_element(cc.begin(), cc.end()), 0u);
}

TEST(ErdosRenyi, EdgeCount) {
  ErdosRenyiOptions o;
  o.num_vertices = 100;
  o.num_edges = 300;
  Graph g = MakeErdosRenyi(o);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(Bipartite, SidesAndRatingsInRange) {
  BipartiteOptions o;
  o.num_users = 50;
  o.num_items = 10;
  o.num_ratings = 500;
  Graph g = MakeBipartiteRatings(o);
  EXPECT_TRUE(g.is_bipartite());
  EXPECT_EQ(g.num_vertices(), 60u);
  for (VertexId u = 0; u < 50; ++u) {
    EXPECT_TRUE(g.IsLeft(u));
    for (const Arc& a : g.OutEdges(u)) {
      EXPECT_GE(a.dst, 50u);  // edges only cross sides
      EXPECT_GE(a.weight, o.min_rating);
      EXPECT_LE(a.weight, o.max_rating);
    }
  }
  for (VertexId p = 50; p < 60; ++p) EXPECT_FALSE(g.IsLeft(p));
}

TEST(Fig1b, StructureMatchesExample) {
  std::vector<FragmentId> frag;
  Graph g = MakeFig1bExample(&frag);
  EXPECT_EQ(g.num_vertices(), 24u);
  ASSERT_EQ(frag.size(), 24u);
  // One global connected component whose minimum id is 0.
  auto cc = seq::ConnectedComponents(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(cc[v], 0u);
  // The fragment layout of Fig 1(b): components {1,3,5}->F1, {2,4,6}->F2,
  // {0,7}->F3 (fragment ids 0,1,2 respectively).
  EXPECT_EQ(frag[0], 2u);   // component 0
  EXPECT_EQ(frag[3], 0u);   // component 1
  EXPECT_EQ(frag[6], 1u);   // component 2
  EXPECT_EQ(frag[21], 2u);  // component 7
}

TEST(GraphIo, RoundTrip) {
  GraphBuilder b(4, true);
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(2, 3, 1.5);
  Graph g = std::move(b).Build();
  auto parsed = ParseEdgeList(ToEdgeListText(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& h = parsed.value();
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_arcs(), 2u);
  EXPECT_DOUBLE_EQ(h.OutEdges(0)[0].weight, 2.5);
}

TEST(GraphIo, UndirectedRoundTripKeepsEdgeCount) {
  GraphBuilder b(3, false);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  auto parsed = ParseEdgeList(ToEdgeListText(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_arcs(), 4u);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_FALSE(ParseEdgeList("").ok());
  EXPECT_FALSE(ParseEdgeList("abc").ok());
  EXPECT_FALSE(ParseEdgeList("3 sideways\n0 1\n").ok());
  EXPECT_FALSE(ParseEdgeList("2 directed\n0 5\n").ok());  // out of range
  EXPECT_TRUE(ParseEdgeList("# comment\n2 directed\n0 1 2.0\n").ok());
}

TEST(SeqSssp, MatchesHandComputedDistances) {
  GraphBuilder b(5, true);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  b.AddEdge(0, 2, 5.0);
  b.AddEdge(2, 3, 1.0);
  Graph g = std::move(b).Build();
  auto d = seq::Sssp(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 4.0);
  EXPECT_EQ(d[4], kInfinity);
}

TEST(SeqCc, TwoComponents) {
  GraphBuilder b(6, false);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(4, 5);
  Graph g = std::move(b).Build();
  auto cc = seq::ConnectedComponents(g);
  EXPECT_EQ(cc[0], 0u);
  EXPECT_EQ(cc[2], 0u);
  EXPECT_EQ(cc[3], 3u);
  EXPECT_EQ(cc[4], 4u);
  EXPECT_EQ(cc[5], 4u);
}

TEST(SeqPageRank, SumsToVertexCount) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 2000;
  Graph g = MakeRmat(o);
  auto pr = seq::PageRank(g, 0.85, 1e-8);
  double total = 0;
  for (double s : pr) total += s;
  // With the delta-accumulative formulation, scores sum to ~n (up to the
  // damping mass lost at dangling vertices).
  EXPECT_GT(total, 0.5 * g.num_vertices());
  for (double s : pr) EXPECT_GE(s, 1.0 - 0.85 - 1e-9);
}

TEST(SeqBfs, Levels) {
  GraphBuilder b(4, true);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build();
  auto lv = seq::BfsLevels(g, 0);
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[1], 1);
  EXPECT_EQ(lv[2], 2);
  EXPECT_EQ(lv[3], -1);
}

}  // namespace
}  // namespace grape
