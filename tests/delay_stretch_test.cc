// Unit tests for the delay-stretch controller δ (Eq. 1): the BSP/AP/SSP
// special cases of Section 3, the AAP bound adaptation L_i, idle-time
// capping, and the Hsync switching rules.
#include <gtest/gtest.h>

#include "core/delay_stretch.h"

namespace grape {
namespace {

using Kind = DelayDecision::Kind;

std::vector<uint8_t> AllRelevant(uint32_t n) {
  return std::vector<uint8_t>(n, 1);
}

TEST(DelayStretch, EmptyBufferAlwaysSuspends) {
  for (Mode mode : {Mode::kBsp, Mode::kAp, Mode::kSsp, Mode::kAap}) {
    ModeConfig cfg;
    cfg.mode = mode;
    DelayStretchController c(cfg, 2);
    EXPECT_EQ(c.Decide(0, 0.0, /*eta=*/0, 0, AllRelevant(2)).kind,
              Kind::kSuspend)
        << ModeName(mode);
  }
}

TEST(DelayStretch, ApAlwaysRunsWithMessages) {
  DelayStretchController c(ModeConfig::Ap(), 3);
  // Even with wildly uneven progress, AP runs as soon as η >= 1.
  for (int r = 0; r < 10; ++r) c.OnRoundEnd(0, r + 1.0, 1.0);
  EXPECT_EQ(c.Decide(0, 11.0, 1, 1, AllRelevant(3)).kind, Kind::kRunNow);
}

TEST(DelayStretch, BspIsBarrierMode) {
  DelayStretchController c(ModeConfig::Bsp(), 2);
  EXPECT_TRUE(c.BarrierMode());
  // δ defers to the engine barrier: always suspend.
  EXPECT_EQ(c.Decide(0, 0.0, 5, 1, AllRelevant(2)).kind, Kind::kSuspend);
}

TEST(DelayStretch, SspEnforcesTheLeadBound) {
  DelayStretchController c(ModeConfig::Ssp(2), 2);
  // Worker 0 completes 3 rounds; worker 1 none: lead 3 > c=2 -> suspend.
  for (int r = 0; r < 3; ++r) c.OnRoundEnd(0, r + 1.0, 1.0);
  EXPECT_EQ(c.Decide(0, 4.0, 1, 1, AllRelevant(2)).kind, Kind::kSuspend);
  // Worker 1 must run (it IS the r_min holder).
  EXPECT_EQ(c.Decide(1, 4.0, 1, 1, AllRelevant(2)).kind, Kind::kRunNow);
  // After worker 1 advances once, lead becomes 2 <= c: released.
  c.OnRoundEnd(1, 5.0, 1.0);
  EXPECT_EQ(c.Decide(0, 5.0, 1, 1, AllRelevant(2)).kind, Kind::kRunNow);
}

TEST(DelayStretch, SspIgnoresIrrelevantWorkers) {
  DelayStretchController c(ModeConfig::Ssp(1), 3);
  for (int r = 0; r < 5; ++r) c.OnRoundEnd(0, r + 1.0, 1.0);
  // Worker 1 and 2 idle-and-empty (irrelevant): they do not hold r_min back.
  std::vector<uint8_t> relevant = {1, 0, 0};
  EXPECT_EQ(c.Decide(0, 6.0, 1, 1, relevant).kind, Kind::kRunNow);
}

TEST(DelayStretch, RMinRMaxTrackRounds) {
  DelayStretchController c(ModeConfig::Ap(), 3);
  c.OnRoundEnd(0, 1.0, 1.0);
  c.OnRoundEnd(0, 2.0, 1.0);
  c.OnRoundEnd(2, 2.0, 1.0);
  EXPECT_EQ(c.RMin(AllRelevant(3)), 0);
  EXPECT_EQ(c.RMax(), 2);
  EXPECT_EQ(c.round(0), 2);
  EXPECT_EQ(c.round(1), 0);
}

TEST(DelayStretch, AapRunsOnceEnoughSendersHeard) {
  // With two workers the only peer has been heard: target 0.6 * 1 peer met.
  DelayStretchController c(ModeConfig::Aap(), 2);
  EXPECT_EQ(c.Decide(0, 1.0, 1, 1, AllRelevant(2)).kind, Kind::kRunNow);
}

TEST(DelayStretch, AapSingleWorkerNeverWaits) {
  DelayStretchController c(ModeConfig::Aap(), 1);
  EXPECT_EQ(c.Decide(0, 1.0, 1, 1, AllRelevant(1)).kind, Kind::kRunNow);
}

TEST(DelayStretch, AapWaitsUntilMostPeersHeard) {
  ModeConfig cfg = ModeConfig::Aap(0.0);
  DelayStretchController c(cfg, 8);  // 7 peers -> target 0.6*7 = 4.2 senders
  // Worker 0: rounds take ~6 units; messages arrive every unit.
  c.SeedRoundTime(0, 0.0, 6.0);
  for (int t = 1; t <= 6; ++t) c.OnMessages(0, static_cast<double>(t), 1);
  c.OnIdleStart(0, 6.0);
  const DelayDecision d = c.Decide(0, 6.0, /*eta=*/2, /*senders=*/2,
                                   AllRelevant(8));
  // Only 2 of the 4.2-sender target heard: finite delay stretch.
  EXPECT_EQ(d.kind, Kind::kWaitFor);
  EXPECT_GT(d.wait, 0.0);
  EXPECT_LE(d.wait, 12.0);  // capped at 2 * t_i
  EXPECT_GT(c.CurrentBound(0), 2.0);
}

TEST(DelayStretch, AapReleasesAfterTheIdleBound) {
  // Even while senders are missing, T_idle bounds every wait: once the
  // worker has idled past the stretch it runs (anti-starvation).
  DelayStretchController c(ModeConfig::Aap(0.0), 8);
  c.SeedRoundTime(0, 0.0, 6.0);
  for (int t = 1; t <= 6; ++t) c.OnMessages(0, static_cast<double>(t), 1);
  c.OnIdleStart(0, 6.0);
  const DelayDecision fresh = c.Decide(0, 6.0, /*eta=*/50, /*senders=*/2,
                                       AllRelevant(8));
  ASSERT_EQ(fresh.kind, Kind::kWaitFor);
  // After idling past the stretch, DS has elapsed: run.
  const DelayDecision later = c.Decide(0, 6.0 + fresh.wait + 0.01,
                                       /*eta=*/50, 2, AllRelevant(8));
  EXPECT_EQ(later.kind, Kind::kRunNow);
}

TEST(DelayStretch, AapIdleTimeShrinksTheWait) {
  DelayStretchController c(ModeConfig::Aap(0.0), 8);
  c.SeedRoundTime(0, 0.0, 6.0);
  for (int t = 1; t <= 6; ++t) c.OnMessages(0, static_cast<double>(t), 1);
  c.OnIdleStart(0, 6.0);
  const double wait_fresh = c.Decide(0, 6.0, 2, 2, AllRelevant(8)).wait;
  // Same state queried 2 units later: T_idle grew, DS shrank.
  const DelayDecision later = c.Decide(0, 8.0, 2, 2, AllRelevant(8));
  if (later.kind == Kind::kWaitFor) {
    EXPECT_LT(later.wait, wait_fresh);
  } else {
    EXPECT_EQ(later.kind, Kind::kRunNow);
  }
}

TEST(DelayStretch, ObservedPeersLearnedFromDrains) {
  DelayStretchController c(ModeConfig::Aap(0.0), 16);
  // Starts optimistic (15 peers); repeated 2-sender drains shrink it.
  for (int i = 0; i < 40; ++i) c.OnDrain(0, 2);
  // Target = 0.6 * observed ~ 2 => hearing 2 senders suffices.
  EXPECT_EQ(c.Decide(0, 1.0, 4, 2, AllRelevant(16)).kind, Kind::kRunNow);
}

TEST(DelayStretch, AapBoundedStalenessViaPredicateS) {
  ModeConfig cfg = ModeConfig::Aap();
  cfg.bounded_staleness = true;
  cfg.staleness_bound = 1;
  DelayStretchController c(cfg, 2);
  for (int r = 0; r < 3; ++r) c.OnRoundEnd(0, r + 1.0, 1.0);
  EXPECT_EQ(c.Decide(0, 4.0, 5, 2, AllRelevant(2)).kind, Kind::kSuspend);
  // The CC/SSSP/PageRank configuration (no bound) never suspends on lead.
  DelayStretchController free(ModeConfig::Aap(), 2);
  for (int r = 0; r < 30; ++r) free.OnRoundEnd(0, r + 1.0, 1.0);
  EXPECT_EQ(free.Decide(0, 31.0, 5, 1, AllRelevant(2)).kind, Kind::kRunNow);
}

TEST(DelayStretch, HsyncSwitchesToBspOnLargeGapAndBack) {
  ModeConfig cfg = ModeConfig::Hsync();
  cfg.hsync_gap_hi = 2;
  DelayStretchController c(cfg, 2);
  EXPECT_FALSE(c.BarrierMode());
  // AP sub-mode: run.
  EXPECT_EQ(c.Decide(0, 0.0, 1, 1, AllRelevant(2)).kind, Kind::kRunNow);
  // Gap exceeds the threshold: switch to BSP sub-mode.
  c.NoteRoundGap(3);
  EXPECT_TRUE(c.BarrierMode());
  EXPECT_EQ(c.Decide(0, 0.0, 1, 1, AllRelevant(2)).kind, Kind::kSuspend);
  // A few supersteps realign the workers; then back to AP.
  c.OnBarrierRelease();
  c.OnBarrierRelease();
  c.OnBarrierRelease();
  EXPECT_FALSE(c.BarrierMode());
}

TEST(DelayStretch, RestoreRoundsResetsCounters) {
  DelayStretchController c(ModeConfig::Ap(), 2);
  c.OnRoundEnd(0, 1.0, 1.0);
  c.OnRoundEnd(0, 2.0, 1.0);
  c.RestoreRounds({1, 0});
  EXPECT_EQ(c.round(0), 1);
  EXPECT_EQ(c.round(1), 0);
}

}  // namespace
}  // namespace grape
