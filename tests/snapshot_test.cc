// Fault-tolerance tests (Section 6): the token checkpoint protocol over
// asynchronous runs, late-message folding, and whole-run failure recovery —
// a run that crashes one worker and rolls back to the snapshot must still
// converge at the correct fixpoint.
#include <gtest/gtest.h>

#include "algos/cc.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

struct World {
  Graph graph;
  Partition partition;
};

World MakeWorld(uint64_t seed = 71) {
  GridOptions o;  // high diameter => long runs, checkpoint lands mid-flight
  o.rows = 40;
  o.cols = 40;
  o.seed = seed;
  World w;
  w.graph = MakeRoadGrid(o);
  w.partition = RangePartitioner().Partition_(w.graph, 12);
  return w;
}

double FullRunTime(const World& w) {
  // Run once without checkpointing to learn the makespan.
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  SimEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  return r.stats.makespan;
}

TEST(Snapshot, CheckpointDoesNotPerturbResult) {
  World w = MakeWorld();
  const auto truth = seq::ConnectedComponents(w.graph);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.checkpoint_time = 0.3 * FullRunTime(w);
  SimEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
}

TEST(Snapshot, FailureRecoveryConvergesToSameFixpoint) {
  World w = MakeWorld(73);
  const auto truth = seq::ConnectedComponents(w.graph);
  const double makespan = FullRunTime(w);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.checkpoint_time = 0.3 * makespan;
  cfg.fail_worker = 2;
  // Crash well after the broadcast (+1 latency unit) finishes the snapshot.
  cfg.fail_time = 0.8 * makespan;
  SimEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
  // The rollback shows up in the trace.
  EXPECT_EQ(r.trace.restarts().size(), 1u);
}

TEST(Snapshot, FailureRecoveryUnderSsspToo) {
  World w = MakeWorld(79);
  const auto truth = seq::Sssp(w.graph, 0);
  EngineConfig base;
  base.mode = ModeConfig::Ap();
  SimEngine<SsspProgram> probe(w.partition, SsspProgram(0), base);
  const double makespan = probe.Run().stats.makespan;

  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.checkpoint_time = 0.3 * makespan;
  cfg.fail_worker = 1;
  cfg.fail_time = 0.8 * makespan;
  SimEngine<SsspProgram> engine(w.partition, SsspProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.trace.restarts().size(), 1u);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST(Snapshot, FailureBeforeCheckpointIsIgnored) {
  World w = MakeWorld(83);
  const auto truth = seq::ConnectedComponents(w.graph);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.checkpoint_time = 0.0;  // no checkpoint at all
  cfg.fail_worker = 0;
  cfg.fail_time = 0.5 * FullRunTime(w);
  SimEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  // Without a completed snapshot there is nothing to roll back to; the
  // engine warns and the run continues unharmed.
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
  EXPECT_TRUE(r.trace.restarts().empty());
}

TEST(Snapshot, WorksUnderAapMode) {
  World w = MakeWorld(89);
  const auto truth = seq::ConnectedComponents(w.graph);
  EngineConfig probe_cfg;
  probe_cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> probe(w.partition, CcProgram{}, probe_cfg);
  const double makespan = probe.Run().stats.makespan;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.checkpoint_time = 0.3 * makespan;
  cfg.fail_worker = 3;
  cfg.fail_time = 0.8 * makespan;
  SimEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
}

}  // namespace
}  // namespace grape
