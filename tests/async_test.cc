// Async-engine tests: the barrier-free worklist runtime (chunked-FIFO
// worklists with atomic-flag dedup and chunk stealing, delta-stepping
// buckets, bounded staleness, quiescence termination) must reach the same
// fixpoints as the sequential ground truth — exactly for the monotone-min
// programs (CC / SSSP / BFS), to fixpoint tolerance for PageRank — over
// materialised and streaming storage, and stay correct across re-runs of
// one engine instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/async_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "runtime/worklist.h"

namespace grape {
namespace {

// ---------------------------------------------------------- ChunkedWorklist

TEST(ChunkedWorklist, PushPopFifoWithinLane) {
  ChunkedWorklist wl(/*num_lanes=*/2, /*num_items=*/64);
  for (uint32_t i = 0; i < 40; ++i) EXPECT_TRUE(wl.PushUnique(0, i));
  EXPECT_EQ(wl.size(), 40u);
  uint32_t item = 0;
  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(wl.Pop(0, &item));
    EXPECT_EQ(item, i) << "chunked FIFO must preserve lane order";
  }
  EXPECT_FALSE(wl.Pop(0, &item));
  EXPECT_TRUE(wl.Empty());
}

TEST(ChunkedWorklist, PushUniqueDeduplicates) {
  ChunkedWorklist wl(1, 8);
  EXPECT_TRUE(wl.PushUnique(0, 3));
  EXPECT_FALSE(wl.PushUnique(0, 3)) << "queued item must not enqueue twice";
  EXPECT_EQ(wl.size(), 1u);
  uint32_t item = 0;
  ASSERT_TRUE(wl.Pop(0, &item));
  EXPECT_EQ(item, 3u);
  // Popping clears the dedup flag: the item may be queued again.
  EXPECT_TRUE(wl.PushUnique(0, 3));
  EXPECT_EQ(wl.pushes(), 2u);
}

TEST(ChunkedWorklist, StealTakesVictimChunk) {
  ChunkedWorklist wl(2, 128);
  for (uint32_t i = 0; i < 40; ++i) EXPECT_TRUE(wl.PushUnique(0, i));
  uint32_t item = 0;
  // Lane 1 is empty; stealing moves one of lane 0's chunks over.
  ASSERT_TRUE(wl.Steal(1, &item));
  EXPECT_GE(wl.steals(), 1u);
  // Every queued item is still delivered exactly once across both lanes.
  std::set<uint32_t> seen{item};
  while (wl.Pop(1, &item)) EXPECT_TRUE(seen.insert(item).second);
  while (wl.Pop(0, &item)) EXPECT_TRUE(seen.insert(item).second);
  EXPECT_EQ(seen.size(), 40u);
  EXPECT_TRUE(wl.Empty());
}

TEST(ChunkedWorklist, StealFromEmptyFails) {
  ChunkedWorklist wl(3, 16);
  uint32_t item = 0;
  EXPECT_FALSE(wl.Steal(0, &item));
}

TEST(ChunkedWorklist, ConcurrentPushPopStealDeliversEachItemOnce) {
  // 4 producers/consumers hammer one worklist; dedup plus chunk moves must
  // deliver every pushed item exactly once (the AsyncSet contract the
  // engine's re-queue path relies on).
  constexpr uint32_t kLanes = 4;
  constexpr uint32_t kItems = 4096;
  ChunkedWorklist wl(kLanes, kItems);
  std::vector<std::atomic<uint32_t>> delivered(kItems);
  for (auto& d : delivered) d.store(0);
  std::atomic<uint32_t> next{0};
  std::vector<std::thread> threads;
  for (uint32_t lane = 0; lane < kLanes; ++lane) {
    threads.emplace_back([&, lane] {
      uint32_t item = 0;
      for (;;) {
        const uint32_t i = next.fetch_add(1);
        if (i >= kItems) break;
        wl.PushUnique(lane, i);
        wl.PushUnique(lane, i);  // duplicate must be rejected or popped once
        if (wl.Pop(lane, &item) || wl.Steal(lane, &item)) {
          delivered[item].fetch_add(1);
        }
      }
      // Drain whatever is left from any lane.
      while (wl.Pop(lane, &item) || wl.Steal(lane, &item)) {
        delivered[item].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (uint32_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(delivered[i].load(), 1u) << "item " << i;
  }
  EXPECT_TRUE(wl.Empty());
}

// --------------------------------------------------------- BucketedWorklist

TEST(BucketedWorklist, PopsLowestBucketFirst) {
  BucketedWorklist<int> wl;
  wl.set_delta(1.0);
  wl.Push(5.0, 50);
  wl.Push(1.0, 10);
  wl.Push(3.0, 30);
  wl.Push(1.5, 15);
  std::vector<int> batch;
  wl.PopBatch(16, &batch);
  ASSERT_EQ(batch.size(), 2u);  // bucket [1, 2): items 10 and 15
  EXPECT_EQ(std::min(batch[0], batch[1]), 10);
  EXPECT_EQ(std::max(batch[0], batch[1]), 15);
  batch.clear();
  wl.PopBatch(16, &batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 30);
  batch.clear();
  wl.PopBatch(16, &batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 50);
  EXPECT_TRUE(wl.Empty());
}

TEST(BucketedWorklist, PopBatchRespectsLimit) {
  BucketedWorklist<int> wl;
  wl.set_delta(1.0);
  for (int i = 0; i < 10; ++i) wl.Push(0.5, i);
  std::vector<int> batch;
  wl.PopBatch(3, &batch);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(wl.size(), 7u);
}

TEST(BucketedWorklist, ZeroDeltaDegradesToSingleBucket) {
  BucketedWorklist<int> wl;
  wl.set_delta(0.0);
  wl.Push(100.0, 1);
  wl.Push(0.0, 2);
  wl.Push(1e18, 3);
  std::vector<int> batch;
  wl.PopBatch(16, &batch);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(wl.Empty());
}

TEST(BucketedWorklist, ExtremePrioritiesClampSafely) {
  BucketedWorklist<int> wl;
  wl.set_delta(1.0);
  wl.Push(-5.0, 1);                // below base: earliest bucket
  wl.Push(1e300, 2);               // clamps to the last bucket
  wl.Push(kInfinity, 3);           // +inf clamps too
  std::vector<int> batch;
  wl.PopBatch(1, &batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 1);
  batch.clear();
  while (!wl.Empty()) wl.PopBatch(16, &batch);
  EXPECT_EQ(batch.size(), 2u);
}

// --------------------------------------------------------------- the engine

struct World {
  Graph graph;
  Partition partition;
};

World MakeWorld(FragmentId m, uint64_t seed = 51) {
  ErdosRenyiOptions o;
  o.num_vertices = 400;
  o.num_edges = 1500;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 6.0;
  o.seed = seed;
  World w;
  w.graph = MakeErdosRenyi(o);
  w.partition = HashPartitioner().Partition_(w.graph, m);
  return w;
}

EngineConfig AsyncCfg(uint32_t threads) {
  EngineConfig cfg;
  cfg.num_threads = threads;
  return cfg;
}

TEST(AsyncEngine, CcMatchesUnionFind) {
  World w = MakeWorld(6);
  const auto truth = seq::ConnectedComponents(w.graph);
  AsyncEngine<CcProgram> engine(w.partition, CcProgram{}, AsyncCfg(3));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GE(r.termination_probes, 1u);
}

TEST(AsyncEngine, SsspMatchesDijkstra) {
  World w = MakeWorld(5);
  const auto truth = seq::Sssp(w.graph, 0);
  AsyncEngine<SsspProgram> engine(w.partition, SsspProgram(0), AsyncCfg(2));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST(AsyncEngine, BfsMatchesLevels) {
  World w = MakeWorld(4, 57);
  const auto truth = seq::BfsLevels(w.graph, 0);
  AsyncEngine<BfsProgram> engine(w.partition, BfsProgram(0), AsyncCfg(2));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
}

TEST(AsyncEngine, PageRankFixpointClose) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1200;
  o.seed = 57;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  const auto truth = seq::PageRank(g, 0.85, 1e-10);
  AsyncEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-8),
                                      AsyncCfg(2));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(r.result[v], truth[v], 2e-3);
  }
}

TEST(AsyncEngine, TinyQuantaStillConverge) {
  // async_chunk=1 approximates per-vertex execution — the most
  // fine-grained interleaving the engine supports.
  World w = MakeWorld(4, 61);
  EngineConfig cfg = AsyncCfg(3);
  cfg.async_chunk = 1;
  AsyncEngine<SsspProgram> engine(w.partition, SsspProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  const auto truth = seq::Sssp(w.graph, 0);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST(AsyncEngine, DeltaSweepDoesNotChangeResults) {
  // The delta-stepping bucket width is a scheduling heuristic only.
  World w = MakeWorld(5, 63);
  const auto truth = seq::Sssp(w.graph, 0);
  for (double delta : {0.0, 0.25, 2.0, 100.0}) {
    EngineConfig cfg = AsyncCfg(2);
    cfg.async_delta = delta;
    AsyncEngine<SsspProgram> engine(w.partition, SsspProgram(0), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << "delta=" << delta;
    for (size_t v = 0; v < truth.size(); ++v) {
      ASSERT_DOUBLE_EQ(r.result[v], truth[v]) << "delta=" << delta;
    }
  }
}

TEST(AsyncEngine, StalenessKnobOnAndOff) {
  World w = MakeWorld(4, 65);
  const auto truth = seq::ConnectedComponents(w.graph);
  for (double staleness : {0.0, 1e-9, 0.05}) {
    EngineConfig cfg = AsyncCfg(2);
    cfg.async_staleness_sec = staleness;
    AsyncEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << "staleness=" << staleness;
    EXPECT_EQ(r.result, truth) << "staleness=" << staleness;
  }
}

TEST(AsyncEngine, SingleThreadStillCompletes) {
  World w = MakeWorld(5);
  AsyncEngine<CcProgram> engine(w.partition, CcProgram{}, AsyncCfg(1));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(w.graph));
}

TEST(AsyncEngine, RepeatedRunsAreConsistent) {
  // Barrier-free interleaving must not leak into results (Church–Rosser),
  // and one engine instance must be re-runnable: every Run() starts from
  // fresh state.
  World w = MakeWorld(6, 61);
  const auto truth = seq::ConnectedComponents(w.graph);
  AsyncEngine<CcProgram> engine(w.partition, CcProgram{}, AsyncCfg(3));
  for (int rep = 0; rep < 3; ++rep) {
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.result, truth) << "rep " << rep;
  }
}

TEST(AsyncEngine, StreamingMatchesMaterialised) {
  // Same fixpoints when every adjacency access goes through the chunked
  // out-of-core source, including the degenerate 1-arc budget; the engine
  // must release all point windows at run end.
  World w = MakeWorld(4, 71);
  const auto cc_truth = seq::ConnectedComponents(w.graph);
  const auto sssp_truth = seq::Sssp(w.graph, 0);
  for (uint64_t budget : {uint64_t{1}, uint64_t{64}}) {
    ChunkedArcSource src(w.graph.View(), budget);
    PartitionOptions opts;
    opts.arc_source = &src;
    auto placement = HashPartitioner().Assign(w.graph, 4);
    const Partition sp =
        BuildPartition(w.graph, placement, 4, nullptr, opts);
    {
      AsyncEngine<CcProgram> engine(sp, CcProgram{}, AsyncCfg(2));
      auto r = engine.Run();
      ASSERT_TRUE(r.converged) << "budget=" << budget;
      EXPECT_EQ(r.result, cc_truth) << "budget=" << budget;
    }
    {
      AsyncEngine<SsspProgram> engine(sp, SsspProgram(0), AsyncCfg(2));
      auto r = engine.Run();
      ASSERT_TRUE(r.converged) << "budget=" << budget;
      for (size_t v = 0; v < sssp_truth.size(); ++v) {
        ASSERT_DOUBLE_EQ(r.result[v], sssp_truth[v])
            << "budget=" << budget << " v=" << v;
      }
    }
    EXPECT_EQ(src.resident_arcs(), 0u)
        << "async engine must release point windows at run end";
  }
}

TEST(AsyncEngine, WorklistTelemetryIsPopulated) {
  World w = MakeWorld(6, 73);
  AsyncEngine<CcProgram> engine(w.partition, CcProgram{}, AsyncCfg(3));
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  // Deliveries re-queue their destinations, so a multi-fragment run pushes.
  EXPECT_GT(r.worklist_pushes, 0u);
}

}  // namespace
}  // namespace grape
