// Unit tests for src/util: RNG determinism, online stats, rate estimation,
// histogram quantiles, table / Gantt rendering, Status plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace grape {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ema, ConvergesToConstantInput) {
  Ema e(0.5);
  for (int i = 0; i < 50; ++i) e.Add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ema, FirstValueInitialises) {
  Ema e(0.1);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(RateEstimator, UniformArrivalsGiveRate) {
  RateEstimator r;
  for (int i = 0; i <= 20; ++i) r.OnEvent(static_cast<double>(i) * 0.5);
  EXPECT_NEAR(r.RatePerUnit(), 2.0, 0.05);
}

TEST(RateEstimator, BatchArrivals) {
  RateEstimator r;
  // 4 messages per time unit, delivered in batches of 2 every 0.5.
  for (int i = 0; i <= 20; ++i) r.OnEvent(static_cast<double>(i) * 0.5, 2);
  EXPECT_NEAR(r.RatePerUnit(), 4.0, 0.1);
  EXPECT_EQ(r.total_events(), 42u);
}

TEST(RateEstimator, NoEventsMeansZero) {
  RateEstimator r;
  EXPECT_EQ(r.RatePerUnit(), 0.0);
  r.OnEvent(1.0);
  EXPECT_EQ(r.RatePerUnit(), 0.0);  // one event: no gap yet
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, OverUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(5.0);
  h.Add(0.5);
  EXPECT_EQ(h.count(), 3u);
}

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable t({"system", "time"});
  t.AddRow({"GRAPE+", "26.4"});
  t.AddRow({"Giraph", "6117.7"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("GRAPE+"), std::string::npos);
  EXPECT_NE(s.find("6117.7"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(AsciiTable, CsvEmission) {
  AsciiTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(AsciiTable, NumFormatting) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(2.0, 0), "2");
}

TEST(Gantt, RendersLanesAndSpans) {
  std::vector<GanttSpan> spans = {{0, 0.0, 5.0, '#'}, {1, 5.0, 10.0, '1'}};
  const std::string s = RenderGantt(spans, 2, 10.0, 20);
  // Two lanes labelled P0 / P1.
  EXPECT_NE(s.find("P0"), std::string::npos);
  EXPECT_NE(s.find("P1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad"), std::string::npos);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::NotFound("x"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace grape
