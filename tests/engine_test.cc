// Integration tests for the AAP sim engine: every PIE program, under every
// parallel model (BSP / AP / SSP / AAP / Hsync), over several partitioners,
// must reach the sequential ground-truth fixpoint — Theorem 2's guarantee
// made executable. Also checks the Fig. 1(b) example and engine mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/bfs.h"
#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

struct GraphSetup {
  Graph graph;
  Partition partition;
};

GraphSetup MakeSetup(FragmentId m, uint64_t seed = 3) {
  GraphSetup s;
  ErdosRenyiOptions o;
  o.num_vertices = 400;
  o.num_edges = 1600;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 9.0;
  o.seed = seed;
  s.graph = MakeErdosRenyi(o);
  s.partition = HashPartitioner().Partition_(s.graph, m);
  return s;
}

std::vector<ModeConfig> AllModes() {
  return {ModeConfig::Bsp(), ModeConfig::Ap(), ModeConfig::Ssp(2),
          ModeConfig::Aap(), ModeConfig::Hsync()};
}

TEST(SimEngineCc, MatchesGroundTruthUnderAllModes) {
  GraphSetup s = MakeSetup(6);
  const auto truth = seq::ConnectedComponents(s.graph);
  for (const ModeConfig& mode : AllModes()) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    EXPECT_EQ(r.result, truth) << ModeName(mode.mode);
  }
}

TEST(SimEngineSssp, MatchesDijkstraUnderAllModes) {
  GraphSetup s = MakeSetup(5);
  const VertexId src = 1;
  const auto truth = seq::Sssp(s.graph, src);
  for (const ModeConfig& mode : AllModes()) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<SsspProgram> engine(s.partition, SsspProgram(src), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    ASSERT_EQ(r.result.size(), truth.size());
    for (size_t v = 0; v < truth.size(); ++v) {
      EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
    }
  }
}

TEST(SimEngineBfs, MatchesBfsLevels) {
  GraphSetup s = MakeSetup(4);
  const auto truth = seq::BfsLevels(s.graph, 0);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<BfsProgram> engine(s.partition, BfsProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST(SimEnginePageRank, MatchesSequentialUnderAllModes) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1500;
  o.seed = 5;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  const double tol = 1e-7;
  const auto truth = seq::PageRank(g, 0.85, 1e-10);
  for (const ModeConfig& mode : AllModes()) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, tol), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    for (size_t v = 0; v < truth.size(); ++v) {
      // The distributed run retires residual mass below tol at each vertex;
      // scores may lag the exact fixpoint by a bounded amount.
      EXPECT_NEAR(r.result[v], truth[v], 1e-3) << "v=" << v;
    }
  }
}

TEST(SimEngine, SingleFragmentDegeneratesToSequential) {
  GraphSetup s;
  GridOptions o;
  o.rows = 10;
  o.cols = 10;
  s.graph = MakeRoadGrid(o);
  s.partition = HashPartitioner().Partition_(s.graph, 1);
  EngineConfig cfg;
  SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.stats.total_rounds(), 0u);  // PEval alone suffices
  EXPECT_EQ(r.result, seq::ConnectedComponents(s.graph));
}

TEST(SimEngine, Fig1bBspNeedsMultipleSuperstepsToSpreadMinCid) {
  // Example 4(a): under BSP the minimal cid 0 (straggler fragment F3) needs
  // several supersteps to cross the component chain to component 7 — one
  // fragment hop per superstep.
  std::vector<FragmentId> frag;
  Graph g = MakeFig1bExample(&frag);
  Partition p = BuildPartition(g, frag, 3);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(r.result[v], 0u);
  EXPECT_GE(r.supersteps, 4u);
  EXPECT_LE(r.supersteps, 8u);
}

TEST(SimEngine, StragglersDoNotAffectResults) {
  GraphSetup s = MakeSetup(6);
  const auto truth = seq::ConnectedComponents(s.graph);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.speed_factors = {1.0, 1.0, 6.0, 1.0, 1.0, 2.0};  // two stragglers
  SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
}

TEST(SimEngine, JitteredSchedulesStillConverge) {
  GraphSetup s = MakeSetup(5);
  const auto truth = seq::ConnectedComponents(s.graph);
  for (uint64_t seed : {1u, 2u, 3u}) {
    EngineConfig cfg;
    cfg.mode = ModeConfig::Ap();
    cfg.compute_jitter = 0.5;
    cfg.seed = seed;
    SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.result, truth) << "seed " << seed;
  }
}

TEST(SimEngine, StatsAreConsistent) {
  GraphSetup s = MakeSetup(4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.stats.total_rounds(), 0u);
  EXPECT_GT(r.stats.total_msgs(), 0u);
  EXPECT_GT(r.stats.total_bytes(), 0u);
  EXPECT_GT(r.stats.makespan, 0.0);
  uint64_t recv = 0, sent = 0;
  for (const auto& w : r.stats.workers) {
    recv += w.msgs_received;
    sent += w.msgs_sent;
  }
  EXPECT_EQ(recv, sent);  // everything sent was delivered
  EXPECT_GT(r.trace.spans().size(), 0u);
  EXPECT_DOUBLE_EQ(r.stats.makespan, r.trace.EndTime());
}

TEST(SimEngine, BspHasLockstepRounds) {
  GraphSetup s = MakeSetup(4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  // Under BSP no worker can run more rounds than there were supersteps.
  EXPECT_GT(r.supersteps, 0u);
  EXPECT_LE(r.stats.max_rounds(), r.supersteps);
}

TEST(SimEngine, ApNeverSuspends) {
  GraphSetup s = MakeSetup(4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  SimEngine<CcProgram> engine(s.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.stats.total_suspended(), 0.0);
}

}  // namespace
}  // namespace grape
