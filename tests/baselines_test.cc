// Baseline-system tests: the reference Pregel engine, the vertex-centric
// programs on the AAP engine (Table 1 stand-ins for Giraph / GraphLab /
// Maiter), and the structural claims the paper makes about them — more
// rounds than block-centric PIE, more shipped data, higher modelled cost.
#include <gtest/gtest.h>

#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "baselines/cost_model.h"
#include "baselines/pregel.h"
#include "baselines/vc_programs.h"
#include "baselines/vertex_algos.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

Graph SmallWeighted(uint64_t seed = 13) {
  ErdosRenyiOptions o;
  o.num_vertices = 300;
  o.num_edges = 1100;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 4.0;
  o.seed = seed;
  return MakeErdosRenyi(o);
}

// -------------------------------------------------------------- Pregel ---

TEST(PregelEngine, SsspMatchesDijkstra) {
  Graph g = SmallWeighted();
  pregel::Engine<pregel::SsspVertexProgram> engine(
      g, pregel::SsspVertexProgram{.source = 0});
  auto r = engine.Run();
  const auto truth = seq::Sssp(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(r.values[v], truth[v]) << "v=" << v;
  }
  EXPECT_GT(r.stats.supersteps, 1u);
  EXPECT_GT(r.stats.messages, 0u);
}

TEST(PregelEngine, CcMatchesUnionFind) {
  Graph g = SmallWeighted(17);
  pregel::Engine<pregel::CcVertexProgram> engine(g, {});
  auto r = engine.Run();
  const auto truth = seq::ConnectedComponents(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], truth[v]);
  }
}

TEST(PregelEngine, PageRankMatchesSequential) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1400;
  o.seed = 3;
  Graph g = MakeRmat(o);
  pregel::Engine<pregel::PageRankVertexProgram> engine(
      g, pregel::PageRankVertexProgram{.damping = 0.85, .tol = 1e-9});
  auto r = engine.Run();
  const auto truth = seq::PageRank(g, 0.85, 1e-11);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.values[v].score, truth[v], 1e-3);
  }
}

TEST(PregelEngine, HaltsOnIsolatedGraph) {
  GraphBuilder b(10, true);  // no edges at all
  Graph g = std::move(b).Build();
  pregel::Engine<pregel::CcVertexProgram> engine(g, {});
  auto r = engine.Run();
  EXPECT_LE(r.stats.supersteps, 2u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(r.values[v], v);
}

// ------------------------------------------------- vertex-centric on AAP ---

TEST(VcPrograms, SsspCorrectUnderBspAndAp) {
  Graph g = SmallWeighted(23);
  Partition p = HashPartitioner().Partition_(g, 4);
  const auto truth = seq::Sssp(g, 0);
  for (const ModeConfig& mode : {ModeConfig::Bsp(), ModeConfig::Ap()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    SimEngine<VcSsspProgram> engine(
        p, VcSsspProgram(0, VcCostModel::GraphLab()), cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    for (size_t v = 0; v < truth.size(); ++v) {
      EXPECT_DOUBLE_EQ(r.result[v], truth[v]);
    }
  }
}

TEST(VcPrograms, CcCorrect) {
  Graph g = SmallWeighted(29);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<VcCcProgram> engine(p, VcCcProgram(VcCostModel::GraphLab()), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(g));
}

TEST(VcPrograms, PageRankCorrect) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1400;
  o.seed = 31;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  const auto truth = seq::PageRank(g, 0.85, 1e-10);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();  // Maiter's model
  SimEngine<VcPageRankProgram> engine(
      p, VcPageRankProgram(VcCostModel::Maiter(), 0.85, 1e-8), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(r.result[v], truth[v], 2e-3);
  }
}

TEST(VcVsPie, VertexCentricNeedsMoreRoundsOnHighDiameterGraphs) {
  // The paper's Exp-1 explanation: block-centric PIE converges local state
  // per round (Dijkstra inside fragments), so on high-diameter graphs (the
  // `traffic` road network case) it needs far fewer rounds — and hence far
  // less modelled time — than one-hop-per-superstep vertex-centric systems.
  GridOptions o;
  o.rows = 24;
  o.cols = 24;
  o.seed = 5;
  Graph g = MakeRoadGrid(o);
  Partition p = RangePartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();

  SimEngine<SsspProgram> pie(p, SsspProgram(0), cfg);
  auto pie_r = pie.Run();
  SimEngine<VcSsspProgram> vc(p, VcSsspProgram(0, VcCostModel::GraphLab()),
                              cfg);
  auto vc_r = vc.Run();
  ASSERT_TRUE(pie_r.converged && vc_r.converged);
  EXPECT_LT(pie_r.stats.max_rounds(), vc_r.stats.max_rounds());
  EXPECT_LT(pie_r.stats.makespan, vc_r.stats.makespan);
}

TEST(VcVsPie, PieShipsFewerBytes) {
  // Exp-2: incremental IncEval ships only changed border values once per
  // round; vertex-centric re-ships every border improvement every hop.
  Graph g = SmallWeighted(41);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<CcProgram> pie(p, CcProgram{}, cfg);
  SimEngine<VcCcProgram> vc(p, VcCcProgram(VcCostModel::GraphLab()), cfg);
  auto pie_r = pie.Run();
  auto vc_r = vc.Run();
  EXPECT_LE(pie_r.stats.total_bytes(), vc_r.stats.total_bytes());
}

TEST(CostModels, GiraphChargesMoreThanGraphLab) {
  const auto giraph = VcCostModel::Giraph();
  const auto graphlab = VcCostModel::GraphLab();
  EXPECT_GT(giraph.vertex_overhead, graphlab.vertex_overhead);
  EXPECT_GT(giraph.remote_msg, graphlab.remote_msg);
  // And the modelled cost difference is visible end-to-end.
  Graph g = SmallWeighted(43);
  Partition p = HashPartitioner().Partition_(g, 4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Bsp();
  SimEngine<VcSsspProgram> as_giraph(p, VcSsspProgram(0, giraph), cfg);
  SimEngine<VcSsspProgram> as_graphlab(p, VcSsspProgram(0, graphlab), cfg);
  auto rg = as_giraph.Run();
  auto rl = as_graphlab.Run();
  EXPECT_GT(rg.stats.makespan, rl.stats.makespan);
}

}  // namespace
}  // namespace grape
