// Threaded-engine tests: the real-concurrency GRAPE+ runtime (point-to-point
// channels, δ-gated scheduling, the Section 3 termination protocol) must
// reach the same fixpoints as the sequential ground truth across modes and
// thread counts, including n < m (virtual workers sharing threads).
#include <gtest/gtest.h>

#include "algos/cc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/channel.h"
#include "util/timer.h"

namespace grape {
namespace {

struct World {
  Graph graph;
  Partition partition;
};

World MakeWorld(FragmentId m, uint64_t seed = 51) {
  ErdosRenyiOptions o;
  o.num_vertices = 400;
  o.num_edges = 1500;
  o.directed = false;
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 6.0;
  o.seed = seed;
  World w;
  w.graph = MakeErdosRenyi(o);
  w.partition = HashPartitioner().Partition_(w.graph, m);
  return w;
}

TEST(ThreadedEngine, CcUnderAllSupportedModes) {
  World w = MakeWorld(6);
  const auto truth = seq::ConnectedComponents(w.graph);
  for (const ModeConfig& mode :
       {ModeConfig::Bsp(), ModeConfig::Ap(), ModeConfig::Ssp(2),
        ModeConfig::Aap()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.num_threads = 3;  // n < m: virtual workers share threads
    ThreadedEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged) << ModeName(mode.mode);
    EXPECT_EQ(r.result, truth) << ModeName(mode.mode);
    EXPECT_GT(r.wall_seconds, 0.0);
  }
}

TEST(ThreadedEngine, SsspMatchesDijkstra) {
  World w = MakeWorld(5);
  const auto truth = seq::Sssp(w.graph, 0);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.num_threads = 2;
  ThreadedEngine<SsspProgram> engine(w.partition, SsspProgram(0), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.result[v], truth[v]) << "v=" << v;
  }
}

TEST(ThreadedEngine, PageRankWithinTolerance) {
  RmatOptions o;
  o.num_vertices = 256;
  o.num_edges = 1200;
  o.seed = 57;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 4);
  const auto truth = seq::PageRank(g, 0.85, 1e-10);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.num_threads = 2;
  ThreadedEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-8), cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(r.result[v], truth[v], 2e-3);
  }
}

TEST(ThreadedEngine, TerminationProtocolProbes) {
  World w = MakeWorld(4);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Ap();
  cfg.num_threads = 2;
  ThreadedEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  // The master needed at least the successful probe.
  EXPECT_GE(r.termination_probes, 1u);
}

TEST(ThreadedEngine, SingleThreadStillCompletes) {
  World w = MakeWorld(5);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.num_threads = 1;
  ThreadedEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, seq::ConnectedComponents(w.graph));
}

TEST(NotifyHub, PublishBetweenEpochCaptureAndTimedWaitWakesImmediately) {
  // Pins the idle-wakeup interleaving of the engine's deadline race: a
  // worker captures the hub epoch, scans deadlines, then parks in
  // WaitForSeconds. A deadline publish / delivery that lands *between* the
  // capture and the wait rings NotifyAll — the epoch mismatch must make
  // the timed wait return immediately instead of sleeping out the full
  // deadline. Deterministic: capture, publish and wait all on this thread.
  NotifyHub hub;
  const uint64_t epoch = hub.Epoch();
  hub.NotifyAll();  // the racing publish, after the capture
  Stopwatch sw;
  hub.WaitForSeconds(epoch, 60.0);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0)
      << "timed wait slept through a publish that pre-dated it";
}

TEST(ThreadedEngine, DeliveryCancelsPublishedWaitDeadlines) {
  // Regression for the eligible_at oversleep: a worker that published a
  // kWaitFor deadline and went idle must be reconsidered as soon as new
  // messages arrive (the delivery clears the published deadline and rings
  // the hub), not after the stale deadline expires. AAP with a high
  // accumulation floor and a large Δt cap makes the controller publish
  // waits aggressively; with deadlines cancelled on delivery the run still
  // finishes promptly and exactly.
  World w = MakeWorld(6, 67);
  const auto truth = seq::ConnectedComponents(w.graph);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap(/*l_bottom=*/8.0);
  cfg.mode.delta_t_fraction = 50.0;
  cfg.num_threads = 3;
  Stopwatch sw;
  ThreadedEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
  auto r = engine.Run();
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.result, truth);
  EXPECT_LT(sw.ElapsedSeconds(), 10.0)
      << "stale wait deadlines oversleeping deliveries";
}

TEST(ThreadedEngine, RepeatedRunsAreConsistent) {
  // Concurrency must not leak into results (Church–Rosser, threaded).
  World w = MakeWorld(6, 61);
  const auto truth = seq::ConnectedComponents(w.graph);
  for (int rep = 0; rep < 3; ++rep) {
    EngineConfig cfg;
    cfg.mode = ModeConfig::Ap();
    cfg.num_threads = 3;
    ThreadedEngine<CcProgram> engine(w.partition, CcProgram{}, cfg);
    auto r = engine.Run();
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.result, truth) << "rep " << rep;
  }
}

}  // namespace
}  // namespace grape
