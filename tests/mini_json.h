// Standalone recursive-descent JSON parser for tests only: proves the
// observability exports (metrics snapshots, RunReport, Chrome trace events)
// are well-formed by re-reading them, independently of the JsonWriter that
// produced them. Deliberately not part of the library — the exporters only
// serialise.
#ifndef GRAPEPLUS_TESTS_MINI_JSON_H_
#define GRAPEPLUS_TESTS_MINI_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace grape::minijson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; null when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// Parses one document; the whole input must be consumed (modulo
  /// whitespace). Returns false and sets error() on malformed input.
  bool Parse(Value* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Value::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      Value v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Value* out) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The exporters only emit \u00xx (control chars); decode the
          // Latin-1 range directly and replace anything wider with '?'.
          *out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("expected a value");
    out->type = Value::Type::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

inline bool Parse(const std::string& text, Value* out,
                  std::string* error = nullptr) {
  Parser p(text);
  const bool ok = p.Parse(out);
  if (!ok && error != nullptr) *error = p.error();
  return ok;
}

}  // namespace grape::minijson

#endif  // GRAPEPLUS_TESTS_MINI_JSON_H_
