// Reproduces Fig 6(l): AAP against BSP/AP/SSP on the largest synthetic
// workload with many workers (the paper: 300M vertices / 10B edges on up to
// 320 workers; here: the largest RMAT the container affords, with the same
// worker counts). PageRank; reports AAP's speedup per worker count.
//
// Paper's shape: AAP on average 4.3/14.7/4.7x faster than BSP/AP/SSP, and
// the advantage grows with more workers (heavier stragglers and staleness).
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunLargeScale() {
  using namespace bench;
  RmatOptions o;
  o.num_vertices = 1 << 14;
  o.num_edges = 150000;
  o.directed = true;
  o.seed = 100;
  Graph g = MakeRmat(o);
  const FragmentId workers[] = {192, 256, 320};
  const double tol = 1e-4;
  AsciiTable table({"n", "AAP", "BSP", "AP", "SSP", "AAP/BSP speedup",
                    "AAP/AP speedup"});
  for (FragmentId m : workers) {
    Partition p = SkewedPartition(g, m, 3.0);
    const struct {
      const char* name;
      ModeConfig mode;
    } rows[] = {
        {"AAP", ModeConfig::Aap(0.0)},
        {"BSP", ModeConfig::Bsp()},
        {"AP", ModeConfig::Ap()},
        {"SSP", ModeConfig::Ssp(3)},
    };
    double times[4];
    int i = 0;
    for (const auto& row : rows) {
      times[i++] = RunSim(p, PageRankProgram(0.85, tol),
                          BaseConfig(row.mode, m))
                       .time;
    }
    table.AddRow({std::to_string(m), Fmt(times[0]), Fmt(times[1]),
                  Fmt(times[2]), Fmt(times[3]), Fmt(times[1] / times[0], 2),
                  Fmt(times[2] / times[0], 2)});
  }
  std::printf(
      "== Fig 6(l): PageRank on the largest synthetic (%u vertices, %llu "
      "arcs), many workers ==\n%s\n",
      g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()),
      table.ToString().c_str());
  ShapeNote(
      "paper Fig 6(l): AAP faster than BSP/AP/SSP, and the margin grows "
      "with the worker count");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunLargeScale();
  return 0;
}
