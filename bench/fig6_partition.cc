// Reproduces Fig 6(k): impact of partition skew on AAP's advantage. SSSP on
// a friendster-like graph; the x axis is r = ||F_max|| / ||F_median||
// produced by the skew injector; series AAP / BSP / AP / SSP.
//
// Paper's shape: the more skewed the partition, the more effective AAP is
// (9.5/2.3/4.9x over BSP/AP/SSP at r=9); at r=1 BSP works as well as AAP.
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunPartitionImpact() {
  using namespace bench;
  constexpr FragmentId kWorkers = 32;
  Graph g = FriendsterLike();
  const double targets[] = {1.0, 3.0, 5.0, 7.0, 9.0};
  AsciiTable table({"r (skew)", "AAP", "BSP", "AP", "SSP", "AAP speedup vs BSP"});
  for (double r : targets) {
    auto placement = HashPartitioner().Assign(g, kWorkers);
    if (r > 1.0) placement = InjectSkew(g, placement, kWorkers, r, 3);
    Partition p = BuildPartition(g, placement, kWorkers);
    // Skew in vertex counts (the quantity InjectSkew controls; edge counts
    // are additionally hub-skewed on power-law graphs).
    std::vector<uint64_t> counts(kWorkers, 0);
    for (FragmentId f : placement) ++counts[f];
    std::vector<uint64_t> sorted = counts;
    std::sort(sorted.begin(), sorted.end());
    const double measured_r =
        static_cast<double>(sorted.back()) /
        static_cast<double>(std::max<uint64_t>(1, sorted[sorted.size() / 2]));
    const struct {
      const char* name;
      ModeConfig mode;
    } rows[] = {
        {"AAP", ModeConfig::Aap(0.0)},
        {"BSP", ModeConfig::Bsp()},
        {"AP", ModeConfig::Ap()},
        {"SSP", ModeConfig::Ssp(3)},
    };
    double times[4];
    int i = 0;
    for (const auto& row : rows) {
      times[i++] =
          RunSim(p, SsspProgram(0), BaseConfig(row.mode, kWorkers)).time;
    }
    table.AddRow({Fmt(measured_r, 2), Fmt(times[0]), Fmt(times[1]),
                  Fmt(times[2]), Fmt(times[3]), Fmt(times[1] / times[0], 2)});
  }
  std::printf("== Fig 6(k): impact of partition skew on SSSP (n=%u) ==\n%s\n",
              kWorkers, table.ToString().c_str());
  ShapeNote(
      "paper Fig 6(k): AAP's speedup over BSP grows with skew r; at r=1 "
      "(balanced) BSP is competitive with AAP");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunPartitionImpact();
  return 0;
}
