// Reproduces Appendix B case study 2: CF on a Netflix-like graph, sweeping
// the staleness bound c. SSP's performance depends on hand-tuning c (the
// paper ran 50 configurations to find the optimum); AAP adjusts L_i
// dynamically and is insensitive to c, beating SSP even at SSP's best c.
//
// Also reports the BSP / AP endpoints: BSP converges in the fewest epochs
// but idles; AP takes the most epochs (stale gradients), as the paper notes.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunCfCase() {
  using namespace bench;
  constexpr FragmentId kWorkers = 24;
  Graph g = NetflixLike();
  Partition p = SkewedPartition(g, kWorkers, 2.0);
  CfProgram::Options opts;
  opts.max_epochs = 15;

  AsciiTable table({"model", "c", "time", "epochs", "test RMSE"});
  auto run = [&](const char* name, ModeConfig mode, int c) {
    EngineConfig cfg = BaseConfig(mode, kWorkers);
    SimEngine<CfProgram> engine(p, CfProgram(g, opts), cfg);
    auto r = engine.Run();
    table.AddRow({name, c >= 0 ? std::to_string(c) : "-",
                  Fmt(r.stats.makespan),
                  std::to_string(r.result.total_epochs),
                  Fmt(r.result.test_rmse, 3)});
    return r.stats.makespan;
  };

  run("BSP", ModeConfig::Bsp(), -1);
  run("AP", ModeConfig::Ap(), -1);
  double best_ssp = 1e300, worst_ssp = 0;
  double best_aap = 1e300, worst_aap = 0;
  for (int c : {2, 5, 10, 20, 50}) {
    const double ssp = run("SSP", ModeConfig::Ssp(c), c);
    best_ssp = std::min(best_ssp, ssp);
    worst_ssp = std::max(worst_ssp, ssp);
    ModeConfig aap = ModeConfig::Aap(0.0);
    aap.bounded_staleness = true;
    aap.staleness_bound = c;
    const double at = run("AAP", aap, c);
    best_aap = std::min(best_aap, at);
    worst_aap = std::max(worst_aap, at);
  }
  std::printf("== Appendix B: CF staleness-bound sweep (n=%u) ==\n%s\n",
              kWorkers, table.ToString().c_str());
  std::printf("SSP sensitivity (worst/best): %.2f   AAP sensitivity: %.2f\n",
              worst_ssp / best_ssp, worst_aap / best_aap);
  ShapeNote(
      "paper App B(2): AAP is robust and insensitive to c and outperforms "
      "SSP even at SSP's hand-tuned optimal c; AP needs the most epochs; "
      "BSP the fewest epochs but more idling");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunCfCase();
  return 0;
}
