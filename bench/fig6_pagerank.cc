// Reproduces Fig 6(e)(f): PageRank response time varying the number of
// workers n on friendster-like and ukweb-like graphs. Series as in
// fig6_sssp (GRAPE+ mode ladder + vertex-centric competitors).
//
// Paper's shape: GRAPE+ ~5x over GraphLab-sync/-async and PowerSwitch at
// n=192; AAP beats BSP/AP/SSP by 1.80/1.90/1.25x (straggler rounds shrink
// from 50/27/28 to 24).
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunFig6Pr(const char* panel, const Graph& g) {
  using namespace bench;
  std::printf("== Fig 6%s: PageRank on %u vertices / %llu arcs ==\n", panel,
              g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()));
  const FragmentId workers[] = {16, 24, 32, 48};
  const double tol = 1e-5;
  AsciiTable table({"system \\ n", "16", "24", "32", "48"});
  for (const auto& row : GrapeModes()) {
    std::vector<std::string> cells = {row.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, PageRankProgram(0.85, tol), BaseConfig(row.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  struct Vc {
    const char* name;
    ModeConfig mode;
    VcCostModel costs;
  };
  const Vc vcs[] = {
      {"GraphLab-sync", ModeConfig::Bsp(), VcCostModel::GraphLab()},
      {"GraphLab-async", ModeConfig::Ap(), VcCostModel::GraphLabAsync()},
      {"PowerSwitch", ModeConfig::Hsync(), VcCostModel::PowerSwitch()},
  };
  for (const Vc& vc : vcs) {
    std::vector<std::string> cells = {vc.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, VcPageRankProgram(vc.costs, 0.85, tol),
                      BaseConfig(vc.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace grape

int main() {
  using namespace grape;
  using namespace grape::bench;
  RunFig6Pr("(e) friendster-like", FriendsterLike(1 << 13, 60000));
  RunFig6Pr("(f) ukweb-like", UkWebLike(1 << 13, 70000));
  ShapeNote(
      "paper Fig 6(e,f): GRAPE+ fastest; AAP above its BSP/AP/SSP "
      "restrictions; stale straggler rounds shrink under AAP");
  return 0;
}
