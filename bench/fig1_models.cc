// Reproduces Figure 1(a) + Example 1/4: the CC instance of Fig. 1(b) run at
// three workers (P1, P2 fast; P3 takes twice as long; 1 time unit per
// message hop) under BSP, AP, SSP(c=1) and AAP. Prints the timing diagram of
// each run and the summary the paper's example asserts: AAP lets the
// straggler accumulate updates and converge in fewer rounds.
#include <cstdio>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "util/table.h"

namespace grape {
namespace {

void RunFig1() {
  std::vector<FragmentId> frag;
  Graph g = MakeFig1bExample(&frag);
  Partition p = BuildPartition(g, frag, 3);

  struct Row {
    const char* name;
    ModeConfig mode;
  };
  // SSP with c=1 as in Example 1(3); AAP with L_bottom=0 as in Example 4(d).
  const Row rows[] = {
      {"BSP", ModeConfig::Bsp()},
      {"AP", ModeConfig::Ap()},
      {"SSP(c=1)", ModeConfig::Ssp(1)},
      {"AAP", ModeConfig::Aap(0.0)},
  };

  AsciiTable table({"model", "makespan", "rounds(P1,P2,P3)",
                    "straggler rounds", "msgs"});
  std::printf("== Fig 1(a): CC on the Fig 1(b) instance, 3 workers ==\n");
  std::printf("   (P1, P2 speed 1x; straggler P3 speed 2x; latency 1)\n\n");
  for (const Row& row : rows) {
    EngineConfig cfg;
    cfg.mode = row.mode;
    // The paper's exact setting: every round takes 3 units at P1/P2 and 6 at
    // the straggler P3 (uniform round costs, so work_unit_time = 0 and the
    // per-round floor carries the cost), and message passing takes 1 unit.
    cfg.speed_factors = {1.0, 1.0, 2.0};
    cfg.work_unit_time = 0.0;
    cfg.min_round_time = 3.0;
    cfg.msg_latency = 1.0;
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    auto r = engine.Run();
    char rounds[64];
    std::snprintf(rounds, sizeof(rounds), "%llu,%llu,%llu",
                  static_cast<unsigned long long>(r.stats.workers[0].rounds),
                  static_cast<unsigned long long>(r.stats.workers[1].rounds),
                  static_cast<unsigned long long>(r.stats.workers[2].rounds));
    table.AddRow({row.name, AsciiTable::Num(r.stats.makespan, 1), rounds,
                  std::to_string(r.stats.workers[2].rounds),
                  std::to_string(r.stats.total_msgs())});
    std::printf("-- %s (Gantt; # = PEval, digits = IncEval rounds) --\n%s\n",
                row.name, r.trace.ToGantt(3, 84).c_str());
    // All models converge at the same (correct) fixpoint.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (r.result[v] != 0) {
        std::printf("ERROR: wrong fixpoint under %s\n", row.name);
        return;
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper's claim (Example 1/4): AAP suspends the straggler so it\n"
      "consumes accumulated updates and finishes in fewer rounds than\n"
      "under AP/SSP, without BSP's global barriers.\n");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunFig1();
  return 0;
}
