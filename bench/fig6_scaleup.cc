// Reproduces Fig 6(i)(j): scale-up of SSSP and PageRank under GRAPE+ (AAP).
// The graph size (|V|, |E|) and the worker count n grow proportionally; the
// reported value is time(n) / time(n_0) — flat (ratio ~1) means the engine
// converts extra workers into capacity for proportionally larger inputs.
//
// Paper's shape: GRAPE+ preserves a reasonable scale-up (curves stay near
// flat and well below linear growth).
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunScaleUp() {
  using namespace bench;
  struct Step {
    FragmentId workers;
    VertexId vertices;
    uint64_t arcs;
  };
  // (n, |V|, |E|) growing proportionally, as Fig 6(i,j)'s x axis.
  const Step steps[] = {
      {16, 1 << 13, 60000},
      {32, 1 << 14, 120000},
      {64, 1 << 15, 240000},
      {128, 1 << 16, 480000},
  };
  AsciiTable table({"n", "|V|", "|E|", "SSSP time", "SSSP ratio",
                    "PageRank time", "PR ratio"});
  double sssp0 = 0, pr0 = 0;
  for (const Step& s : steps) {
    RmatOptions o;
    o.num_vertices = s.vertices;
    o.num_edges = s.arcs;
    o.directed = false;
    o.weighted = true;
    o.seed = 12;
    Graph g = MakeRmat(o);
    Partition p = SkewedPartition(g, s.workers, 2.0);
    auto sssp = RunSim(p, SsspProgram(0),
                       BaseConfig(ModeConfig::Aap(0.0), s.workers));
    auto pr = RunSim(p, PageRankProgram(0.85, 1e-6),
                     BaseConfig(ModeConfig::Aap(0.0), s.workers));
    if (sssp0 == 0) {
      sssp0 = sssp.time;
      pr0 = pr.time;
    }
    table.AddRow({std::to_string(s.workers), std::to_string(s.vertices),
                  std::to_string(s.arcs), Fmt(sssp.time),
                  Fmt(sssp.time / sssp0, 2), Fmt(pr.time),
                  Fmt(pr.time / pr0, 2)});
  }
  std::printf("== Fig 6(i,j): scale-up of SSSP and PageRank ==\n%s\n",
              table.ToString().c_str());
  ShapeNote(
      "paper Fig 6(i,j): ratios stay near 1 (well below the 8x input "
      "growth) — the AAP overhead does not erase parallel speedup");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunScaleUp();
  return 0;
}
