// Reproduces Fig 6(g)(h): CF (SGD matrix factorisation) response time
// varying the number of workers n on movieLens-like and Netflix-like rating
// graphs, |E_T| = 90%|E|. CF requires bounded staleness, so the AAP row uses
// predicate S with c=3 and SSP rows use the same c (Petuum's model).
//
// Paper's shape: GRAPE+ (AAP) beats BSP/AP/SSP by 1.38/1.80/1.26x; training
// converges to the same quality everywhere.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunFig6Cf(const char* panel, const Graph& g) {
  using namespace bench;
  std::printf("== Fig 6%s: CF on %u users+items / %llu ratings ==\n", panel,
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  const FragmentId workers[] = {8, 16, 24, 32};
  CfProgram::Options opts;
  opts.max_epochs = 15;
  AsciiTable table({"system \\ n", "8", "16", "24", "32", "test RMSE @32"});
  for (const auto& row : GrapeModes(/*cf=*/true)) {
    std::vector<std::string> cells = {row.name};
    double rmse = 0;
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.0);
      SimEngine<CfProgram> engine(p, CfProgram(g, opts),
                                  BaseConfig(row.mode, m));
      auto r = engine.Run();
      cells.push_back(r.converged ? Fmt(r.stats.makespan) : "DNF");
      rmse = r.result.test_rmse;
    }
    cells.push_back(Fmt(rmse, 3));
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace grape

int main() {
  using namespace grape;
  using namespace grape::bench;
  {
    Graph g = MovieLensLike();
    RunFig6Cf("(g) movielens-like", g);
  }
  {
    Graph g = NetflixLike();
    RunFig6Cf("(h) netflix-like", g);
  }
  ShapeNote(
      "paper Fig 6(g,h): GRAPE+ (AAP with bounded staleness) beats its "
      "BSP/AP/SSP restrictions; all converge to comparable model quality");
  return 0;
}
