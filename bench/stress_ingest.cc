// Stress profile for the ingestion subsystem (ROADMAP "scale tests"): runs
// the full pipeline at 1M+ vertices —
//
//   generate (sharded RMAT) -> parallel CSR build -> SaveBinary -> mmap load
//   -> partition -> CC / PageRank on the zero-copy view
//
// and times the new parallel ingestion paths against the seed's serial
// baselines — the istringstream-per-line edge-list parser feeding the
// sort-based CSR Build, and the hash-map-heavy partition construction —
// which are cloned below so the comparison survives their removal from the
// library. Results go to BENCH_ingest.json.
//
// It then runs the PIE engines over the same partition twice — once with
// materialised fragment arcs (all |E| resident) and once in out-of-core
// streaming mode (arcs served chunk-by-chunk from the mmapped store through
// a ChunkedArcSource) — asserting bit-identical results and that the peak
// resident arc window stays within the configured chunk budget. The
// streaming phase also measures the memoised outer-lid cache (repeat sweeps
// with the cache on vs off on the high-cut hash partition), runs pull-mode
// PageRank over the `.gcsr` in-adjacency extension (materialised transpose
// vs TransposeView streaming, bit-identical asserted) and CF over a
// bipartite rating store (materialised vs streaming, bit-identical
// asserted) — the full push/pull x in-memory/out-of-core matrix.
//
//   stress_ingest [--vertices=N] [--edges=M] [--fragments=F] [--threads=T]
//                 [--chunk-arcs=B] [--file=PATH] [--out=PATH]
//
// Defaults run the acceptance shape: 1M vertices / 8M arcs. CI runs a 64k
// smoke via --vertices=65536 --edges=524288.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "algos/cc.h"
#include "algos/cc_pull.h"
#include "algos/cf.h"
#include "algos/pagerank.h"
#include "algos/pagerank_pull.h"
#include "core/async_engine.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/chunked_arc_source.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/store/gcsr_store.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "runtime/worker_pool.h"

namespace grape {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stoull(argv[i] + prefix.size());
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

// ---------------------------------------------------------------------------
// Seed-era serial baselines, kept verbatim in spirit: the sort-based CSR
// build and the hash-map-heavy partition construction that this PR replaced.

struct LegacyCsr {
  std::vector<uint64_t> offsets;
  std::vector<Arc> arcs;
};

/// The seed's ParseEdgeList + Build: getline + two istringstreams per line,
/// AddEdge with no reservation, then the sort-based CSR build. This is the
/// "single-threaded text parsing" wall the ingestion subsystem replaces.
LegacyCsr LegacyBuildCsr(const std::vector<Edge>& edges, VertexId n);

std::pair<VertexId, LegacyCsr> LegacyParseAndBuild(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  VertexId n = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string mode;
      ls >> n >> mode;
      have_header = true;
      continue;
    }
    VertexId s, d;
    double w = 1.0;
    if (!(ls >> s >> d)) break;
    ls >> w;  // optional
    edges.push_back({s, d, w});
  }
  return {n, LegacyBuildCsr(edges, n)};
}

LegacyCsr LegacyBuildCsr(const std::vector<Edge>& edges, VertexId n) {
  LegacyCsr g;
  g.offsets.assign(static_cast<size_t>(n) + 1, 0);
  for (const auto& e : edges) g.offsets[e.src + 1]++;
  for (size_t i = 1; i < g.offsets.size(); ++i) {
    g.offsets[i] += g.offsets[i - 1];
  }
  g.arcs.resize(edges.size());
  std::vector<uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& e : edges) {
    g.arcs[cursor[e.src]++] = Arc{e.dst, e.weight};
  }
  for (VertexId v = 0; v < n; ++v) {
    auto* begin = g.arcs.data() + g.offsets[v];
    auto* end = g.arcs.data() + g.offsets[v + 1];
    std::sort(begin, end,
              [](const Arc& a, const Arc& b) { return a.dst < b.dst; });
  }
  return g;
}

/// The seed's BuildPartition work pattern: per-fragment global->local hash
/// maps, a copy_holders hash map, and hash lookups for every arc resolution
/// and every routing-table entry. Produces the same logical structures into
/// bench-local storage so its cost is directly comparable.
struct LegacyPartition {
  std::vector<std::vector<VertexId>> inner, outer, iprime;
  std::vector<std::vector<uint64_t>> offsets;
  std::vector<std::vector<LocalArc>> arcs;
  std::vector<std::vector<uint8_t>> in_i, in_oprime;
  std::vector<std::unordered_map<VertexId, LocalVertex>> global_to_local;
  std::unordered_map<VertexId, std::vector<FragmentId>> copy_holders;
  std::vector<FragmentRouting> routing;
};

LegacyPartition LegacyBuildPartition(const GraphView& g,
                                     const std::vector<FragmentId>& placement,
                                     FragmentId m) {
  LegacyPartition p;
  p.inner.resize(m);
  p.outer.resize(m);
  p.iprime.resize(m);
  p.offsets.resize(m);
  p.arcs.resize(m);
  p.in_i.resize(m);
  p.in_oprime.resize(m);
  p.global_to_local.resize(m);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    p.inner[placement[v]].push_back(v);
  }
  for (FragmentId i = 0; i < m; ++i) {
    auto& inner = p.inner[i];
    std::sort(inner.begin(), inner.end());
    const uint32_t ni = static_cast<uint32_t>(inner.size());
    p.in_i[i].assign(ni, 0);
    p.in_oprime[i].assign(ni, 0);
    auto& g2l = p.global_to_local[i];
    for (uint32_t l = 0; l < ni; ++l) g2l.emplace(inner[l], l);
    std::vector<VertexId> outer;
    for (uint32_t l = 0; l < ni; ++l) {
      for (const Arc& a : g.OutEdges(inner[l])) {
        if (placement[a.dst] != i) {
          outer.push_back(a.dst);
          p.in_oprime[i][l] = 1;
        }
      }
    }
    std::sort(outer.begin(), outer.end());
    outer.erase(std::unique(outer.begin(), outer.end()), outer.end());
    for (uint32_t j = 0; j < outer.size(); ++j) {
      g2l.emplace(outer[j], ni + j);
    }
    p.outer[i] = std::move(outer);
    auto& off = p.offsets[i];
    off.assign(ni + 1, 0);
    for (uint32_t l = 0; l < ni; ++l) {
      off[l + 1] = off[l] + g.OutDegree(inner[l]);
    }
    p.arcs[i].resize(off[ni]);
    for (uint32_t l = 0; l < ni; ++l) {
      uint64_t cursor = off[l];
      for (const Arc& a : g.OutEdges(inner[l])) {
        p.arcs[i][cursor++] = LocalArc{g2l.at(a.dst), a.weight};
      }
    }
  }
  // Entry sets + remote sources via per-arc hash lookups.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const FragmentId fu = placement[u];
    for (const Arc& a : g.OutEdges(u)) {
      const FragmentId fv = placement[a.dst];
      if (fu == fv) continue;
      p.in_i[fv][p.global_to_local[fv].at(a.dst)] = 1;
      p.iprime[fv].push_back(u);
    }
  }
  for (FragmentId i = 0; i < m; ++i) {
    auto& ip = p.iprime[i];
    std::sort(ip.begin(), ip.end());
    ip.erase(std::unique(ip.begin(), ip.end()), ip.end());
  }
  for (FragmentId i = 0; i < m; ++i) {
    for (VertexId v : p.outer[i]) p.copy_holders[v].push_back(i);
  }
  for (auto& [v, holders] : p.copy_holders) {
    std::sort(holders.begin(), holders.end());
  }
  // Routing tables with hash-resolved destination local ids.
  p.routing.resize(m);
  static const std::vector<FragmentId> kNoHolders;
  for (FragmentId i = 0; i < m; ++i) {
    FragmentRouting& r = p.routing[i];
    const uint32_t ni = static_cast<uint32_t>(p.inner[i].size());
    const uint32_t nl = ni + static_cast<uint32_t>(p.outer[i].size());
    r.owner.assign(nl, RouteTarget{});
    r.copy_offsets.assign(nl + 1, 0);
    const auto global_of = [&](LocalVertex l) {
      return l < ni ? p.inner[i][l] : p.outer[i][l - ni];
    };
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = global_of(l);
      const FragmentId owner = placement[g_id];
      if (owner != i) {
        r.owner[l] = RouteTarget{owner, p.global_to_local[owner].at(g_id)};
      }
      auto it = p.copy_holders.find(g_id);
      const auto& holders =
          it != p.copy_holders.end() ? it->second : kNoHolders;
      uint32_t cnt = 0;
      for (FragmentId h : holders) {
        if (h != i && h != owner) ++cnt;
      }
      r.copy_offsets[l + 1] = cnt;
    }
    for (LocalVertex l = 0; l < nl; ++l) {
      r.copy_offsets[l + 1] += r.copy_offsets[l];
    }
    r.copy_targets.resize(r.copy_offsets[nl]);
    for (LocalVertex l = 0; l < nl; ++l) {
      const VertexId g_id = global_of(l);
      const FragmentId owner = placement[g_id];
      auto it = p.copy_holders.find(g_id);
      if (it == p.copy_holders.end()) continue;
      uint32_t cursor = r.copy_offsets[l];
      for (FragmentId h : it->second) {
        if (h == i || h == owner) continue;
        r.copy_targets[cursor++] =
            RouteTarget{h, p.global_to_local[h].at(g_id)};
      }
    }
  }
  return p;
}

// ---------------------------------------------------------------------------

int RunStress(int argc, char** argv) {
  const VertexId n =
      static_cast<VertexId>(FlagU64(argc, argv, "vertices", 1u << 20));
  const uint64_t m_edges = FlagU64(argc, argv, "edges", 8ull << 20);
  const FragmentId frags =
      static_cast<FragmentId>(FlagU64(argc, argv, "fragments", 8));
  const uint32_t threads =
      static_cast<uint32_t>(FlagU64(argc, argv, "threads", 4));
  const std::string file =
      FlagStr(argc, argv, "file", "stress_ingest.gcsr");
  const std::string out = FlagStr(argc, argv, "out", "BENCH_ingest.json");

  WorkerPool pool(threads);
  bool ok = true;

  // ---- generate + parallel build -----------------------------------------
  RmatOptions o;
  o.num_vertices = n;
  o.num_edges = m_edges;
  o.directed = true;
  o.weighted = true;
  o.seed = 1234;
  double t0 = Now();
  Graph g = MakeRmat(o, &pool);
  const double t_generate = Now() - t0;
  std::printf("generate+build  %8.2fs  (%u vertices, %llu arcs)\n",
              t_generate, g.num_vertices(),
              static_cast<unsigned long long>(g.num_arcs()));

  // ---- ingestion Build: chunked parse + scatter build vs the seed's
  // istringstream parse + sort build, over identical edge-list text.
  std::string text = ToEdgeListText(g);
  t0 = Now();
  auto [legacy_n, legacy] = LegacyParseAndBuild(text);
  const double t_build_serial = Now() - t0;

  t0 = Now();
  auto parsed = ParseEdgeList(text, &pool);
  const double t_build_parallel = Now() - t0;
  ok = ok && parsed.ok() && legacy_n == parsed.value().num_vertices() &&
       parsed.value().num_arcs() == legacy.arcs.size() &&
       std::equal(parsed.value().View().offsets().begin(),
                  parsed.value().View().offsets().end(),
                  legacy.offsets.begin());
  const double build_speedup = t_build_serial / t_build_parallel;
  std::printf(
      "ingest serial   %8.2fs   parallel %8.2fs   speedup %.2fx  (%.0f MB "
      "text)\n",
      t_build_serial, t_build_parallel, build_speedup,
      static_cast<double>(text.size()) / 1048576.0);
  text.clear();
  text.shrink_to_fit();
  legacy = LegacyCsr{};
  parsed = Graph();

  // ---- save + mmap load ---------------------------------------------------
  t0 = Now();
  Status save = SaveBinary(g, file);
  const double t_save = Now() - t0;
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  t0 = Now();
  auto mapped = MmapGraph::Open(file, MmapGraph::Verify::kFull);
  const double t_mmap = Now() - t0;
  if (!mapped.ok()) {
    std::fprintf(stderr, "mmap failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  const GraphView view = mapped.value().View();
  ok = ok && GraphDataEqual(g, view);
  std::printf("save            %8.2fs   mmap+verify %8.2fs  (%.1f MB)\n",
              t_save, t_mmap,
              static_cast<double>(mapped.value().file_bytes()) / 1048576.0);

  // ---- partition: parallel vs the seed's hash-heavy serial baseline ------
  auto placement = HashPartitioner().Assign(view, frags);
  t0 = Now();
  LegacyPartition lp = LegacyBuildPartition(view, placement, frags);
  const double t_partition_serial = Now() - t0;

  t0 = Now();
  Partition p = BuildPartition(view, placement, frags, &pool);
  const double t_partition_parallel = Now() - t0;
  const double partition_speedup = t_partition_serial / t_partition_parallel;
  for (FragmentId i = 0; i < frags; ++i) {
    ok = ok && p.fragments[i].num_inner() == lp.inner[i].size() &&
         p.fragments[i].num_outer() == lp.outer[i].size() &&
         p.routing[i].copy_targets == lp.routing[i].copy_targets &&
         p.routing[i].owner == lp.routing[i].owner;
  }
  lp = LegacyPartition{};
  std::printf("partition serial%8.2fs   parallel %8.2fs   speedup %.2fx\n",
              t_partition_serial, t_partition_parallel, partition_speedup);

  // ---- PIE engines: in-memory vs out-of-core streaming execution ---------
  // Same partition shape twice: materialised fragment arcs vs streaming
  // through a ChunkedArcSource over the mmapped store. Results must be
  // bit-identical and the streaming window must respect the chunk budget.
  const uint64_t chunk_arcs = FlagU64(argc, argv, "chunk-arcs", 1u << 16);
  ChunkedArcSource source(mapped.value(), chunk_arcs);
  PartitionOptions stream_opts;
  stream_opts.arc_source = &source;
  t0 = Now();
  Partition sp = BuildPartition(view, placement, frags, &pool, stream_opts);
  const double t_partition_stream = Now() - t0;

  EngineConfig ecfg;
  ecfg.mode = ModeConfig::Aap();
  const auto timed = [&](auto&& fn, double* sec) {
    const double start = Now();
    auto r = fn();
    *sec = Now() - start;
    return r;
  };
  double t_cc_mem = 0, t_cc_stream = 0, t_pr_mem = 0, t_pr_stream = 0;
  auto cc_mem = timed(
      [&] { return SimEngine<CcProgram>(p, CcProgram{}, ecfg).Run(); },
      &t_cc_mem);
  source.ResetStats();
  auto cc_stream = timed(
      [&] { return SimEngine<CcProgram>(sp, CcProgram{}, ecfg).Run(); },
      &t_cc_stream);
  const PageRankProgram pr_prog(0.85, 1e-4);
  auto pr_mem = timed(
      [&] { return SimEngine<PageRankProgram>(p, pr_prog, ecfg).Run(); },
      &t_pr_mem);
  auto pr_stream = timed(
      [&] { return SimEngine<PageRankProgram>(sp, pr_prog, ecfg).Run(); },
      &t_pr_stream);

  const bool identical = cc_mem.result == cc_stream.result &&
                         pr_mem.result == pr_stream.result;
  const uint64_t peak_resident = source.peak_resident_arcs();
  const uint64_t peak_point = source.peak_point_arcs();  // reporting only
  const bool within_budget = peak_resident <= source.effective_budget();
  ok = ok && identical && within_budget;
  std::printf("engine cc       %8.2fs in-mem  %8.2fs streaming  (%.2fx)\n",
              t_cc_mem, t_cc_stream, t_cc_stream / t_cc_mem);
  std::printf("engine pagerank %8.2fs in-mem  %8.2fs streaming  (%.2fx)\n",
              t_pr_mem, t_pr_stream, t_pr_stream / t_pr_mem);
  std::printf(
      "streaming       chunk budget %llu (effective %llu), peak window "
      "%llu arcs, point %llu  %s, results %s\n",
      static_cast<unsigned long long>(chunk_arcs),
      static_cast<unsigned long long>(source.effective_budget()),
      static_cast<unsigned long long>(peak_resident),
      static_cast<unsigned long long>(peak_point),
      within_budget ? "WITHIN BUDGET" : "OVER BUDGET",
      identical ? "IDENTICAL" : "MISMATCH");

  // ---- memoised outer-lid cache: repeat sweeps cached vs uncached --------
  // The CC + PageRank runs above warmed sp's per-chunk lid caches; rerun
  // streaming PageRank on an identical partition with the cache disabled to
  // price the per-sweep binary-search translation tax the cache removes
  // (hash placement => high-cut partition, the cache's worst/best case).
  const LidCacheStats cache_stats = sp.TotalLidCacheStats();
  PartitionOptions nocache_opts;
  nocache_opts.arc_source = &source;
  nocache_opts.lid_cache_arcs = 0;
  Partition sp0 = BuildPartition(view, placement, frags, &pool, nocache_opts);
  double t_pr_nocache = 0;
  auto pr_nocache = timed(
      [&] { return SimEngine<PageRankProgram>(sp0, pr_prog, ecfg).Run(); },
      &t_pr_nocache);
  const bool nocache_identical = pr_nocache.result == pr_mem.result;
  ok = ok && nocache_identical;
  const double cache_hit_rate =
      cache_stats.hits + cache_stats.misses > 0
          ? static_cast<double>(cache_stats.hits) /
                static_cast<double>(cache_stats.hits + cache_stats.misses)
          : 0.0;
  const double cache_speedup =
      t_pr_stream > 0 ? t_pr_nocache / t_pr_stream : 0.0;
  std::printf(
      "lid cache       %8.2fs uncached vs %8.2fs cached (%.2fx), hit rate "
      "%.2f (%llu hits / %llu misses, %.1f MB cached)  %s\n",
      t_pr_nocache, t_pr_stream, cache_speedup, cache_hit_rate,
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<double>(cache_stats.cached_lids) * sizeof(LocalVertex) /
          1048576.0,
      nocache_identical ? "IDENTICAL" : "MISMATCH");

  // ---- in-adjacency extension: save + reopen ------------------------------
  const std::string inadj_file = file + ".inadj";
  t0 = Now();
  Status save_inadj =
      SaveBinary(view, inadj_file, SaveOptions{.include_in_adjacency = true});
  const double t_save_inadj = Now() - t0;
  double inadj_mb = 0.0;
  auto remapped = MmapGraph::Open(inadj_file, MmapGraph::Verify::kFull);
  if (save_inadj.ok()) {
    ok = ok && remapped.ok() && remapped.value().has_in_adjacency() &&
         remapped.value().TransposeView().num_arcs() == view.num_arcs();
    if (remapped.ok()) {
      inadj_mb =
          static_cast<double>(remapped.value().file_bytes()) / 1048576.0;
    }
  } else {
    ok = false;
  }
  std::printf("save +in-adj    %8.2fs  (%.1f MB)\n", t_save_inadj, inadj_mb);

  // ---- pull-mode PageRank: materialised transpose vs TransposeView -------
  // Fully out-of-core pull: forward arcs and in-arcs both stream off the
  // extended store (the forward source feeds nothing at run time for pull
  // PageRank but keeps the partition free of |E|-sized arrays).
  double t_pull_mem = 0, t_pull_stream = 0;
  bool pull_identical = false;
  const PageRankPullProgram pull_prog(0.85, 1e-3);
  if (remapped.ok()) {
    const GraphView rview = remapped.value().View();
    Graph transpose = TransposeGraph(view);
    const GraphView tview = transpose.View();
    PartitionOptions pull_mem_opts;
    pull_mem_opts.in_adjacency = &tview;
    Partition pull_p =
        BuildPartition(view, placement, frags, &pool, pull_mem_opts);
    auto pull_mem = timed(
        [&] {
          return SimEngine<PageRankPullProgram>(pull_p, pull_prog, ecfg)
              .Run();
        },
        &t_pull_mem);

    ChunkedArcSource fwd_src(remapped.value(), chunk_arcs);
    ChunkedArcSource in_src(remapped.value().TransposeView(), chunk_arcs,
                            ChunkedArcSource::Backend::kMapped);
    PartitionOptions pull_stream_opts;
    pull_stream_opts.arc_source = &fwd_src;
    pull_stream_opts.in_arc_source = &in_src;
    Partition pull_sp =
        BuildPartition(rview, placement, frags, &pool, pull_stream_opts);
    auto pull_stream = timed(
        [&] {
          return SimEngine<PageRankPullProgram>(pull_sp, pull_prog, ecfg)
              .Run();
        },
        &t_pull_stream);
    pull_identical = pull_mem.result == pull_stream.result;
    ok = ok && pull_identical &&
         in_src.peak_resident_arcs() <= in_src.effective_budget();
  } else {
    ok = false;
  }
  std::printf("pull pagerank   %8.2fs in-mem  %8.2fs streaming  (%.2fx)  %s\n",
              t_pull_mem, t_pull_stream,
              t_pull_mem > 0 ? t_pull_stream / t_pull_mem : 0.0,
              pull_identical ? "IDENTICAL" : "MISMATCH");
  remapped = Status::NotFound("released");
  std::remove(inadj_file.c_str());

  // ---- CF: owner-broadcast SGD, materialised vs streaming ----------------
  // CF trains through the same mode-independent sweep now, so the last
  // push-side algorithm joins the out-of-core matrix: a bipartite rating
  // store is partitioned twice and trained to the same factors bit for bit.
  double t_cf_mem = 0, t_cf_stream = 0;
  bool cf_identical = false;
  {
    BipartiteOptions bo;
    bo.num_users = std::max<VertexId>(n / 8, 64);
    bo.num_items = std::max<VertexId>(n / 64, 16);
    bo.num_ratings = std::max<uint64_t>(m_edges / 4, 1024);
    bo.seed = 77;
    Graph ratings = MakeBipartiteRatings(bo);
    const std::string cf_file = file + ".cf";
    Status cf_save = SaveBinary(ratings, cf_file);
    auto cf_mapped = MmapGraph::Open(cf_file, MmapGraph::Verify::kFull);
    if (cf_save.ok() && cf_mapped.ok()) {
      const GraphView cf_view = cf_mapped.value().View();
      auto cf_placement = HashPartitioner().Assign(cf_view, frags);
      Partition cf_p = BuildPartition(cf_view, cf_placement, frags, &pool);
      ChunkedArcSource cf_src(cf_mapped.value(), chunk_arcs);
      PartitionOptions cf_opts;
      cf_opts.arc_source = &cf_src;
      Partition cf_sp =
          BuildPartition(cf_view, cf_placement, frags, &pool, cf_opts);
      CfProgram::Options cfo;
      cfo.max_epochs = 10;
      EngineConfig cf_cfg;
      cf_cfg.mode = ModeConfig::Aap();
      cf_cfg.mode.bounded_staleness = true;
      cf_cfg.mode.staleness_bound = 3;
      auto cf_mem = timed(
          [&] {
            return SimEngine<CfProgram>(cf_p, CfProgram(cf_view, cfo), cf_cfg)
                .Run();
          },
          &t_cf_mem);
      auto cf_stream = timed(
          [&] {
            return SimEngine<CfProgram>(cf_sp, CfProgram(cf_view, cfo),
                                        cf_cfg)
                .Run();
          },
          &t_cf_stream);
      cf_identical = cf_mem.result.factors == cf_stream.result.factors &&
                     cf_mem.result.train_rmse == cf_stream.result.train_rmse;
      ok = ok && cf_identical &&
           cf_src.peak_resident_arcs() <= cf_src.effective_budget();
    } else {
      ok = false;
    }
    std::remove(cf_file.c_str());
  }
  std::printf("cf              %8.2fs in-mem  %8.2fs streaming  (%.2fx)  %s\n",
              t_cf_mem, t_cf_stream,
              t_cf_mem > 0 ? t_cf_stream / t_cf_mem : 0.0,
              cf_identical ? "IDENTICAL" : "MISMATCH");

  // ---- adaptive direction: push vs pull vs auto A/B ----------------------
  // One pull-enabled partition (materialised in-arcs off an in-memory
  // transpose) serves all three policies of the dual-mode programs. The
  // acceptance bar: auto must never be >5% slower than the better pure
  // direction, while pagerank stays fixed-point-equal and the label CC
  // lands on identical labels across directions.
  double t_dpr_push = 0, t_dpr_pull = 0, t_dpr_auto = 0;
  double t_dcc_push = 0, t_dcc_pull = 0, t_dcc_auto = 0;
  bool pr_dir_equal = false, cc_dir_identical = false;
  double pr_auto_over_best = 0, cc_auto_over_best = 0;
  uint64_t auto_push_rounds = 0, auto_pull_rounds = 0, auto_switches = 0;
  {
    Graph dir_transpose = TransposeGraph(view);
    GraphView dtv = dir_transpose.View();
    PartitionOptions dopts;
    dopts.in_adjacency = &dtv;
    Partition dp = BuildPartition(view, placement, frags, &pool, dopts);
    const auto run_dir = [&](auto prog, DirectionConfig::Mode mode,
                             double* sec, RunStats* stats) {
      using Prog = decltype(prog);
      EngineConfig dcfg = ecfg;
      dcfg.direction.mode = mode;
      const double start = Now();
      auto r = SimEngine<Prog>(dp, std::move(prog), dcfg).Run();
      *sec = Now() - start;
      if (stats != nullptr) *stats = std::move(r.stats);
      return std::move(r.result);
    };
    RunStats pr_auto_stats;
    const PageRankProgram dir_pr(0.85, 1e-4);
    const auto pr_push = run_dir(dir_pr, DirectionConfig::Mode::kPush,
                                 &t_dpr_push, nullptr);
    const auto pr_pull = run_dir(dir_pr, DirectionConfig::Mode::kPull,
                                 &t_dpr_pull, nullptr);
    const auto pr_auto = run_dir(dir_pr, DirectionConfig::Mode::kAuto,
                                 &t_dpr_auto, &pr_auto_stats);
    auto_push_rounds = pr_auto_stats.total_push_rounds();
    auto_pull_rounds = pr_auto_stats.total_pull_rounds();
    auto_switches = pr_auto_stats.total_direction_switches();
    // Each policy stops at its own tol-fixpoint: every vertex may park up
    // to tol of residual mass, and the |V|·tol total lands preferentially
    // on the hubs — so the cross-mode bound is relative to the score, not
    // absolute.
    double max_diff = 0;
    for (size_t v = 0; v < pr_push.size(); ++v) {
      const double scale = std::abs(pr_push[v]) + 1.0;
      max_diff = std::max(max_diff,
                          std::abs(pr_push[v] - pr_pull[v]) / scale);
      max_diff = std::max(max_diff,
                          std::abs(pr_push[v] - pr_auto[v]) / scale);
    }
    pr_dir_equal = max_diff <= 1e-3;
    pr_auto_over_best = t_dpr_auto / std::min(t_dpr_push, t_dpr_pull);
    const auto cc_push = run_dir(CcPullProgram{}, DirectionConfig::Mode::kPush,
                                 &t_dcc_push, nullptr);
    const auto cc_pull = run_dir(CcPullProgram{}, DirectionConfig::Mode::kPull,
                                 &t_dcc_pull, nullptr);
    const auto cc_auto = run_dir(CcPullProgram{}, DirectionConfig::Mode::kAuto,
                                 &t_dcc_auto, nullptr);
    cc_dir_identical = cc_push == cc_pull && cc_push == cc_auto;
    cc_auto_over_best = t_dcc_auto / std::min(t_dcc_push, t_dcc_pull);
    ok = ok && pr_dir_equal && cc_dir_identical;
    std::printf(
        "direction pr    %8.2fs push  %8.2fs pull  %8.2fs auto "
        "(auto/best %.2fx, max rel diff %.1e)  %s\n",
        t_dpr_push, t_dpr_pull, t_dpr_auto, pr_auto_over_best, max_diff,
        pr_dir_equal ? "FIXPOINT-EQUAL" : "MISMATCH");
    std::printf(
        "direction cc    %8.2fs push  %8.2fs pull  %8.2fs auto "
        "(auto/best %.2fx)  %s\n",
        t_dcc_push, t_dcc_pull, t_dcc_auto, cc_auto_over_best,
        cc_dir_identical ? "IDENTICAL" : "MISMATCH");
    std::printf(
        "direction auto  %llu push / %llu pull rounds, %llu switches\n",
        static_cast<unsigned long long>(auto_push_rounds),
        static_cast<unsigned long long>(auto_pull_rounds),
        static_cast<unsigned long long>(auto_switches));
  }

  // ---- threaded engine: 2-thread pinned smoke ----------------------------
  // Exercises the physical-thread path end to end on the same partition:
  // core pinning, NUMA-bound per-fragment state, the MCS/topo superstep
  // barrier (BSP CC) and the async notify hub (AAP PageRank). CC under BSP
  // is lockstep-deterministic, so its labels must match the sim run
  // exactly; threaded AAP PageRank accumulates in a schedule-dependent
  // order, so it gets the same relative fixpoint bound the direction A/B
  // uses.
  double t_thr_cc = 0, t_thr_pr = 0;
  bool thr_cc_identical = false, thr_pr_close = false;
  double thr_busy = 0, thr_idle = 0;
  uint64_t thr_supersteps = 0;
  uint32_t thr_pinned = 0;
  const uint32_t thr_threads = 2;
  {
    EngineConfig tcfg;
    tcfg.num_threads = thr_threads;
    tcfg.pin_threads = true;
    tcfg.mode = ModeConfig::Bsp();
    auto thr_cc = timed(
        [&] { return ThreadedEngine<CcProgram>(p, CcProgram{}, tcfg).Run(); },
        &t_thr_cc);
    thr_cc_identical = thr_cc.result == cc_mem.result;
    thr_busy = thr_cc.stats.total_thread_busy();
    thr_idle = thr_cc.stats.total_thread_idle();
    thr_supersteps = thr_cc.stats.total_supersteps();
    {
      WorkerPool probe(thr_threads, WorkerPoolOptions{true, nullptr});
      thr_pinned = probe.pinned_threads();
    }
    tcfg.mode = ModeConfig::Aap();
    auto thr_pr = timed(
        [&] {
          return ThreadedEngine<PageRankProgram>(p, pr_prog, tcfg).Run();
        },
        &t_thr_pr);
    double thr_max_diff = 0;
    for (size_t v = 0; v < thr_pr.result.size(); ++v) {
      const double scale = std::abs(pr_mem.result[v]) + 1.0;
      thr_max_diff = std::max(
          thr_max_diff, std::abs(thr_pr.result[v] - pr_mem.result[v]) / scale);
    }
    thr_pr_close = thr_max_diff <= 1e-3;
    ok = ok && thr_cc_identical && thr_pr_close;
    std::printf(
        "threaded        %8.2fs cc bsp (%llu supersteps)  %8.2fs pagerank "
        "aap  (%u threads, %u pinned)\n",
        t_thr_cc, static_cast<unsigned long long>(thr_supersteps), t_thr_pr,
        thr_threads, thr_pinned);
    std::printf(
        "threaded        %8.2fs busy / %8.2fs idle across threads, "
        "cc %s, pagerank %s (max rel diff %.1e)\n",
        thr_busy, thr_idle, thr_cc_identical ? "IDENTICAL" : "MISMATCH",
        thr_pr_close ? "FIXPOINT-EQUAL" : "MISMATCH", thr_max_diff);
  }

  // ---- async engine: barrier-free worklist smoke -------------------------
  // Same partition through the no-superstep engine: chunked worklists with
  // stealing, eager delivery, quiescence termination. CC's monotone-min
  // fixpoint is unique, so async labels must match the sim run exactly;
  // async PageRank gets the same relative fixpoint bound the threaded
  // smoke uses, plus a wall-clock ratio against threaded AAP that
  // check_bench gates (barrier-free must not be dramatically slower).
  double t_async_cc = 0, t_async_pr = 0;
  double async_pr_max_diff = 0;
  bool async_cc_identical = false, async_pr_close = false;
  uint64_t async_pushes = 0, async_steals = 0, async_quanta = 0;
  {
    EngineConfig acfg;
    acfg.num_threads = thr_threads;
    auto async_cc = timed(
        [&] { return AsyncEngine<CcProgram>(p, CcProgram{}, acfg).Run(); },
        &t_async_cc);
    async_cc_identical = async_cc.result == cc_mem.result;
    async_pushes = async_cc.worklist_pushes;
    async_steals = async_cc.worklist_steals;
    auto async_pr = timed(
        [&] {
          return AsyncEngine<PageRankProgram>(p, pr_prog, acfg).Run();
        },
        &t_async_pr);
    async_quanta = async_pr.stats.total_rounds();
    for (size_t v = 0; v < async_pr.result.size(); ++v) {
      const double scale = std::abs(pr_mem.result[v]) + 1.0;
      async_pr_max_diff =
          std::max(async_pr_max_diff,
                   std::abs(async_pr.result[v] - pr_mem.result[v]) / scale);
    }
    async_pr_close = async_pr_max_diff <= 1e-3;
    ok = ok && async_cc_identical && async_pr_close;
    std::printf(
        "async           %8.2fs cc  %8.2fs pagerank (%u threads, "
        "%llu pushes, %llu steals, %llu quanta)\n",
        t_async_cc, t_async_pr, thr_threads,
        static_cast<unsigned long long>(async_pushes),
        static_cast<unsigned long long>(async_steals),
        static_cast<unsigned long long>(async_quanta));
    std::printf(
        "async           cc %s, pagerank %s (max rel diff %.1e, "
        "%.2fx of threaded aap)\n",
        async_cc_identical ? "IDENTICAL" : "MISMATCH",
        async_pr_close ? "FIXPOINT-EQUAL" : "MISMATCH", async_pr_max_diff,
        t_thr_pr > 0 ? t_async_pr / t_thr_pr : 0.0);
  }

  // ---- observability overhead: metrics + tracer on vs off ----------------
  // A/B the same sim-engine PageRank with the whole observability layer off
  // (metrics disabled, tracer disabled) and fully on. check_bench gates
  // on_over_off at 1.03 — the <=3% overhead contract in
  // docs/OBSERVABILITY.md. Reps are calibrated to ~0.3s per side (min of 3
  // alternating pairs) so the CI smoke shape measures more than timer noise.
  double t_obs_off = 0, t_obs_on = 0, obs_over = 0;
  uint64_t obs_reps = 1, obs_trace_events = 0;
  bool obs_identical = false;
  {
    const double t_single = t_pr_mem > 0 ? t_pr_mem : 0.05;
    obs_reps = std::min<uint64_t>(
        16,
        std::max<uint64_t>(
            1, static_cast<uint64_t>(std::ceil(0.3 / t_single))));
    const auto run_side = [&](bool enabled, double* sec) {
      obs::SetMetricsEnabled(enabled);
      if (enabled) {
        obs::Tracer::Global().Enable();
      } else {
        obs::Tracer::Global().Disable();
      }
      decltype(pr_mem.result) res;
      const double start = Now();
      for (uint64_t r = 0; r < obs_reps; ++r) {
        res = SimEngine<PageRankProgram>(p, pr_prog, ecfg).Run().result;
      }
      *sec = (Now() - start) / static_cast<double>(obs_reps);
      return res;
    };
    double best_off = 1e300, best_on = 1e300;
    decltype(pr_mem.result) off_res, on_res;
    for (int pair = 0; pair < 3; ++pair) {
      double s_off = 0, s_on = 0;
      off_res = run_side(false, &s_off);
      on_res = run_side(true, &s_on);
      best_off = std::min(best_off, s_off);
      best_on = std::min(best_on, s_on);
    }
    obs_trace_events = obs::Tracer::Global().Collect().size();
    obs::Tracer::Global().Disable();
    obs::SetMetricsEnabled(true);
    t_obs_off = best_off;
    t_obs_on = best_on;
    obs_over = t_obs_off > 0 ? t_obs_on / t_obs_off : 0.0;
    obs_identical = off_res == on_res;
    ok = ok && obs_identical;
    std::printf(
        "obs overhead    %8.4fs off  %8.4fs on  (%.3fx, %llu reps, "
        "%llu trace events)  %s\n",
        t_obs_off, t_obs_on, obs_over,
        static_cast<unsigned long long>(obs_reps),
        static_cast<unsigned long long>(obs_trace_events),
        obs_identical ? "IDENTICAL" : "MISMATCH");
  }

  // ---- algorithms on the zero-copy view ----------------------------------
  t0 = Now();
  auto cc_mmap = seq::ConnectedComponents(view);
  const double t_cc = Now() - t0;
  ok = ok && cc_mmap == seq::ConnectedComponents(g);
  uint64_t components = 0;
  for (VertexId v = 0; v < view.num_vertices(); ++v) {
    if (cc_mmap[v] == v) ++components;
  }
  t0 = Now();
  auto pr = seq::PageRank(view, 0.85, 1e-4, /*max_iters=*/5);
  const double t_pagerank = Now() - t0;
  std::printf("cc              %8.2fs  (%llu components)\n", t_cc,
              static_cast<unsigned long long>(components));
  std::printf("pagerank (5 it) %8.2fs\n", t_pagerank);
  std::printf("consistency     %s\n", ok ? "OK" : "MISMATCH");

  // ---- BENCH_ingest.json --------------------------------------------------
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"grapeplus-ingest-v1\",\n");
  std::fprintf(f, "  \"num_vertices\": %llu,\n",
               static_cast<unsigned long long>(g.num_vertices()));
  std::fprintf(f, "  \"num_arcs\": %llu,\n",
               static_cast<unsigned long long>(g.num_arcs()));
  std::fprintf(f, "  \"fragments\": %u,\n", frags);
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"file_mb\": %.1f,\n",
               static_cast<double>(mapped.value().file_bytes()) / 1048576.0);
  std::fprintf(f, "  \"generate_and_build_sec\": %.3f,\n", t_generate);
  std::fprintf(f, "  \"build\": {\n");
  std::fprintf(f, "    \"serial_baseline_sec\": %.3f,\n", t_build_serial);
  std::fprintf(f, "    \"parallel_sec\": %.3f,\n", t_build_parallel);
  std::fprintf(f, "    \"speedup\": %.2f\n", build_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"save_sec\": %.3f,\n", t_save);
  std::fprintf(f, "  \"mmap_load_verify_sec\": %.3f,\n", t_mmap);
  std::fprintf(f, "  \"build_partition\": {\n");
  std::fprintf(f, "    \"serial_baseline_sec\": %.3f,\n", t_partition_serial);
  std::fprintf(f, "    \"parallel_sec\": %.3f,\n", t_partition_parallel);
  std::fprintf(f, "    \"speedup\": %.2f\n", partition_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cc_sec\": %.3f,\n", t_cc);
  std::fprintf(f, "  \"cc_components\": %llu,\n",
               static_cast<unsigned long long>(components));
  std::fprintf(f, "  \"pagerank_5iter_sec\": %.3f,\n", t_pagerank);
  std::fprintf(f, "  \"streaming\": {\n");
  std::fprintf(f, "    \"chunk_arcs\": %llu,\n",
               static_cast<unsigned long long>(chunk_arcs));
  std::fprintf(f, "    \"effective_budget\": %llu,\n",
               static_cast<unsigned long long>(source.effective_budget()));
  std::fprintf(f, "    \"peak_resident_arcs\": %llu,\n",
               static_cast<unsigned long long>(peak_resident));
  std::fprintf(f, "    \"peak_point_arcs\": %llu,\n",
               static_cast<unsigned long long>(peak_point));
  std::fprintf(f, "    \"partition_stream_sec\": %.3f,\n",
               t_partition_stream);
  std::fprintf(f, "    \"cc_inmem_sec\": %.3f,\n", t_cc_mem);
  std::fprintf(f, "    \"cc_stream_sec\": %.3f,\n", t_cc_stream);
  std::fprintf(f, "    \"cc_stream_over_inmem\": %.2f,\n",
               t_cc_stream / t_cc_mem);
  std::fprintf(f, "    \"pagerank_inmem_sec\": %.3f,\n", t_pr_mem);
  std::fprintf(f, "    \"pagerank_stream_sec\": %.3f,\n", t_pr_stream);
  std::fprintf(f, "    \"pagerank_stream_over_inmem\": %.2f,\n",
               t_pr_stream / t_pr_mem);
  std::fprintf(f, "    \"pagerank_stream_nocache_sec\": %.3f,\n",
               t_pr_nocache);
  std::fprintf(f, "    \"lid_cache\": {\n");
  std::fprintf(f, "      \"hits\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.hits));
  std::fprintf(f, "      \"misses\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.misses));
  std::fprintf(f, "      \"hit_rate\": %.3f,\n", cache_hit_rate);
  std::fprintf(f, "      \"cached_mb\": %.1f,\n",
               static_cast<double>(cache_stats.cached_lids) *
                   sizeof(LocalVertex) / 1048576.0);
  std::fprintf(f, "      \"speedup\": %.2f,\n", cache_speedup);
  std::fprintf(f, "      \"nocache_identical\": %s\n",
               nocache_identical ? "true" : "false");
  std::fprintf(f, "    },\n");
  std::fprintf(f, "    \"pagerank_pull_inmem_sec\": %.3f,\n", t_pull_mem);
  std::fprintf(f, "    \"pagerank_pull_stream_sec\": %.3f,\n",
               t_pull_stream);
  std::fprintf(f, "    \"pagerank_pull_stream_over_inmem\": %.2f,\n",
               t_pull_mem > 0 ? t_pull_stream / t_pull_mem : 0.0);
  std::fprintf(f, "    \"pull_identical\": %s,\n",
               pull_identical ? "true" : "false");
  std::fprintf(f, "    \"cf_inmem_sec\": %.3f,\n", t_cf_mem);
  std::fprintf(f, "    \"cf_stream_sec\": %.3f,\n", t_cf_stream);
  std::fprintf(f, "    \"cf_stream_over_inmem\": %.2f,\n",
               t_cf_mem > 0 ? t_cf_stream / t_cf_mem : 0.0);
  std::fprintf(f, "    \"cf_identical\": %s,\n",
               cf_identical ? "true" : "false");
  std::fprintf(f, "    \"identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "    \"within_budget\": %s\n",
               within_budget ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"direction\": {\n");
  std::fprintf(f, "    \"pagerank_push_sec\": %.3f,\n", t_dpr_push);
  std::fprintf(f, "    \"pagerank_pull_sec\": %.3f,\n", t_dpr_pull);
  std::fprintf(f, "    \"pagerank_auto_sec\": %.3f,\n", t_dpr_auto);
  std::fprintf(f, "    \"pagerank_auto_over_best\": %.3f,\n",
               pr_auto_over_best);
  std::fprintf(f, "    \"pagerank_fixpoint_equal\": %s,\n",
               pr_dir_equal ? "true" : "false");
  std::fprintf(f, "    \"cc_push_sec\": %.3f,\n", t_dcc_push);
  std::fprintf(f, "    \"cc_pull_sec\": %.3f,\n", t_dcc_pull);
  std::fprintf(f, "    \"cc_auto_sec\": %.3f,\n", t_dcc_auto);
  std::fprintf(f, "    \"cc_auto_over_best\": %.3f,\n", cc_auto_over_best);
  std::fprintf(f, "    \"cc_identical\": %s,\n",
               cc_dir_identical ? "true" : "false");
  std::fprintf(f, "    \"auto_push_rounds\": %llu,\n",
               static_cast<unsigned long long>(auto_push_rounds));
  std::fprintf(f, "    \"auto_pull_rounds\": %llu,\n",
               static_cast<unsigned long long>(auto_pull_rounds));
  std::fprintf(f, "    \"auto_switches\": %llu\n",
               static_cast<unsigned long long>(auto_switches));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"threaded_scaling\": {\n");
  std::fprintf(f, "    \"threads\": %u,\n", thr_threads);
  std::fprintf(f, "    \"pinned_threads\": %u,\n", thr_pinned);
  std::fprintf(f, "    \"cc_bsp_sec\": %.3f,\n", t_thr_cc);
  std::fprintf(f, "    \"cc_supersteps\": %llu,\n",
               static_cast<unsigned long long>(thr_supersteps));
  std::fprintf(f, "    \"pagerank_aap_sec\": %.3f,\n", t_thr_pr);
  std::fprintf(f, "    \"cc_bsp_over_sim\": %.2f,\n",
               t_cc_mem > 0 ? t_thr_cc / t_cc_mem : 0.0);
  std::fprintf(f, "    \"pagerank_aap_over_sim\": %.2f,\n",
               t_pr_mem > 0 ? t_thr_pr / t_pr_mem : 0.0);
  std::fprintf(f, "    \"thread_busy_sec\": %.3f,\n", thr_busy);
  std::fprintf(f, "    \"thread_idle_sec\": %.3f,\n", thr_idle);
  std::fprintf(f, "    \"cc_identical\": %s,\n",
               thr_cc_identical ? "true" : "false");
  std::fprintf(f, "    \"pagerank_close\": %s\n",
               thr_pr_close ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"async\": {\n");
  std::fprintf(f, "    \"threads\": %u,\n", thr_threads);
  std::fprintf(f, "    \"cc_sec\": %.3f,\n", t_async_cc);
  std::fprintf(f, "    \"pagerank_sec\": %.3f,\n", t_async_pr);
  std::fprintf(f, "    \"pagerank_over_threaded\": %.2f,\n",
               t_thr_pr > 0 ? t_async_pr / t_thr_pr : 0.0);
  std::fprintf(f, "    \"worklist_pushes\": %llu,\n",
               static_cast<unsigned long long>(async_pushes));
  std::fprintf(f, "    \"worklist_steals\": %llu,\n",
               static_cast<unsigned long long>(async_steals));
  std::fprintf(f, "    \"quanta\": %llu,\n",
               static_cast<unsigned long long>(async_quanta));
  std::fprintf(f, "    \"pagerank_max_rel_diff\": %.2e,\n",
               async_pr_max_diff);
  std::fprintf(f, "    \"cc_identical\": %s,\n",
               async_cc_identical ? "true" : "false");
  std::fprintf(f, "    \"pagerank_close\": %s\n",
               async_pr_close ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"save_in_adjacency_sec\": %.3f,\n", t_save_inadj);
  std::fprintf(f, "  \"in_adjacency_file_mb\": %.1f,\n", inadj_mb);
  std::fprintf(f, "  \"obs_overhead\": {\n");
  std::fprintf(f, "    \"reps\": %llu,\n",
               static_cast<unsigned long long>(obs_reps));
  std::fprintf(f, "    \"off_sec\": %.4f,\n", t_obs_off);
  std::fprintf(f, "    \"on_sec\": %.4f,\n", t_obs_on);
  std::fprintf(f, "    \"on_over_off\": %.4f,\n", obs_over);
  std::fprintf(f, "    \"trace_events\": %llu,\n",
               static_cast<unsigned long long>(obs_trace_events));
  std::fprintf(f, "    \"identical\": %s\n",
               obs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  // Full RunReport (engine stats + metrics-registry snapshot: lid caches,
  // pool wakeups, chunk residency) so check_bench can gate on the
  // observability section without a separate artifact.
  {
    obs::ScopedPartitionMetrics lid_metrics(sp);
    obs::RunReport run_report;
    run_report.SetGraph(g.num_vertices(), g.num_arcs(), frags);
    run_report.AddRun("pagerank", "sim", pr_mem.stats, pr_mem.converged,
                      t_pr_mem);
    std::fprintf(f, "  \"run_report\": %s,\n", run_report.ToJson().c_str());
  }
  std::fprintf(f, "  \"consistent\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::remove(file.c_str());
  std::printf("wrote %s\n", out.c_str());
  return ok ? 0 : 2;
}

}  // namespace
}  // namespace grape

int main(int argc, char** argv) {
  return grape::RunStress(argc, argv);
}
