// Reproduces Fig 6(a)(b): SSSP response time while varying the number of
// workers n, over traffic-like (high-diameter road grid) and
// friendster-like (power-law) graphs. Series: GRAPE+ under AAP and its
// BSP/AP/SSP restrictions, plus vertex-centric GraphLab-sync/-async and
// PowerSwitch stand-ins.
//
// Paper's shape: GRAPE+ (AAP) fastest everywhere and the gap to the
// vertex-centric systems is dramatic on traffic (priority-queue PEval vs
// per-hop propagation); times fall as n grows.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunFig6Sssp(const char* panel, const Graph& g, VertexId src) {
  using namespace bench;
  std::printf("== Fig 6%s: SSSP on %u vertices / %llu arcs ==\n", panel,
              g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()));
  const FragmentId workers[] = {16, 24, 32, 48, 64};
  AsciiTable table({"system \\ n", "16", "24", "32", "48", "64"});
  // GRAPE+ mode ladder.
  for (const auto& row : GrapeModes()) {
    std::vector<std::string> cells = {row.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, SsspProgram(src), BaseConfig(row.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  // Vertex-centric competitors.
  struct Vc {
    const char* name;
    ModeConfig mode;
    VcCostModel costs;
  };
  const Vc vcs[] = {
      {"GraphLab-sync", ModeConfig::Bsp(), VcCostModel::GraphLab()},
      {"GraphLab-async", ModeConfig::Ap(), VcCostModel::GraphLabAsync()},
      {"PowerSwitch", ModeConfig::Hsync(), VcCostModel::PowerSwitch()},
  };
  for (const Vc& vc : vcs) {
    std::vector<std::string> cells = {vc.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, VcSsspProgram(src, vc.costs), BaseConfig(vc.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace grape

int main() {
  using namespace grape;
  using namespace grape::bench;
  RunFig6Sssp("(a) traffic-like", TrafficLike(), 0);
  RunFig6Sssp("(b) friendster-like", FriendsterLike(), 0);
  ShapeNote(
      "paper Fig 6(a,b): GRAPE+ beats GraphLab-sync/-async/PowerSwitch at "
      "every n; AAP beats its own BSP/AP/SSP restrictions; time drops "
      "with more workers");
  return 0;
}
