// Reproduces Fig 6(c)(d): CC response time varying the number of workers n
// on traffic-like and friendster-like graphs, same series as fig6_sssp.
//
// Paper's shape: GRAPE+ (AAP) fastest; block-centric local union-find makes
// the gap to hash-min vertex-centric CC large, especially on the
// high-diameter road graph (Fig 6(c) is log-scale in the paper).
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunFig6Cc(const char* panel, const Graph& g) {
  using namespace bench;
  std::printf("== Fig 6%s: CC on %u vertices / %llu arcs ==\n", panel,
              g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()));
  const FragmentId workers[] = {16, 24, 32, 48, 64};
  AsciiTable table({"system \\ n", "16", "24", "32", "48", "64"});
  for (const auto& row : GrapeModes()) {
    std::vector<std::string> cells = {row.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, CcProgram{}, BaseConfig(row.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  struct Vc {
    const char* name;
    ModeConfig mode;
    VcCostModel costs;
  };
  const Vc vcs[] = {
      {"GraphLab-sync", ModeConfig::Bsp(), VcCostModel::GraphLab()},
      {"GraphLab-async", ModeConfig::Ap(), VcCostModel::GraphLabAsync()},
      {"PowerSwitch", ModeConfig::Hsync(), VcCostModel::PowerSwitch()},
  };
  for (const Vc& vc : vcs) {
    std::vector<std::string> cells = {vc.name};
    for (FragmentId m : workers) {
      Partition p = SkewedPartition(g, m, 2.5);
      auto o = RunSim(p, VcCcProgram(vc.costs), BaseConfig(vc.mode, m));
      cells.push_back(o.converged ? Fmt(o.time) : "DNF");
    }
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace grape

int main() {
  using namespace grape;
  using namespace grape::bench;
  RunFig6Cc("(c) traffic-like", TrafficLike());
  RunFig6Cc("(d) friendster-like", FriendsterLike());
  ShapeNote(
      "paper Fig 6(c,d): GRAPE+ fastest (313x/93x/51x over the three "
      "vertex-centric systems at n=192); AAP above BSP/AP/SSP restrictions");
  return 0;
}
