// Section 6 (fault tolerance): measures the overhead of taking a
// Chandy–Lamport-style token checkpoint during an asynchronous run, and the
// cost of recovering from a one-worker failure (rollback + re-convergence),
// relative to an unperturbed run.
//
// Paper's observation (POC deployment): snapshotting is cheap relative to
// the computation (40s snapshot vs 40min load in their setting); recovery
// re-runs only the post-checkpoint suffix.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunSnapshotBench() {
  using namespace bench;
  constexpr FragmentId kWorkers = 24;
  Graph g = TrafficLike(80);
  Partition p = SkewedPartition(g, kWorkers, 2.0);

  EngineConfig base = BaseConfig(ModeConfig::Ap(), kWorkers);
  auto clean = RunSim(p, CcProgram{}, base);

  EngineConfig with_ckpt = base;
  with_ckpt.checkpoint_time = 0.3 * clean.time;
  auto ckpt = RunSim(p, CcProgram{}, with_ckpt);

  EngineConfig with_fail = with_ckpt;
  with_fail.fail_worker = 3;
  with_fail.fail_time = 0.8 * clean.time;
  auto fail = RunSim(p, CcProgram{}, with_fail);

  AsciiTable table({"run", "time", "vs clean"});
  table.AddRow({"clean", Fmt(clean.time), "1.00"});
  table.AddRow({"with checkpoint", Fmt(ckpt.time),
                Fmt(ckpt.time / clean.time, 2)});
  table.AddRow({"checkpoint + failure + recovery", Fmt(fail.time),
                Fmt(fail.time / clean.time, 2)});
  std::printf("== Section 6: checkpoint & recovery overhead (CC, n=%u) ==\n%s\n",
              kWorkers, table.ToString().c_str());
  ShapeNote(
      "paper Section 6: checkpointing is near-free during the run; failure "
      "recovery costs roughly the rolled-back suffix, far less than a "
      "restart from scratch");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunSnapshotBench();
  return 0;
}
