// Reproduces Fig 7 (Appendix B case study 1): timing diagrams of PageRank
// with 32 workers where worker P12 is a straggler, under BSP / AP / SSP(c=5)
// / AAP. Prints the Gantt diagram of each run plus the numbers the paper
// tracks: total time, straggler rounds, fast-worker rounds.
//
// Paper's shape: BSP — every superstep waits for P12 (13 rounds, longest);
// AP — little idling but many redundant fast-worker rounds; SSP — good
// start, then degrades to BSP once the c-budget is spent; AAP — the
// straggler accumulates updates, converges in the fewest straggler rounds,
// and the run is the shortest.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunFig7() {
  using namespace bench;
  constexpr FragmentId kWorkers = 32;
  constexpr FragmentId kStraggler = 12;
  Graph g = FriendsterLike(1 << 13, 60000);
  // Balanced partition; the straggler is a slow machine (speed 4x), the
  // situation Fig 7 colours blue/green for P12.
  Partition p = BuildPartition(g, LdgPartitioner().Assign(g, kWorkers),
                               kWorkers);
  struct Row {
    const char* name;
    ModeConfig mode;
  };
  const Row rows[] = {
      {"BSP", ModeConfig::Bsp()},
      {"AP", ModeConfig::Ap()},
      {"SSP(c=5)", ModeConfig::Ssp(5)},
      {"AAP", ModeConfig::Aap(0.0)},
  };
  AsciiTable table({"model", "time", "straggler rounds", "max rounds",
                    "total rounds", "idle", "suspended"});
  for (const Row& row : rows) {
    EngineConfig cfg = BaseConfig(row.mode, kWorkers);
    cfg.speed_factors.assign(kWorkers, 1.0);
    cfg.speed_factors[kStraggler] = 4.0;
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-5), cfg);
    auto r = engine.Run();
    std::printf("-- %s --\n%s\n", row.name, r.trace.ToGantt(kWorkers, 100).c_str());
    table.AddRow({row.name, Fmt(r.stats.makespan),
                  std::to_string(r.stats.workers[kStraggler].rounds),
                  std::to_string(r.stats.max_rounds()),
                  std::to_string(r.stats.total_rounds()),
                  Fmt(r.stats.total_idle()), Fmt(r.stats.total_suspended())});
  }
  std::printf("== Fig 7: PageRank case study, 32 workers, straggler P12 ==\n%s\n",
              table.ToString().c_str());
  ShapeNote(
      "paper Fig 7: straggler rounds 13 (BSP) / 27 (AP) / 28 (SSP) vs 24 "
      "(AAP fast workers) — AAP holds the straggler to the fewest rounds "
      "and the shortest run; AP piles up redundant fast-worker rounds");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunFig7();
  return 0;
}
