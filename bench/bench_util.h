// Copyright 2026 The GRAPE+ Reproduction Authors.
// Shared harness for the per-table / per-figure benchmark binaries.
//
// Workloads are scaled-down, structure-preserving stand-ins for the paper's
// datasets (DESIGN.md §1): traffic -> 2-D road grid (high diameter),
// Friendster -> undirected RMAT (power-law hubs), UKWeb -> directed deeper
// RMAT, movieLens / Netflix -> planted low-rank bipartite rating graphs.
// "Systems" are (engine mode x program granularity x cost model) tuples as
// catalogued in DESIGN.md §1 and baselines/cost_model.h.
#ifndef GRAPEPLUS_BENCH_BENCH_UTIL_H_
#define GRAPEPLUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "algos/cc.h"
#include "algos/cf.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "baselines/cost_model.h"
#include "baselines/vc_programs.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "partition/skew.h"
#include "util/table.h"

namespace grape {
namespace bench {

// ------------------------------------------------------------ workloads ---

inline Graph TrafficLike(uint32_t side = 96) {
  GridOptions o;
  o.rows = side;
  o.cols = side;
  o.shortcut_fraction = 0.005;
  o.seed = 4;
  return MakeRoadGrid(o);
}

inline Graph FriendsterLike(VertexId n = 1 << 14, uint64_t arcs = 120000) {
  RmatOptions o;
  o.num_vertices = n;
  o.num_edges = arcs;
  o.directed = false;  // social links
  o.weighted = true;
  o.min_weight = 1.0;
  o.max_weight = 10.0;
  o.seed = 8;
  return MakeRmat(o);
}

inline Graph UkWebLike(VertexId n = 1 << 14, uint64_t arcs = 150000) {
  RmatOptions o;
  o.num_vertices = n;
  o.num_edges = arcs;
  o.a = 0.65;  // deeper skew: web graphs have extreme hubs
  o.b = 0.15;
  o.c = 0.15;
  o.directed = true;
  o.seed = 16;
  return MakeRmat(o);
}

inline Graph MovieLensLike() {
  BipartiteOptions o;
  o.num_users = 1500;
  o.num_items = 250;
  o.num_ratings = 30000;
  o.seed = 23;
  return MakeBipartiteRatings(o);
}

inline Graph NetflixLike() {
  BipartiteOptions o;
  o.num_users = 3000;
  o.num_items = 400;
  o.num_ratings = 80000;
  o.seed = 42;
  return MakeBipartiteRatings(o);
}

// ------------------------------------------------------------- running ---

struct Outcome {
  double time = 0.0;      // virtual makespan
  double comm_mb = 0.0;   // bytes shipped, scaled to MB-like units
  uint64_t rounds = 0;
  uint64_t straggler_rounds = 0;
  bool converged = false;
};

template <typename Program>
Outcome RunSim(const Partition& p, Program prog, EngineConfig cfg) {
  SimEngine<Program> engine(p, std::move(prog), std::move(cfg));
  auto r = engine.Run();
  Outcome o;
  o.time = r.stats.makespan;
  o.comm_mb = static_cast<double>(r.stats.total_bytes()) / (1024.0 * 1024.0);
  o.rounds = r.stats.total_rounds();
  o.straggler_rounds = r.stats.straggler_rounds();
  o.converged = r.converged;
  return o;
}

/// Partition with the paper's Exp setup: balanced LDG then a mild reshuffle
/// to introduce stragglers ("we randomly reshuffled a small portion ... and
/// made the graphs skewed").
inline Partition SkewedPartition(const Graph& g, FragmentId m,
                                 double skew = 2.5, uint64_t seed = 1) {
  auto placement = LdgPartitioner().Assign(g, m);
  if (skew > 1.0 && m >= 2) placement = InjectSkew(g, placement, m, skew, seed);
  return BuildPartition(g, std::move(placement), m);
}

/// Base engine configuration: unit message latency, light per-round
/// overhead, straggling from fragment skew (and optionally speed factors).
inline EngineConfig BaseConfig(ModeConfig mode, FragmentId m) {
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.msg_latency = 1.0;
  cfg.work_unit_time = 0.01;
  cfg.min_round_time = 0.5;
  (void)m;
  return cfg;
}

/// Adds a machine-level straggler: worker 0 (which also holds the skewed
/// fragment from SkewedPartition) runs `factor`x slower — the combined
/// data + hardware skew of the paper's evaluation setting.
inline EngineConfig WithStraggler(EngineConfig cfg, FragmentId m,
                                  double factor = 2.0) {
  cfg.speed_factors.assign(m, 1.0);
  if (m > 0) cfg.speed_factors[0] = factor;
  return cfg;
}

/// The GRAPE+ mode ladder of Exp-1: AAP and its BSP/AP/SSP restrictions.
struct ModeRow {
  const char* name;
  ModeConfig mode;
};

inline std::vector<ModeRow> GrapeModes(bool cf = false) {
  ModeConfig aap = ModeConfig::Aap(0.0);
  ModeConfig ssp = ModeConfig::Ssp(3);
  if (cf) {
    aap.bounded_staleness = true;
    aap.staleness_bound = 3;
  }
  return {
      {"GRAPE+ (AAP)", aap},
      {"GRAPE+BSP", ModeConfig::Bsp()},
      {"GRAPE+AP", ModeConfig::Ap()},
      {"GRAPE+SSP", ssp},
  };
}

inline std::string Fmt(double v, int prec = 1) {
  return AsciiTable::Num(v, prec);
}

/// Prints a small "paper vs measured" shape note.
inline void ShapeNote(const char* claim) {
  std::printf("shape check: %s\n\n", claim);
}

}  // namespace bench
}  // namespace grape

#endif  // GRAPEPLUS_BENCH_BENCH_UTIL_H_
