// google-benchmark microbenchmarks of the substrate primitives: buffer
// append/drain (the B_x̄i hot path), partition construction, generators and
// the sequential kernels the PIE programs build on. These track the
// constant factors behind the figure-level harnesses.
#include <benchmark/benchmark.h>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/message.h"

namespace grape {
namespace {

void BM_UpdateBufferAppendDrain(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    UpdateBuffer<double> buf;
    Message<double> msg{0, 1, 0, {}, 0};
    msg.entries.reserve(16);
    for (int i = 0; i < entries; ++i) {
      msg.entries.clear();
      for (int j = 0; j < 16; ++j) {
        msg.entries.push_back({static_cast<VertexId>((i * 7 + j) % 512),
                               static_cast<double>(i), 0});
      }
      buf.Append(msg, [](double a, double b) { return a < b ? a : b; });
    }
    benchmark::DoNotOptimize(buf.Drain());
  }
  state.SetItemsProcessed(state.iterations() * entries * 16);
}
BENCHMARK(BM_UpdateBufferAppendDrain)->Arg(64)->Arg(512);

void BM_RmatGeneration(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 13;
  o.num_edges = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    o.seed++;
    benchmark::DoNotOptimize(MakeRmat(o));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGeneration)->Arg(50000);

void BM_PartitionBuild(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 13;
  o.num_edges = 60000;
  Graph g = MakeRmat(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashPartitioner().Partition_(g, static_cast<FragmentId>(state.range(0))));
  }
}
BENCHMARK(BM_PartitionBuild)->Arg(8)->Arg(64);

void BM_SeqDijkstra(benchmark::State& state) {
  ErdosRenyiOptions o;
  o.num_vertices = 1 << 12;
  o.num_edges = 40000;
  o.weighted = true;
  Graph g = MakeErdosRenyi(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::Sssp(g, 0));
  }
}
BENCHMARK(BM_SeqDijkstra);

void BM_EndToEndCcAap(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 12;
  o.num_edges = 30000;
  o.directed = false;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 16);
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.mode = ModeConfig::Aap();
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_EndToEndCcAap);

}  // namespace
}  // namespace grape

BENCHMARK_MAIN();
