// google-benchmark microbenchmarks of the substrate primitives: buffer
// append/drain (the B_x̄i hot path), message dispatch/routing, partition
// construction, generators and the sequential kernels the PIE programs
// build on. These track the constant factors behind the figure-level
// harnesses.
//
// In addition to the google-benchmark registrations, main() runs a fixed
// dense-vs-hash-map comparison (the seed's unordered_map buffer and
// Recipients+std::map dispatch, reproduced below as baselines) and writes
// the throughputs to BENCH_micro.json so future PRs can track the perf
// trajectory of the hot paths.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/barrier.h"
#include "runtime/message.h"
#include "runtime/topology.h"
#include "util/timer.h"

namespace grape {
namespace {

// ----------------------------------------------------------- baselines ---
// The seed's hash-map update buffer (unordered_map + heap mutex + sort on
// drain), kept verbatim as the comparison baseline for BENCH_micro.json.

template <typename V>
class LegacyUpdateBuffer {
 public:
  LegacyUpdateBuffer() : mu_(std::make_unique<std::mutex>()) {}

  template <typename Combine>
  void Append(const Message<V>& msg, Combine&& combine) {
    std::lock_guard<std::mutex> lock(*mu_);
    for (const auto& e : msg.entries) {
      auto [it, inserted] = pending_.try_emplace(e.vid, e);
      if (!inserted) {
        it->second.value = combine(it->second.value, e.value);
        it->second.round = std::max(it->second.round, e.round);
      }
    }
    ++num_messages_;
    senders_.insert(msg.from);
  }

  std::vector<UpdateEntry<V>> Drain() {
    std::lock_guard<std::mutex> lock(*mu_);
    std::vector<UpdateEntry<V>> out;
    out.reserve(pending_.size());
    for (auto& [vid, e] : pending_) out.push_back(e);
    pending_.clear();
    num_messages_ = 0;
    senders_.clear();
    std::sort(out.begin(), out.end(),
              [](const UpdateEntry<V>& a, const UpdateEntry<V>& b) {
                return a.vid < b.vid;
              });
    return out;
  }

 private:
  mutable std::unique_ptr<std::mutex> mu_;
  std::unordered_map<VertexId, UpdateEntry<V>> pending_;
  uint64_t num_messages_ = 0;
  std::unordered_set<FragmentId> senders_;
};

/// The seed's dispatch: per-entry Recipients() (placement + copy_holders
/// hash lookups) grouped through a std::map<FragmentId, Message>.
template <typename V>
uint64_t LegacyDispatch(const Partition& p, FragmentId from,
                        const std::vector<UpdateEntry<V>>& outbox,
                        bool to_copies) {
  std::map<FragmentId, Message<V>> grouped;
  std::vector<FragmentId> recipients;
  for (const auto& e : outbox) {
    p.Recipients(e.vid, from, to_copies, &recipients);
    for (FragmentId dst : recipients) {
      auto& msg = grouped[dst];
      msg.from = from;
      msg.to = dst;
      msg.entries.push_back(e);
    }
  }
  uint64_t total = 0;
  for (auto& [dst, msg] : grouped) {
    total += msg.entries.size();
    // Receivers used Fragment::LocalId per entry — charge it here too.
    for (const auto& e : msg.entries) {
      benchmark::DoNotOptimize(p.fragments[dst].LocalId(e.vid));
    }
  }
  return total;
}

/// The routed dispatch of the engines, via the shared RouteUpdateEntry
/// fan-out: O(1) routing-index reads into reusable per-destination boxes,
/// destination lids stamped on the copies.
template <typename V>
struct RoutedDispatcher {
  std::vector<std::vector<UpdateEntry<V>>> out_by_dst;
  std::vector<FragmentId> touched;
  std::vector<FragmentId> recipients;

  explicit RoutedDispatcher(FragmentId m) : out_by_dst(m) {}

  uint64_t Dispatch(const Partition& p, FragmentId from,
                    const std::vector<UpdateEntry<V>>& outbox) {
    for (const auto& e : outbox) {
      RouteUpdateEntry</*kToCopies=*/false>(
          p, from, e, recipients,
          [this](const RouteTarget& t, const UpdateEntry<V>& entry) {
            Push(t, entry);
          });
    }
    uint64_t total = 0;
    for (FragmentId dst : touched) {
      total += out_by_dst[dst].size();
      benchmark::DoNotOptimize(out_by_dst[dst].data());
      out_by_dst[dst].clear();
    }
    touched.clear();
    return total;
  }

  void Push(const RouteTarget& t, const UpdateEntry<V>& e) {
    auto& box = out_by_dst[t.frag];
    if (box.empty()) touched.push_back(t.frag);
    box.push_back(UpdateEntry<V>{e.vid, e.value, e.round, t.lid});
  }
};

/// The pre-barrier superstep rendezvous: one mutex + condition_variable hub
/// every thread funnels through, kept verbatim as the comparison baseline
/// for the `barrier` section of BENCH_micro.json.
class CvHubBarrier final : public ThreadBarrier {
 public:
  explicit CvHubBarrier(uint32_t n) : n_(n ? n : 1) {}

  void Arrive(uint32_t) override {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t gen = generation_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

  uint32_t num_threads() const override { return n_; }
  const char* name() const override { return "cv-hub"; }

 private:
  uint32_t n_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
};

/// Full-complement rendezvous throughput: every thread crosses `rounds`
/// back-to-back barriers; thread 0's wall time over its span is the
/// rendezvous rate (Arrive is a full sync point, so the span covers all
/// threads' arrivals). A short warmup absorbs thread spawn and first-touch.
double MeasureBarrierRendezvousPerSec(ThreadBarrier* barrier,
                                      uint32_t rounds) {
  const uint32_t n = barrier->num_threads();
  std::vector<std::thread> threads;
  threads.reserve(n);
  double secs = 1e9;
  for (uint32_t tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      for (uint32_t r = 0; r < 64; ++r) barrier->Arrive(tid);
      barrier->Arrive(tid);  // start line
      Stopwatch sw;
      for (uint32_t r = 0; r < rounds; ++r) barrier->Arrive(tid);
      if (tid == 0) secs = std::max(sw.ElapsedSeconds(), 1e-9);
    });
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(rounds) / secs;
}

// ----------------------------------------------------------- workloads ---

std::vector<Message<double>> MakeBufferWorkload(int num_messages,
                                                int entries_per_msg,
                                                uint32_t key_space) {
  std::vector<Message<double>> msgs;
  msgs.reserve(num_messages);
  for (int i = 0; i < num_messages; ++i) {
    Message<double> m{static_cast<FragmentId>(i % 8), 1, 0, {}, 0};
    for (int j = 0; j < entries_per_msg; ++j) {
      const uint32_t k = (i * 7 + j * 13) % key_space;
      m.entries.push_back({k, static_cast<double>(i), 0, k});
    }
    msgs.push_back(std::move(m));
  }
  return msgs;
}

struct DispatchWorkload {
  Graph graph;
  Partition partition;
  std::vector<UpdateEntry<double>> outbox;  // fragment 0's border emissions
};

DispatchWorkload MakeDispatchWorkload() {
  DispatchWorkload w;
  RmatOptions o;
  o.num_vertices = 1 << 13;
  o.num_edges = 60000;
  o.seed = 11;
  w.graph = MakeRmat(o);
  w.partition = HashPartitioner().Partition_(w.graph, 16);
  const Fragment& f0 = w.partition.fragments[0];
  for (LocalVertex l = f0.num_inner(); l < f0.num_local(); ++l) {
    w.outbox.push_back({f0.GlobalId(l), 1.0, 3, l});
  }
  return w;
}

// ----------------------------------------------- benchmark registrations ---

void BM_DenseBufferAppendDrain(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  auto msgs = MakeBufferWorkload(entries, 16, 512);
  auto combine = [](double a, double b) { return a < b ? a : b; };
  UpdateBuffer<double> buf(512);
  for (auto _ : state) {
    for (const auto& m : msgs) buf.Append(m, combine);
    benchmark::DoNotOptimize(buf.Drain());
  }
  state.SetItemsProcessed(state.iterations() * entries * 16);
}
BENCHMARK(BM_DenseBufferAppendDrain)->Arg(64)->Arg(512);

void BM_LegacyBufferAppendDrain(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  auto msgs = MakeBufferWorkload(entries, 16, 512);
  auto combine = [](double a, double b) { return a < b ? a : b; };
  LegacyUpdateBuffer<double> buf;
  for (auto _ : state) {
    for (const auto& m : msgs) buf.Append(m, combine);
    benchmark::DoNotOptimize(buf.Drain());
  }
  state.SetItemsProcessed(state.iterations() * entries * 16);
}
BENCHMARK(BM_LegacyBufferAppendDrain)->Arg(64)->Arg(512);

void BM_RoutedDispatch(benchmark::State& state) {
  auto w = MakeDispatchWorkload();
  RoutedDispatcher<double> d(w.partition.num_fragments());
  uint64_t total = 0;
  for (auto _ : state) {
    total += d.Dispatch(w.partition, 0, w.outbox);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.outbox.size()));
}
BENCHMARK(BM_RoutedDispatch);

void BM_LegacyDispatch(benchmark::State& state) {
  auto w = MakeDispatchWorkload();
  uint64_t total = 0;
  for (auto _ : state) {
    total += LegacyDispatch(w.partition, 0, w.outbox, /*to_copies=*/false);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.outbox.size()));
}
BENCHMARK(BM_LegacyDispatch);

void BM_RmatGeneration(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 13;
  o.num_edges = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    o.seed++;
    benchmark::DoNotOptimize(MakeRmat(o));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGeneration)->Arg(50000);

void BM_PartitionBuild(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 13;
  o.num_edges = 60000;
  Graph g = MakeRmat(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashPartitioner().Partition_(g, static_cast<FragmentId>(state.range(0))));
  }
}
BENCHMARK(BM_PartitionBuild)->Arg(8)->Arg(64);

void BM_SeqDijkstra(benchmark::State& state) {
  ErdosRenyiOptions o;
  o.num_vertices = 1 << 12;
  o.num_edges = 40000;
  o.weighted = true;
  Graph g = MakeErdosRenyi(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::Sssp(g, 0));
  }
}
BENCHMARK(BM_SeqDijkstra);

void BM_EndToEndCcAap(benchmark::State& state) {
  RmatOptions o;
  o.num_vertices = 1 << 12;
  o.num_edges = 30000;
  o.directed = false;
  Graph g = MakeRmat(o);
  Partition p = HashPartitioner().Partition_(g, 16);
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.mode = ModeConfig::Aap();
    SimEngine<CcProgram> engine(p, CcProgram{}, cfg);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_EndToEndCcAap);

// --------------------------------------------------- BENCH_micro.json ---

/// Runs `fn` long enough for a stable estimate; returns items/second.
template <typename Fn>
double MeasureItemsPerSec(uint64_t items_per_call, Fn&& fn) {
  // Warm up, then time enough calls for >= ~0.2 s.
  fn();
  Stopwatch probe;
  fn();
  const double once = std::max(probe.ElapsedSeconds(), 1e-9);
  const int reps = std::max(1, static_cast<int>(0.2 / once));
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) fn();
  const double secs = std::max(sw.ElapsedSeconds(), 1e-12);
  return static_cast<double>(items_per_call) * reps / secs;
}

void WriteBenchJson(const char* path) {
  auto combine = [](double a, double b) { return a < b ? a : b; };

  // Buffer append+drain: 128 messages x 16 entries over 512 keys — the
  // frequent-drain shape of an async round (δ rarely lets hundreds of
  // messages accumulate before IncEval consumes them).
  auto msgs = MakeBufferWorkload(128, 16, 512);
  const uint64_t buf_items = 128 * 16;
  UpdateBuffer<double> dense(512);
  const double dense_buf = MeasureItemsPerSec(buf_items, [&] {
    for (const auto& m : msgs) dense.Append(m, combine);
    benchmark::DoNotOptimize(dense.Drain());
  });
  LegacyUpdateBuffer<double> legacy;
  const double legacy_buf = MeasureItemsPerSec(buf_items, [&] {
    for (const auto& m : msgs) legacy.Append(m, combine);
    benchmark::DoNotOptimize(legacy.Drain());
  });

  // Message dispatch: fragment 0's full border outbox.
  auto w = MakeDispatchWorkload();
  RoutedDispatcher<double> router(w.partition.num_fragments());
  const uint64_t disp_items = w.outbox.size();
  const double routed_disp = MeasureItemsPerSec(disp_items, [&] {
    benchmark::DoNotOptimize(router.Dispatch(w.partition, 0, w.outbox));
  });
  const double legacy_disp = MeasureItemsPerSec(disp_items, [&] {
    benchmark::DoNotOptimize(LegacyDispatch(w.partition, 0, w.outbox, false));
  });

  // Superstep rendezvous: 4 threads through the cv hub the BSP loop used
  // vs the MCS tree and the topology-selected barrier of this build. Four
  // threads is the smallest size where the hub's notify_all broadcast and
  // single-mutex convoy are visible; the tree barriers must hold their own
  // even on oversubscribed 1-2 cpu CI runners (their spin degrades to the
  // same futex wait the cv uses).
  constexpr uint32_t kBarrierThreads = 4;
  constexpr uint32_t kBarrierRounds = 2000;
  CvHubBarrier cv_hub(kBarrierThreads);
  const double cv_rate =
      MeasureBarrierRendezvousPerSec(&cv_hub, kBarrierRounds);
  McsBarrier mcs(kBarrierThreads);
  const double mcs_rate = MeasureBarrierRendezvousPerSec(&mcs, kBarrierRounds);
  const auto topo =
      MakeTopoAwareBarrier(CpuTopology::Cached(), kBarrierThreads);
  const double topo_rate =
      MeasureBarrierRendezvousPerSec(topo.get(), kBarrierRounds);

  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"grapeplus-micro-v1\",\n");
  std::fprintf(f, "  \"buffer_append_drain\": {\n");
  std::fprintf(f, "    \"dense_items_per_sec\": %.0f,\n", dense_buf);
  std::fprintf(f, "    \"hashmap_baseline_items_per_sec\": %.0f,\n",
               legacy_buf);
  std::fprintf(f, "    \"speedup\": %.2f\n", dense_buf / legacy_buf);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"message_dispatch\": {\n");
  std::fprintf(f, "    \"routed_entries_per_sec\": %.0f,\n", routed_disp);
  std::fprintf(f, "    \"hashmap_baseline_entries_per_sec\": %.0f,\n",
               legacy_disp);
  std::fprintf(f, "    \"speedup\": %.2f\n", routed_disp / legacy_disp);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"barrier\": {\n");
  std::fprintf(f, "    \"threads\": %u,\n", kBarrierThreads);
  std::fprintf(f, "    \"cpus\": %u,\n", CpuTopology::Cached().num_cpus());
  std::fprintf(f, "    \"selected\": \"%s\",\n", topo->name());
  std::fprintf(f, "    \"cv_hub_rendezvous_per_sec\": %.0f,\n", cv_rate);
  std::fprintf(f, "    \"mcs_rendezvous_per_sec\": %.0f,\n", mcs_rate);
  std::fprintf(f, "    \"topo_rendezvous_per_sec\": %.0f,\n", topo_rate);
  std::fprintf(f, "    \"mcs_over_cv\": %.2f,\n", mcs_rate / cv_rate);
  std::fprintf(f, "    \"topo_over_cv\": %.2f\n", topo_rate / cv_rate);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("barrier (4 thr):     cv-hub %.0f/s, mcs %.0f/s (%.2fx), "
              "%s %.0f/s (%.2fx)\n",
              cv_rate, mcs_rate, mcs_rate / cv_rate, topo->name(), topo_rate,
              topo_rate / cv_rate);
  std::printf("buffer append+drain: dense %.2fM/s vs hash-map %.2fM/s "
              "(%.1fx)\n",
              dense_buf / 1e6, legacy_buf / 1e6, dense_buf / legacy_buf);
  std::printf("message dispatch:    routed %.2fM/s vs hash-map %.2fM/s "
              "(%.1fx)\n",
              routed_disp / 1e6, legacy_disp / 1e6,
              routed_disp / legacy_disp);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace grape

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  grape::WriteBenchJson("BENCH_micro.json");
  return 0;
}
