// Ablation of the δ controller's design choices (DESIGN.md §4): what each
// ingredient of the AAP delay stretch buys, measured on PageRank with a
// straggler (the workload where stale computation dominates).
//
//   - sender_fraction: the Appendix-B accumulation target ("wait until ~60%
//     of your feeding peers were heard"); 0 disables accumulation (pure AP).
//   - bounded staleness (predicate S): not needed for PR correctness
//     (Section 5.3 Remark); enabling it shows the cost of SSP-style clamps.
//
// Expected: rounds and total work fall sharply as the sender target grows
// (stale-computation reduction), with makespan flat or improving; the
// staleness clamp only adds suspensions.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

void RunAblation() {
  using namespace bench;
  constexpr FragmentId kWorkers = 32;
  Graph g = FriendsterLike(1 << 13, 60000);
  Partition p = SkewedPartition(g, kWorkers, 2.5);

  AsciiTable table({"delta variant", "time", "total rounds", "work units",
                    "comm(MB)"});
  auto run = [&](const char* name, ModeConfig mode) {
    EngineConfig cfg = WithStraggler(BaseConfig(mode, kWorkers), kWorkers);
    SimEngine<PageRankProgram> engine(p, PageRankProgram(0.85, 1e-5), cfg);
    auto r = engine.Run();
    double work = 0;
    for (const auto& w : r.stats.workers) work += w.work_units;
    table.AddRow({name, Fmt(r.stats.makespan),
                  std::to_string(r.stats.total_rounds()), Fmt(work, 0),
                  Fmt(static_cast<double>(r.stats.total_bytes()) / 1048576.0,
                      1)});
  };

  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    ModeConfig mode = ModeConfig::Aap(0.0);
    mode.sender_fraction = frac;
    char name[48];
    std::snprintf(name, sizeof(name), "AAP sender_fraction=%.1f", frac);
    run(name, mode);
  }
  {
    ModeConfig mode = ModeConfig::Aap(0.0);
    mode.bounded_staleness = true;
    mode.staleness_bound = 3;
    run("AAP + staleness clamp c=3", mode);
  }
  run("AP (reference)", ModeConfig::Ap());
  run("BSP (reference)", ModeConfig::Bsp());

  std::printf("== Ablation: δ design choices on PageRank (n=%u, straggler) ==\n%s\n",
              kWorkers, table.ToString().c_str());
  ShapeNote(
      "larger sender targets cut rounds/work (stale-computation reduction) "
      "at flat-or-better makespan; PR gains nothing from a staleness clamp");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunAblation();
  return 0;
}
