// Reproduces Table 1: PageRank and SSSP on a Friendster-like graph with the
// seven systems the paper compares — Giraph, GraphLab(sync), GraphLab(async),
// GiraphUC, Maiter, PowerSwitch and GRAPE+ — each modelled as its parallel
// model + execution granularity + cost profile (DESIGN.md §1). Reports
// modelled time and communication volume.
//
// Paper's shape: GRAPE+ fastest on both workloads with the least
// communication; PowerSwitch closest; Giraph slowest by a wide margin.
#include <cstdio>

#include "bench/bench_util.h"

namespace grape {
namespace {

using bench::Outcome;

Outcome RunPr(const char* system, const Partition& p, FragmentId m) {
  using namespace bench;
  const std::string s(system);
  if (s == "GRAPE+") {
    return RunSim(p, PageRankProgram(0.85, 1e-6),
                  WithStraggler(BaseConfig(ModeConfig::Aap(0.0), m), m));
  }
  VcCostModel costs = VcCostModel::GraphLab();
  ModeConfig mode = ModeConfig::Bsp();
  if (s == "Giraph") {
    costs = VcCostModel::Giraph();
  } else if (s == "GraphLab-sync") {
    // defaults
  } else if (s == "GraphLab-async") {
    costs = VcCostModel::GraphLabAsync();
    mode = ModeConfig::Ap();
  } else if (s == "GiraphUC") {
    costs = VcCostModel::GiraphUc();
    mode = ModeConfig::Ap();  // barrierless
  } else if (s == "Maiter") {
    costs = VcCostModel::Maiter();
    mode = ModeConfig::Ap();
  } else if (s == "PowerSwitch") {
    costs = VcCostModel::PowerSwitch();
    mode = ModeConfig::Hsync();
  }
  return RunSim(p, VcPageRankProgram(costs, 0.85, 1e-6),
                WithStraggler(BaseConfig(mode, m), m));
}

Outcome RunSssp(const char* system, const Partition& p, FragmentId m,
                VertexId src) {
  using namespace bench;
  const std::string s(system);
  if (s == "GRAPE+") {
    return RunSim(p, SsspProgram(src),
                  WithStraggler(BaseConfig(ModeConfig::Aap(0.0), m), m));
  }
  VcCostModel costs = VcCostModel::GraphLab();
  ModeConfig mode = ModeConfig::Bsp();
  if (s == "Giraph") {
    costs = VcCostModel::Giraph();
  } else if (s == "GraphLab-async") {
    costs = VcCostModel::GraphLabAsync();
    mode = ModeConfig::Ap();
  } else if (s == "GiraphUC") {
    costs = VcCostModel::GiraphUc();
    mode = ModeConfig::Ap();
  } else if (s == "Maiter") {
    costs = VcCostModel::Maiter();
    mode = ModeConfig::Ap();
  } else if (s == "PowerSwitch") {
    costs = VcCostModel::PowerSwitch();
    mode = ModeConfig::Hsync();
  }
  return RunSim(p, VcSsspProgram(src, costs),
                WithStraggler(BaseConfig(mode, m), m));
}

void RunTable1() {
  using namespace bench;
  constexpr FragmentId kWorkers = 48;  // scaled-down stand-in for 192
  Graph g = FriendsterLike();
  Partition p = SkewedPartition(g, kWorkers, 2.5);
  std::printf(
      "== Table 1: PageRank & SSSP on friendster-like (%u vertices, "
      "%llu arcs), %u workers ==\n\n",
      g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()),
      kWorkers);

  const char* systems[] = {"Giraph",   "GraphLab-sync", "GraphLab-async",
                           "GiraphUC", "Maiter",        "PowerSwitch",
                           "GRAPE+"};
  AsciiTable table(
      {"System", "PR time", "PR comm(MB)", "SSSP time", "SSSP comm(MB)"});
  double grape_pr = 0, best_other_pr = 1e300;
  double grape_sssp = 0, best_other_sssp = 1e300;
  for (const char* s : systems) {
    Outcome pr = RunPr(s, p, kWorkers);
    Outcome sp = RunSssp(s, p, kWorkers, 0);
    table.AddRow({s, Fmt(pr.time), Fmt(pr.comm_mb, 3), Fmt(sp.time),
                  Fmt(sp.comm_mb, 3)});
    if (std::string(s) == "GRAPE+") {
      grape_pr = pr.time;
      grape_sssp = sp.time;
    } else {
      best_other_pr = std::min(best_other_pr, pr.time);
      best_other_sssp = std::min(best_other_sssp, sp.time);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("GRAPE+ vs best competitor: PR %.2fx, SSSP %.2fx\n",
              best_other_pr / grape_pr, best_other_sssp / grape_sssp);
  ShapeNote(
      "paper: GRAPE+ fastest on both (Table 1), with the least "
      "communication; Giraph slowest; PowerSwitch the closest competitor");
}

}  // namespace
}  // namespace grape

int main() {
  grape::RunTable1();
  return 0;
}
